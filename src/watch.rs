//! The `smoothop watch` runner: a live online-engine session built for
//! *watching* rather than benchmarking.
//!
//! The watch rung drives the same resident [`so_core::OnlineFleet`]
//! engine and
//! synthesized arrival stream as the online scale rung
//! ([`crate::scale::run_online_scale`]), but its product is the
//! observability plane itself: every batch emits one machine-readable
//! JSONL heartbeat line, every alert transition and postmortem flight
//! dump is surfaced as its own line, and the caller can serve the
//! attached [`so_telemetry::LivePlane`] over HTTP (`smoothop watch
//! --listen ADDR`)
//! while the stream runs. With `--watch-out` the same lines go to a file
//! instead — the no-network path CI exercises.
//!
//! Line shapes (one JSON object per line):
//!
//! * `{"kind":"batch","batch":B,"arrivals":..,"committed":..,
//!   "rejected":..,"retired":..,"live":..,"root_power_watts":..,
//!   "min_rack_headroom_watts":..,"alerts_active":..,
//!   "peak_rss_bytes":N|null}` — one heartbeat per event batch.
//!   `peak_rss_bytes` reuses the scale tier's `Option<u64>` contract
//!   ([`crate::scale::peak_rss_bytes`]): `null` wherever `/proc` is
//!   unavailable, never a fabricated zero.
//! * `{"kind":"alert","rule":"...","state":"fired"|"resolved",
//!   "eval":N,"value":V}` — one per alert transition, in evaluation
//!   order (deterministic at any thread count).
//! * `{"kind":"flight_dump","ordinal":N,"reason":"...","records":N}` —
//!   one per postmortem dump the plane captured during the batch.
//! * `{"kind":"summary",...}` — final totals, always the last line.
//!
//! The planted-violation mode (`--plant-violation`) injects one
//! deliberately inadmissible arrival — over every rack's power budget
//! while slots are free — halfway through the stream, so CI can assert
//! the full anomaly path end to end: exactly one breaker-budget
//! `AlertFired`, a flight dump whose journal-event suffix bit-matches
//! the engine journal, and a later `AlertResolved` once the stream is
//! clean again.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use so_core::{CommitPolicy, OnlineConfig, OnlineFleet};
use so_powertrace::{PowerTrace, TimeGrid};
use so_telemetry::{default_online_rules, LivePlane, RecordingSink};

use crate::scale::{
    min_rack_headroom, mix, ms_since, online_topology, peak_rss_bytes, RowWave, SynthBasis,
    ONLINE_RACK_BUDGET_WATTS,
};

/// Parameters of one watch session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchConfig {
    /// Instances streamed through the engine.
    pub instances: usize,
    /// Event batches the stream is split into.
    pub batches: usize,
    /// Samples per synthesized trace.
    pub samples_per_trace: usize,
    /// Sampling step of the synthesized grid, minutes.
    pub step_minutes: u32,
    /// Seed driving waveforms, retirements, and the sampling policy.
    pub seed: u64,
    /// Candidate racks probed per arrival.
    pub sample_probes: usize,
    /// Repair swaps allowed per between-batch pass (0 disables).
    pub repair_budget: usize,
    /// Flight-recorder ring capacity, records.
    pub flight_capacity: usize,
    /// Journal compaction cap (0 = unbounded journal).
    pub journal_cap: usize,
    /// Inject one over-budget arrival halfway through the stream to
    /// exercise the breaker-budget anomaly path.
    pub plant_violation: bool,
}

impl Default for WatchConfig {
    fn default() -> Self {
        Self {
            instances: 10_000,
            batches: 8,
            samples_per_trace: 168,
            step_minutes: 60,
            seed: 7,
            sample_probes: 64,
            repair_budget: 8,
            flight_capacity: 4_096,
            journal_cap: 0,
            plant_violation: false,
        }
    }
}

/// Totals of one watch session (also rendered as the final `summary`
/// JSONL line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchOutcome {
    /// Event batches processed.
    pub batches: usize,
    /// Arrivals committed.
    pub committed: u64,
    /// Arrivals rejected.
    pub rejected: u64,
    /// Instances retired.
    pub retired: u64,
    /// Instances live at the end.
    pub live_instances: usize,
    /// `AlertFired` transitions observed.
    pub alerts_fired: u64,
    /// `AlertResolved` transitions observed.
    pub alerts_resolved: u64,
    /// Breaker-budget violations recorded by the plane.
    pub breaker_violations: u64,
    /// Postmortem flight dumps captured by the plane.
    pub dumps_total: u64,
    /// Journal compactions the engine performed.
    pub journal_compactions: u64,
}

/// Builds the plane a watch session attaches: the given sink (share the
/// process-global recording sink so engine gauges land on `/metrics`),
/// the configured flight capacity, and the default online alert rules.
pub fn watch_plane(sink: Arc<RecordingSink>, config: &WatchConfig) -> Arc<LivePlane> {
    Arc::new(LivePlane::new(
        sink,
        config.flight_capacity,
        default_online_rules(),
    ))
}

/// Runs one watch session against `plane`, invoking `emit` with each
/// JSONL line as it is produced (batch heartbeats, alert transitions,
/// flight dumps, then one final summary line).
///
/// # Errors
///
/// Returns an error when `config` is degenerate (zero instances,
/// batches, samples, or probes) or an engine operation fails.
pub fn run_watch(
    config: &WatchConfig,
    plane: Arc<LivePlane>,
    mut emit: impl FnMut(&str),
) -> Result<WatchOutcome, Box<dyn std::error::Error>> {
    if config.instances == 0
        || config.batches == 0
        || config.samples_per_trace == 0
        || config.sample_probes == 0
    {
        return Err(
            "instances, batches, samples_per_trace, and sample_probes must be positive".into(),
        );
    }
    let grid = TimeGrid::new(config.step_minutes, config.samples_per_trace);
    let topology = online_topology(config.instances)?;
    let basis = SynthBasis::new(config.samples_per_trace);
    let mut engine = OnlineFleet::new(
        topology,
        grid,
        OnlineConfig {
            policy: CommitPolicy::Sampling {
                probes: config.sample_probes,
            },
            repair_budget: config.repair_budget,
            min_gain: 0.02,
            sample_salt: config.seed,
            journal_cap: config.journal_cap,
        },
    );
    engine.attach_plane(plane.clone());
    // The first synthesized wave doubles as the fragmentation reference:
    // with one set, the engine re-emits the per-level
    // `so_online_stranded_watts` / `so_online_fragmentation_ratio`
    // gauges on every commit and retirement, so a scraper watching
    // `/metrics` sees fragmentation move batch by batch.
    let mut reference_row = vec![0.0f64; config.samples_per_trace];
    RowWave::new(config.seed ^ 0x0E7E, 0).fill(&basis, &mut reference_row);
    let reference = PowerTrace::new(reference_row, config.step_minutes)?;
    engine.set_fragmentation_reference(Some(&reference))?;
    let rule_names: Vec<String> = default_online_rules().into_iter().map(|r| r.name).collect();

    let started = Instant::now();
    let per_batch = config.instances.div_ceil(config.batches).max(1);
    let retire_per_batch = per_batch / 5;
    let plant_at = config.batches / 2;
    let mut alerts_fired = 0u64;
    let mut alerts_resolved = 0u64;
    let mut dumps_seen = 0u64;
    let mut row = vec![0.0f64; config.samples_per_trace];
    let mut synthesized = 0u64;
    let mut line = String::new();

    for b in 0..config.batches {
        // Identical stream shape to the online scale rung: retirements
        // drawn against the live snapshot, then the batch's arrivals.
        if b > 0 && retire_per_batch > 0 {
            let snapshot = engine.live_slots();
            if !snapshot.is_empty() {
                let mut slots: Vec<usize> = (0..retire_per_batch)
                    .map(|k| {
                        let draw = mix(config.seed ^ 0xDE7A11, (b * per_batch + k) as u64);
                        snapshot[(draw % snapshot.len() as u64) as usize]
                    })
                    .collect();
                slots.sort_unstable();
                slots.dedup();
                for slot in slots {
                    engine.retire(slot)?;
                }
            }
        }
        let mut arrivals = 0u64;
        for _ in 0..per_batch {
            RowWave::new(config.seed ^ 0x0E7E, synthesized).fill(&basis, &mut row);
            synthesized += 1;
            arrivals += 1;
            let trace = PowerTrace::new(row.clone(), config.step_minutes)?;
            let _ = engine.arrive(&trace)?;
        }
        if config.plant_violation && b == plant_at {
            // Over every rack budget while churn has left slots free:
            // the canonical breaker-budget violation, planted once.
            let hot = PowerTrace::new(
                vec![ONLINE_RACK_BUDGET_WATTS * 3.0; config.samples_per_trace],
                config.step_minutes,
            )?;
            arrivals += 1;
            let outcome = engine.arrive(&hot)?;
            debug_assert!(outcome.is_none(), "planted arrival must be rejected");
        }
        if config.repair_budget > 0 {
            engine.repair()?;
        }

        let transitions = engine.observe_batch()?;
        for t in &transitions {
            if t.fired {
                alerts_fired += 1;
            } else {
                alerts_resolved += 1;
            }
            let rule = rule_names.get(t.rule).map(String::as_str).unwrap_or("?");
            line.clear();
            let _ = write!(
                line,
                "{{\"kind\":\"alert\",\"rule\":\"{}\",\"state\":\"{}\",\"eval\":{},\"value\":{}}}",
                rule,
                if t.fired { "fired" } else { "resolved" },
                t.eval,
                fmt_f64(t.value),
            );
            emit(&line);
        }
        for dump in plane.dumps() {
            if dump.ordinal < dumps_seen {
                continue;
            }
            line.clear();
            let _ = write!(
                line,
                "{{\"kind\":\"flight_dump\",\"ordinal\":{},\"reason\":\"{}\",\"records\":{}}}",
                dump.ordinal, dump.reason, dump.records,
            );
            emit(&line);
        }
        dumps_seen = plane.dumps_total();

        let root = engine.topology().root();
        let root_power = engine.aggregates().peak(root)?;
        let min_headroom = min_rack_headroom(&engine)?;
        line.clear();
        let _ = write!(
            line,
            "{{\"kind\":\"batch\",\"batch\":{},\"arrivals\":{},\"committed\":{},\"rejected\":{},\"retired\":{},\"live\":{},\"root_power_watts\":{},\"min_rack_headroom_watts\":{},\"alerts_active\":{},\"peak_rss_bytes\":{}}}",
            b,
            arrivals,
            engine.committed(),
            engine.rejected(),
            engine.retired(),
            engine.live_len(),
            fmt_f64(root_power),
            fmt_f64(min_headroom),
            plane.active_alerts().len(),
            match peak_rss_bytes() {
                Some(bytes) => bytes.to_string(),
                None => "null".to_string(),
            },
        );
        emit(&line);
    }

    let outcome = WatchOutcome {
        batches: config.batches,
        committed: engine.committed(),
        rejected: engine.rejected(),
        retired: engine.retired(),
        live_instances: engine.live_len(),
        alerts_fired,
        alerts_resolved,
        breaker_violations: plane.breaker_violations(),
        dumps_total: plane.dumps_total(),
        journal_compactions: engine.journal_compactions(),
    };
    line.clear();
    let _ = write!(
        line,
        "{{\"kind\":\"summary\",\"batches\":{},\"committed\":{},\"rejected\":{},\"retired\":{},\"live\":{},\"alerts_fired\":{},\"alerts_resolved\":{},\"breaker_violations\":{},\"flight_dumps\":{},\"journal_compactions\":{},\"total_ms\":{}}}",
        outcome.batches,
        outcome.committed,
        outcome.rejected,
        outcome.retired,
        outcome.live_instances,
        outcome.alerts_fired,
        outcome.alerts_resolved,
        outcome.breaker_violations,
        outcome.dumps_total,
        outcome.journal_compactions,
        fmt_f64(ms_since(started)),
    );
    emit(&line);
    Ok(outcome)
}

/// Finite floats verbatim, non-finite as `null` — keeps every emitted
/// line strict JSON.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> WatchConfig {
        WatchConfig {
            instances: 240,
            batches: 4,
            samples_per_trace: 24,
            step_minutes: 60,
            seed: 7,
            sample_probes: 3,
            repair_budget: 2,
            flight_capacity: 128,
            journal_cap: 0,
            plant_violation: false,
        }
    }

    fn run_lines(config: &WatchConfig) -> (WatchOutcome, Vec<String>) {
        let plane = watch_plane(Arc::new(RecordingSink::with_virtual_clock()), config);
        let mut lines = Vec::new();
        let outcome = run_watch(config, plane, |l| lines.push(l.to_string())).unwrap();
        (outcome, lines)
    }

    #[test]
    fn watch_emits_batch_heartbeats_and_a_summary() {
        let config = tiny_config();
        let (outcome, lines) = run_lines(&config);
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.starts_with("{\"kind\":\"batch\""))
                .count(),
            config.batches
        );
        let last = lines.last().unwrap();
        assert!(last.starts_with("{\"kind\":\"summary\""));
        assert!(last.contains(&format!("\"committed\":{}", outcome.committed)));
        assert!(outcome.committed > 0);
        // peak_rss_bytes keeps the Option contract: a number on Linux,
        // the JSON null literal elsewhere — never a fabricated zero.
        let heartbeat = &lines[0];
        match peak_rss_bytes() {
            Some(_) => assert!(!heartbeat.contains("\"peak_rss_bytes\":null")),
            None => assert!(heartbeat.contains("\"peak_rss_bytes\":null")),
        }
    }

    #[test]
    fn planted_violation_fires_and_dumps() {
        let mut config = tiny_config();
        config.plant_violation = true;
        let (outcome, lines) = run_lines(&config);
        assert_eq!(outcome.breaker_violations, 1);
        let fired: Vec<&String> = lines
            .iter()
            .filter(|l| {
                l.contains("\"kind\":\"alert\"")
                    && l.contains("\"rule\":\"breaker_budget_violation\"")
                    && l.contains("\"state\":\"fired\"")
            })
            .collect();
        assert_eq!(fired.len(), 1, "exactly one breaker fire: {lines:#?}");
        assert!(
            lines.iter().any(|l| l.contains("\"kind\":\"flight_dump\"")
                && l.contains("breaker-budget violation")),
            "violation captures a postmortem dump"
        );
        // The stream goes clean afterwards, so the alert resolves.
        assert!(lines.iter().any(|l| {
            l.contains("\"rule\":\"breaker_budget_violation\"")
                && l.contains("\"state\":\"resolved\"")
        }));
    }

    #[test]
    fn clean_watch_plants_nothing() {
        let (outcome, lines) = run_lines(&tiny_config());
        assert_eq!(outcome.breaker_violations, 0);
        assert!(!lines
            .iter()
            .any(|l| l.contains("\"rule\":\"breaker_budget_violation\"")
                && l.contains("\"state\":\"fired\"")));
    }

    #[test]
    fn degenerate_watch_configs_are_rejected() {
        for broken in [
            WatchConfig {
                instances: 0,
                ..tiny_config()
            },
            WatchConfig {
                batches: 0,
                ..tiny_config()
            },
            WatchConfig {
                sample_probes: 0,
                ..tiny_config()
            },
        ] {
            let plane = watch_plane(Arc::new(RecordingSink::with_virtual_clock()), &broken);
            assert!(run_watch(&broken, plane, |_| {}).is_err());
        }
    }
}
