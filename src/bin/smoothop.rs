//! `smoothop` — command-line front end for the SmoothOperator library.
//!
//! ```text
//! smoothop scenarios                 list the built-in datacenter presets
//! smoothop breakdown <dc> [n]       per-service power shares (Figure 5)
//! smoothop place     <dc> [n]       placement vs historical layout (Figure 10)
//! smoothop pipeline  <dc> [n]       full reshaping pipeline (Figures 12-14)
//! smoothop report    <dc> [n]       instrumented run + telemetry summary
//! ```
//!
//! `<dc>` is `dc1`, `dc2`, or `dc3`; `n` is the fleet size (default 240).
//! `--metrics-out <path>` / `--trace-out <path>` attach a recording
//! telemetry sink to any command and write a Prometheus snapshot / a
//! JSON-lines event log on exit.

use std::process::ExitCode;
use std::sync::Arc;

use smoothoperator::prelude::*;
use so_faults::{FaultKind, FaultSchedule, FaultSpec};
use so_oracles::{run_battery, BatteryConfig, OracleFamily};
use so_powertree::NodeAggregates;
use so_reshape::{operate, run_scenario, LongRunConfig, ThrottleBoostPolicy};
use so_sim::{default_config, one_week_grid, simulate_with_faults, FailSafe};
use so_telemetry::RecordingSink;
use so_workloads::OfferedLoad;

fn main() -> ExitCode {
    let (args, flags) = match split_flags(std::env::args().skip(1).collect()) {
        Ok(split) => split,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let command = args.first().map(String::as_str);

    // A recording sink is attached when any command asked for exported
    // telemetry, always for `report` (whose output *is* the metrics), and
    // whenever a live plane exists (`watch`, `--listen`): the plane
    // serves `/metrics` from the same sink the engine gauges land in.
    let wants_sink = flags.metrics_out.is_some()
        || flags.trace_out.is_some()
        || flags.listen.is_some()
        || command == Some("report")
        || command == Some("watch")
        || command == Some("serve");
    let sink = if wants_sink {
        let sink = Arc::new(RecordingSink::with_wall_clock());
        so_telemetry::install(sink.clone());
        Some(sink)
    } else {
        None
    };

    let faults = &flags.faults;
    let result = match command {
        Some("scenarios") => scenarios(),
        Some("breakdown") => with_scenario(&args, breakdown),
        Some("place") => with_scenario(&args, place),
        Some("pipeline") => with_scenario(&args, pipeline),
        Some("longrun") => with_scenario(&args, longrun),
        Some("dot") => with_scenario(&args, dot),
        Some("simulate") => with_scenario(&args, |scenario, n| simulate_cmd(scenario, n, faults)),
        Some("check") => check_cmd(&args, flags.seed),
        Some("scale") => scale_cmd(&flags),
        Some("plan") => plan_cmd(&flags),
        Some("online") => online_cmd(&flags, sink.as_ref()),
        Some("watch") => watch_cmd(&flags, sink.as_ref()),
        Some("serve") => serve_cmd(&flags, sink.as_ref()),
        Some("daemon") => daemon_cmd(&flags),
        Some("report") => with_scenario(&args, |scenario, n| {
            report_cmd(
                scenario,
                n,
                sink.as_ref().expect("report always installs a sink"),
            )
        }),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `smoothop help`)").into()),
    };
    let result = result.and_then(|()| write_telemetry(sink, &flags));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Detaches the recording sink (if one was installed) and writes the
/// requested export files.
fn write_telemetry(sink: Option<Arc<RecordingSink>>, flags: &CliFlags) -> CliResult {
    let Some(sink) = sink else {
        return Ok(());
    };
    so_telemetry::uninstall();
    if let Some(path) = &flags.metrics_out {
        std::fs::write(path, sink.prometheus())
            .map_err(|e| format!("cannot write metrics to `{path}`: {e}"))?;
        eprintln!("wrote Prometheus metrics snapshot to {path}");
    }
    if let Some(path) = &flags.trace_out {
        std::fs::write(path, sink.jsonl())
            .map_err(|e| format!("cannot write trace events to `{path}`: {e}"))?;
        eprintln!("wrote JSON-lines span/event log to {path}");
    }
    Ok(())
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn print_usage() {
    println!("smoothop — SmoothOperator (ASPLOS'18) reproduction CLI");
    println!();
    println!("USAGE:");
    println!("  smoothop scenarios                list the built-in datacenter presets");
    println!("  smoothop breakdown <dc> [n]       per-service power shares (Figure 5)");
    println!("  smoothop place     <dc> [n]       placement vs historical layout (Figure 10)");
    println!("  smoothop pipeline  <dc> [n]       full reshaping pipeline (Figures 12-14)");
    println!("  smoothop longrun   <dc> [n]       weeks of drift + monitored remapping");
    println!("  smoothop dot       <dc> [n]       graphviz dot of the placed topology");
    println!("  smoothop simulate  <dc> [n]       one week of runtime reshaping");
    println!("  smoothop report    <dc> [n]       instrumented place+drift+remap+simulate run,");
    println!("                                    printed as a telemetry summary");
    println!("  smoothop check     [n]            seeded correctness-oracle battery (invariant,");
    println!("                                    differential, metamorphic, arena, online,");
    println!("                                    observability, daemon, plan); n defaults");
    println!("                                    to 1000");
    println!("  smoothop scale                    columnar scale ladder; writes BENCH_scale.json");
    println!("  smoothop plan                     capacity-planning sweep: racks of extra");
    println!("                                    workload that fit under one MSB budget at each");
    println!("                                    overbooking allowance δ, StatProf vs");
    println!("                                    SmoothOperator provisioning, web vs LLM mixes;");
    println!("                                    writes BENCH_plan.json");
    println!("  smoothop online                   online arrival/departure rung: streams batches");
    println!("                                    through the resident engine and compares the");
    println!("                                    churned placement against a one-pass offline");
    println!("                                    re-placement; writes BENCH_online.json");
    println!("  smoothop watch                    live observability session: streams one fleet");
    println!("                                    through the online engine and emits per-batch");
    println!("                                    JSONL heartbeats, alert transitions, and");
    println!("                                    flight-recorder dumps");
    println!(
        "  smoothop serve                    smoothopd: resident placement daemon — streaming"
    );
    println!("                                    sample ingest into per-instance ring buffers,");
    println!("                                    live headroom/asynchrony/what-if queries, and");
    println!("                                    a background repair loop, over one HTTP port");
    println!(
        "  smoothop daemon                   daemon load rung: streams sample batches through"
    );
    println!("                                    the in-process ingest path and writes");
    println!("                                    BENCH_daemon.json with throughput + latency");
    println!("                                    quantiles");
    println!();
    println!("  <dc> ∈ {{dc1, dc2, dc3}}; n = fleet size, default 240");
    println!();
    println!("OPTIONS:");
    println!("  --faults <spec>       inject faults into `simulate`; <spec> is comma-separated");
    println!("                        key=value pairs (seed, dropout, stuck, crash, trips,");
    println!("                        mean-steps, trip-steps, trip-severity), or `none`.");
    println!("                        Example: --faults seed=7,dropout=0.2,trips=1");
    println!("  --metrics-out <path>  write a Prometheus text snapshot of all metrics");
    println!("                        recorded during the command");
    println!("  --trace-out <path>    write the recorded span/point events as JSON lines");
    println!("  --seed <u64>          battery seed for `check` (default 7); the seed picks the");
    println!("                        scenario and drives every randomized probe");
    println!("  --instances <list>    comma-separated ladder for `scale` (default");
    println!("                        10000,100000,1000000) and `online` (default 10000,100000)");
    println!("  --out <path>          output path for `scale` / `online` (defaults");
    println!("                        BENCH_scale.json / BENCH_online.json)");
    println!("  --quantiles <mode>    quantile phase for `scale`: `exact` (selection, the");
    println!("                        default, bit-reproducible) or `sketch` (streaming P²,");
    println!("                        approximate); `--exact` / `--sketch` are shorthands");
    println!("  --chunk-rows <n>      rows per streaming chunk for `scale` (0 = default;");
    println!("                        rounded up to a multiple of the group size; never");
    println!("                        changes checksums)");
    println!("  --workload <name>     waveform family for `scale`: `diurnal` (default) or");
    println!("                        `llm` (token-bursty, correlated 30-min bursts)");
    println!("  --base <n>            `plan` only: instances of the existing base fleet");
    println!("                        (default 50000)");
    println!("  --racks <n>           `plan` only: sweep depth in candidate racks of 12");
    println!("                        slots each (default 2560)");
    println!("  --deltas <list>       `plan` only: comma-separated overbooking allowances,");
    println!("                        strictly ascending (default 0,0.05,0.10)");
    println!("  --workloads <list>    `plan` only: comma-separated candidate mixes from");
    println!("                        {{web-mix, llm-mix}} (default both)");
    println!("  --budget <watts>      `plan` only: explicit MSB budget; by default the base");
    println!("                        fleet's StatProf requirement plus 10% headroom");
    println!("  --batches <n>         event batches for `online` (default 8)");
    println!("  --probes <n>          candidate racks sampled per arrival for `online`");
    println!("                        (default 64)");
    println!("  --repair <n>          repair swaps allowed per between-batch pass for");
    println!("                        `online` (default 8; 0 disables repair)");
    println!("  --threads <n>         thread-lane budget for the parallel kernels");
    println!("  --listen <addr>       serve /metrics /health /alerts /flight?n=K over HTTP");
    println!("                        while `online` or `watch` runs (e.g. 127.0.0.1:9184);");
    println!("                        for `serve` this is the daemon's port (default");
    println!("                        127.0.0.1:0, an ephemeral port announced on stdout)");
    println!("  --repair-interval-ms <n>  `serve` only: run one budgeted repair pass every");
    println!("                        n milliseconds in the background (0, the default,");
    println!("                        repairs only on explicit POST /repair)");
    println!("  --ttl-ms <n>          `serve` only: auto-shutdown after n milliseconds");
    println!("                        (safety net for CI smoke jobs; default: run until");
    println!("                        POST /shutdown)");
    println!("  --watch-out <path>    buffer the `watch` JSONL stream to a file instead of");
    println!("                        stdout (for CI smoke runs)");
    println!("  --flight-out <path>   dump the full flight-recorder ring as JSONL on exit");
    println!("                        (`watch`, or `online --listen`)");
    println!("  --flight-capacity <n> flight-recorder ring capacity (default 4096)");
    println!("  --journal-cap <n>     compact the online event journal above this length");
    println!("                        (0 = unbounded, the default)");
    println!("  --plant-violation     `watch` only: inject one oversized arrival mid-run to");
    println!("                        force a breaker-budget violation, alert, and dump");
}

/// `smoothop check [n] [--seed s]`: run the seeded oracle battery and fail
/// the process on any violation.
fn check_cmd(args: &[String], seed: Option<u64>) -> CliResult {
    let instances: usize = match args.get(1) {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("fleet size `{raw}` is not a number"))?,
        None => 1000,
    };
    if instances == 0 {
        return Err("fleet size must be positive".into());
    }
    let config = BatteryConfig {
        seed: seed.unwrap_or(7),
        instances,
    };
    let outcome = run_battery(&config)?;
    println!(
        "oracle battery — {} fleet of {} instances, seed {}",
        outcome.scenario, outcome.instances, outcome.seed
    );
    for family in OracleFamily::ALL {
        println!(
            "  {:<13} {:>6} evaluations, {:>3} violations",
            family.label(),
            outcome.report.evaluations(family),
            outcome.report.violations_in(family)
        );
    }
    if outcome.report.is_clean() {
        println!(
            "  all {} oracle evaluations passed",
            outcome.report.total_evaluations()
        );
        Ok(())
    } else {
        for violation in outcome.report.violations().iter().take(20) {
            eprintln!("  violation: {violation}");
        }
        Err(format!("{} oracle violation(s)", outcome.report.violations().len()).into())
    }
}

/// `smoothop scale [--instances n1,n2,...] [--out path] [--quantiles
/// exact|sketch] [--chunk-rows n]`: run the columnar scale ladder and
/// write the `BENCH_scale.json` artifact.
fn scale_cmd(flags: &CliFlags) -> CliResult {
    use smoothoperator::scale::{run_scale, ScaleConfig};

    let mut config = ScaleConfig::default();
    if let Some(seed) = flags.seed {
        config.seed = seed;
    }
    if let Some(raw) = &flags.instances {
        config.instances = raw
            .split(',')
            .map(|part| {
                part.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("instance count `{part}` is not a number"))
            })
            .collect::<Result<Vec<usize>, String>>()?;
    }
    config.quantile_mode = flags.quantile_mode;
    config.workload = flags.scale_workload;
    if let Some(chunk_rows) = flags.chunk_rows {
        config.chunk_rows = chunk_rows;
    }
    let path = flags.out.as_deref().unwrap_or("BENCH_scale.json");

    println!(
        "scale ladder — {} points, {} {} samples/trace, groups of {}, seed {}, {} quantiles, {} rows/chunk, {} thread lane(s)",
        config.instances.len(),
        config.workload.as_str(),
        config.samples_per_trace,
        config.group_size,
        config.seed,
        config.quantile_mode.as_str(),
        config.effective_chunk_rows(),
        so_parallel::effective_lanes(),
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "instances", "synth", "peaks", "p99", "agg", "swaps", "rows/s", "rss"
    );
    let report = run_scale(&config)?;
    for p in &report.points {
        let rss = match p.peak_rss_bytes {
            Some(bytes) => format!("{}MB", bytes / (1024 * 1024)),
            None => "n/a".to_string(),
        };
        println!(
            "{:>10} {:>8.0}ms {:>8.0}ms {:>8.0}ms {:>8.0}ms {:>8.0}ms {:>12.0} {:>10}",
            p.instances,
            p.synth_ms,
            p.row_peaks_ms,
            p.quantiles_ms,
            p.aggregation_ms,
            p.swap_probe_ms,
            p.rows_per_sec,
            rss,
        );
    }
    let json = report.to_json();
    std::fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!("wrote {path} ({} bytes)", json.len());
    Ok(())
}

/// `smoothop plan [--base n] [--racks n] [--deltas d1,d2,...]
/// [--workloads w1,w2] [--budget w] [--seed s] [--out path]`: run the
/// capacity-planning sweep and write the `BENCH_plan.json` artifact.
fn plan_cmd(flags: &CliFlags) -> CliResult {
    use smoothoperator::plan::{run_plan, PlanConfig, PlanWorkload, PLAN_HEADROOM};

    let mut config = PlanConfig::default();
    if let Some(seed) = flags.seed {
        config.seed = seed;
    }
    if let Some(base) = flags.base {
        config.base_instances = base;
    }
    if let Some(racks) = flags.racks {
        config.max_racks = racks;
    }
    if let Some(raw) = &flags.deltas {
        config.deltas = raw
            .split(',')
            .map(|part| {
                part.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("delta `{part}` is not a number"))
            })
            .collect::<Result<Vec<f64>, String>>()?;
    }
    if let Some(raw) = &flags.workloads {
        config.workloads = raw
            .split(',')
            .map(|part| {
                PlanWorkload::parse(part.trim())
                    .ok_or_else(|| format!("workload `{part}` is not `web-mix` or `llm-mix`"))
            })
            .collect::<Result<Vec<PlanWorkload>, String>>()?;
    }
    if let Some(budget) = flags.budget {
        config.budget_watts = budget;
    }
    let path = flags.out.as_deref().unwrap_or("BENCH_plan.json");

    println!(
        "capacity plan — base {} instances, up to {} racks × {} slots, seed {}, {} thread lane(s)",
        config.base_instances,
        config.max_racks,
        config.rack_slots,
        config.seed,
        so_parallel::effective_lanes(),
    );
    let report = run_plan(&config)?;
    for p in &report.points {
        if config.budget_watts > 0.0 {
            println!(
                "{}: budget {:.0} W (explicit), base peak {:.0} W",
                p.workload.as_str(),
                p.budget_watts,
                p.base_peak_watts,
            );
        } else {
            println!(
                "{}: budget {:.0} W (base StatProf requirement {:.0} W + {:.0}% headroom), base peak {:.0} W",
                p.workload.as_str(),
                p.budget_watts,
                p.base_sum_of_peaks_watts,
                100.0 * PLAN_HEADROOM,
                p.base_peak_watts,
            );
        }
        println!(
            "  {:>6} {:>14} {:>14} {:>16} {:>16}",
            "δ", "statprof-fit", "smoothop-fit", "statprof-strand", "smoothop-strand"
        );
        for f in &p.fits {
            println!(
                "  {:>6.2} {:>14} {:>14} {:>14.0} W {:>14.0} W",
                f.delta,
                f.statprof_racks_fit,
                f.smoothoperator_racks_fit,
                f.statprof_stranded_watts,
                f.smoothoperator_stranded_watts,
            );
        }
    }
    let json = report.to_json();
    std::fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!("wrote {path} ({} bytes)", json.len());
    Ok(())
}

/// Builds the live plane for `watch` / `--listen` sessions over the
/// process-global recording sink (so engine gauges land on `/metrics`),
/// and spawns the HTTP listener when an address was requested.
fn live_plane(
    flags: &CliFlags,
    sink: Option<&Arc<RecordingSink>>,
) -> Result<
    (
        Arc<so_telemetry::LivePlane>,
        Option<so_telemetry::MetricsServer>,
    ),
    Box<dyn std::error::Error>,
> {
    let sink = sink
        .cloned()
        .unwrap_or_else(|| Arc::new(RecordingSink::with_wall_clock()));
    let plane = Arc::new(so_telemetry::LivePlane::new(
        sink,
        flags.flight_capacity.unwrap_or(4_096),
        so_telemetry::default_online_rules(),
    ));
    let server = match &flags.listen {
        Some(addr) => {
            let server = so_telemetry::MetricsServer::spawn(addr, plane.clone())
                .map_err(|e| format!("cannot listen on `{addr}`: {e}"))?;
            eprintln!(
                "serving /metrics /health /alerts /flight on http://{}",
                server.addr()
            );
            Some(server)
        }
        None => None,
    };
    Ok((plane, server))
}

/// `smoothop online [--instances n1,n2,...] [--seed s] [--out path]
/// [--listen addr]`: run the online arrival/departure rung and write
/// `BENCH_online.json`, optionally serving the observability plane over
/// HTTP while the rung runs.
fn online_cmd(flags: &CliFlags, sink: Option<&Arc<RecordingSink>>) -> CliResult {
    use smoothoperator::scale::{run_online_scale_with_plane, OnlineScaleConfig};

    let mut config = OnlineScaleConfig::default();
    if let Some(seed) = flags.seed {
        config.seed = seed;
    }
    if let Some(raw) = &flags.instances {
        config.instances = raw
            .split(',')
            .map(|part| {
                part.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("instance count `{part}` is not a number"))
            })
            .collect::<Result<Vec<usize>, String>>()?;
    }
    if let Some(batches) = flags.batches {
        config.batches = batches;
    }
    if let Some(probes) = flags.probes {
        config.sample_probes = probes;
    }
    if let Some(repair) = flags.repair {
        config.repair_budget = repair;
    }
    let path = flags.out.as_deref().unwrap_or("BENCH_online.json");
    let (plane, server) = if flags.listen.is_some() {
        let (plane, server) = live_plane(flags, sink)?;
        (Some(plane), server)
    } else {
        (None, None)
    };

    println!(
        "online rung — {} points, {} batches, {} probes/arrival, repair budget {}, seed {}, {} thread lane(s)",
        config.instances.len(),
        config.batches,
        config.sample_probes,
        config.repair_budget,
        config.seed,
        so_parallel::effective_lanes(),
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>12} {:>9} {:>9} {:>11} {:>11} {:>6}",
        "instances",
        "arrive",
        "retire",
        "repair",
        "offline",
        "rows/s",
        "async",
        "off-asy",
        "headroom W",
        "off-hdr W",
        "frag"
    );
    let report = run_online_scale_with_plane(&config, plane.clone());
    if let Some(server) = server {
        server.shutdown();
    }
    let report = report?;
    for p in &report.points {
        println!(
            "{:>10} {:>8.0}ms {:>8.0}ms {:>8.0}ms {:>8.0}ms {:>12.0} {:>9.4} {:>9.4} {:>11.1} {:>11.1} {:>6.3} {:>6}",
            p.instances,
            p.arrive_ms,
            p.retire_ms,
            p.repair_ms,
            p.offline_ms,
            p.rows_per_sec,
            p.online_mean_asynchrony,
            p.offline_mean_asynchrony,
            p.online_min_rack_headroom_watts,
            p.offline_min_rack_headroom_watts,
            p.rack_fragmentation_ratio,
            p.alerts_fired,
        );
    }
    write_flight(flags, plane.as_ref())?;
    let json = report.to_json();
    std::fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!("wrote {path} ({} bytes)", json.len());
    Ok(())
}

/// `smoothop watch [--instances n] [--batches b] [--listen addr]
/// [--watch-out path] [--flight-out path] [--plant-violation]`: run one
/// live watch session over the online engine, emitting per-batch JSONL
/// heartbeats plus alert and flight-dump lines.
fn watch_cmd(flags: &CliFlags, sink: Option<&Arc<RecordingSink>>) -> CliResult {
    use smoothoperator::watch::{run_watch, WatchConfig};

    let mut config = WatchConfig::default();
    if let Some(seed) = flags.seed {
        config.seed = seed;
    }
    if let Some(raw) = &flags.instances {
        // Watch streams one fleet, not a ladder: take the first count.
        let first = raw.split(',').next().unwrap_or(raw).trim();
        config.instances = first
            .parse()
            .map_err(|_| format!("instance count `{first}` is not a number"))?;
    }
    if let Some(batches) = flags.batches {
        config.batches = batches;
    }
    if let Some(probes) = flags.probes {
        config.sample_probes = probes;
    }
    if let Some(repair) = flags.repair {
        config.repair_budget = repair;
    }
    if let Some(cap) = flags.flight_capacity {
        config.flight_capacity = cap;
    }
    if let Some(cap) = flags.journal_cap {
        config.journal_cap = cap;
    }
    config.plant_violation = flags.plant_violation;

    let (plane, server) = live_plane(flags, sink)?;
    eprintln!(
        "watch — {} instances over {} batches, seed {}, {} thread lane(s){}",
        config.instances,
        config.batches,
        config.seed,
        so_parallel::effective_lanes(),
        if config.plant_violation {
            ", planting one breaker-budget violation"
        } else {
            ""
        },
    );
    let mut buffered = String::new();
    let to_file = flags.watch_out.is_some();
    let outcome = run_watch(&config, plane.clone(), |line| {
        if to_file {
            buffered.push_str(line);
            buffered.push('\n');
        } else {
            println!("{line}");
        }
    });
    if let Some(server) = server {
        server.shutdown();
    }
    let outcome = outcome?;
    if let Some(path) = &flags.watch_out {
        std::fs::write(path, &buffered).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote watch JSONL to {path} ({} bytes)", buffered.len());
    }
    write_flight(flags, Some(&plane))?;
    eprintln!(
        "watch done — {} committed, {} rejected, {} live, {} alert(s) fired, {} resolved, {} breaker violation(s), {} flight dump(s)",
        outcome.committed,
        outcome.rejected,
        outcome.live_instances,
        outcome.alerts_fired,
        outcome.alerts_resolved,
        outcome.breaker_violations,
        outcome.dumps_total,
    );
    Ok(())
}

/// `smoothop serve [--listen addr] [--instances n] [--seed s]
/// [--probes p] [--repair b] [--repair-interval-ms n] [--ttl-ms n]`:
/// run the resident placement daemon until `POST /shutdown` (or the
/// TTL), serving ingest, queries, and the scrape surface on one port.
fn serve_cmd(flags: &CliFlags, sink: Option<&Arc<RecordingSink>>) -> CliResult {
    use smoothoperator::serve::{run_serve, ServeConfig};

    let mut config = ServeConfig::default();
    if let Some(addr) = &flags.listen {
        config.listen = addr.clone();
    }
    if let Some(seed) = flags.seed {
        config.seed = seed;
    }
    if let Some(raw) = &flags.instances {
        // Serve hosts one resident fleet, not a ladder: take the first.
        let first = raw.split(',').next().unwrap_or(raw).trim();
        config.instances = first
            .parse()
            .map_err(|_| format!("instance count `{first}` is not a number"))?;
    }
    if let Some(probes) = flags.probes {
        config.sample_probes = probes;
    }
    if let Some(repair) = flags.repair {
        config.repair_budget = repair;
    }
    if let Some(interval) = flags.repair_interval_ms {
        config.repair_interval_ms = interval;
    }
    config.ttl_ms = flags.ttl_ms;

    let sink = sink
        .cloned()
        .unwrap_or_else(|| Arc::new(RecordingSink::with_wall_clock()));
    let plane = Arc::new(so_telemetry::LivePlane::new(
        sink,
        flags.flight_capacity.unwrap_or(4_096),
        so_telemetry::default_online_rules(),
    ));
    eprintln!(
        "smoothopd — {} instances resident, window {}, repair budget {} every {}ms, seed {}",
        config.instances,
        config.samples_per_trace,
        config.repair_budget,
        config.repair_interval_ms,
        config.seed,
    );
    // The announce line goes to stdout so scripts can parse the bound
    // (possibly ephemeral) address without scraping stderr.
    let outcome = run_serve(&config, plane.clone(), |line| println!("{line}"))?;
    write_flight(flags, Some(&plane))?;
    eprintln!(
        "smoothopd done — {} batches / {} samples ingested ({} dropped), {} live, {} committed, {} rejected, {} retired, {} repair pass(es)",
        outcome.batches_ingested,
        outcome.samples_ingested,
        outcome.samples_dropped,
        outcome.live_instances,
        outcome.committed,
        outcome.rejected,
        outcome.retired,
        outcome.repair_passes,
    );
    Ok(())
}

/// `smoothop daemon [--instances n1,n2,...] [--seed s] [--out path]`:
/// run the daemon ingest load rung and write `BENCH_daemon.json`.
fn daemon_cmd(flags: &CliFlags) -> CliResult {
    use smoothoperator::serve::{run_daemon_scale, DaemonScaleConfig};

    let mut config = DaemonScaleConfig::default();
    if let Some(seed) = flags.seed {
        config.seed = seed;
    }
    if let Some(raw) = &flags.instances {
        config.instances = raw
            .split(',')
            .map(|part| {
                part.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("instance count `{part}` is not a number"))
            })
            .collect::<Result<Vec<usize>, String>>()?;
    }
    if let Some(sweeps) = flags.batches {
        // The daemon rung's unit of work is one full fleet sweep.
        config.sweeps = sweeps;
    }
    if let Some(probes) = flags.probes {
        config.sample_probes = probes;
    }
    if let Some(repair) = flags.repair {
        config.repair_budget = repair;
    }
    let path = flags.out.as_deref().unwrap_or("BENCH_daemon.json");

    println!(
        "daemon rung — {} points, {} sweeps of {}-slot batches, {} samples/window, seed {}, {} thread lane(s)",
        config.instances.len(),
        config.sweeps,
        config.batch_slots,
        config.samples_per_trace,
        config.seed,
        so_parallel::effective_lanes(),
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>12} {:>9} {:>9} {:>10}",
        "instances", "seed", "ingest", "query", "repair", "samples/s", "p50 µs", "p99 µs", "rss"
    );
    let report = run_daemon_scale(&config)?;
    for p in &report.points {
        let rss = match p.peak_rss_bytes {
            Some(bytes) => format!("{}MB", bytes / (1024 * 1024)),
            None => "n/a".to_string(),
        };
        println!(
            "{:>10} {:>8.0}ms {:>8.0}ms {:>8.0}ms {:>8.0}ms {:>12.0} {:>9.1} {:>9.1} {:>10}",
            p.instances,
            p.seed_ms,
            p.ingest_ms,
            p.query_ms,
            p.repair_ms,
            p.rows_per_sec,
            p.ingest_p50_us,
            p.ingest_p99_us,
            rss,
        );
    }
    let json = report.to_json();
    std::fs::write(path, &json).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    println!("wrote {path} ({} bytes)", json.len());
    Ok(())
}

/// Writes the plane's full flight ring as JSONL when `--flight-out` was
/// requested.
fn write_flight(flags: &CliFlags, plane: Option<&Arc<so_telemetry::LivePlane>>) -> CliResult {
    let Some(path) = &flags.flight_out else {
        return Ok(());
    };
    let Some(plane) = plane else {
        return Err("--flight-out needs a live plane (use `watch` or `online --listen`)".into());
    };
    let jsonl = plane.flight_jsonl(0);
    std::fs::write(path, &jsonl).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    eprintln!(
        "wrote flight recorder JSONL to {path} ({} bytes)",
        jsonl.len()
    );
    Ok(())
}

fn with_scenario(args: &[String], f: impl FnOnce(DcScenario, usize) -> CliResult) -> CliResult {
    let dc = args
        .get(1)
        .ok_or("missing datacenter argument (dc1|dc2|dc3)")?;
    let scenario = match dc.as_str() {
        "dc1" | "DC1" => DcScenario::dc1(),
        "dc2" | "DC2" => DcScenario::dc2(),
        "dc3" | "DC3" => DcScenario::dc3(),
        other => return Err(format!("unknown datacenter `{other}` (dc1|dc2|dc3)").into()),
    };
    let n: usize = match args.get(2) {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("fleet size `{raw}` is not a number"))?,
        None => 240,
    };
    if n == 0 {
        return Err("fleet size must be positive".into());
    }
    f(scenario, n)
}

/// Global flags shared by every subcommand.
struct CliFlags {
    faults: FaultSpec,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    seed: Option<u64>,
    instances: Option<String>,
    out: Option<String>,
    quantile_mode: smoothoperator::scale::QuantileMode,
    scale_workload: smoothoperator::scale::ScaleWorkload,
    chunk_rows: Option<usize>,
    base: Option<usize>,
    racks: Option<usize>,
    deltas: Option<String>,
    workloads: Option<String>,
    budget: Option<f64>,
    batches: Option<usize>,
    probes: Option<usize>,
    repair: Option<usize>,
    listen: Option<String>,
    watch_out: Option<String>,
    flight_out: Option<String>,
    flight_capacity: Option<usize>,
    journal_cap: Option<usize>,
    plant_violation: bool,
    repair_interval_ms: Option<u64>,
    ttl_ms: Option<u64>,
}

/// Extracts `--faults`, `--metrics-out`, and `--trace-out` (in both
/// `--flag value` and `--flag=value` spellings) from the argument list,
/// returning the remaining positional arguments and the parsed flags.
fn split_flags(args: Vec<String>) -> Result<(Vec<String>, CliFlags), String> {
    let mut positional = Vec::with_capacity(args.len());
    let mut flags = CliFlags {
        faults: FaultSpec::none(),
        metrics_out: None,
        trace_out: None,
        seed: None,
        instances: None,
        out: None,
        quantile_mode: smoothoperator::scale::QuantileMode::Exact,
        scale_workload: smoothoperator::scale::ScaleWorkload::Diurnal,
        chunk_rows: None,
        base: None,
        racks: None,
        deltas: None,
        workloads: None,
        budget: None,
        batches: None,
        probes: None,
        repair: None,
        listen: None,
        watch_out: None,
        flight_out: None,
        flight_capacity: None,
        journal_cap: None,
        plant_violation: false,
        repair_interval_ms: None,
        ttl_ms: None,
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let value_of = |flag: &str, arg: &str, iter: &mut dyn Iterator<Item = String>| {
            if arg == flag {
                iter.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
                    .map(Some)
            } else if let Some(rest) = arg.strip_prefix(&format!("{flag}=")) {
                Ok(Some(rest.to_string()))
            } else {
                Ok(None)
            }
        };
        if let Some(raw) = value_of("--faults", &arg, &mut iter)? {
            let spec = FaultSpec::parse(&raw).map_err(|e| e.to_string())?;
            spec.validate().map_err(|e| e.to_string())?;
            flags.faults = spec;
        } else if let Some(path) = value_of("--metrics-out", &arg, &mut iter)? {
            flags.metrics_out = Some(path);
        } else if let Some(path) = value_of("--trace-out", &arg, &mut iter)? {
            flags.trace_out = Some(path);
        } else if let Some(raw) = value_of("--seed", &arg, &mut iter)? {
            flags.seed = Some(
                raw.parse()
                    .map_err(|_| format!("seed `{raw}` is not a number"))?,
            );
        } else if let Some(raw) = value_of("--instances", &arg, &mut iter)? {
            flags.instances = Some(raw);
        } else if let Some(path) = value_of("--out", &arg, &mut iter)? {
            flags.out = Some(path);
        } else if let Some(raw) = value_of("--quantiles", &arg, &mut iter)? {
            flags.quantile_mode = smoothoperator::scale::QuantileMode::parse(&raw)
                .ok_or_else(|| format!("--quantiles must be `exact` or `sketch`, got `{raw}`"))?;
        } else if arg == "--exact" {
            flags.quantile_mode = smoothoperator::scale::QuantileMode::Exact;
        } else if arg == "--sketch" {
            flags.quantile_mode = smoothoperator::scale::QuantileMode::Sketch;
        } else if let Some(raw) = value_of("--chunk-rows", &arg, &mut iter)? {
            flags.chunk_rows = Some(
                raw.parse()
                    .map_err(|_| format!("chunk rows `{raw}` is not a number"))?,
            );
        } else if let Some(raw) = value_of("--workload", &arg, &mut iter)? {
            flags.scale_workload = smoothoperator::scale::ScaleWorkload::parse(&raw)
                .ok_or_else(|| format!("--workload must be `diurnal` or `llm`, got `{raw}`"))?;
        } else if let Some(raw) = value_of("--base", &arg, &mut iter)? {
            flags.base = Some(
                raw.parse()
                    .map_err(|_| format!("base fleet size `{raw}` is not a number"))?,
            );
        } else if let Some(raw) = value_of("--racks", &arg, &mut iter)? {
            flags.racks = Some(
                raw.parse()
                    .map_err(|_| format!("rack count `{raw}` is not a number"))?,
            );
        } else if let Some(raw) = value_of("--deltas", &arg, &mut iter)? {
            flags.deltas = Some(raw);
        } else if let Some(raw) = value_of("--workloads", &arg, &mut iter)? {
            flags.workloads = Some(raw);
        } else if let Some(raw) = value_of("--budget", &arg, &mut iter)? {
            flags.budget = Some(
                raw.parse()
                    .map_err(|_| format!("budget `{raw}` is not a number"))?,
            );
        } else if let Some(raw) = value_of("--batches", &arg, &mut iter)? {
            let batches: usize = raw
                .parse()
                .map_err(|_| format!("batch count `{raw}` is not a number"))?;
            flags.batches = Some(batches);
        } else if let Some(raw) = value_of("--probes", &arg, &mut iter)? {
            let probes: usize = raw
                .parse()
                .map_err(|_| format!("probe count `{raw}` is not a number"))?;
            flags.probes = Some(probes);
        } else if let Some(raw) = value_of("--repair", &arg, &mut iter)? {
            let repair: usize = raw
                .parse()
                .map_err(|_| format!("repair budget `{raw}` is not a number"))?;
            flags.repair = Some(repair);
        } else if let Some(addr) = value_of("--listen", &arg, &mut iter)? {
            flags.listen = Some(addr);
        } else if let Some(path) = value_of("--watch-out", &arg, &mut iter)? {
            flags.watch_out = Some(path);
        } else if let Some(path) = value_of("--flight-out", &arg, &mut iter)? {
            flags.flight_out = Some(path);
        } else if let Some(raw) = value_of("--flight-capacity", &arg, &mut iter)? {
            let cap: usize = raw
                .parse()
                .map_err(|_| format!("flight capacity `{raw}` is not a number"))?;
            if cap == 0 {
                return Err("--flight-capacity must be at least 1".to_string());
            }
            flags.flight_capacity = Some(cap);
        } else if let Some(raw) = value_of("--journal-cap", &arg, &mut iter)? {
            let cap: usize = raw
                .parse()
                .map_err(|_| format!("journal cap `{raw}` is not a number"))?;
            flags.journal_cap = Some(cap);
        } else if arg == "--plant-violation" {
            flags.plant_violation = true;
        } else if let Some(raw) = value_of("--repair-interval-ms", &arg, &mut iter)? {
            let interval: u64 = raw
                .parse()
                .map_err(|_| format!("repair interval `{raw}` is not a number"))?;
            flags.repair_interval_ms = Some(interval);
        } else if let Some(raw) = value_of("--ttl-ms", &arg, &mut iter)? {
            let ttl: u64 = raw
                .parse()
                .map_err(|_| format!("ttl `{raw}` is not a number"))?;
            flags.ttl_ms = Some(ttl);
        } else if let Some(raw) = value_of("--threads", &arg, &mut iter)? {
            let lanes: usize = raw
                .parse()
                .map_err(|_| format!("thread count `{raw}` is not a number"))?;
            if lanes == 0 {
                return Err("--threads must be at least 1".to_string());
            }
            so_parallel::set_thread_limit(lanes);
        } else {
            positional.push(arg);
        }
    }
    Ok((positional, flags))
}

fn simulate_cmd(scenario: DcScenario, n: usize, faults: &FaultSpec) -> CliResult {
    // Size the simulated cluster from the fleet: half the servers serve LC
    // at peak, half run batch, with reshaping pools on top (§4.2 roles).
    let base_lc = (n / 2).max(1);
    let base_batch = (n - base_lc).max(1);
    let conversion = (n / 10).max(1);
    let throttle_funded = (n / 20).max(1);
    let config = default_config(base_lc, base_batch, conversion, throttle_funded, f64::MAX);

    let load = OfferedLoad::diurnal(
        one_week_grid(60),
        base_lc as f64 * config.qps_per_server * config.l_conv * 1.15,
        0.05,
        scenario.name.len() as u64, // stable per-scenario seed
    );
    let schedule = FaultSchedule::generate(faults, load.len(), base_lc);
    let mut policy = FailSafe::new(ThrottleBoostPolicy::default());
    let telemetry = simulate_with_faults(&config, &load, &mut policy, &schedule)?;

    println!(
        "{} — one simulated week ({} LC + {} batch + {} conv + {} e_th servers):",
        scenario.name, base_lc, base_batch, conversion, throttle_funded
    );
    println!(
        "  LC served:      {:>12.0} qps-steps ({:.2}% dropped)",
        telemetry.total_lc_served(),
        100.0 * telemetry.lc_dropped_qps.iter().sum::<f64>() / telemetry.total_lc_served().max(1.0)
    );
    println!(
        "  batch work:     {:>12.0} normalized-server-steps",
        telemetry.total_batch_work()
    );
    println!("  peak power:     {:>12.0} W", telemetry.peak_power());
    println!(
        "  QoS-risk steps: {:>12} of {}",
        telemetry.qos_risk_steps(config.l_conv),
        telemetry.len()
    );
    if faults.is_none() {
        println!("  faults:         none injected (pass --faults <spec> to inject)");
    } else {
        println!(
            "  faults:         {} events injected, {} of {} steps degraded",
            telemetry.fault_events.len(),
            telemetry.degraded_steps(),
            telemetry.len()
        );
        for kind in [
            FaultKind::SensorDropout,
            FaultKind::StuckSensor,
            FaultKind::InstanceCrash,
            FaultKind::BreakerTrip,
        ] {
            let count = telemetry
                .fault_events
                .iter()
                .filter(|e| e.kind == kind)
                .count();
            if count > 0 {
                println!("    {:<16} {count}", kind.label());
            }
        }
    }
    Ok(())
}

/// Runs an instrumented end-to-end pass — placement, fragmentation
/// analysis, drift observation, remapping, and one simulated week — and
/// prints the recorded metrics as a grouped run report.
fn report_cmd(scenario: DcScenario, n: usize, sink: &RecordingSink) -> CliResult {
    let fleet = scenario.generate_fleet(n)?;
    let topo = fitting_topology(n, 12)?;

    // Placement (records spans, per-level fragmentation gauges, k-means
    // and embedding counters).
    let mut assignment = SmoothPlacer::default().place(&fleet, &topo)?;

    // Drift monitoring against the test week (records per-level gauges).
    let monitor =
        so_core::DriftMonitor::baseline(&topo, &assignment, fleet.averaged_traces(), 0.05)?;
    monitor.observe(&topo, &assignment, fleet.test_traces())?;

    // Remapping (records swap counters, gain histogram, score gauges).
    so_core::remap(
        &fleet,
        &topo,
        &mut assignment,
        so_core::RemapConfig::default(),
    )?;

    // One simulated week of runtime reshaping (records per-step power and
    // headroom histograms plus DVFS/conversion counters).
    let base_lc = (n / 2).max(1);
    let base_batch = (n - base_lc).max(1);
    let config = default_config(
        base_lc,
        base_batch,
        (n / 10).max(1),
        (n / 20).max(1),
        350.0 * n as f64,
    );
    let load = OfferedLoad::diurnal(
        one_week_grid(60),
        base_lc as f64 * config.qps_per_server * config.l_conv * 1.15,
        0.05,
        scenario.name.len() as u64,
    );
    let schedule = FaultSchedule::generate(&FaultSpec::none(), load.len(), base_lc);
    let mut policy = FailSafe::new(ThrottleBoostPolicy::default());
    simulate_with_faults(&config, &load, &mut policy, &schedule)?;

    println!("{} ({n} instances) — instrumented run:", scenario.name);
    println!();
    print!("{}", so_telemetry::render_report(&sink.snapshot()));
    Ok(())
}

fn scenarios() -> CliResult {
    for sc in DcScenario::all() {
        println!(
            "{}: {} services, phase jitter σ {:.0} min, amplitude σ {:.2}, baseline mixing {:.0}%",
            sc.name,
            sc.mix.len(),
            sc.phase_jitter_sd_minutes,
            sc.amplitude_sd,
            100.0 * sc.baseline_mixing
        );
        for (service, fraction) in &sc.mix {
            println!("    {service:<14} {:.0}%", fraction * 100.0);
        }
    }
    Ok(())
}

fn breakdown(scenario: DcScenario, n: usize) -> CliResult {
    let fleet = scenario.generate_fleet(n)?;
    println!(
        "{} ({} instances) — power share by service:",
        scenario.name, n
    );
    for (rank, (service, share)) in fleet.power_share_by_service().iter().enumerate() {
        println!(
            "  {:>2}. {:<14} {:>5.1}%",
            rank + 1,
            service.to_string(),
            100.0 * share
        );
    }
    println!(
        "
{:<14} {:>5} {:>9} {:>9} {:>10} {:>12} {:>9}",
        "service", "n", "mean W", "peak W", "peak hour", "seasonality", "peak CV"
    );
    for p in so_workloads::profile_services(&fleet)? {
        println!(
            "{:<14} {:>5} {:>9.1} {:>9.1} {:>9.1}h {:>11.0}% {:>9.2}",
            p.service.to_string(),
            p.instances,
            p.mean_watts,
            p.peak_watts,
            p.peak_hour(),
            100.0 * p.seasonality,
            p.peak_cv,
        );
    }
    Ok(())
}

fn place(scenario: DcScenario, n: usize) -> CliResult {
    let fleet = scenario.generate_fleet(n)?;
    let topo = fitting_topology(n, 12)?;
    let historical = oblivious_placement(&fleet, &topo, scenario.baseline_mixing, 0xB4_5E)?;
    let smooth = SmoothPlacer::default().place(&fleet, &topo)?;

    let test = fleet.test_traces();
    let before = NodeAggregates::compute(&topo, &historical, test)?;
    let after = NodeAggregates::compute(&topo, &smooth, test)?;

    println!(
        "{} ({n} instances on {} racks) — sum-of-peaks reduction (test week):",
        scenario.name,
        topo.racks().len()
    );
    for level in [Level::Suite, Level::Msb, Level::Sb, Level::Rpp, Level::Rack] {
        let b = before.sum_of_peaks(&topo, level);
        let a = after.sum_of_peaks(&topo, level);
        println!(
            "  {:<6} {:>8.0} W -> {:>8.0} W   ({:>5.1}%)",
            level.to_string(),
            b,
            a,
            100.0 * (b - a) / b
        );
    }
    Ok(())
}

fn longrun(scenario: DcScenario, n: usize) -> CliResult {
    let fleet = scenario.generate_fleet(n)?;
    let topo = fitting_topology(n, 12)?;
    let placement = SmoothPlacer::default().place(&fleet, &topo)?;
    let report = operate(&fleet, &topo, &placement, &LongRunConfig::default())?;
    println!(
        "{} ({n} instances) — {} weeks of drift:",
        scenario.name,
        report.weeks.len()
    );
    for w in &report.weeks {
        println!(
            "  week {:>2}: frozen {:>8.0} W, managed {:>8.0} W{}{}",
            w.week,
            w.static_sum_of_peaks,
            w.managed_sum_of_peaks,
            if w.flagged { "  [flagged]" } else { "" },
            if w.swaps > 0 {
                format!("  ({} swaps)", w.swaps)
            } else {
                String::new()
            },
        );
    }
    println!(
        "  mean managed advantage: {:.2}% ({} swaps total)",
        100.0 * report.mean_managed_advantage(),
        report.total_swaps()
    );
    Ok(())
}

fn dot(scenario: DcScenario, n: usize) -> CliResult {
    let fleet = scenario.generate_fleet(n)?;
    let topo = fitting_topology(n, 12)?;
    let placement = SmoothPlacer::default().place(&fleet, &topo)?;
    let agg = NodeAggregates::compute(&topo, &placement, fleet.test_traces())?;
    let peaks: Vec<f64> = (0..topo.len())
        .map(|i| agg.peak(NodeId::new(i)))
        .collect::<Result<_, _>>()?;
    print!("{}", so_powertree::to_dot(&topo, Some(&peaks))?);
    Ok(())
}

fn pipeline(scenario: DcScenario, n: usize) -> CliResult {
    let topo = fitting_topology(n, 12)?;
    let outcome = run_scenario(&scenario, n, &topo, &PipelineConfig::default())?;
    println!("{} ({n} instances) — reshaping pipeline:", outcome.name);
    println!(
        "  RPP peak reduction:   {:>5.1}%",
        100.0 * outcome.rpp_peak_reduction
    );
    println!(
        "  extra servers:        {} conversion + {} throttle-funded (L_conv {:.2})",
        outcome.extra_conversion, outcome.extra_throttle_funded, outcome.l_conv
    );
    println!(
        "  conversion:           LC {:>+5.1}%  Batch {:>+5.1}%",
        100.0 * outcome.lc_improvement(&outcome.conversion),
        100.0 * outcome.batch_improvement(&outcome.conversion)
    );
    println!(
        "  + throttle/boost:     LC {:>+5.1}%  Batch {:>+5.1}%",
        100.0 * outcome.lc_improvement(&outcome.throttle_boost),
        100.0 * outcome.batch_improvement(&outcome.throttle_boost)
    );
    println!(
        "  energy slack:         avg -{:.1}%, off-peak -{:.1}%",
        100.0 * outcome.avg_slack_reduction(&outcome.throttle_boost)?,
        100.0 * outcome.off_peak_slack_reduction(&outcome.throttle_boost)?
    );
    Ok(())
}
