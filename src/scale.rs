//! The million-instance scale tier: a columnar end-to-end pipeline sized
//! well past what the `Vec<PowerTrace>` paths are exercised at, reported
//! as the machine-readable `BENCH_scale.json` artifact.
//!
//! The pipeline is **chunked and streaming**: rows are synthesized into a
//! single reusable [`so_powertrace::TraceArena`] a bounded chunk at a
//! time, every per-row kernel runs over that chunk, and only scalar
//! accumulators survive to the next chunk. Peak RSS is therefore bounded
//! by `chunk_rows × samples_per_trace`, not the fleet size — the 10M rung
//! runs in well under 4 GB. Chunk boundaries are aligned to `group_size`
//! so no aggregation group ever straddles a chunk, and every accumulator
//! is folded in canonical row / group / probe order, which makes the
//! deterministic outputs (`sum_of_group_peaks`, `checksum`) **bit-
//! identical for any `chunk_rows` and any thread count**.
//!
//! Each ladder point times the five hot kernels the placement and remap
//! layers run over columnar storage:
//!
//! 1. **synth** — [`so_powertrace::TraceArena::par_extend_rows`] waveform
//!    generation from precomputed per-sample basis tables (no
//!    trigonometry in the per-sample loop);
//! 2. **row peaks** — [`so_powertrace::TraceArena::row_peaks`], the
//!    per-instance peak pass every remap begins with;
//! 3. **quantiles** — per-row p99, the StatProf provisioning kernel:
//!    exact selection ([`so_powertrace::TraceArena::row_quantiles`]) or
//!    the opt-in streaming P² sketch
//!    ([`so_powertrace::TraceArena::row_quantiles_sketch`]) per
//!    [`crate::scale::QuantileMode`];
//! 4. **aggregation** — fused [`so_powertrace::TraceArena::peak_of_sum`]
//!    per rack-sized group (the sum-of-peaks objective without
//!    materializing a single aggregate trace);
//! 5. **swap probes** — [`so_core::differential_score_excluding`] over
//!    sampled candidate moves, the remap inner loop.
//!
//! Every numeric output (`sum_of_group_peaks`, `checksum`) is a pure
//! function of `(seed, instances, samples_per_trace, group_size,
//! quantile_mode)`; only the `*_ms`, `rows_per_sec`, and
//! `peak_rss_bytes` fields are machine-dependent. CI's `scale-smoke` job
//! runs the 100k rung and gates per-phase throughput against the
//! committed baseline (`scripts/perf_gate.sh`); `tests/scale_golden.rs`
//! pins the JSON schema and the determinism of the numeric fields.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use so_core::{differential_score_excluding, CommitPolicy, OnlineConfig, OnlineFleet};
use so_powertrace::{PowerTrace, TimeGrid, TraceArena};
use so_powertree::{Level, PowerTopology};
use so_telemetry::{default_online_rules, LivePlane, RecordingSink};

/// How the per-row quantile phase computes p99.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantileMode {
    /// Exact HF7 via `select_nth_unstable` selection — bit-reproducible,
    /// pinned by the arena oracles. The default.
    #[default]
    Exact,
    /// One-pass P² streaming sketch — `O(1)` memory per row, approximate
    /// (rank error empirically below
    /// [`so_powertrace::P2_RANK_ERROR_BOUND`]). Opt-in via
    /// `smoothop scale --quantiles sketch`.
    Sketch,
}

impl QuantileMode {
    /// Stable lower-case name stamped into `BENCH_scale.json`.
    pub fn as_str(self) -> &'static str {
        match self {
            QuantileMode::Exact => "exact",
            QuantileMode::Sketch => "sketch",
        }
    }

    /// Parses the CLI / JSON spelling (`"exact"` or `"sketch"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "exact" => Some(QuantileMode::Exact),
            "sketch" => Some(QuantileMode::Sketch),
            _ => None,
        }
    }
}

/// Waveform family the ladder synthesizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScaleWorkload {
    /// Diurnal basis-table waveforms ([`RowWave`]) — the v2 default; the
    /// committed `BENCH_scale.json` digests are from this family.
    #[default]
    Diurnal,
    /// Token-bursty LLM waveforms ([`so_workloads::LlmBasis`]): correlated
    /// 30-minute bursts and prefill/decode alternation, peak-to-mean ≥ 3×.
    /// Opt-in via `smoothop scale --workload llm`, so the scale rungs cover
    /// the bursty family end to end.
    Llm,
}

impl ScaleWorkload {
    /// Stable lower-case name stamped into `BENCH_scale.json`.
    pub fn as_str(self) -> &'static str {
        match self {
            ScaleWorkload::Diurnal => "diurnal",
            ScaleWorkload::Llm => "llm",
        }
    }

    /// Parses the CLI / JSON spelling (`"diurnal"` or `"llm"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "diurnal" => Some(ScaleWorkload::Diurnal),
            "llm" => Some(ScaleWorkload::Llm),
            _ => None,
        }
    }
}

/// Scale-tier parameters. The defaults match the committed
/// `BENCH_scale.json` ladder: 10k → 100k → 1M instances of week-long
/// hourly traces grouped into rack-sized sets of 12.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Fleet sizes to run, in order. Each becomes one report point.
    pub instances: Vec<usize>,
    /// Samples per synthesized trace (default: one week at one hour).
    pub samples_per_trace: usize,
    /// Sampling step of the synthesized grid, minutes.
    pub step_minutes: u32,
    /// Seed mixed into every synthesized waveform.
    pub seed: u64,
    /// Rows per aggregation group (a rack's worth).
    pub group_size: usize,
    /// Candidate-move evaluations in the swap-probe phase (capped at the
    /// instance count).
    pub swap_probes: usize,
    /// Exact selection or streaming sketch for the quantile phase.
    pub quantile_mode: QuantileMode,
    /// Waveform family synthesized on every rung (diurnal or LLM).
    pub workload: ScaleWorkload,
    /// Rows synthesized and processed per streaming chunk; `0` selects
    /// the default. The effective value is always rounded up to a
    /// multiple of `group_size` (see [`ScaleConfig::effective_chunk_rows`])
    /// and never changes any deterministic output.
    pub chunk_rows: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        Self {
            instances: vec![10_000, 100_000, 1_000_000],
            samples_per_trace: 168,
            step_minutes: 60,
            seed: 7,
            group_size: 12,
            swap_probes: 4096,
            quantile_mode: QuantileMode::Exact,
            workload: ScaleWorkload::Diurnal,
            chunk_rows: 0,
        }
    }
}

/// Default streaming chunk before group-size alignment: 64k week-long
/// rows ≈ 88 MB of f64 samples, small enough that the 10M rung stays far
/// under 4 GB and large enough to amortize per-chunk overhead.
const DEFAULT_CHUNK_ROWS: usize = 65_536;

impl ScaleConfig {
    /// The chunk size actually used: the configured `chunk_rows` (or the
    /// default when `0`), rounded **up** to a multiple of `group_size` so
    /// aggregation groups never straddle a chunk boundary.
    pub fn effective_chunk_rows(&self) -> usize {
        let base = if self.chunk_rows == 0 {
            DEFAULT_CHUNK_ROWS
        } else {
            self.chunk_rows
        };
        let gs = self.group_size.max(1);
        base.div_ceil(gs) * gs
    }
}

/// One ladder point: timings, throughput, memory, and the deterministic
/// numeric digests of a scale-tier run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Fleet size of this point.
    pub instances: usize,
    /// Thread lanes the parallel phases ran with
    /// ([`so_parallel::effective_lanes`] at run time).
    pub threads: usize,
    /// Quantile phase mode this point ran under.
    pub quantile_mode: QuantileMode,
    /// Effective streaming chunk size (rows) the point ran with.
    pub chunk_rows: usize,
    /// Waveform synthesis wall time, milliseconds.
    pub synth_ms: f64,
    /// Per-row peak pass wall time, milliseconds.
    pub row_peaks_ms: f64,
    /// Per-row p99 quantile pass wall time, milliseconds.
    pub quantiles_ms: f64,
    /// Fused grouped peak-of-sum wall time, milliseconds.
    pub aggregation_ms: f64,
    /// Sampled remap swap-probe wall time, milliseconds.
    pub swap_probe_ms: f64,
    /// End-to-end wall time of the point, milliseconds.
    pub total_ms: f64,
    /// `instances / total_seconds` — the ladder's throughput axis.
    pub rows_per_sec: f64,
    /// Process peak RSS after the point, bytes; `None` where the platform
    /// exposes no `/proc/self/status` (serialized as JSON `null`).
    pub peak_rss_bytes: Option<u64>,
    /// Sum of fused per-group peaks — the placement objective, and a
    /// seed-deterministic digest of the aggregation phase.
    pub sum_of_group_peaks: f64,
    /// Folded digest over every phase's numeric output; bit-identical
    /// across runs, thread counts, and chunk sizes for one config.
    pub checksum: f64,
}

/// A full scale-tier run: config echo plus one [`ScalePoint`] per rung.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleReport {
    /// The configuration the report was produced under.
    pub config: ScaleConfig,
    /// One point per requested instance count, in request order.
    pub points: Vec<ScalePoint>,
}

/// Schema version stamped into `BENCH_scale.json`; bump on any field
/// rename so downstream tooling fails loudly instead of misparsing.
/// v2: added per-point `threads`, `quantile_mode`, `chunk_rows`; made
/// `peak_rss_bytes` nullable; waveform synthesis moved to basis tables
/// (deterministic digests differ from v1).
/// v3: added the top-level `workload` field (`"diurnal"` or `"llm"`);
/// diurnal digests are unchanged from v2.
pub const SCALE_SCHEMA_VERSION: u32 = 3;

/// Runs the scale ladder described by `config`.
///
/// # Errors
///
/// Returns an error when `config` is degenerate (no instance counts, zero
/// samples or group size) or a trace kernel rejects its input.
pub fn run_scale(config: &ScaleConfig) -> Result<ScaleReport, Box<dyn std::error::Error>> {
    if config.instances.is_empty() {
        return Err("scale ladder needs at least one instance count".into());
    }
    if config.samples_per_trace == 0 || config.group_size == 0 {
        return Err("samples_per_trace and group_size must be positive".into());
    }
    if config.instances.contains(&0) {
        return Err("instance counts must be positive".into());
    }
    let mut points = Vec::with_capacity(config.instances.len());
    for &n in &config.instances {
        points.push(run_point(config, n)?);
    }
    Ok(ScaleReport {
        config: config.clone(),
        points,
    })
}

fn run_point(config: &ScaleConfig, n: usize) -> Result<ScalePoint, Box<dyn std::error::Error>> {
    let grid = TimeGrid::new(config.step_minutes, config.samples_per_trace);
    let chunk_rows = config.effective_chunk_rows();
    let basis = SynthBasis::new(config.samples_per_trace);
    let llm_basis = so_workloads::LlmBasis::new(config.samples_per_trace, config.step_minutes);
    let started = Instant::now();

    // One arena recycled across chunks: capacity is the chunk, not the
    // fleet, which is what bounds peak RSS on the 10M rung.
    let mut arena = TraceArena::with_capacity(grid, chunk_rows.min(n));

    // Scalar accumulators carried across chunks. Each is folded in
    // canonical order (row order for peaks/quantiles, group order for
    // aggregation, probe order for the swap digest), so the results are
    // bit-identical to an unchunked run.
    let mut peaks_sum = 0.0f64;
    let mut q99_sum = 0.0f64;
    let mut sum_of_group_peaks = 0.0f64;

    // Swap probes land in whichever chunk holds their group; scores are
    // recorded per probe index and summed in probe order at the end.
    let probes = config.swap_probes.min(n);
    // `run_scale` rejects group_size 0, but guard the division anyway so
    // a future direct caller can't hit an arithmetic panic (same idiom as
    // `effective_chunk_rows`).
    let groups_total = n / config.group_size.max(1);
    let do_probes = config.group_size >= 2 && groups_total >= 1;
    let mut probe_scores = vec![0.0f64; if do_probes { probes } else { 0 }];
    let probe_groups: Vec<usize> = (0..probe_scores.len())
        .map(|p| (mix(config.seed ^ 0x5CA1E, p as u64) as usize) % groups_total.max(1))
        .collect();

    let mut synth_ms = 0.0f64;
    let mut row_peaks_ms = 0.0f64;
    let mut quantiles_ms = 0.0f64;
    let mut aggregation_ms = 0.0f64;
    let mut swap_probe_ms = 0.0f64;

    let mut members = Vec::with_capacity(config.group_size);
    let mut group_sum = vec![0.0f64; config.samples_per_trace];

    let mut start = 0usize;
    while start < n {
        let end = (start + chunk_rows).min(n);
        let rows = end - start;

        // Phase 1: synthesize this chunk straight into the columnar
        // buffer — basis-table waveforms, parallel over rows.
        let t0 = Instant::now();
        arena.clear();
        match config.workload {
            ScaleWorkload::Diurnal => arena.par_extend_rows(rows, |r, out| {
                RowWave::new(config.seed, (start + r) as u64).fill(&basis, out)
            }),
            ScaleWorkload::Llm => {
                let llm = &llm_basis;
                arena.par_extend_rows(rows, |r, out| {
                    llm.fill_row(config.seed, (start + r) as u64, out)
                });
            }
        }
        synth_ms += ms_since(t0);

        // Phase 2: per-row peaks (the remap prologue), folded into the
        // running sum in row order.
        let t0 = Instant::now();
        let peaks = arena.row_peaks();
        for &v in &peaks {
            peaks_sum += v;
        }
        row_peaks_ms += ms_since(t0);

        // Phase 3: per-row p99 (the StatProf provisioning kernel).
        let t0 = Instant::now();
        let q99 = match config.quantile_mode {
            QuantileMode::Exact => arena.row_quantiles(0.99)?,
            QuantileMode::Sketch => arena.row_quantiles_sketch(0.99)?,
        };
        for &v in &q99 {
            q99_sum += v;
        }
        quantiles_ms += ms_since(t0);

        // Phase 4: fused peak-of-sum per rack-sized group — the
        // sum-of-peaks objective with no aggregate trace materialized.
        // Chunks are group-aligned, so only the ladder's final rows can
        // form a partial group.
        let t0 = Instant::now();
        let mut g_start = 0usize;
        while g_start < rows {
            let g_end = (g_start + config.group_size).min(rows);
            members.clear();
            members.extend(g_start..g_end);
            sum_of_group_peaks += arena.peak_of_sum(&members)?;
            g_start = g_end;
        }
        aggregation_ms += ms_since(t0);

        // Phase 5: the sampled remap inner loop — fused differential
        // scores of a member against its own group, exactly the `ad_i`
        // evaluation `best_swap` performs per candidate. A probe runs in
        // the chunk that holds its group (complete groups never straddle
        // chunks).
        let t0 = Instant::now();
        for (p, &g) in probe_groups.iter().enumerate() {
            let base = g * config.group_size;
            if base < start || base >= end {
                continue;
            }
            let local = base - start;
            members.clear();
            members.extend(local..local + config.group_size);
            arena.sum_into(&members, &mut group_sum)?;
            let i = local + (p % config.group_size);
            probe_scores[p] = differential_score_excluding(
                arena.row(i),
                &group_sum,
                arena.row(i),
                config.group_size,
            )?;
        }
        swap_probe_ms += ms_since(t0);

        start = end;
    }

    let mut probe_digest = 0.0f64;
    for &s in &probe_scores {
        probe_digest += s;
    }

    let total_ms = ms_since(started);
    let checksum = fold_digest(&[peaks_sum, q99_sum, sum_of_group_peaks, probe_digest]);
    Ok(ScalePoint {
        instances: n,
        threads: so_parallel::effective_lanes(),
        quantile_mode: config.quantile_mode,
        chunk_rows,
        synth_ms,
        row_peaks_ms,
        quantiles_ms,
        aggregation_ms,
        swap_probe_ms,
        total_ms,
        rows_per_sec: n as f64 / (total_ms / 1e3).max(1e-9),
        peak_rss_bytes: peak_rss_bytes(),
        sum_of_group_peaks,
        checksum,
    })
}

impl ScaleReport {
    /// Renders the report as the `BENCH_scale.json` artifact (hand-rolled
    /// JSON — the workspace's serde is a no-op shim). Deterministic
    /// fields come first; the machine-dependent timings carry the `_ms`
    /// suffix by convention.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"scale\",");
        let _ = writeln!(out, "  \"schema_version\": {SCALE_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"seed\": {},", self.config.seed);
        let _ = writeln!(
            out,
            "  \"samples_per_trace\": {},",
            self.config.samples_per_trace
        );
        let _ = writeln!(out, "  \"step_minutes\": {},", self.config.step_minutes);
        let _ = writeln!(
            out,
            "  \"workload\": \"{}\",",
            self.config.workload.as_str()
        );
        let _ = writeln!(out, "  \"group_size\": {},", self.config.group_size);
        let _ = writeln!(out, "  \"swap_probes\": {},", self.config.swap_probes);
        out.push_str("  \"points\": [\n");
        let rendered: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                let mut s = String::from("    {\n");
                let _ = writeln!(s, "      \"instances\": {},", p.instances);
                let _ = writeln!(s, "      \"threads\": {},", p.threads);
                let _ = writeln!(
                    s,
                    "      \"quantile_mode\": \"{}\",",
                    p.quantile_mode.as_str()
                );
                let _ = writeln!(s, "      \"chunk_rows\": {},", p.chunk_rows);
                let _ = writeln!(s, "      \"synth_ms\": {:.3},", p.synth_ms);
                let _ = writeln!(s, "      \"row_peaks_ms\": {:.3},", p.row_peaks_ms);
                let _ = writeln!(s, "      \"quantiles_ms\": {:.3},", p.quantiles_ms);
                let _ = writeln!(s, "      \"aggregation_ms\": {:.3},", p.aggregation_ms);
                let _ = writeln!(s, "      \"swap_probe_ms\": {:.3},", p.swap_probe_ms);
                let _ = writeln!(s, "      \"total_ms\": {:.3},", p.total_ms);
                let _ = writeln!(s, "      \"rows_per_sec\": {:.1},", p.rows_per_sec);
                match p.peak_rss_bytes {
                    Some(bytes) => {
                        let _ = writeln!(s, "      \"peak_rss_bytes\": {bytes},");
                    }
                    None => {
                        let _ = writeln!(s, "      \"peak_rss_bytes\": null,");
                    }
                }
                let _ = writeln!(
                    s,
                    "      \"sum_of_group_peaks\": {:.6},",
                    p.sum_of_group_peaks
                );
                let _ = writeln!(s, "      \"checksum\": {:.6}", p.checksum);
                s.push_str("    }");
                s
            })
            .collect();
        out.push_str(&rendered.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Rack slots of the online rung's topology (the paper's rack size).
pub(crate) const ONLINE_RACK_SLOTS: usize = 12;
/// Rack budget of the online rung, watts — generous enough that capacity,
/// not power, is the binding constraint for the synthesized waveforms
/// (max sample ≈ 300 W × 12 slots = 3 600 W).
pub(crate) const ONLINE_RACK_BUDGET_WATTS: f64 = 3_600.0;

/// Online-rung parameters. The defaults match the committed
/// `BENCH_online.json` ladder: 10k → 100k instances streamed through the
/// resident [`OnlineFleet`] engine in churning batches, then re-placed
/// from scratch as the offline comparator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineScaleConfig {
    /// Target fleet sizes, in order. Each becomes one report point.
    pub instances: Vec<usize>,
    /// Samples per synthesized trace.
    pub samples_per_trace: usize,
    /// Sampling step of the synthesized grid, minutes.
    pub step_minutes: u32,
    /// Seed driving waveforms, retirement draws, and the sampling policy.
    pub seed: u64,
    /// Event batches the stream is split into (each arrives `n / batches`
    /// instances and retires a fifth of that from the live set).
    pub batches: usize,
    /// Candidate racks probed per arrival ([`CommitPolicy::Sampling`]).
    pub sample_probes: usize,
    /// Remap swaps allowed per between-batch repair pass (0 disables).
    pub repair_budget: usize,
}

impl Default for OnlineScaleConfig {
    fn default() -> Self {
        Self {
            instances: vec![10_000, 100_000],
            samples_per_trace: 168,
            step_minutes: 60,
            seed: 7,
            batches: 8,
            sample_probes: 64,
            repair_budget: 8,
        }
    }
}

/// One online-rung point: phase timings plus the deterministic quality
/// metrics comparing the churned online placement against a one-pass
/// offline re-placement of the same final fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineScalePoint {
    /// Target fleet size of this point.
    pub instances: usize,
    /// Thread lanes at run time.
    pub threads: usize,
    /// Instances live at the end of the stream.
    pub live_instances: usize,
    /// Arrivals committed across the stream.
    pub committed: u64,
    /// Arrivals rejected across the stream.
    pub rejected: u64,
    /// Instances retired across the stream.
    pub retired: u64,
    /// Instance moves performed by the repair passes.
    pub repair_moves: usize,
    /// Arrival (placement + commit) wall time, milliseconds.
    pub arrive_ms: f64,
    /// Retirement wall time, milliseconds.
    pub retire_ms: f64,
    /// Between-batch repair wall time, milliseconds.
    pub repair_ms: f64,
    /// Offline comparator (one-pass re-placement) wall time, milliseconds.
    pub offline_ms: f64,
    /// End-to-end wall time of the point, milliseconds.
    pub total_ms: f64,
    /// `committed / total_seconds` — the rung's throughput axis.
    pub rows_per_sec: f64,
    /// Process peak RSS after the point, bytes (`null` off Linux).
    pub peak_rss_bytes: Option<u64>,
    /// Mean per-rack asynchrony of the churned online placement.
    pub online_mean_asynchrony: f64,
    /// Mean per-rack asynchrony after re-placing the same final fleet in
    /// one offline pass (no churn holes).
    pub offline_mean_asynchrony: f64,
    /// Worst rack headroom of the online placement, watts.
    pub online_min_rack_headroom_watts: f64,
    /// Worst rack headroom of the offline re-placement, watts.
    pub offline_min_rack_headroom_watts: f64,
    /// Rack-level stranded-headroom ratio of the online placement against
    /// a 40 %-of-rack-budget reference job.
    pub rack_fragmentation_ratio: f64,
    /// `AlertFired` transitions across the point's per-batch alert
    /// evaluations (deterministic: alert decisions depend only on the
    /// resident-state signal stream).
    pub alerts_fired: u64,
    /// `AlertResolved` transitions across the point's alert evaluations.
    pub alerts_resolved: u64,
    /// Folded digest over the deterministic metrics; bit-identical across
    /// runs and thread counts for one config.
    pub checksum: f64,
}

/// A full online-rung run: config echo plus one point per target size.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineScaleReport {
    /// The configuration the report was produced under.
    pub config: OnlineScaleConfig,
    /// One point per requested instance count, in request order.
    pub points: Vec<OnlineScalePoint>,
}

/// Schema version stamped into `BENCH_online.json`. v2 added the
/// `alerts_fired`/`alerts_resolved` observability counts (and folded them
/// into `checksum`).
pub const ONLINE_SCALE_SCHEMA_VERSION: u32 = 2;

/// Runs the online-engine rung ladder described by `config`.
///
/// # Errors
///
/// Returns an error when `config` is degenerate (no instance counts, zero
/// samples/batches/probes) or an engine operation fails.
pub fn run_online_scale(
    config: &OnlineScaleConfig,
) -> Result<OnlineScaleReport, Box<dyn std::error::Error>> {
    run_online_scale_with_plane(config, None)
}

/// [`run_online_scale`] with an externally owned observability plane
/// (what `smoothop online --listen` serves HTTP from while the ladder
/// runs). Without one, each point gets its own headless virtual-clock
/// plane, so the reported `alerts_fired`/`alerts_resolved` counts are a
/// pure function of the config; a shared external plane carries alert
/// state across points, so its counts reflect the whole session instead.
///
/// # Errors
///
/// Returns an error when `config` is degenerate (no instance counts, zero
/// samples/batches/probes) or an engine operation fails.
pub fn run_online_scale_with_plane(
    config: &OnlineScaleConfig,
    plane: Option<Arc<LivePlane>>,
) -> Result<OnlineScaleReport, Box<dyn std::error::Error>> {
    if config.instances.is_empty() {
        return Err("online ladder needs at least one instance count".into());
    }
    if config.samples_per_trace == 0 || config.batches == 0 || config.sample_probes == 0 {
        return Err("samples_per_trace, batches, and sample_probes must be positive".into());
    }
    if config.instances.contains(&0) {
        return Err("instance counts must be positive".into());
    }
    let mut points = Vec::with_capacity(config.instances.len());
    for &n in &config.instances {
        points.push(run_online_point(config, n, plane.clone())?);
    }
    Ok(OnlineScaleReport {
        config: config.clone(),
        points,
    })
}

/// The online rung's topology: the paper's tree shape (1 suite × 2 MSB ×
/// 2 SB × r RPP × 4 racks) sized so rack slots cover `n` instances.
pub(crate) fn online_topology(n: usize) -> Result<PowerTopology, so_powertree::TreeError> {
    let racks_needed = n.div_ceil(ONLINE_RACK_SLOTS).max(1);
    let rpps = racks_needed.div_ceil(2 * 2 * 4).max(1);
    PowerTopology::builder()
        .suites(1)
        .msbs_per_suite(2)
        .sbs_per_msb(2)
        .rpps_per_sb(rpps)
        .racks_per_rpp(4)
        .rack_capacity(ONLINE_RACK_SLOTS)
        .rack_budget_watts(ONLINE_RACK_BUDGET_WATTS)
        .name("online-scale")
        .build()
}

fn run_online_point(
    config: &OnlineScaleConfig,
    n: usize,
    plane: Option<Arc<LivePlane>>,
) -> Result<OnlineScalePoint, Box<dyn std::error::Error>> {
    let grid = TimeGrid::new(config.step_minutes, config.samples_per_trace);
    let topology = online_topology(n)?;
    let basis = SynthBasis::new(config.samples_per_trace);
    let engine_config = OnlineConfig {
        policy: CommitPolicy::Sampling {
            probes: config.sample_probes,
        },
        // Repair is driven explicitly below so its wall time lands in its
        // own phase; the budget still controls each pass's swap cap.
        repair_budget: config.repair_budget,
        min_gain: 0.02,
        sample_salt: config.seed,
        ..OnlineConfig::default()
    };
    let mut engine = OnlineFleet::new(topology.clone(), grid, engine_config);
    // Headless fallback: a virtual-clock plane per point keeps the alert
    // counts deterministic in `BENCH_online.json` while exercising the
    // full observe path the live `--listen` plane uses.
    let plane = plane.unwrap_or_else(|| {
        Arc::new(LivePlane::new(
            Arc::new(RecordingSink::with_virtual_clock()),
            256,
            default_online_rules(),
        ))
    });
    engine.attach_plane(plane);
    let mut alerts_fired = 0u64;
    let mut alerts_resolved = 0u64;

    let started = Instant::now();
    let per_batch = n.div_ceil(config.batches).max(1);
    let retire_per_batch = per_batch / 5;
    let mut arrive_ms = 0.0f64;
    let mut retire_ms = 0.0f64;
    let mut repair_ms = 0.0f64;
    let mut repair_moves = 0usize;
    let mut row = vec![0.0f64; config.samples_per_trace];
    let mut synthesized = 0u64;

    for b in 0..config.batches {
        // Synthesis is the scale tier's own phase; here it only feeds the
        // stream, so it counts toward total_ms but no placement phase.
        let mut batch = Vec::with_capacity(per_batch);
        for _ in 0..per_batch {
            RowWave::new(config.seed ^ 0x0E7E, synthesized).fill(&basis, &mut row);
            batch.push(PowerTrace::new(row.clone(), config.step_minutes)?);
            synthesized += 1;
        }

        // Retirements first (none before anything arrived): deterministic
        // draws against the live snapshot, deduped ascending — the same
        // canonicalization `OnlineFleet::apply` performs.
        let t0 = Instant::now();
        if b > 0 && retire_per_batch > 0 {
            let snapshot = engine.live_slots();
            if !snapshot.is_empty() {
                let mut slots: Vec<usize> = (0..retire_per_batch)
                    .map(|k| {
                        let draw = mix(config.seed ^ 0xDE7A11, (b * per_batch + k) as u64);
                        snapshot[(draw % snapshot.len() as u64) as usize]
                    })
                    .collect();
                slots.sort_unstable();
                slots.dedup();
                for slot in slots {
                    engine.retire(slot)?;
                }
            }
        }
        retire_ms += ms_since(t0);

        let t0 = Instant::now();
        for trace in &batch {
            let _ = engine.arrive(trace)?;
        }
        arrive_ms += ms_since(t0);

        let t0 = Instant::now();
        if config.repair_budget > 0 {
            let report = engine.repair()?;
            repair_moves += 2 * report.swaps.len();
        }
        repair_ms += ms_since(t0);

        // Observability heartbeat: one alert evaluation per batch, from
        // the serial point — deterministic at any thread count.
        for transition in engine.observe_batch()? {
            if transition.fired {
                alerts_fired += 1;
            } else {
                alerts_resolved += 1;
            }
        }
    }

    // Quality of the churned placement.
    let online_mean_asynchrony = engine.mean_rack_asynchrony().unwrap_or(0.0);
    let online_min_rack_headroom_watts = min_rack_headroom(&engine)?;
    let reference = PowerTrace::new(
        vec![0.4 * ONLINE_RACK_BUDGET_WATTS; config.samples_per_trace],
        config.step_minutes,
    )?;
    let rack_fragmentation_ratio = engine
        .fragmentation(&reference)?
        .iter()
        .find(|f| f.level == Level::Rack)
        .map(|f| f.ratio)
        .unwrap_or(0.0);

    // Offline comparator: the same final fleet re-placed from scratch in
    // one pass by a fresh engine — what the placement would look like
    // with perfect foresight and no churn holes.
    let t0 = Instant::now();
    let (final_traces, _, _) = engine.live_view()?;
    let mut offline = OnlineFleet::new(topology, grid, engine_config);
    for trace in &final_traces {
        let _ = offline.arrive(trace)?;
    }
    let offline_mean_asynchrony = offline.mean_rack_asynchrony().unwrap_or(0.0);
    let offline_min_rack_headroom_watts = min_rack_headroom(&offline)?;
    let offline_ms = ms_since(t0);

    let total_ms = ms_since(started);
    let checksum = fold_digest(&[
        online_mean_asynchrony,
        offline_mean_asynchrony,
        online_min_rack_headroom_watts,
        offline_min_rack_headroom_watts,
        rack_fragmentation_ratio,
        engine.committed() as f64,
        engine.rejected() as f64,
        engine.retired() as f64,
        engine.live_len() as f64,
        alerts_fired as f64,
        alerts_resolved as f64,
    ]);
    Ok(OnlineScalePoint {
        instances: n,
        threads: so_parallel::effective_lanes(),
        live_instances: engine.live_len(),
        committed: engine.committed(),
        rejected: engine.rejected(),
        retired: engine.retired(),
        repair_moves,
        arrive_ms,
        retire_ms,
        repair_ms,
        offline_ms,
        total_ms,
        rows_per_sec: engine.committed() as f64 / (total_ms / 1e3).max(1e-9),
        peak_rss_bytes: peak_rss_bytes(),
        online_mean_asynchrony,
        offline_mean_asynchrony,
        online_min_rack_headroom_watts,
        offline_min_rack_headroom_watts,
        rack_fragmentation_ratio,
        alerts_fired,
        alerts_resolved,
        checksum,
    })
}

/// Smallest per-rack headroom (budget minus resident peak), watts.
pub(crate) fn min_rack_headroom(engine: &OnlineFleet) -> Result<f64, so_core::CoreError> {
    let mut min = f64::INFINITY;
    for &rack in engine.topology().racks() {
        min = min.min(engine.headroom(rack)?);
    }
    Ok(min)
}

impl OnlineScaleReport {
    /// Renders the report as the `BENCH_online.json` artifact — the same
    /// field-per-line shape as [`ScaleReport::to_json`], so
    /// `scripts/perf_gate.sh` can extract per-phase timings with the same
    /// awk.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"online_scale\",");
        let _ = writeln!(out, "  \"schema_version\": {ONLINE_SCALE_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"seed\": {},", self.config.seed);
        let _ = writeln!(
            out,
            "  \"samples_per_trace\": {},",
            self.config.samples_per_trace
        );
        let _ = writeln!(out, "  \"step_minutes\": {},", self.config.step_minutes);
        let _ = writeln!(out, "  \"batches\": {},", self.config.batches);
        let _ = writeln!(out, "  \"sample_probes\": {},", self.config.sample_probes);
        let _ = writeln!(out, "  \"repair_budget\": {},", self.config.repair_budget);
        out.push_str("  \"points\": [\n");
        let rendered: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                let mut s = String::from("    {\n");
                let _ = writeln!(s, "      \"instances\": {},", p.instances);
                let _ = writeln!(s, "      \"threads\": {},", p.threads);
                let _ = writeln!(s, "      \"live_instances\": {},", p.live_instances);
                let _ = writeln!(s, "      \"committed\": {},", p.committed);
                let _ = writeln!(s, "      \"rejected\": {},", p.rejected);
                let _ = writeln!(s, "      \"retired\": {},", p.retired);
                let _ = writeln!(s, "      \"repair_moves\": {},", p.repair_moves);
                let _ = writeln!(s, "      \"arrive_ms\": {:.3},", p.arrive_ms);
                let _ = writeln!(s, "      \"retire_ms\": {:.3},", p.retire_ms);
                let _ = writeln!(s, "      \"repair_ms\": {:.3},", p.repair_ms);
                let _ = writeln!(s, "      \"offline_ms\": {:.3},", p.offline_ms);
                let _ = writeln!(s, "      \"total_ms\": {:.3},", p.total_ms);
                let _ = writeln!(s, "      \"rows_per_sec\": {:.1},", p.rows_per_sec);
                match p.peak_rss_bytes {
                    Some(bytes) => {
                        let _ = writeln!(s, "      \"peak_rss_bytes\": {bytes},");
                    }
                    None => {
                        let _ = writeln!(s, "      \"peak_rss_bytes\": null,");
                    }
                }
                let _ = writeln!(
                    s,
                    "      \"online_mean_asynchrony\": {:.6},",
                    p.online_mean_asynchrony
                );
                let _ = writeln!(
                    s,
                    "      \"offline_mean_asynchrony\": {:.6},",
                    p.offline_mean_asynchrony
                );
                let _ = writeln!(
                    s,
                    "      \"online_min_rack_headroom_watts\": {:.6},",
                    p.online_min_rack_headroom_watts
                );
                let _ = writeln!(
                    s,
                    "      \"offline_min_rack_headroom_watts\": {:.6},",
                    p.offline_min_rack_headroom_watts
                );
                let _ = writeln!(
                    s,
                    "      \"rack_fragmentation_ratio\": {:.6},",
                    p.rack_fragmentation_ratio
                );
                let _ = writeln!(s, "      \"alerts_fired\": {},", p.alerts_fired);
                let _ = writeln!(s, "      \"alerts_resolved\": {},", p.alerts_resolved);
                let _ = writeln!(s, "      \"checksum\": {:.6}", p.checksum);
                s.push_str("    }");
                s
            })
            .collect();
        out.push_str(&rendered.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Per-sample basis tables shared by every row of a ladder point: the
/// diurnal sine/cosine pair and the weekly envelope, evaluated once per
/// sample index instead of once per `(row, sample)`. A row's phase shift
/// folds in via the angle-addition identity
/// `sin(day + φ) = sin(day)·cos(φ) + cos(day)·sin(φ)`, so the per-sample
/// inner loop is pure multiply-add — no trigonometry.
pub(crate) struct SynthBasis {
    day_sin: Vec<f64>,
    day_cos: Vec<f64>,
    week_sin: Vec<f64>,
}

impl SynthBasis {
    pub(crate) fn new(samples_per_trace: usize) -> Self {
        // A week of samples regardless of resolution: the fundamental
        // completes 7 cycles over the trace, the weekly envelope one.
        let steps_per_week = samples_per_trace as f64;
        let step_per_day = steps_per_week / 7.0;
        let mut day_sin = Vec::with_capacity(samples_per_trace);
        let mut day_cos = Vec::with_capacity(samples_per_trace);
        let mut week_sin = Vec::with_capacity(samples_per_trace);
        for t in 0..samples_per_trace {
            let day = std::f64::consts::TAU * (t as f64 / step_per_day);
            let week = std::f64::consts::TAU * (t as f64 / steps_per_week);
            day_sin.push(day.sin());
            day_cos.push(day.cos());
            week_sin.push(week.sin());
        }
        Self {
            day_sin,
            day_cos,
            week_sin,
        }
    }
}

/// One row's deterministic diurnal waveform: a seed-hashed phase,
/// amplitude, and baseline over a 24-hour fundamental plus a weekly
/// harmonic. Pure integer hashing — no RNG state, so neither synthesis
/// order nor chunking can change the samples.
pub(crate) struct RowWave {
    baseline: f64,
    amplitude: f64,
    cos_phase: f64,
    sin_phase: f64,
    weekly: f64,
}

impl RowWave {
    pub(crate) fn new(seed: u64, row: u64) -> Self {
        let h = mix(seed, row);
        // Spread the hash into three independent unit floats.
        let u0 = unit(h);
        let u1 = unit(h.rotate_left(21));
        let u2 = unit(h.rotate_left(42));
        let phase = std::f64::consts::TAU * u2;
        Self {
            baseline: 120.0 + 80.0 * u0,
            amplitude: 40.0 + 60.0 * u1,
            cos_phase: phase.cos(),
            sin_phase: phase.sin(),
            weekly: 0.15 + 0.1 * u0,
        }
    }

    /// Writes the full row into `out` from the shared basis tables:
    /// `baseline + amplitude · max(sinφ-shifted day wave + weekly
    /// envelope, −1)` per sample, ~6 flops each. The `−1` clamp keeps
    /// every sample at `baseline − amplitude ≥ 20`, so rows are always
    /// valid power draws.
    pub(crate) fn fill(&self, basis: &SynthBasis, out: &mut [f64]) {
        for (t, v) in out.iter_mut().enumerate() {
            let envelope = basis.day_sin[t] * self.cos_phase
                + basis.day_cos[t] * self.sin_phase
                + self.weekly * basis.week_sin[t];
            *v = self.baseline + self.amplitude * envelope.max(-1.0);
        }
    }
}

/// Elapsed milliseconds since `t0`.
pub(crate) fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// SplitMix64 — the standard 64-bit finalizer, enough to decorrelate
/// adjacent row indices.
pub(crate) fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(x.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Upper 53 bits as a float in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Order-fixed digest of the phase outputs; summing in a documented order
/// keeps it bit-stable for the golden test.
pub(crate) fn fold_digest(parts: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for &p in parts {
        acc += p;
    }
    acc
}

/// Process peak resident set size from `/proc/self/status` (`VmHWM`), in
/// bytes. `None` where the file, the field, or a parsable value is
/// unavailable (any non-Linux platform) — callers must not treat absence
/// as zero bytes.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ScaleConfig {
        ScaleConfig {
            instances: vec![48, 96],
            samples_per_trace: 56,
            step_minutes: 180,
            seed: 7,
            group_size: 12,
            swap_probes: 64,
            quantile_mode: QuantileMode::Exact,
            workload: ScaleWorkload::Diurnal,
            chunk_rows: 0,
        }
    }

    #[test]
    fn numeric_fields_are_deterministic() {
        let config = tiny_config();
        let a = run_scale(&config).unwrap();
        let b = run_scale(&config).unwrap();
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.checksum.to_bits(), y.checksum.to_bits());
            assert_eq!(
                x.sum_of_group_peaks.to_bits(),
                y.sum_of_group_peaks.to_bits()
            );
        }
    }

    #[test]
    fn chunk_size_never_changes_numeric_outputs() {
        let mut config = tiny_config();
        config.instances = vec![600];
        let reference = run_scale(&config).unwrap();
        for chunk_rows in [12, 24, 60, 96, 132, 600, 1200] {
            config.chunk_rows = chunk_rows;
            let got = run_scale(&config).unwrap();
            for (x, y) in reference.points.iter().zip(&got.points) {
                assert_eq!(
                    x.checksum.to_bits(),
                    y.checksum.to_bits(),
                    "chunk_rows={chunk_rows}"
                );
                assert_eq!(
                    x.sum_of_group_peaks.to_bits(),
                    y.sum_of_group_peaks.to_bits(),
                    "chunk_rows={chunk_rows}"
                );
            }
        }
    }

    #[test]
    fn effective_chunk_rows_is_group_aligned() {
        let mut config = tiny_config();
        assert_eq!(config.effective_chunk_rows() % config.group_size, 0);
        config.chunk_rows = 100; // not a multiple of 12
        assert_eq!(config.effective_chunk_rows(), 108);
        config.chunk_rows = 12;
        assert_eq!(config.effective_chunk_rows(), 12);
    }

    #[test]
    fn sketch_mode_runs_and_stays_near_exact() {
        let mut config = tiny_config();
        let exact = run_scale(&config).unwrap();
        config.quantile_mode = QuantileMode::Sketch;
        let sketch = run_scale(&config).unwrap();
        for (x, y) in exact.points.iter().zip(&sketch.points) {
            assert_eq!(y.quantile_mode, QuantileMode::Sketch);
            // Peaks / aggregation / probes are identical; only the
            // quantile contribution to the checksum may drift, and the
            // shared digests pin everything else.
            assert_eq!(
                x.sum_of_group_peaks.to_bits(),
                y.sum_of_group_peaks.to_bits()
            );
            let drift = (x.checksum - y.checksum).abs() / x.checksum.abs().max(1.0);
            assert!(drift < 0.05, "sketch checksum drifted {drift}");
        }
    }

    #[test]
    #[ignore = "measurement helper, not a gate"]
    fn measure_sketch_p99_value_error() {
        let samples = 168usize;
        let basis = SynthBasis::new(samples);
        let mut row = vec![0.0; samples];
        let (mut max_rel, mut sum_rel, mut n) = (0.0f64, 0.0f64, 0u64);
        for r in 0..20_000u64 {
            RowWave::new(7, r).fill(&basis, &mut row);
            let exact =
                so_powertrace::quantile::quantile_select(&row, 0.99, &mut Vec::new()).unwrap();
            let est = so_powertrace::sketch::sketch_quantile(&row, 0.99).unwrap();
            let rel = (est - exact).abs() / exact.abs().max(1e-12);
            max_rel = max_rel.max(rel);
            sum_rel += rel;
            n += 1;
        }
        println!(
            "p99 sketch vs exact over {n} rows: mean rel err {:.6}, max rel err {:.6}",
            sum_rel / n as f64,
            max_rel
        );
    }

    #[test]
    fn waveform_is_finite_and_positive_enough() {
        let basis = SynthBasis::new(168);
        let wave = RowWave::new(7, 123);
        let mut row = vec![0.0; 168];
        wave.fill(&basis, &mut row);
        for (t, &v) in row.iter().enumerate() {
            assert!(v.is_finite());
            // baseline ≥ 120, amplitude ≤ 100, envelope clamped at −1.
            assert!(v >= 0.0, "sample {t} = {v}");
        }
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mut c = tiny_config();
        c.instances.clear();
        assert!(run_scale(&c).is_err());
        let mut c = tiny_config();
        c.samples_per_trace = 0;
        assert!(run_scale(&c).is_err());
        let mut c = tiny_config();
        c.instances = vec![0];
        assert!(run_scale(&c).is_err());
    }

    #[test]
    fn report_json_carries_every_point() {
        let report = run_scale(&tiny_config()).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"scale\""));
        assert!(json.contains("\"instances\": 48"));
        assert!(json.contains("\"instances\": 96"));
        assert!(json.contains("\"schema_version\": 3"));
        assert!(json.contains("\"workload\": \"diurnal\""));
        assert!(json.contains("\"quantile_mode\": \"exact\""));
        assert!(json.contains("\"threads\": "));
        assert!(json.contains("\"chunk_rows\": "));
    }

    #[test]
    fn llm_workload_rung_is_deterministic_and_differs_from_diurnal() {
        let mut config = tiny_config();
        let diurnal = run_scale(&config).unwrap();
        config.workload = ScaleWorkload::Llm;
        let a = run_scale(&config).unwrap();
        let b = run_scale(&config).unwrap();
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.checksum.to_bits(), y.checksum.to_bits());
            assert_eq!(
                x.sum_of_group_peaks.to_bits(),
                y.sum_of_group_peaks.to_bits()
            );
        }
        for (d, l) in diurnal.points.iter().zip(&a.points) {
            assert_ne!(
                d.checksum.to_bits(),
                l.checksum.to_bits(),
                "llm rung must exercise a different waveform family"
            );
        }
        assert!(a.to_json().contains("\"workload\": \"llm\""));
    }

    #[test]
    fn llm_workload_chunking_never_changes_numeric_outputs() {
        let mut config = tiny_config();
        config.instances = vec![600];
        config.workload = ScaleWorkload::Llm;
        let reference = run_scale(&config).unwrap();
        for chunk_rows in [12, 96, 600] {
            config.chunk_rows = chunk_rows;
            let got = run_scale(&config).unwrap();
            for (x, y) in reference.points.iter().zip(&got.points) {
                assert_eq!(
                    x.checksum.to_bits(),
                    y.checksum.to_bits(),
                    "chunk_rows={chunk_rows}"
                );
            }
        }
    }

    #[test]
    fn missing_rss_serializes_as_null() {
        let mut report = run_scale(&tiny_config()).unwrap();
        report.points[0].peak_rss_bytes = None;
        let json = report.to_json();
        assert!(json.contains("\"peak_rss_bytes\": null"));
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        // On the Linux CI hosts this must be a real value; elsewhere the
        // function degrades to None rather than claiming zero bytes.
        match peak_rss_bytes() {
            Some(bytes) => assert!(bytes > 0),
            None => assert!(!std::path::Path::new("/proc/self/status").exists()),
        }
    }

    fn tiny_online_config() -> OnlineScaleConfig {
        OnlineScaleConfig {
            instances: vec![60, 120],
            samples_per_trace: 24,
            step_minutes: 60,
            seed: 7,
            batches: 4,
            sample_probes: 3,
            repair_budget: 2,
        }
    }

    #[test]
    fn online_rung_is_deterministic() {
        let config = tiny_online_config();
        let a = run_online_scale(&config).unwrap();
        let b = run_online_scale(&config).unwrap();
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.checksum.to_bits(), y.checksum.to_bits());
            assert_eq!(x.committed, y.committed);
            assert_eq!(x.live_instances, y.live_instances);
        }
    }

    #[test]
    fn online_rung_metrics_are_sane() {
        let report = run_online_scale(&tiny_online_config()).unwrap();
        for p in &report.points {
            assert!(p.committed > 0, "stream must commit instances");
            assert_eq!(
                p.committed + p.rejected,
                (p.live_instances as u64) + p.retired + p.rejected
            );
            // A non-empty placement has asynchrony ≥ 1 by definition.
            assert!(p.online_mean_asynchrony >= 1.0);
            assert!(p.offline_mean_asynchrony >= 1.0);
            assert!((0.0..=1.0).contains(&p.rack_fragmentation_ratio));
            assert!(p.online_min_rack_headroom_watts <= ONLINE_RACK_BUDGET_WATTS);
            assert!(p.rows_per_sec > 0.0);
        }
    }

    #[test]
    fn online_rung_rejects_degenerate_configs() {
        let mut c = tiny_online_config();
        c.instances.clear();
        assert!(run_online_scale(&c).is_err());
        let mut c = tiny_online_config();
        c.batches = 0;
        assert!(run_online_scale(&c).is_err());
        let mut c = tiny_online_config();
        c.instances = vec![0];
        assert!(run_online_scale(&c).is_err());
    }

    #[test]
    fn online_report_json_carries_every_point() {
        let report = run_online_scale(&tiny_online_config()).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"online_scale\""));
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("\"instances\": 60"));
        assert!(json.contains("\"instances\": 120"));
        for phase in ["arrive_ms", "retire_ms", "repair_ms", "offline_ms"] {
            assert!(json.contains(&format!("\"{phase}\": ")), "missing {phase}");
        }
        assert!(json.contains("\"online_mean_asynchrony\": "));
        assert!(json.contains("\"alerts_fired\": "));
        assert!(json.contains("\"alerts_resolved\": "));
        assert!(json.contains("\"checksum\": "));
    }

    #[test]
    fn online_rung_attaches_a_headless_plane() {
        let config = tiny_online_config();
        let plane = Arc::new(LivePlane::new(
            Arc::new(RecordingSink::with_virtual_clock()),
            64,
            default_online_rules(),
        ));
        let with_plane = run_online_scale_with_plane(&config, Some(plane.clone())).unwrap();
        // One heartbeat per batch per point flowed through the shared
        // plane, and the engine mirrored its journal into the flight ring.
        let (held, total, _) = plane.flight_counts();
        assert!(held > 0 && total > 0, "flight ring saw journal events");
        // Deterministic alert counts: the headless per-point path yields
        // the same bits as a fresh run.
        let headless = run_online_scale(&config).unwrap();
        let again = run_online_scale(&config).unwrap();
        for (x, y) in headless.points.iter().zip(&again.points) {
            assert_eq!(x.alerts_fired, y.alerts_fired);
            assert_eq!(x.alerts_resolved, y.alerts_resolved);
            assert_eq!(x.checksum.to_bits(), y.checksum.to_bits());
        }
        let _ = with_plane;
    }
}
