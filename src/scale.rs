//! The million-instance scale tier: a columnar end-to-end pipeline sized
//! well past what the `Vec<PowerTrace>` paths are exercised at, reported
//! as the machine-readable `BENCH_scale.json` artifact.
//!
//! Each ladder point synthesizes `n` deterministic diurnal rows straight
//! into a [`so_powertrace::TraceArena`] (no per-trace allocation), then times the four
//! hot kernels the placement and remap layers run over that storage:
//!
//! 1. **synth** — [`so_powertrace::TraceArena::push_with`] waveform generation;
//! 2. **row peaks** — [`so_powertrace::TraceArena::row_peaks`], the per-instance peak
//!    pass every remap begins with;
//! 3. **quantiles** — [`so_powertrace::TraceArena::row_quantiles`] at p99, the StatProf
//!    provisioning kernel;
//! 4. **aggregation** — fused [`so_powertrace::TraceArena::peak_of_sum`] per rack-sized
//!    group (the sum-of-peaks objective without materializing a single
//!    aggregate trace);
//! 5. **swap probes** — [`so_core::differential_score_excluding`] over sampled
//!    candidate moves, the remap inner loop.
//!
//! Every numeric output (`sum_of_group_peaks`, `checksum`) is a pure
//! function of `(seed, instances, samples_per_trace, group_size)`; only
//! the `*_ms`, `rows_per_sec`, and `peak_rss_bytes` fields are
//! machine-dependent. CI's `scale-smoke` job runs the smallest rung and
//! fails on wall-clock regression; `tests/scale_golden.rs` pins the JSON
//! schema and the determinism of the numeric fields.

use std::fmt::Write as _;
use std::time::Instant;

use so_core::differential_score_excluding;
use so_powertrace::{TimeGrid, TraceArena};

/// Scale-tier parameters. The defaults match the committed
/// `BENCH_scale.json` ladder: 10k → 100k → 1M instances of week-long
/// hourly traces grouped into rack-sized sets of 12.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Fleet sizes to run, in order. Each becomes one report point.
    pub instances: Vec<usize>,
    /// Samples per synthesized trace (default: one week at one hour).
    pub samples_per_trace: usize,
    /// Sampling step of the synthesized grid, minutes.
    pub step_minutes: u32,
    /// Seed mixed into every synthesized waveform.
    pub seed: u64,
    /// Rows per aggregation group (a rack's worth).
    pub group_size: usize,
    /// Candidate-move evaluations in the swap-probe phase (capped at the
    /// instance count).
    pub swap_probes: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        Self {
            instances: vec![10_000, 100_000, 1_000_000],
            samples_per_trace: 168,
            step_minutes: 60,
            seed: 7,
            group_size: 12,
            swap_probes: 4096,
        }
    }
}

/// One ladder point: timings, throughput, memory, and the deterministic
/// numeric digests of a scale-tier run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Fleet size of this point.
    pub instances: usize,
    /// Waveform synthesis wall time, milliseconds.
    pub synth_ms: f64,
    /// Per-row peak pass wall time, milliseconds.
    pub row_peaks_ms: f64,
    /// Per-row p99 quantile pass wall time, milliseconds.
    pub quantiles_ms: f64,
    /// Fused grouped peak-of-sum wall time, milliseconds.
    pub aggregation_ms: f64,
    /// Sampled remap swap-probe wall time, milliseconds.
    pub swap_probe_ms: f64,
    /// End-to-end wall time of the point, milliseconds.
    pub total_ms: f64,
    /// `instances / total_seconds` — the ladder's throughput axis.
    pub rows_per_sec: f64,
    /// Process peak RSS after the point, bytes (`0` when the platform
    /// exposes no `/proc/self/status`).
    pub peak_rss_bytes: u64,
    /// Sum of fused per-group peaks — the placement objective, and a
    /// seed-deterministic digest of the aggregation phase.
    pub sum_of_group_peaks: f64,
    /// Folded digest over every phase's numeric output; bit-identical
    /// across runs and thread counts for one config.
    pub checksum: f64,
}

/// A full scale-tier run: config echo plus one [`ScalePoint`] per rung.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleReport {
    /// The configuration the report was produced under.
    pub config: ScaleConfig,
    /// One point per requested instance count, in request order.
    pub points: Vec<ScalePoint>,
}

/// Schema version stamped into `BENCH_scale.json`; bump on any field
/// rename so downstream tooling fails loudly instead of misparsing.
pub const SCALE_SCHEMA_VERSION: u32 = 1;

/// Runs the scale ladder described by `config`.
///
/// # Errors
///
/// Returns an error when `config` is degenerate (no instance counts, zero
/// samples or group size) or a trace kernel rejects its input.
pub fn run_scale(config: &ScaleConfig) -> Result<ScaleReport, Box<dyn std::error::Error>> {
    if config.instances.is_empty() {
        return Err("scale ladder needs at least one instance count".into());
    }
    if config.samples_per_trace == 0 || config.group_size == 0 {
        return Err("samples_per_trace and group_size must be positive".into());
    }
    if config.instances.contains(&0) {
        return Err("instance counts must be positive".into());
    }
    let mut points = Vec::with_capacity(config.instances.len());
    for &n in &config.instances {
        points.push(run_point(config, n)?);
    }
    Ok(ScaleReport {
        config: config.clone(),
        points,
    })
}

fn run_point(config: &ScaleConfig, n: usize) -> Result<ScalePoint, Box<dyn std::error::Error>> {
    let grid = TimeGrid::new(config.step_minutes, config.samples_per_trace);
    let started = Instant::now();

    // Phase 1: synthesize straight into the columnar buffer.
    let t0 = Instant::now();
    let mut arena = TraceArena::with_capacity(grid, n);
    for i in 0..n {
        let wave = RowWave::new(config.seed, i as u64, config.samples_per_trace);
        arena.push_with(|t| wave.sample(t));
    }
    let synth_ms = ms_since(t0);

    // Phase 2: per-row peaks (the remap prologue).
    let t0 = Instant::now();
    let peaks = arena.row_peaks();
    let row_peaks_ms = ms_since(t0);

    // Phase 3: per-row p99 (the StatProf provisioning kernel).
    let t0 = Instant::now();
    let q99 = arena.row_quantiles(0.99)?;
    let quantiles_ms = ms_since(t0);

    // Phase 4: fused peak-of-sum per rack-sized group — the sum-of-peaks
    // objective with no aggregate trace materialized.
    let t0 = Instant::now();
    let mut sum_of_group_peaks = 0.0f64;
    let mut members = Vec::with_capacity(config.group_size);
    let mut start = 0;
    while start < n {
        let end = (start + config.group_size).min(n);
        members.clear();
        members.extend(start..end);
        sum_of_group_peaks += arena.peak_of_sum(&members)?;
        start = end;
    }
    let aggregation_ms = ms_since(t0);

    // Phase 5: sampled remap inner loop — fused differential scores of a
    // member against its own group, exactly the `ad_i` evaluation
    // `best_swap` performs per candidate.
    let t0 = Instant::now();
    let probes = config.swap_probes.min(n);
    let mut group_sum = vec![0.0f64; config.samples_per_trace];
    let mut probe_digest = 0.0f64;
    if config.group_size >= 2 && n >= config.group_size {
        let groups = n / config.group_size;
        for p in 0..probes {
            let g = (mix(config.seed ^ 0x5CA1E, p as u64) as usize) % groups;
            let base = g * config.group_size;
            members.clear();
            members.extend(base..base + config.group_size);
            arena.sum_into(&members, &mut group_sum)?;
            let i = base + (p % config.group_size);
            let score = differential_score_excluding(
                arena.row(i),
                &group_sum,
                arena.row(i),
                config.group_size,
            )?;
            probe_digest += score;
        }
    }
    let swap_probe_ms = ms_since(t0);

    let total_ms = ms_since(started);
    let checksum = fold_digest(&[
        peaks.iter().sum::<f64>(),
        q99.iter().sum::<f64>(),
        sum_of_group_peaks,
        probe_digest,
    ]);
    Ok(ScalePoint {
        instances: n,
        synth_ms,
        row_peaks_ms,
        quantiles_ms,
        aggregation_ms,
        swap_probe_ms,
        total_ms,
        rows_per_sec: n as f64 / (total_ms / 1e3).max(1e-9),
        peak_rss_bytes: peak_rss_bytes(),
        sum_of_group_peaks,
        checksum,
    })
}

impl ScaleReport {
    /// Renders the report as the `BENCH_scale.json` artifact (hand-rolled
    /// JSON — the workspace's serde is a no-op shim). Deterministic
    /// fields come first; the machine-dependent timings carry the `_ms`
    /// suffix by convention.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"scale\",");
        let _ = writeln!(out, "  \"schema_version\": {SCALE_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"seed\": {},", self.config.seed);
        let _ = writeln!(
            out,
            "  \"samples_per_trace\": {},",
            self.config.samples_per_trace
        );
        let _ = writeln!(out, "  \"step_minutes\": {},", self.config.step_minutes);
        let _ = writeln!(out, "  \"group_size\": {},", self.config.group_size);
        let _ = writeln!(out, "  \"swap_probes\": {},", self.config.swap_probes);
        out.push_str("  \"points\": [\n");
        let rendered: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                let mut s = String::from("    {\n");
                let _ = writeln!(s, "      \"instances\": {},", p.instances);
                let _ = writeln!(s, "      \"synth_ms\": {:.3},", p.synth_ms);
                let _ = writeln!(s, "      \"row_peaks_ms\": {:.3},", p.row_peaks_ms);
                let _ = writeln!(s, "      \"quantiles_ms\": {:.3},", p.quantiles_ms);
                let _ = writeln!(s, "      \"aggregation_ms\": {:.3},", p.aggregation_ms);
                let _ = writeln!(s, "      \"swap_probe_ms\": {:.3},", p.swap_probe_ms);
                let _ = writeln!(s, "      \"total_ms\": {:.3},", p.total_ms);
                let _ = writeln!(s, "      \"rows_per_sec\": {:.1},", p.rows_per_sec);
                let _ = writeln!(s, "      \"peak_rss_bytes\": {},", p.peak_rss_bytes);
                let _ = writeln!(
                    s,
                    "      \"sum_of_group_peaks\": {:.6},",
                    p.sum_of_group_peaks
                );
                let _ = writeln!(s, "      \"checksum\": {:.6}", p.checksum);
                s.push_str("    }");
                s
            })
            .collect();
        out.push_str(&rendered.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// One row's deterministic diurnal waveform: a seed-hashed phase,
/// amplitude, and baseline over a 24-hour fundamental plus a weekly
/// harmonic. Pure integer hashing — no RNG state, so synthesis order
/// cannot change the samples.
struct RowWave {
    baseline: f64,
    amplitude: f64,
    phase: f64,
    weekly: f64,
    step_per_day: f64,
    steps_per_week: f64,
}

impl RowWave {
    fn new(seed: u64, row: u64, samples_per_trace: usize) -> Self {
        let h = mix(seed, row);
        // Spread the hash into three independent unit floats.
        let u0 = unit(h);
        let u1 = unit(h.rotate_left(21));
        let u2 = unit(h.rotate_left(42));
        // A week of samples regardless of resolution: the fundamental
        // completes 7 cycles over the trace, the weekly envelope one.
        let steps_per_week = samples_per_trace as f64;
        Self {
            baseline: 120.0 + 80.0 * u0,
            amplitude: 40.0 + 60.0 * u1,
            phase: std::f64::consts::TAU * u2,
            weekly: 0.15 + 0.1 * u0,
            step_per_day: steps_per_week / 7.0,
            steps_per_week,
        }
    }

    fn sample(&self, t: usize) -> f64 {
        let day = std::f64::consts::TAU * (t as f64 / self.step_per_day) + self.phase;
        let week = std::f64::consts::TAU * (t as f64 / self.steps_per_week);
        self.baseline + self.amplitude * (day.sin() + self.weekly * week.sin()).max(-1.0)
    }
}

/// Elapsed milliseconds since `t0`.
fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// SplitMix64 — the standard 64-bit finalizer, enough to decorrelate
/// adjacent row indices.
fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(x.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Upper 53 bits as a float in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Order-fixed digest of the phase outputs; summing in a documented order
/// keeps it bit-stable for the golden test.
fn fold_digest(parts: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for &p in parts {
        acc += p;
    }
    acc
}

/// Process peak resident set size from `/proc/self/status` (`VmHWM`), in
/// bytes; `0` where the file or field is unavailable.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ScaleConfig {
        ScaleConfig {
            instances: vec![48, 96],
            samples_per_trace: 56,
            step_minutes: 180,
            seed: 7,
            group_size: 12,
            swap_probes: 64,
        }
    }

    #[test]
    fn numeric_fields_are_deterministic() {
        let config = tiny_config();
        let a = run_scale(&config).unwrap();
        let b = run_scale(&config).unwrap();
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.checksum.to_bits(), y.checksum.to_bits());
            assert_eq!(
                x.sum_of_group_peaks.to_bits(),
                y.sum_of_group_peaks.to_bits()
            );
        }
    }

    #[test]
    fn waveform_is_finite_and_positive_enough() {
        let wave = RowWave::new(7, 123, 168);
        for t in 0..168 {
            let v = wave.sample(t);
            assert!(v.is_finite());
            // baseline ≥ 120, amplitude ≤ 100, envelope clamped at −1.
            assert!(v >= 0.0, "sample {t} = {v}");
        }
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mut c = tiny_config();
        c.instances.clear();
        assert!(run_scale(&c).is_err());
        let mut c = tiny_config();
        c.samples_per_trace = 0;
        assert!(run_scale(&c).is_err());
        let mut c = tiny_config();
        c.instances = vec![0];
        assert!(run_scale(&c).is_err());
    }

    #[test]
    fn report_json_carries_every_point() {
        let report = run_scale(&tiny_config()).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"scale\""));
        assert!(json.contains("\"instances\": 48"));
        assert!(json.contains("\"instances\": 96"));
        assert!(json.contains("\"schema_version\": 1"));
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        // On the Linux CI hosts this must be a real value; elsewhere the
        // function degrades to 0 rather than failing.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_bytes() > 0);
        }
    }
}
