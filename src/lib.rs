//! # SmoothOperator
//!
//! A full reproduction of *SmoothOperator: Reducing Power Fragmentation
//! and Improving Power Utilization in Large-scale Datacenters* (Hsu, Deng,
//! Mars, Tang — ASPLOS 2018), built as a workspace of focused crates and
//! re-exported here under one roof.
//!
//! Datacenter power infrastructure is a tree (datacenter → suite → MSB →
//! SB → RPP → rack). Placing service instances with *synchronous* power
//! patterns under the same leaf power node creates sharp local peaks that
//! exhaust the leaf's budget while the root still has headroom — *power
//! budget fragmentation*. SmoothOperator measures each instance's temporal
//! power pattern, embeds instances by their **asynchrony scores** against
//! the top power-consuming services, clusters them, and deals each cluster
//! round-robin across the tree, flattening every node's aggregate. The
//! unlocked headroom hosts extra servers, which **dynamic power profile
//! reshaping** (server conversion + proactive throttling/boosting on
//! storage-disaggregated hardware) keeps busy around the clock.
//!
//! ## Module map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`trace`] | `so-powertrace` | power time series, slack, percentile bands |
//! | [`tree`] | `so-powertree` | power topology, assignments, aggregation, breakers |
//! | [`workloads`] | `so-workloads` | synthetic diurnal services, DC1–DC3 scenarios |
//! | [`cluster`] | `so-cluster` | k-means, balanced k-means, PCA, t-SNE |
//! | [`placement`] | `so-core` | asynchrony scores, S-traces, placement, remapping |
//! | [`baselines`] | `so-baselines` | oblivious/random placement, StatProf(u, δ), ESD shaving |
//! | [`capping`] | `so-capping` | Dynamo/SHIP-style hierarchical power capping |
//! | [`sim`] | `so-sim` | discrete-time runtime, LC/Batch models, DVFS |
//! | [`reshape`] | `so-reshape` | conversion & throttle/boost policies, pipeline |
//! | [`oracles`] | `so-oracles` | invariant/differential/metamorphic correctness oracles |
//!
//! ## Quickstart
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use smoothoperator::prelude::*;
//!
//! // A synthetic datacenter (mix modeled after the paper's DC2).
//! let fleet = DcScenario::dc2().generate_fleet(96)?;
//! let topo = PowerTopology::builder()
//!     .suites(1)
//!     .msbs_per_suite(2)
//!     .sbs_per_msb(2)
//!     .rpps_per_sb(2)
//!     .racks_per_rpp(2)
//!     .rack_capacity(6)
//!     .build()?;
//!
//! // Workload-aware placement vs the historical service-grouped layout.
//! let grouped = oblivious_placement(&fleet, &topo, 0.0, 7)?;
//! let smooth = SmoothPlacer::default().place(&fleet, &topo)?;
//!
//! let before = NodeAggregates::compute(&topo, &grouped, fleet.test_traces())?;
//! let after = NodeAggregates::compute(&topo, &smooth, fleet.test_traces())?;
//! let reduction = 1.0 - after.sum_of_peaks(&topo, Level::Rpp)
//!     / before.sum_of_peaks(&topo, Level::Rpp);
//! assert!(reduction > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

/// Power time-series substrate (re-export of `so-powertrace`).
pub use so_powertrace as trace;

/// Power delivery tree substrate (re-export of `so-powertree`).
pub use so_powertree as tree;

/// Synthetic workload substrate (re-export of `so-workloads`).
pub use so_workloads as workloads;

/// Clustering substrate (re-export of `so-cluster`).
pub use so_cluster as cluster;

/// The placement framework — the paper's core (re-export of `so-core`).
pub use so_core as placement;

/// Baseline schemes (re-export of `so-baselines`).
pub use so_baselines as baselines;

/// Hierarchical power capping (re-export of `so-capping`).
pub use so_capping as capping;

/// Runtime simulator (re-export of `so-sim`).
pub use so_sim as sim;

/// Dynamic power profile reshaping (re-export of `so-reshape`).
pub use so_reshape as reshape;

/// Correctness oracles and the seeded check battery (re-export of
/// `so-oracles`).
pub use so_oracles as oracles;

/// Million-instance scale tier: columnar end-to-end ladder and the
/// `BENCH_scale.json` emitter.
pub mod scale;

/// Capacity-planning sweep behind `smoothop plan`: racks-fit under an
/// MSB budget, StatProf vs SmoothOperator, and the `BENCH_plan.json`
/// emitter.
pub mod plan;

/// Live observability sessions: the `smoothop watch` runner over the
/// online engine's flight recorder, alert engine, and scrape surface.
pub mod watch;

/// `smoothopd`: the resident placement daemon behind `smoothop serve` —
/// streaming ring-buffer ingest, live queries, background repair — and
/// the `BENCH_daemon.json` load rung.
pub mod serve;

/// The most commonly used items in one import.
pub mod prelude {
    pub use so_baselines::{
        greedy_peak_placement, oblivious_placement, random_placement, ProvisioningDegrees,
    };
    pub use so_core::{
        asynchrony_score, best_rack_for, remap, DriftMonitor, FragmentationReport, PlacementConfig,
        PlacementConstraints, RemapConfig, ServiceTraces, SmoothPlacer,
    };
    pub use so_oracles::{run_battery, BatteryConfig, OracleFamily, OracleReport};
    pub use so_powertrace::{TraceArena, TraceView};

    pub use crate::plan::{
        racks_fit_from_series, run_plan, PlanConfig, PlanFit, PlanPoint, PlanReport, PlanWorkload,
    };
    pub use crate::scale::{
        run_online_scale, run_scale, OnlineScaleConfig, OnlineScalePoint, OnlineScaleReport,
        QuantileMode, ScaleConfig, ScaleReport, ScaleWorkload,
    };
    pub use crate::serve::{
        run_daemon_scale, run_serve, DaemonScaleConfig, DaemonScaleReport, ServeConfig,
        ServeOutcome,
    };
    pub use so_powertrace::{PowerTrace, SlackProfile, TimeGrid};
    pub use so_powertree::{
        Assignment, Level, NodeAggregates, NodeId, PowerTopology, TopologyShape,
    };
    pub use so_reshape::{
        fitting_topology, operate, run_scenario, ConversionPolicy, LongRunConfig, PipelineConfig,
        ThrottleBoostPolicy,
    };
    pub use so_sim::{simulate, SimConfig, StaticPolicy, Telemetry};
    pub use so_workloads::{
        profile_services, DcScenario, Fleet, OfferedLoad, ServiceClass, WorkKind,
    };
}
