//! `smoothopd` — the resident placement daemon behind `smoothop serve`.
//!
//! SmoothOperator ran as a continuous production service; this module is
//! that service for the reproduction. One process holds the whole stack
//! resident — [`so_core::DaemonFleet`] (power tree, columnar trace arena, canonical
//! aggregates, ring-buffer sample windows) plus a [`so_telemetry::LivePlane`] — and
//! serves it over the workspace's dependency-free blocking
//! [`so_telemetry::HttpServer`].
//!
//! # Architecture
//!
//! * **Single serial commit point.** The daemon state lives behind one
//!   mutex; every mutation (ingest batch, arrival, retirement, repair
//!   pass) is applied under it, in connection order. The HTTP listener
//!   already serves one connection at a time, so the stream of state
//!   transitions is totally ordered and the engine's determinism
//!   guarantees carry over unchanged.
//! * **Streaming ingest.** `POST /ingest` carries per-instance power
//!   readings, one per line — either the plain line protocol
//!   `<slot> <watts>` or JSONL `{"slot":N,"watts":W}`. The whole body is
//!   parsed and validated *before* any state is touched: one malformed
//!   line rejects the batch with `400` and zero mutation. Valid batches
//!   land in the per-instance ring-buffer windows and settle each
//!   touched rack path with one canonical refresh — O(batch + touched
//!   path), bit-identical to a from-scratch recompute (the `daemon`
//!   oracle family pins this).
//! * **Background repair.** The §3.6 differential-score remap runs as a
//!   repair loop on its own thread, one budgeted pass per interval, each
//!   pass serialized through the same mutex.
//! * **Queries.** Headroom, per-rack asynchrony, what-if admission
//!   probes, and fleet counters are served alongside the plane's
//!   `/metrics`, `/health`, `/alerts`, and `/flight` scrape surface.
//!
//! # Endpoints
//!
//! | Method | Path | Body / reply |
//! |---|---|---|
//! | GET | `/metrics` `/health` `/alerts` `/flight?n=K` | the [`so_telemetry::LivePlane`] scrape surface |
//! | GET | `/fleet` | engine + ingest counters |
//! | GET | `/headroom[?node=K]` | per-node (or min-rack + root) headroom, watts |
//! | GET | `/asynchrony[?rack=K]` | per-rack (or mean) asynchrony score |
//! | GET | `/whatif?rack=K&watts=W` | full admission decision for a constant-draw candidate on one rack |
//! | GET | `/admit?watts=W` | would the fleet admit the candidate, and where |
//! | POST | `/ingest` | sample lines (above); replies with the ingest report |
//! | POST | `/arrive` | one candidate trace per line (comma-separated watts); replies committed slots |
//! | POST | `/retire?slot=K` | retires a live slot |
//! | POST | `/repair` | one budgeted repair pass now |
//! | POST | `/shutdown` | stop serving and exit cleanly |
//!
//! The module also hosts the daemon's load rung: [`crate::serve::run_daemon_scale`]
//! streams millions of samples through the ingest path in-process (no
//! socket between the measurements) and writes `BENCH_daemon.json`,
//! gated per phase by `scripts/perf_gate.sh` in CI.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use so_core::daemon::{DaemonFleet, SampleUpdate};
use so_core::online::{select_decision, CommitPolicy, OnlineConfig, OnlineFleet};
use so_powertrace::{PowerTrace, TimeGrid};
use so_powertree::NodeId;
use so_telemetry::{route_plane, HttpRequest, HttpResponse, HttpServer, LivePlane};

use crate::scale::{
    fold_digest, min_rack_headroom, mix, ms_since, online_topology, peak_rss_bytes, RowWave,
    SynthBasis,
};

/// Parameters of one `smoothop serve` session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 binds an ephemeral port).
    pub listen: String,
    /// Instances seeded into the fleet before serving starts.
    pub instances: usize,
    /// Samples per resident window.
    pub samples_per_trace: usize,
    /// Sampling step of the window grid, minutes.
    pub step_minutes: u32,
    /// Seed for the synthesized initial fleet and the sampling policy.
    pub seed: u64,
    /// Candidate racks probed per arrival ([`CommitPolicy::Sampling`]).
    pub sample_probes: usize,
    /// Remap swaps allowed per repair pass (0 disables repair entirely).
    pub repair_budget: usize,
    /// Background repair-loop period, milliseconds (0 = no loop; repair
    /// then only runs on explicit `POST /repair`).
    pub repair_interval_ms: u64,
    /// Auto-shutdown after this many milliseconds (`None` = serve until
    /// `POST /shutdown`). A safety net for CI smoke jobs.
    pub ttl_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".to_string(),
            instances: 960,
            samples_per_trace: 168,
            step_minutes: 60,
            seed: 7,
            sample_probes: 64,
            repair_budget: 8,
            repair_interval_ms: 0,
            ttl_ms: None,
        }
    }
}

/// Counters summarizing one completed serve session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Ingest batches applied.
    pub batches_ingested: u64,
    /// Samples written into live windows.
    pub samples_ingested: u64,
    /// Samples dropped (retired/unknown slots).
    pub samples_dropped: u64,
    /// Live instances at shutdown.
    pub live_instances: usize,
    /// Arrivals committed over the session (including the seed fleet).
    pub committed: u64,
    /// Arrivals rejected.
    pub rejected: u64,
    /// Instances retired.
    pub retired: u64,
    /// Background repair passes completed.
    pub repair_passes: u64,
}

/// Builds the resident daemon for `config`: the online topology sized to
/// the seed fleet, a [`CommitPolicy::Sampling`] engine with the plane
/// attached, and the synthesized seed arrivals committed.
///
/// # Errors
///
/// Propagates topology and engine errors.
pub fn build_daemon(
    config: &ServeConfig,
    plane: Arc<LivePlane>,
) -> Result<DaemonFleet, Box<dyn std::error::Error>> {
    let grid = TimeGrid::new(config.step_minutes, config.samples_per_trace);
    let topology = online_topology(config.instances.max(1))?;
    let engine_config = OnlineConfig {
        policy: CommitPolicy::Sampling {
            probes: config.sample_probes,
        },
        repair_budget: config.repair_budget,
        min_gain: 0.02,
        sample_salt: config.seed,
        // Resident process: bound the event journal by the live fleet.
        journal_cap: 2 * config.instances.max(1),
    };
    let mut engine = OnlineFleet::new(topology, grid, engine_config);
    engine.attach_plane(plane);
    let mut daemon = DaemonFleet::new(engine);
    let basis = SynthBasis::new(config.samples_per_trace);
    let mut row = vec![0.0f64; config.samples_per_trace];
    for i in 0..config.instances {
        RowWave::new(config.seed ^ 0x0E7E, i as u64).fill(&basis, &mut row);
        let trace = PowerTrace::new(row.clone(), config.step_minutes)?;
        daemon.arrive(&trace)?;
    }
    Ok(daemon)
}

/// Runs one serve session: builds the daemon, mounts the router on an
/// [`so_telemetry::HttpServer`], announces the bound address through `announce` (one
/// `{"kind":"serving",...}` JSON line — CI parses it to find the
/// ephemeral port), then blocks until `POST /shutdown` or the TTL.
///
/// # Errors
///
/// Propagates build, bind, and thread errors.
pub fn run_serve(
    config: &ServeConfig,
    plane: Arc<LivePlane>,
    mut announce: impl FnMut(&str),
) -> Result<ServeOutcome, Box<dyn std::error::Error>> {
    let daemon = build_daemon(config, plane.clone())?;
    let policy = daemon.fleet().config().policy;
    let state = Arc::new(Mutex::new(daemon));
    let stop = Arc::new(AtomicBool::new(false));
    let repair_passes = Arc::new(AtomicU64::new(0));

    let handler = {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        let plane = Arc::clone(&plane);
        Arc::new(move |req: &HttpRequest| route_daemon(&state, &plane, &stop, &policy, req))
    };
    let server = HttpServer::spawn(&config.listen, "smoothopd-http", handler)?;
    announce(&format!(
        "{{\"kind\":\"serving\",\"addr\":\"http://{}\",\"instances\":{},\"window\":{}}}",
        server.addr(),
        config.instances,
        config.samples_per_trace
    ));

    let repair_thread = if config.repair_interval_ms > 0 && config.repair_budget > 0 {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        let passes = Arc::clone(&repair_passes);
        let interval = Duration::from_millis(config.repair_interval_ms);
        Some(std::thread::spawn(move || {
            let mut last = Instant::now();
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(10));
                if last.elapsed() < interval {
                    continue;
                }
                last = Instant::now();
                let mut daemon = state.lock().unwrap_or_else(|e| e.into_inner());
                if daemon.repair().is_ok() {
                    passes.fetch_add(1, Ordering::Relaxed);
                    if so_telemetry::enabled() {
                        so_telemetry::counter_add("so_daemon_repair_passes_total", &[], 1);
                    }
                }
            }
        }))
    } else {
        None
    };

    let started = Instant::now();
    while !stop.load(Ordering::Acquire) {
        if let Some(ttl) = config.ttl_ms {
            if started.elapsed() >= Duration::from_millis(ttl) {
                stop.store(true, Ordering::Release);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    server.shutdown();
    if let Some(handle) = repair_thread {
        let _ = handle.join();
    }

    let daemon = state.lock().unwrap_or_else(|e| e.into_inner());
    Ok(ServeOutcome {
        batches_ingested: daemon.batches_ingested(),
        samples_ingested: daemon.samples_ingested(),
        samples_dropped: daemon.samples_dropped(),
        live_instances: daemon.fleet().live_len(),
        committed: daemon.fleet().committed(),
        rejected: daemon.fleet().rejected(),
        retired: daemon.fleet().retired(),
        repair_passes: repair_passes.load(Ordering::Relaxed),
    })
}

/// Routes one request against the daemon state: the plane's scrape
/// surface plus the query and mutation endpoints listed in the module
/// docs. Exported for in-process tests.
#[must_use]
pub fn route_daemon(
    state: &Mutex<DaemonFleet>,
    plane: &LivePlane,
    stop: &AtomicBool,
    policy: &CommitPolicy,
    req: &HttpRequest,
) -> HttpResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/metrics" | "/health" | "/alerts" | "/flight") => route_plane(plane, req),
        ("GET", "/fleet") => {
            let daemon = state.lock().unwrap_or_else(|e| e.into_inner());
            fleet_summary(&daemon)
        }
        ("GET", "/headroom") => {
            let daemon = state.lock().unwrap_or_else(|e| e.into_inner());
            headroom_query(&daemon, req)
        }
        ("GET", "/asynchrony") => {
            let daemon = state.lock().unwrap_or_else(|e| e.into_inner());
            asynchrony_query(&daemon, req)
        }
        ("GET", "/whatif") => {
            let daemon = state.lock().unwrap_or_else(|e| e.into_inner());
            whatif_query(&daemon, req)
        }
        ("GET", "/admit") => {
            let daemon = state.lock().unwrap_or_else(|e| e.into_inner());
            admit_query(&daemon, policy, req)
        }
        ("POST", "/ingest") => {
            let mut daemon = state.lock().unwrap_or_else(|e| e.into_inner());
            ingest_post(&mut daemon, &req.body)
        }
        ("POST", "/arrive") => {
            let mut daemon = state.lock().unwrap_or_else(|e| e.into_inner());
            arrive_post(&mut daemon, &req.body)
        }
        ("POST", "/retire") => {
            let mut daemon = state.lock().unwrap_or_else(|e| e.into_inner());
            retire_post(&mut daemon, req)
        }
        ("POST", "/repair") => {
            let mut daemon = state.lock().unwrap_or_else(|e| e.into_inner());
            repair_post(&mut daemon)
        }
        ("POST", "/shutdown") => {
            stop.store(true, Ordering::Release);
            HttpResponse::json("{\"status\":\"stopping\"}\n")
        }
        (
            _,
            "/metrics" | "/health" | "/alerts" | "/flight" | "/fleet" | "/headroom" | "/asynchrony"
            | "/whatif" | "/admit" | "/ingest" | "/arrive" | "/retire" | "/repair" | "/shutdown",
        ) => HttpResponse::method_not_allowed(),
        _ => HttpResponse::not_found(),
    }
}

fn fleet_summary(daemon: &DaemonFleet) -> HttpResponse {
    let fleet = daemon.fleet();
    let mut body = String::from("{");
    let _ = write!(
        body,
        "\"live_instances\":{},\"committed\":{},\"rejected\":{},\"retired\":{},",
        fleet.live_len(),
        fleet.committed(),
        fleet.rejected(),
        fleet.retired()
    );
    let _ = write!(
        body,
        "\"window\":{},\"samples_ingested\":{},\"samples_dropped\":{},\"batches_ingested\":{},",
        daemon.window(),
        daemon.samples_ingested(),
        daemon.samples_dropped(),
        daemon.batches_ingested()
    );
    let _ = write!(
        body,
        "\"mean_rack_asynchrony\":{}",
        fmt_f64_or_null(daemon.mean_rack_asynchrony())
    );
    body.push_str("}\n");
    HttpResponse::json(body)
}

fn headroom_query(daemon: &DaemonFleet, req: &HttpRequest) -> HttpResponse {
    let fleet = daemon.fleet();
    match req.query_param("node") {
        None => {
            let min_rack = match min_rack_headroom(fleet) {
                Ok(v) => v,
                Err(e) => return HttpResponse::error(500, format!("headroom failed: {e}")),
            };
            let root = match fleet.headroom(fleet.topology().root()) {
                Ok(v) => v,
                Err(e) => return HttpResponse::error(500, format!("headroom failed: {e}")),
            };
            HttpResponse::json(format!(
                "{{\"min_rack_headroom_watts\":{},\"root_headroom_watts\":{}}}\n",
                fmt_f64(min_rack),
                fmt_f64(root)
            ))
        }
        Some(raw) => {
            let Ok(index) = raw.parse::<usize>() else {
                return HttpResponse::bad_request(format!("malformed node index {raw:?}"));
            };
            if index >= fleet.topology().len() {
                return HttpResponse::error(404, format!("no node #{index}"));
            }
            match fleet.headroom(NodeId::new(index)) {
                Ok(v) => HttpResponse::json(format!(
                    "{{\"node\":{index},\"headroom_watts\":{}}}\n",
                    fmt_f64(v)
                )),
                Err(e) => HttpResponse::error(500, format!("headroom failed: {e}")),
            }
        }
    }
}

fn asynchrony_query(daemon: &DaemonFleet, req: &HttpRequest) -> HttpResponse {
    match req.query_param("rack") {
        None => HttpResponse::json(format!(
            "{{\"mean_rack_asynchrony\":{},\"racks\":{}}}\n",
            fmt_f64_or_null(daemon.mean_rack_asynchrony()),
            daemon.fleet().topology().racks().len()
        )),
        Some(raw) => {
            let Ok(index) = raw.parse::<usize>() else {
                return HttpResponse::bad_request(format!("malformed rack index {raw:?}"));
            };
            let rack = NodeId::new(index);
            if !daemon.fleet().topology().racks().contains(&rack) {
                return HttpResponse::error(404, format!("node #{index} is not a rack"));
            }
            match daemon.rack_asynchrony(rack) {
                Ok(score) => HttpResponse::json(format!(
                    "{{\"rack\":{index},\"asynchrony\":{}}}\n",
                    fmt_f64(score)
                )),
                Err(so_core::CoreError::EmptySet) => {
                    HttpResponse::error(404, format!("rack #{index} is empty"))
                }
                Err(e) => HttpResponse::error(500, format!("asynchrony failed: {e}")),
            }
        }
    }
}

/// Builds the constant-draw probe candidate used by `/whatif` and
/// `/admit`.
fn constant_candidate(daemon: &DaemonFleet, watts: f64) -> Result<PowerTrace, HttpResponse> {
    if !watts.is_finite() || watts < 0.0 {
        return Err(HttpResponse::bad_request(format!(
            "watts must be finite and non-negative, got {watts}"
        )));
    }
    PowerTrace::new(
        vec![watts; daemon.window()],
        daemon.fleet().grid().step_minutes(),
    )
    .map_err(|e| HttpResponse::error(500, format!("candidate build failed: {e}")))
}

fn parsed_watts(req: &HttpRequest) -> Result<f64, HttpResponse> {
    let Some(raw) = req.query_param("watts") else {
        return Err(HttpResponse::bad_request("missing watts parameter"));
    };
    raw.parse::<f64>()
        .map_err(|_| HttpResponse::bad_request(format!("malformed watts {raw:?}")))
}

fn whatif_query(daemon: &DaemonFleet, req: &HttpRequest) -> HttpResponse {
    let Some(raw_rack) = req.query_param("rack") else {
        return HttpResponse::bad_request("missing rack parameter");
    };
    let Ok(index) = raw_rack.parse::<usize>() else {
        return HttpResponse::bad_request(format!("malformed rack index {raw_rack:?}"));
    };
    let watts = match parsed_watts(req) {
        Ok(w) => w,
        Err(resp) => return resp,
    };
    let rack = NodeId::new(index);
    if !daemon.fleet().topology().racks().contains(&rack) {
        return HttpResponse::error(404, format!("node #{index} is not a rack"));
    }
    let candidate = match constant_candidate(daemon, watts) {
        Ok(c) => c,
        Err(resp) => return resp,
    };
    match daemon.fleet().evaluate(rack, candidate.samples()) {
        Ok(d) => HttpResponse::json(format!(
            "{{\"rack\":{index},\"fits\":{},\"has_slot\":{},\"power_ok\":{},\
             \"new_peak_watts\":{},\"peak_increase_watts\":{},\"headroom_watts\":{},\
             \"asynchrony\":{}}}\n",
            d.fits,
            d.has_slot,
            d.power_ok,
            fmt_f64(d.new_peak_watts),
            fmt_f64(d.peak_increase_watts),
            fmt_f64(d.headroom_watts),
            fmt_f64(d.asynchrony)
        )),
        Err(e) => HttpResponse::error(500, format!("evaluate failed: {e}")),
    }
}

fn admit_query(daemon: &DaemonFleet, policy: &CommitPolicy, req: &HttpRequest) -> HttpResponse {
    let watts = match parsed_watts(req) {
        Ok(w) => w,
        Err(resp) => return resp,
    };
    let candidate = match constant_candidate(daemon, watts) {
        Ok(c) => c,
        Err(resp) => return resp,
    };
    let decisions = match daemon.fleet().decisions(&candidate) {
        Ok(d) => d,
        Err(e) => return HttpResponse::error(500, format!("admission probe failed: {e}")),
    };
    match select_decision(policy, &decisions) {
        Some(d) => HttpResponse::json(format!(
            "{{\"admits\":true,\"rack\":{},\"headroom_watts\":{},\"asynchrony\":{}}}\n",
            d.rack.index(),
            fmt_f64(d.headroom_watts),
            fmt_f64(d.asynchrony)
        )),
        None => HttpResponse::json("{\"admits\":false,\"rack\":null}\n"),
    }
}

fn ingest_post(daemon: &mut DaemonFleet, body: &str) -> HttpResponse {
    let updates = match parse_ingest_body(body) {
        Ok(updates) => updates,
        Err(reason) => return HttpResponse::bad_request(reason),
    };
    let t0 = Instant::now();
    match daemon.ingest_batch(&updates) {
        Ok(report) => {
            if so_telemetry::enabled() {
                so_telemetry::observe("so_daemon_ingest_batch_us", &[], ms_since(t0) * 1_000.0);
            }
            HttpResponse::json(format!(
                "{{\"applied\":{},\"dropped\":{},\"racks_touched\":{},\"samples_ingested\":{}}}\n",
                report.applied,
                report.dropped,
                report.racks_touched,
                daemon.samples_ingested()
            ))
        }
        Err(e) => HttpResponse::bad_request(format!("ingest rejected: {e}")),
    }
}

/// Parses an ingest body: one sample per non-empty line, either
/// `<slot> <watts>` or JSONL `{"slot":N,"watts":W}`. The first malformed
/// line fails the whole body — the caller mutates nothing in that case.
fn parse_ingest_body(body: &str) -> Result<Vec<SampleUpdate>, String> {
    let mut updates = Vec::new();
    for (lineno, raw) in body.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let parsed = if line.starts_with('{') {
            parse_jsonl_update(line)
        } else {
            parse_plain_update(line)
        };
        match parsed {
            Some(update) => updates.push(update),
            None => return Err(format!("malformed sample on line {}: {line:?}", lineno + 1)),
        }
    }
    Ok(updates)
}

fn parse_plain_update(line: &str) -> Option<SampleUpdate> {
    let mut parts = line.split_whitespace();
    let slot = parts.next()?.parse::<usize>().ok()?;
    let watts = parts.next()?.parse::<f64>().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some(SampleUpdate { slot, watts })
}

fn parse_jsonl_update(line: &str) -> Option<SampleUpdate> {
    let slot = json_number_field(line, "slot")?;
    let watts = json_number_field(line, "watts")?;
    if slot.fract() != 0.0 || slot < 0.0 || slot > usize::MAX as f64 {
        return None;
    }
    Some(SampleUpdate {
        slot: slot as usize,
        watts,
    })
}

/// Extracts `"key": <number>` from a single JSONL object without a JSON
/// dependency. Good enough for the two flat numeric fields the ingest
/// protocol defines; anything fancier is malformed by contract.
fn json_number_field(line: &str, key: &str) -> Option<f64> {
    let pattern = format!("\"{key}\"");
    let at = line.find(&pattern)?;
    let rest = line[at + pattern.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse::<f64>().ok().filter(|v| v.is_finite())
}

fn arrive_post(daemon: &mut DaemonFleet, body: &str) -> HttpResponse {
    let window = daemon.window();
    let step = daemon.fleet().grid().step_minutes();
    let mut candidates = Vec::new();
    for (lineno, raw) in body.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let samples: Result<Vec<f64>, _> = line
            .split(',')
            .map(|part| part.trim().parse::<f64>())
            .collect();
        let Ok(samples) = samples else {
            return HttpResponse::bad_request(format!(
                "malformed candidate on line {}",
                lineno + 1
            ));
        };
        if samples.len() != window {
            return HttpResponse::bad_request(format!(
                "candidate on line {} has {} samples, window is {window}",
                lineno + 1,
                samples.len()
            ));
        }
        match PowerTrace::new(samples, step) {
            Ok(trace) => candidates.push(trace),
            Err(e) => {
                return HttpResponse::bad_request(format!(
                    "invalid candidate on line {}: {e}",
                    lineno + 1
                ))
            }
        }
    }
    let mut committed = Vec::with_capacity(candidates.len());
    for candidate in &candidates {
        match daemon.arrive(candidate) {
            Ok(slot) => committed.push(slot),
            Err(e) => return HttpResponse::error(500, format!("arrive failed: {e}")),
        }
    }
    let rendered: Vec<String> = committed
        .iter()
        .map(|slot| match slot {
            Some(s) => s.to_string(),
            None => "null".to_string(),
        })
        .collect();
    HttpResponse::json(format!("{{\"committed\":[{}]}}\n", rendered.join(",")))
}

fn retire_post(daemon: &mut DaemonFleet, req: &HttpRequest) -> HttpResponse {
    let Some(raw) = req.query_param("slot") else {
        return HttpResponse::bad_request("missing slot parameter");
    };
    let Ok(slot) = raw.parse::<usize>() else {
        return HttpResponse::bad_request(format!("malformed slot {raw:?}"));
    };
    match daemon.retire(slot) {
        Ok(()) => HttpResponse::json(format!("{{\"retired\":{slot}}}\n")),
        Err(e) => HttpResponse::error(409, format!("retire failed: {e}")),
    }
}

fn repair_post(daemon: &mut DaemonFleet) -> HttpResponse {
    match daemon.repair() {
        Ok(report) => HttpResponse::json(format!(
            "{{\"swaps\":{},\"moves\":{}}}\n",
            report.swaps.len(),
            2 * report.swaps.len()
        )),
        Err(e) => HttpResponse::error(500, format!("repair failed: {e}")),
    }
}

/// Shortest round-trip decimal of a finite float (Rust's `Display` is
/// exact), `null` for non-finite — strict-JSON safe.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn fmt_f64_or_null(v: Option<f64>) -> String {
    match v {
        Some(v) => fmt_f64(v),
        None => "null".to_string(),
    }
}

// ---------------------------------------------------------------------------
// The daemon load rung: BENCH_daemon.json
// ---------------------------------------------------------------------------

/// Schema version stamped into `BENCH_daemon.json`.
pub const DAEMON_SCALE_SCHEMA_VERSION: u32 = 1;

/// Daemon-rung parameters. The defaults match the committed
/// `BENCH_daemon.json` ladder: 10k → 100k resident instances, each
/// swept with streaming sample batches through the in-process ingest
/// path (no socket in the measured loop — the rung measures the engine,
/// the `daemon-smoke` CI job measures the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonScaleConfig {
    /// Resident fleet sizes, in order. Each becomes one report point.
    pub instances: Vec<usize>,
    /// Samples per resident window.
    pub samples_per_trace: usize,
    /// Sampling step, minutes.
    pub step_minutes: u32,
    /// Seed driving the seed fleet, the sample stream, and the policy.
    pub seed: u64,
    /// Full fleet sweeps of the ingest phase (each sweep streams one
    /// fresh sample for every live instance).
    pub sweeps: usize,
    /// Live slots per ingest batch (consecutive slots — rack-local, so
    /// each batch refreshes few rack paths).
    pub batch_slots: usize,
    /// Candidate racks probed per seed arrival.
    pub sample_probes: usize,
    /// Remap swaps allowed in the repair phase.
    pub repair_budget: usize,
}

impl Default for DaemonScaleConfig {
    fn default() -> Self {
        Self {
            instances: vec![10_000, 100_000],
            samples_per_trace: 168,
            step_minutes: 60,
            seed: 7,
            sweeps: 3,
            batch_slots: 4_096,
            sample_probes: 64,
            repair_budget: 8,
        }
    }
}

/// One daemon-rung point: phase timings, ingest throughput and latency
/// quantiles, and the deterministic state digest.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonScalePoint {
    /// Resident fleet size of this point.
    pub instances: usize,
    /// Thread lanes the engine ran with.
    pub threads: usize,
    /// Live instances after seeding.
    pub live_instances: usize,
    /// Ingest batches streamed.
    pub batches: u64,
    /// Samples streamed through the ingest path.
    pub samples_ingested: u64,
    /// Seed-fleet commit phase, ms.
    pub seed_ms: f64,
    /// Streaming-ingest phase, ms.
    pub ingest_ms: f64,
    /// Query phase (asynchrony sweep + headroom + admission probes), ms.
    pub query_ms: f64,
    /// Repair phase (one budgeted pass), ms.
    pub repair_ms: f64,
    /// Whole point, ms.
    pub total_ms: f64,
    /// Ingest throughput, samples per second of the ingest phase.
    pub rows_per_sec: f64,
    /// Median ingest batch latency, microseconds.
    pub ingest_p50_us: f64,
    /// 99th-percentile ingest batch latency, microseconds.
    pub ingest_p99_us: f64,
    /// Peak RSS (`VmHWM`) observed after the point, bytes.
    pub peak_rss_bytes: Option<u64>,
    /// Mean rack asynchrony of the resident fleet after the stream.
    pub mean_rack_asynchrony: f64,
    /// Smallest per-rack headroom after the stream, watts.
    pub min_rack_headroom_watts: f64,
    /// Order-fixed digest of the deterministic outputs (timings and
    /// latencies excluded).
    pub checksum: f64,
}

/// The full daemon rung: config + one point per fleet size.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonScaleReport {
    /// The configuration the rung ran with.
    pub config: DaemonScaleConfig,
    /// One point per fleet size, in run order.
    pub points: Vec<DaemonScalePoint>,
}

/// Runs the daemon load rung for every configured fleet size.
///
/// # Errors
///
/// Propagates build and engine errors.
pub fn run_daemon_scale(
    config: &DaemonScaleConfig,
) -> Result<DaemonScaleReport, Box<dyn std::error::Error>> {
    let mut points = Vec::with_capacity(config.instances.len());
    for &n in &config.instances {
        points.push(run_daemon_point(config, n)?);
    }
    Ok(DaemonScaleReport {
        config: config.clone(),
        points,
    })
}

fn run_daemon_point(
    config: &DaemonScaleConfig,
    n: usize,
) -> Result<DaemonScalePoint, Box<dyn std::error::Error>> {
    let serve = ServeConfig {
        instances: n,
        samples_per_trace: config.samples_per_trace,
        step_minutes: config.step_minutes,
        seed: config.seed,
        sample_probes: config.sample_probes,
        repair_budget: config.repair_budget,
        ..ServeConfig::default()
    };
    let started = Instant::now();
    let plane = Arc::new(LivePlane::new(
        Arc::new(so_telemetry::RecordingSink::with_virtual_clock()),
        256,
        so_telemetry::default_online_rules(),
    ));
    let mut daemon = build_daemon(&serve, plane)?;
    let seed_ms = ms_since(started);
    let live = daemon.fleet().live_slots();

    // Ingest phase: `sweeps` full passes over the live fleet in
    // consecutive-slot batches (rack-local, so each batch settles few
    // rack paths — the deployment shape where a scrape walks machines in
    // rack order). Watts are a deterministic hash of (sweep, slot).
    let t0 = Instant::now();
    let mut batch_us: Vec<f64> = Vec::new();
    let mut samples_ingested = 0u64;
    let mut batches = 0u64;
    let mut updates = Vec::with_capacity(config.batch_slots.max(1));
    for sweep in 0..config.sweeps {
        for chunk in live.chunks(config.batch_slots.max(1)) {
            updates.clear();
            for &slot in chunk {
                let draw = mix(config.seed ^ 0x1D6E57, (sweep * live.len() + slot) as u64);
                updates.push(SampleUpdate {
                    slot,
                    watts: (draw % 3_000) as f64 / 10.0,
                });
            }
            let b0 = Instant::now();
            let report = daemon.ingest_batch(&updates)?;
            let us = ms_since(b0) * 1_000.0;
            batch_us.push(us);
            if so_telemetry::enabled() {
                so_telemetry::observe("so_daemon_ingest_batch_us", &[], us);
            }
            samples_ingested += report.applied as u64;
            batches += 1;
        }
    }
    let ingest_ms = ms_since(t0);

    // Query phase: a full per-rack asynchrony sweep off the peak cache,
    // the fleet-wide headroom scan, and admission probes.
    let t0 = Instant::now();
    let mut asynchrony_sum = 0.0f64;
    let mut scored_racks = 0u64;
    for &rack in daemon.fleet().topology().racks() {
        match daemon.rack_asynchrony(rack) {
            Ok(score) => {
                asynchrony_sum += score;
                scored_racks += 1;
            }
            Err(so_core::CoreError::EmptySet) => {}
            Err(e) => return Err(Box::new(e)),
        }
    }
    let mean_rack_asynchrony = daemon.mean_rack_asynchrony().unwrap_or(0.0);
    let min_rack_headroom_watts = min_rack_headroom(daemon.fleet())?;
    let probe = PowerTrace::new(vec![150.0; config.samples_per_trace], config.step_minutes)?;
    let decisions = daemon.fleet().decisions(&probe)?;
    let admissible = decisions.iter().filter(|d| d.fits).count();
    let query_ms = ms_since(t0);

    // Repair phase: one budgeted §3.6 pass over the streamed fleet.
    let t0 = Instant::now();
    let repair_moves = if config.repair_budget > 0 {
        2 * daemon.repair()?.swaps.len()
    } else {
        0
    };
    let repair_ms = ms_since(t0);

    let total_ms = ms_since(started);
    batch_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let quantile = |q: f64| -> f64 {
        if batch_us.is_empty() {
            return 0.0;
        }
        let idx = ((batch_us.len() - 1) as f64 * q).round() as usize;
        batch_us[idx]
    };
    let checksum = fold_digest(&[
        mean_rack_asynchrony,
        min_rack_headroom_watts,
        asynchrony_sum,
        scored_racks as f64,
        admissible as f64,
        daemon.fleet().committed() as f64,
        daemon.fleet().live_len() as f64,
        samples_ingested as f64,
        repair_moves as f64,
    ]);
    Ok(DaemonScalePoint {
        instances: n,
        threads: so_parallel::effective_lanes(),
        live_instances: daemon.fleet().live_len(),
        batches,
        samples_ingested,
        seed_ms,
        ingest_ms,
        query_ms,
        repair_ms,
        total_ms,
        rows_per_sec: samples_ingested as f64 / (ingest_ms / 1e3).max(1e-9),
        ingest_p50_us: quantile(0.50),
        ingest_p99_us: quantile(0.99),
        peak_rss_bytes: peak_rss_bytes(),
        mean_rack_asynchrony,
        min_rack_headroom_watts,
        checksum,
    })
}

impl DaemonScaleReport {
    /// Renders the report as the `BENCH_daemon.json` artifact — the same
    /// field-per-line shape as the other BENCH emitters, so
    /// `scripts/perf_gate.sh` extracts per-phase timings with the same
    /// awk.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"daemon_scale\",");
        let _ = writeln!(out, "  \"schema_version\": {DAEMON_SCALE_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"seed\": {},", self.config.seed);
        let _ = writeln!(
            out,
            "  \"samples_per_trace\": {},",
            self.config.samples_per_trace
        );
        let _ = writeln!(out, "  \"step_minutes\": {},", self.config.step_minutes);
        let _ = writeln!(out, "  \"sweeps\": {},", self.config.sweeps);
        let _ = writeln!(out, "  \"batch_slots\": {},", self.config.batch_slots);
        let _ = writeln!(out, "  \"sample_probes\": {},", self.config.sample_probes);
        let _ = writeln!(out, "  \"repair_budget\": {},", self.config.repair_budget);
        out.push_str("  \"points\": [\n");
        let rendered: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                let mut s = String::from("    {\n");
                let _ = writeln!(s, "      \"instances\": {},", p.instances);
                let _ = writeln!(s, "      \"threads\": {},", p.threads);
                let _ = writeln!(s, "      \"live_instances\": {},", p.live_instances);
                let _ = writeln!(s, "      \"batches\": {},", p.batches);
                let _ = writeln!(s, "      \"samples_ingested\": {},", p.samples_ingested);
                let _ = writeln!(s, "      \"seed_ms\": {:.3},", p.seed_ms);
                let _ = writeln!(s, "      \"ingest_ms\": {:.3},", p.ingest_ms);
                let _ = writeln!(s, "      \"query_ms\": {:.3},", p.query_ms);
                let _ = writeln!(s, "      \"repair_ms\": {:.3},", p.repair_ms);
                let _ = writeln!(s, "      \"total_ms\": {:.3},", p.total_ms);
                let _ = writeln!(s, "      \"rows_per_sec\": {:.1},", p.rows_per_sec);
                let _ = writeln!(s, "      \"ingest_p50_us\": {:.3},", p.ingest_p50_us);
                let _ = writeln!(s, "      \"ingest_p99_us\": {:.3},", p.ingest_p99_us);
                match p.peak_rss_bytes {
                    Some(bytes) => {
                        let _ = writeln!(s, "      \"peak_rss_bytes\": {bytes},");
                    }
                    None => {
                        let _ = writeln!(s, "      \"peak_rss_bytes\": null,");
                    }
                }
                let _ = writeln!(
                    s,
                    "      \"mean_rack_asynchrony\": {:.6},",
                    p.mean_rack_asynchrony
                );
                let _ = writeln!(
                    s,
                    "      \"min_rack_headroom_watts\": {:.6},",
                    p.min_rack_headroom_watts
                );
                let _ = writeln!(s, "      \"checksum\": {:.6}", p.checksum);
                s.push_str("    }");
                s
            })
            .collect();
        out.push_str(&rendered.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;
    use std::sync::mpsc;

    fn test_plane() -> Arc<LivePlane> {
        Arc::new(LivePlane::new(
            Arc::new(so_telemetry::RecordingSink::with_virtual_clock()),
            64,
            so_telemetry::default_online_rules(),
        ))
    }

    fn small_config() -> ServeConfig {
        ServeConfig {
            instances: 24,
            samples_per_trace: 16,
            step_minutes: 60,
            seed: 11,
            ttl_ms: Some(30_000),
            ..ServeConfig::default()
        }
    }

    fn request(addr: &str, head: &str, body: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let message = if body.is_empty() {
            format!("{head}\r\nHost: x\r\n\r\n")
        } else {
            format!(
                "{head}\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
        };
        stream.write_all(message.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (h, b) = response.split_once("\r\n\r\n").unwrap();
        (h.to_string(), b.to_string())
    }

    /// Spawns a serve session on an ephemeral port, returning the
    /// address and the join handle.
    fn spawn_serve(config: ServeConfig) -> (String, std::thread::JoinHandle<ServeOutcome>) {
        let (tx, rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            run_serve(&config, test_plane(), |line| {
                let addr = line
                    .split("\"addr\":\"http://")
                    .nth(1)
                    .and_then(|rest| rest.split('"').next())
                    .expect("announce line carries the address")
                    .to_string();
                tx.send(addr).unwrap();
            })
            .unwrap()
        });
        let addr = rx.recv_timeout(Duration::from_secs(20)).unwrap();
        (addr, handle)
    }

    #[test]
    fn serve_session_answers_every_endpoint_and_shuts_down() {
        let (addr, handle) = spawn_serve(small_config());

        let (head, body) = request(&addr, "GET /health HTTP/1.1", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"status\""), "{body}");

        let (head, body) = request(&addr, "GET /fleet HTTP/1.1", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"live_instances\":24"), "{body}");

        let (head, body) = request(&addr, "GET /headroom HTTP/1.1", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("min_rack_headroom_watts"), "{body}");

        let (head, body) = request(&addr, "GET /asynchrony HTTP/1.1", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("mean_rack_asynchrony"), "{body}");

        let (head, body) = request(&addr, "GET /asynchrony?rack=2 HTTP/1.1", "");
        assert!(
            head.starts_with("HTTP/1.1 200") || head.starts_with("HTTP/1.1 404"),
            "{head}"
        );
        assert!(!body.is_empty());

        let (head, _) = request(&addr, "GET /asynchrony?rack=zap HTTP/1.1", "");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");

        let (head, body) = request(&addr, "GET /admit?watts=50 HTTP/1.1", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"admits\""), "{body}");

        let (head, _) = request(&addr, "GET /whatif?rack=0&watts=50 HTTP/1.1", "");
        // Node 0 is the root, not a rack — 404 by contract.
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        let (head, body) = request(&addr, "POST /ingest HTTP/1.1", "0 120.5\n1 80.25\n");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"applied\":2"), "{body}");

        let (head, body) = request(
            &addr,
            "POST /ingest HTTP/1.1",
            "{\"slot\":2,\"watts\":42.5}\n",
        );
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"applied\":1"), "{body}");

        let (head, _) = request(&addr, "POST /ingest HTTP/1.1", "0 120.5\nbogus line\n");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");

        let (head, body) = request(&addr, "POST /repair HTTP/1.1", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"swaps\""), "{body}");

        let (head, body) = request(&addr, "POST /retire?slot=3 HTTP/1.1", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"retired\":3"), "{body}");

        // Retiring the same slot twice conflicts.
        let (head, _) = request(&addr, "POST /retire?slot=3 HTTP/1.1", "");
        assert!(head.starts_with("HTTP/1.1 409"), "{head}");

        // Ingest for the retired slot is dropped, not an error.
        let (head, body) = request(&addr, "POST /ingest HTTP/1.1", "3 9.0\n");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"dropped\":1"), "{body}");

        let (head, _) = request(&addr, "GET /ingest HTTP/1.1", "");
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");

        let (head, _) = request(&addr, "GET /nope HTTP/1.1", "");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        let (head, body) = request(&addr, "POST /shutdown HTTP/1.1", "");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("stopping"), "{body}");

        let outcome = handle.join().unwrap();
        // 24 seeded, 1 retired over the session.
        assert_eq!(outcome.live_instances, 23);
        assert_eq!(outcome.retired, 1);
        assert!(outcome.batches_ingested >= 3);
        assert_eq!(outcome.samples_dropped, 1);
    }

    #[test]
    fn ingest_via_http_is_bit_identical_to_offline_batch() {
        // The same sample stream through the daemon's HTTP surface and
        // through an in-process DaemonFleet must produce the exact same
        // scores — Rust float Display is round-trip exact, so comparing
        // the JSON strings is a bit-identity check.
        let config = small_config();

        let mut offline = build_daemon(&config, test_plane()).unwrap();
        let mut body = String::new();
        let mut updates = Vec::new();
        for round in 0..5u64 {
            for slot in 0..24usize {
                let watts = (mix(99, round * 24 + slot as u64) % 2_000) as f64 / 8.0;
                let _ = writeln!(body, "{slot} {watts}");
                updates.push(SampleUpdate { slot, watts });
            }
        }
        offline.ingest_batch(&updates).unwrap();
        let want = format!(
            "{{\"mean_rack_asynchrony\":{},\"racks\":{}}}\n",
            fmt_f64_or_null(offline.mean_rack_asynchrony()),
            offline.fleet().topology().racks().len()
        );

        let (addr, handle) = spawn_serve(config);
        let (head, got) = request(&addr, "POST /ingest HTTP/1.1", &body);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(
            got.contains(&format!("\"applied\":{}", updates.len())),
            "{got}"
        );
        let (_, got) = request(&addr, "GET /asynchrony HTTP/1.1", "");
        assert_eq!(got, want, "daemon ingest diverged from the offline batch");
        let _ = request(&addr, "POST /shutdown HTTP/1.1", "");
        handle.join().unwrap();
    }

    #[test]
    fn parse_ingest_body_accepts_both_protocols_and_rejects_garbage() {
        let parsed = parse_ingest_body("3 120.5\n{\"slot\":4,\"watts\":80.25}\n\n").unwrap();
        assert_eq!(
            parsed,
            vec![
                SampleUpdate {
                    slot: 3,
                    watts: 120.5
                },
                SampleUpdate {
                    slot: 4,
                    watts: 80.25
                },
            ]
        );
        for bad in [
            "x 1.0",
            "3",
            "3 1.0 extra",
            "{\"slot\":1.5,\"watts\":2}",
            "{\"watts\":2}",
            "{\"slot\":1,\"watts\":oops}",
        ] {
            assert!(parse_ingest_body(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn daemon_rung_is_deterministic_and_renders_gateable_json() {
        let config = DaemonScaleConfig {
            instances: vec![120],
            samples_per_trace: 24,
            sweeps: 2,
            batch_slots: 48,
            ..DaemonScaleConfig::default()
        };
        let a = run_daemon_scale(&config).unwrap();
        let b = run_daemon_scale(&config).unwrap();
        assert_eq!(a.points.len(), 1);
        assert_eq!(
            a.points[0].checksum.to_bits(),
            b.points[0].checksum.to_bits(),
            "daemon rung checksum must be run-to-run deterministic"
        );
        assert_eq!(a.points[0].samples_ingested, 2 * 120);

        let json = a.to_json();
        for key in [
            "\"benchmark\": \"daemon_scale\"",
            "\"schema_version\": 1",
            "\"instances\": 120",
            "\"ingest_ms\":",
            "\"query_ms\":",
            "\"repair_ms\":",
            "\"total_ms\":",
            "\"rows_per_sec\":",
            "\"ingest_p50_us\":",
            "\"ingest_p99_us\":",
            "\"checksum\":",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }
}
