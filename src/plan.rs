//! `smoothop plan` — the capacity-planning sweep: how many *additional*
//! racks of a given workload fit under one MSB-sized budget at a δ
//! overbooking allowance, under StatProf versus SmoothOperator
//! provisioning?
//!
//! The sweep models the paper's §5 provisioning question as an
//! incremental ladder. An MSB hosts an existing diurnal base fleet; the
//! planner appends candidate racks of workload `W` one at a time and
//! tracks, after every rack, the power requirement each provisioning
//! scheme would report:
//!
//! * **StatProf(u = 0, δ)** — sum of per-instance peaks (the quantile at
//!   u = 0 *is* the peak), the per-instance scheme of the paper's
//!   baseline;
//! * **SmoothOperator(u = 0, δ)** — peak of the aggregate sum, the
//!   budget a smoothed placement actually needs. Peak-of-sum ≤
//!   sum-of-peaks always, so SmoothOperator never fits fewer racks than
//!   StatProf — the `plan` oracle family pins exactly that law.
//!
//! δ enters as an overbooking *allowance* on the budget side: a scheme
//! fits `k` racks at δ when its requirement with `k` racks stays within
//! `budget · (1 + δ)`. Racks-fit is therefore monotone **non-decreasing**
//! in δ and non-increasing in the candidate workload's peak-to-mean
//! ratio (burstier racks consume budget faster).
//!
//! Candidate workloads:
//!
//! * `web-mix` — diurnal rows from the scale tier's basis-table
//!   synthesizer (same family as the base fleet);
//! * `llm-mix` — token-bursty rows from
//!   [`so_workloads::LlmBasis`]: prefill/decode alternation over a
//!   correlated burst clock with peak-to-mean ≥ 3×. The headline result
//!   (EXPERIMENTS.md) is that the gap between the two schemes *widens*
//!   on the LLM mix: bursty peaks inflate sum-of-peaks far more than
//!   they inflate the aggregate peak.
//!
//! Everything deterministic is a pure function of the config (the `plan`
//! golden test pins the schema and the checksum); only the `*_ms` and
//! `peak_rss_bytes` fields are machine-dependent. The report is written
//! as `BENCH_plan.json` and gated in CI by `scripts/perf_gate.sh`.

use std::fmt::Write as _;
use std::time::Instant;

use so_workloads::LlmBasis;

use crate::scale::{fold_digest, ms_since, peak_rss_bytes, RowWave, SynthBasis};

/// Schema version stamped into `BENCH_plan.json`; bump on any field
/// rename so downstream tooling fails loudly instead of misparsing.
pub const PLAN_SCHEMA_VERSION: u32 = 1;

/// Headroom factor applied to the base fleet's StatProf requirement when
/// no explicit `--budget` is given: the MSB is modeled as provisioned by
/// StatProf for the existing fleet plus 10 % expansion headroom.
pub const PLAN_HEADROOM: f64 = 0.10;

/// Seed salt separating candidate-rack waveform streams from the base
/// fleet's (same idiom as the online rung's `seed ^ 0x0E7E`).
const RACK_SEED_SALT: u64 = 0x0ADD_7ACC;

/// Candidate workload filling the swept racks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanWorkload {
    /// Diurnal web-style rows (the scale tier's basis-table family).
    WebMix,
    /// Token-bursty LLM rows ([`so_workloads::LlmBasis`], peak-to-mean
    /// ≥ 3×).
    LlmMix,
}

impl PlanWorkload {
    /// Both candidate workloads, in reporting order.
    pub const ALL: [PlanWorkload; 2] = [PlanWorkload::WebMix, PlanWorkload::LlmMix];

    /// Stable lower-case name stamped into `BENCH_plan.json`.
    pub fn as_str(self) -> &'static str {
        match self {
            PlanWorkload::WebMix => "web-mix",
            PlanWorkload::LlmMix => "llm-mix",
        }
    }

    /// Parses the CLI / JSON spelling (`"web-mix"` or `"llm-mix"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "web-mix" | "web" => Some(PlanWorkload::WebMix),
            "llm-mix" | "llm" => Some(PlanWorkload::LlmMix),
            _ => None,
        }
    }
}

/// Plan-sweep parameters. The defaults match the committed
/// `BENCH_plan.json`: a 50k-instance diurnal base fleet, up to 2 560
/// candidate racks of 12 slots, δ ∈ {0, 0.05, 0.10}, both workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanConfig {
    /// Instances of the existing (diurnal) base fleet under the MSB.
    pub base_instances: usize,
    /// Instances per candidate rack.
    pub rack_slots: usize,
    /// Sweep depth: the largest rack count probed. Reported fits are
    /// capped here by construction.
    pub max_racks: usize,
    /// Overbooking allowances to evaluate, strictly ascending.
    pub deltas: Vec<f64>,
    /// Candidate workloads to sweep, one report point each.
    pub workloads: Vec<PlanWorkload>,
    /// MSB budget in watts; `0` derives it from the base fleet
    /// (StatProf requirement × `1 + PLAN_HEADROOM`).
    pub budget_watts: f64,
    /// Samples per synthesized trace.
    pub samples_per_trace: usize,
    /// Sampling step of the synthesized grid, minutes.
    pub step_minutes: u32,
    /// Seed mixed into every synthesized waveform.
    pub seed: u64,
}

impl Default for PlanConfig {
    fn default() -> Self {
        Self {
            base_instances: 50_000,
            rack_slots: 12,
            max_racks: 2_560,
            deltas: vec![0.0, 0.05, 0.10],
            workloads: PlanWorkload::ALL.to_vec(),
            budget_watts: 0.0,
            samples_per_trace: 168,
            step_minutes: 60,
            seed: 7,
        }
    }
}

/// One overbooking point of a sweep: both schemes' fit and what it
/// strands.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanFit {
    /// The overbooking allowance δ.
    pub delta: f64,
    /// Racks StatProf(0, δ) admits.
    pub statprof_racks_fit: usize,
    /// Budget watts never drawn at StatProf's fit: `cap` minus the
    /// *actual* aggregate peak of base + fitted racks. Large numbers are
    /// the power fragmentation the paper attacks.
    pub statprof_stranded_watts: f64,
    /// Actual aggregate peak (watts) with StatProf's fitted racks.
    pub statprof_projected_peak_watts: f64,
    /// Racks SmoothOperator(0, δ) admits.
    pub smoothoperator_racks_fit: usize,
    /// `cap` minus the actual aggregate peak at SmoothOperator's fit.
    pub smoothoperator_stranded_watts: f64,
    /// Actual aggregate peak (watts) with SmoothOperator's fitted racks.
    pub smoothoperator_projected_peak_watts: f64,
}

/// One sweep point: a candidate workload's fits plus the deterministic
/// digests and phase timings.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanPoint {
    /// Capacity envelope of the sweep:
    /// `base_instances + max_racks · rack_slots`.
    pub instances: usize,
    /// The candidate workload swept.
    pub workload: PlanWorkload,
    /// Thread lanes at run time.
    pub threads: usize,
    /// The MSB budget the fits were computed against, watts.
    pub budget_watts: f64,
    /// Aggregate peak of the base fleet alone (peak-of-sum), watts.
    pub base_peak_watts: f64,
    /// StatProf requirement of the base fleet alone (sum-of-peaks),
    /// watts.
    pub base_sum_of_peaks_watts: f64,
    /// One entry per requested δ, in request order.
    pub fits: Vec<PlanFit>,
    /// Base-fleet synthesis wall time, milliseconds.
    pub synth_ms: f64,
    /// Rack synthesis + incremental requirement sweep wall time,
    /// milliseconds.
    pub sweep_ms: f64,
    /// End-to-end wall time of the point, milliseconds.
    pub total_ms: f64,
    /// Process peak RSS after the point, bytes (`null` off Linux).
    pub peak_rss_bytes: Option<u64>,
    /// Folded digest over the deterministic outputs; bit-identical
    /// across runs and thread counts for one config.
    pub checksum: f64,
}

/// A full plan run: config echo plus one [`PlanPoint`] per workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// The configuration the report was produced under.
    pub config: PlanConfig,
    /// One point per requested workload, in request order.
    pub points: Vec<PlanPoint>,
}

/// The largest `k` such that `required[k - 1] ≤ budget · (1 + delta)`,
/// where `required[k - 1]` is the scheme's requirement with `k` racks
/// placed. The ladder stops at the first exceeding point — requirement
/// series are monotone non-decreasing (racks only add non-negative
/// power), so nothing past the first break can fit.
pub fn racks_fit_from_series(required: &[f64], budget: f64, delta: f64) -> usize {
    let cap = budget * (1.0 + delta);
    let mut fit = 0;
    for (k, &req) in required.iter().enumerate() {
        if req <= cap {
            fit = k + 1;
        } else {
            break;
        }
    }
    fit
}

/// Runs the capacity-planning sweep described by `config`.
///
/// # Errors
///
/// Returns an error when `config` is degenerate: no workloads or deltas,
/// deltas not strictly ascending or negative, zero base/rack/samples
/// dimensions, or a non-finite budget.
pub fn run_plan(config: &PlanConfig) -> Result<PlanReport, Box<dyn std::error::Error>> {
    if config.base_instances == 0 || config.rack_slots == 0 || config.max_racks == 0 {
        return Err("base_instances, rack_slots, and max_racks must be positive".into());
    }
    if config.samples_per_trace == 0 {
        return Err("samples_per_trace must be positive".into());
    }
    if config.workloads.is_empty() {
        return Err("plan sweep needs at least one workload".into());
    }
    if config.deltas.is_empty() {
        return Err("plan sweep needs at least one delta".into());
    }
    if config.deltas.iter().any(|d| !d.is_finite() || *d < 0.0) {
        return Err("deltas must be finite and non-negative".into());
    }
    if config.deltas.windows(2).any(|w| w[0] >= w[1]) {
        return Err("deltas must be strictly ascending".into());
    }
    if !config.budget_watts.is_finite() || config.budget_watts < 0.0 {
        return Err("budget_watts must be finite and non-negative".into());
    }
    let mut points = Vec::with_capacity(config.workloads.len());
    for &workload in &config.workloads {
        points.push(run_point(config, workload)?);
    }
    Ok(PlanReport {
        config: config.clone(),
        points,
    })
}

fn run_point(
    config: &PlanConfig,
    workload: PlanWorkload,
) -> Result<PlanPoint, Box<dyn std::error::Error>> {
    let samples = config.samples_per_trace;
    let started = Instant::now();

    // Phase 1: the existing base fleet, streamed one row at a time — the
    // plan needs only its aggregate sum and its sum of peaks, so memory
    // stays O(samples) regardless of the fleet size.
    let t0 = Instant::now();
    let basis = SynthBasis::new(samples);
    let mut row = vec![0.0f64; samples];
    let mut base_sum = vec![0.0f64; samples];
    let mut base_sum_of_peaks = 0.0f64;
    for r in 0..config.base_instances {
        RowWave::new(config.seed, r as u64).fill(&basis, &mut row);
        let mut peak = f64::NEG_INFINITY;
        for (acc, &v) in base_sum.iter_mut().zip(&row) {
            *acc += v;
            peak = peak.max(v);
        }
        base_sum_of_peaks += peak;
    }
    let base_peak = base_sum.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let synth_ms = ms_since(t0);

    let budget = if config.budget_watts > 0.0 {
        config.budget_watts
    } else {
        base_sum_of_peaks * (1.0 + PLAN_HEADROOM)
    };

    // Phase 2: append candidate racks one at a time, tracking both
    // schemes' requirement after every rack. `smoop_required` is the
    // peak of a cumulative sum of non-negative rows, so both series are
    // monotone non-decreasing — the property `racks_fit_from_series`
    // and the `plan` oracle family rely on.
    let t0 = Instant::now();
    let llm = match workload {
        PlanWorkload::LlmMix => Some(LlmBasis::new(samples, config.step_minutes)),
        PlanWorkload::WebMix => None,
    };
    let mut running = base_sum.clone();
    let mut statprof_cum = base_sum_of_peaks;
    let mut statprof_required = Vec::with_capacity(config.max_racks);
    let mut smoop_required = Vec::with_capacity(config.max_racks);
    for rack in 0..config.max_racks {
        for slot in 0..config.rack_slots {
            let row_id = (rack * config.rack_slots + slot) as u64;
            match &llm {
                Some(llm) => llm.fill_row(config.seed, row_id, &mut row),
                None => RowWave::new(config.seed ^ RACK_SEED_SALT, row_id).fill(&basis, &mut row),
            }
            let mut peak = f64::NEG_INFINITY;
            for (acc, &v) in running.iter_mut().zip(&row) {
                *acc += v;
                peak = peak.max(v);
            }
            statprof_cum += peak;
        }
        statprof_required.push(statprof_cum);
        smoop_required.push(running.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }
    let sweep_ms = ms_since(t0);

    // Phase 3: fits per δ. `projected peak` is the aggregate peak the
    // fitted fleet would actually draw — `smoop_required` at the fitted
    // count — so StatProf's stranded watts quantify the budget its
    // conservative estimate leaves idle.
    let actual_peak_at = |fit: usize| {
        if fit == 0 {
            base_peak
        } else {
            smoop_required[fit - 1]
        }
    };
    let mut fits = Vec::with_capacity(config.deltas.len());
    for &delta in &config.deltas {
        let cap = budget * (1.0 + delta);
        let sp = racks_fit_from_series(&statprof_required, budget, delta);
        let so = racks_fit_from_series(&smoop_required, budget, delta);
        let fit = PlanFit {
            delta,
            statprof_racks_fit: sp,
            statprof_projected_peak_watts: actual_peak_at(sp),
            statprof_stranded_watts: cap - actual_peak_at(sp),
            smoothoperator_racks_fit: so,
            smoothoperator_projected_peak_watts: actual_peak_at(so),
            smoothoperator_stranded_watts: cap - actual_peak_at(so),
        };
        if so_telemetry::enabled() {
            let delta_label = format!("{delta:.2}");
            for (scheme, racks, stranded) in [
                ("statprof", sp, fit.statprof_stranded_watts),
                ("smoothoperator", so, fit.smoothoperator_stranded_watts),
            ] {
                let labels = [
                    ("workload", workload.as_str()),
                    ("scheme", scheme),
                    ("delta", delta_label.as_str()),
                ];
                so_telemetry::gauge_set("so_plan_racks_fit", &labels, racks as f64);
                so_telemetry::gauge_set("so_plan_stranded_watts", &labels, stranded);
            }
        }
        fits.push(fit);
    }

    // Digest in documented order: budget, the base digests, both
    // series' endpoints, then every fit count in δ order.
    let mut digest_parts = vec![
        budget,
        base_peak,
        base_sum_of_peaks,
        *statprof_required.last().expect("max_racks > 0"),
        *smoop_required.last().expect("max_racks > 0"),
    ];
    for fit in &fits {
        digest_parts.push(fit.statprof_racks_fit as f64);
        digest_parts.push(fit.smoothoperator_racks_fit as f64);
    }
    Ok(PlanPoint {
        instances: config.base_instances + config.max_racks * config.rack_slots,
        workload,
        threads: so_parallel::effective_lanes(),
        budget_watts: budget,
        base_peak_watts: base_peak,
        base_sum_of_peaks_watts: base_sum_of_peaks,
        fits,
        synth_ms,
        sweep_ms,
        total_ms: ms_since(started),
        peak_rss_bytes: peak_rss_bytes(),
        checksum: fold_digest(&digest_parts),
    })
}

impl PlanReport {
    /// Renders the report as the `BENCH_plan.json` artifact — the same
    /// field-per-line shape as the scale artifacts (each point keyed by
    /// `"instances"` first), so `scripts/perf_gate.sh` extracts the
    /// phase timings with the same awk.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"plan\",");
        let _ = writeln!(out, "  \"schema_version\": {PLAN_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"seed\": {},", self.config.seed);
        let _ = writeln!(
            out,
            "  \"samples_per_trace\": {},",
            self.config.samples_per_trace
        );
        let _ = writeln!(out, "  \"step_minutes\": {},", self.config.step_minutes);
        let _ = writeln!(out, "  \"base_instances\": {},", self.config.base_instances);
        let _ = writeln!(out, "  \"rack_slots\": {},", self.config.rack_slots);
        let _ = writeln!(out, "  \"max_racks\": {},", self.config.max_racks);
        out.push_str("  \"points\": [\n");
        let rendered: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                let mut s = String::from("    {\n");
                let _ = writeln!(s, "      \"instances\": {},", p.instances);
                let _ = writeln!(s, "      \"workload\": \"{}\",", p.workload.as_str());
                let _ = writeln!(s, "      \"threads\": {},", p.threads);
                let _ = writeln!(s, "      \"budget_watts\": {:.6},", p.budget_watts);
                let _ = writeln!(s, "      \"base_peak_watts\": {:.6},", p.base_peak_watts);
                let _ = writeln!(
                    s,
                    "      \"base_sum_of_peaks_watts\": {:.6},",
                    p.base_sum_of_peaks_watts
                );
                s.push_str("      \"fits\": [\n");
                let fit_blocks: Vec<String> = p
                    .fits
                    .iter()
                    .map(|f| {
                        let mut b = String::from("        {\n");
                        let _ = writeln!(b, "          \"delta\": {:.3},", f.delta);
                        let _ = writeln!(
                            b,
                            "          \"statprof_racks_fit\": {},",
                            f.statprof_racks_fit
                        );
                        let _ = writeln!(
                            b,
                            "          \"statprof_stranded_watts\": {:.6},",
                            f.statprof_stranded_watts
                        );
                        let _ = writeln!(
                            b,
                            "          \"statprof_projected_peak_watts\": {:.6},",
                            f.statprof_projected_peak_watts
                        );
                        let _ = writeln!(
                            b,
                            "          \"smoothoperator_racks_fit\": {},",
                            f.smoothoperator_racks_fit
                        );
                        let _ = writeln!(
                            b,
                            "          \"smoothoperator_stranded_watts\": {:.6},",
                            f.smoothoperator_stranded_watts
                        );
                        let _ = writeln!(
                            b,
                            "          \"smoothoperator_projected_peak_watts\": {:.6}",
                            f.smoothoperator_projected_peak_watts
                        );
                        b.push_str("        }");
                        b
                    })
                    .collect();
                s.push_str(&fit_blocks.join(",\n"));
                s.push_str("\n      ],\n");
                let _ = writeln!(s, "      \"synth_ms\": {:.3},", p.synth_ms);
                let _ = writeln!(s, "      \"sweep_ms\": {:.3},", p.sweep_ms);
                let _ = writeln!(s, "      \"total_ms\": {:.3},", p.total_ms);
                match p.peak_rss_bytes {
                    Some(bytes) => {
                        let _ = writeln!(s, "      \"peak_rss_bytes\": {bytes},");
                    }
                    None => {
                        let _ = writeln!(s, "      \"peak_rss_bytes\": null,");
                    }
                }
                let _ = writeln!(s, "      \"checksum\": {:.6}", p.checksum);
                s.push_str("    }");
                s
            })
            .collect();
        out.push_str(&rendered.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> PlanConfig {
        PlanConfig {
            base_instances: 600,
            rack_slots: 4,
            max_racks: 24,
            deltas: vec![0.0, 0.05, 0.10],
            workloads: PlanWorkload::ALL.to_vec(),
            budget_watts: 0.0,
            samples_per_trace: 56,
            step_minutes: 180,
            seed: 7,
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let config = tiny_config();
        let a = run_plan(&config).unwrap();
        let b = run_plan(&config).unwrap();
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.checksum.to_bits(), y.checksum.to_bits());
            assert_eq!(x.fits, y.fits);
            assert_eq!(x.budget_watts.to_bits(), y.budget_watts.to_bits());
        }
    }

    #[test]
    fn smoothoperator_never_fits_fewer_racks() {
        let report = run_plan(&tiny_config()).unwrap();
        for p in &report.points {
            for f in &p.fits {
                assert!(
                    f.smoothoperator_racks_fit >= f.statprof_racks_fit,
                    "{:?} δ {}: smoop {} < statprof {}",
                    p.workload,
                    f.delta,
                    f.smoothoperator_racks_fit,
                    f.statprof_racks_fit
                );
                // Fitted fleets stay within the overbooked cap.
                let cap = p.budget_watts * (1.0 + f.delta);
                assert!(f.smoothoperator_projected_peak_watts <= cap * (1.0 + 1e-9));
                assert!(f.statprof_projected_peak_watts <= cap * (1.0 + 1e-9));
            }
            // Racks-fit is monotone non-decreasing in δ.
            for w in p.fits.windows(2) {
                assert!(w[0].statprof_racks_fit <= w[1].statprof_racks_fit);
                assert!(w[0].smoothoperator_racks_fit <= w[1].smoothoperator_racks_fit);
            }
        }
    }

    #[test]
    fn racks_fit_boundary_is_inclusive() {
        let required = [10.0, 20.0, 30.0];
        // Exact equality at the cap counts as fitting.
        assert_eq!(racks_fit_from_series(&required, 20.0, 0.0), 2);
        assert_eq!(racks_fit_from_series(&required, 9.0, 0.0), 0);
        assert_eq!(racks_fit_from_series(&required, 100.0, 0.0), 3);
        // δ widens the cap: 20 · 1.5 = 30 admits the third rack.
        assert_eq!(racks_fit_from_series(&required, 20.0, 0.5), 3);
    }

    #[test]
    fn production_fit_passes_the_plan_oracle() {
        // The sweep implementation the CLI ships is the one the oracle
        // family's reference validates — pinned across crates here.
        let required: Vec<f64> = (1..=40).map(|k| 95.0 + 5.0 * k as f64).collect();
        let mut report = so_oracles::OracleReport::new();
        so_oracles::plan::check_sweep_fit(
            &racks_fit_from_series,
            &required,
            200.0,
            &[0.0, 0.05, 0.10],
            &mut report,
        );
        assert!(report.is_clean(), "{:#?}", report.violations());
        assert!(report.evaluations(so_oracles::OracleFamily::Plan) > 0);
    }

    #[test]
    fn explicit_budget_is_respected() {
        let mut config = tiny_config();
        config.budget_watts = 1.0; // far below any base requirement
        let report = run_plan(&config).unwrap();
        for p in &report.points {
            assert_eq!(p.budget_watts, 1.0);
            for f in &p.fits {
                assert_eq!(f.statprof_racks_fit, 0);
                assert_eq!(f.smoothoperator_racks_fit, 0);
            }
        }
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mut c = tiny_config();
        c.deltas.clear();
        assert!(run_plan(&c).is_err());
        let mut c = tiny_config();
        c.deltas = vec![0.10, 0.05];
        assert!(run_plan(&c).is_err());
        let mut c = tiny_config();
        c.deltas = vec![-0.05, 0.0];
        assert!(run_plan(&c).is_err());
        let mut c = tiny_config();
        c.base_instances = 0;
        assert!(run_plan(&c).is_err());
        let mut c = tiny_config();
        c.workloads.clear();
        assert!(run_plan(&c).is_err());
        let mut c = tiny_config();
        c.budget_watts = f64::NAN;
        assert!(run_plan(&c).is_err());
    }

    #[test]
    fn report_json_carries_every_point_and_fit() {
        let report = run_plan(&tiny_config()).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"plan\""));
        assert!(json.contains("\"workload\": \"web-mix\""));
        assert!(json.contains("\"workload\": \"llm-mix\""));
        assert_eq!(json.matches("\"instances\": ").count(), 2);
        assert_eq!(json.matches("\"delta\": ").count(), 6);
    }
}
