//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest used by this workspace's property
//! tests: the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], [`Just`], the
//! [`proptest!`] macro with optional `#![proptest_config(..)]`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-case seed (no persisted failure file) and failing cases are not
//! shrunk — the failing case index is reported instead, which is enough
//! to reproduce locally because generation is fully deterministic.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be skipped.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic per-case generator.
pub type TestRng = StdRng;

/// Builds the RNG for one case. Public for the macro's benefit.
#[doc(hidden)]
pub fn case_rng(case: u64) -> TestRng {
    StdRng::seed_from_u64(0x5052_4F50_7E57u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Boxes a strategy for [`Union`]; used by [`prop_oneof!`].
#[doc(hidden)]
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Weighted choice among strategies sharing a value type; the engine
/// behind [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty or every weight is zero.
    pub fn new_weighted(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("pick is below the total weight")
    }
}

/// Chooses among strategies, optionally weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The macro-driven test runner. See [`proptest!`].
#[macro_export]
macro_rules! proptest {
    (
        @with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut proptest_rng = $crate::case_rng(case);
                    $(
                        let $pat = $crate::Strategy::generate(&($strategy), &mut proptest_rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {case} failed: {msg}");
                        }
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, Union};

    /// Upstream proptest re-exports the crate root as `prop` from its
    /// prelude, enabling `prop::collection::vec`.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5.0f64..6.0), c in 0u32..=3) {
            prop_assert!(a < 10);
            prop_assert!((5.0..6.0).contains(&b));
            prop_assert!(c <= 3);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0.0f64..1.0, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn map_and_flat_map(v in (2usize..5).prop_flat_map(|n| prop::collection::vec(Just(n), n..=n)).prop_map(|v| v.len())) {
            prop_assert!((2..5).contains(&v));
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_draws_from_every_arm(v in prop::collection::vec(
            prop_oneof![1 => Just(1u8), 1 => Just(2u8), 3 => Just(3u8)],
            64..=64,
        )) {
            prop_assert!(v.iter().all(|&x| (1..=3).contains(&x)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = crate::collection::vec(0.0f64..1.0, 4..9);
        let a = s.generate(&mut crate::case_rng(5));
        let b = s.generate(&mut crate::case_rng(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case 0 failed")]
    fn failures_panic() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(_n in 0usize..10) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}
