//! Offline stand-in for `serde_derive`.
//!
//! The workspace's types carry `#[derive(Serialize, Deserialize)]` so they
//! are serialization-ready once the real `serde` is available, but nothing
//! in-tree performs (de)serialization. These derives therefore expand to
//! nothing: the marker traits in the sibling `serde` shim are blanket-
//! implemented for every type.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
