//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate supplies
//! just enough of serde's surface for the workspace to compile: the
//! [`Serialize`] / [`Deserialize`] marker traits (blanket-implemented for
//! every type) and the matching no-op derive macros. Swapping in the real
//! `serde` later only requires repointing the workspace dependency.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
