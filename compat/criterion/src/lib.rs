//! Offline stand-in for `criterion`.
//!
//! Provides the group/bench API surface used by `crates/bench/benches`:
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], `sample_size`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is plain wall-clock sampling; the
//! `--test` flag (used by CI's bench smoke job) runs every routine exactly
//! once and reports pass/fail instead of timing.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is only a parameter (rendered under the group name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            name: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Drives one benchmark routine.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    /// Collected per-iteration wall times.
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample (once in `--test` mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // One warm-up iteration keeps cold-cache effects out of the
        // samples without criterion's full warm-up phase.
        black_box(routine());
        self.times.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs `f` as the benchmark `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.name, |b| f(b));
        self
    }

    /// Runs `f` with an input as the benchmark `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.name, |b| f(b, input));
        self
    }

    /// Ends the group (drop would do; kept for API parity).
    pub fn finish(&mut self) {}

    fn run(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        let full = format!("{}/{}", self.name, name);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut bencher);
        if self.criterion.test_mode {
            println!("test {full} ... ok");
        } else {
            report(&full, &mut bencher.times);
        }
    }
}

fn report(name: &str, times: &mut [Duration]) {
    if times.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let min = times[0];
    let max = times[times.len() - 1];
    println!(
        "{name:<50} time: [{} {} {}] ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max),
        times.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    /// Reads the command line: `--test` switches to smoke mode (each
    /// routine runs once), a positional argument filters benchmarks by
    /// substring, and all other flags are accepted and ignored.
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_owned()),
            }
        }
        Self { test_mode, filter }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().map_or(true, |f| name.contains(f))
    }
}

/// Declares a function running a sequence of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).name, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
        assert_eq!(BenchmarkId::from("plain").name, "plain");
    }

    #[test]
    fn groups_run_and_report() {
        let mut criterion = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut ran = 0;
        {
            let mut group = criterion.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("a", |b| b.iter(|| ran += 1));
            group.finish();
        }
        assert_eq!(ran, 1, "--test mode runs the routine exactly once");
    }

    #[test]
    fn filters_skip_non_matching() {
        let mut criterion = Criterion {
            test_mode: true,
            filter: Some("nope".into()),
        };
        let mut ran = 0;
        criterion
            .benchmark_group("g")
            .bench_function("a", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 0);
    }

    #[test]
    fn durations_format_across_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
