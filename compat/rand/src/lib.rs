//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, deterministic implementation of the `rand` API
//! surface it actually uses: [`Rng`], [`SeedableRng`], [`rngs::StdRng`]
//! and [`seq::SliceRandom`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — statistically solid for simulation workloads and fully
//! reproducible across platforms. Value streams differ from upstream
//! `rand`'s `StdRng` (ChaCha12), which is fine: nothing in this repo
//! depends on upstream's exact stream, only on seed-determinism.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type of the range.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Lemire-style rejection-free-enough modulo; bias is
                // negligible for the span sizes used here, but reject the
                // tail anyway to stay uniform.
                let zone = u64::MAX - (u64::MAX % span.max(1));
                loop {
                    let x = rng.next_u64();
                    if span == 0 || x < zone {
                        return self.start + (x % span.max(1)) as $t;
                    }
                }
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    // Full 64-bit domain: every word is uniform already.
                    return <$t as Standard>::sample(rng);
                }
                let span = span as u64;
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return start.wrapping_add((x % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but be explicit.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let k = rng.gen_range(0u32..=4);
            assert!(k <= 4);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
        assert!([1, 2, 3].choose(&mut rng).is_some());
        assert!(Vec::<u8>::new().choose(&mut rng).is_none());
    }
}
