//! Trace hygiene: detection and repair of degraded power telemetry.
//!
//! Real fleet telemetry never arrives pristine: sensors drop samples
//! (NaN/gaps), glitch (isolated spikes, negative readings), and loggers
//! occasionally emit garbage. Every other component of the workspace
//! assumes the [`PowerTrace`] invariants (finite, non-negative samples),
//! so raw readings pass through a [`TraceSanitizer`] first. The sanitizer
//! classifies bad samples, repairs them under a configurable
//! [`GapPolicy`], and reports exactly what it changed in a
//! [`RepairReport`].
//!
//! Two properties the repair guarantees (both property-tested):
//!
//! * **Idempotence** — sanitizing an already-sanitized trace changes
//!   nothing and reports a clean bill.
//! * **Peak monotonicity** — repairs only ever interpolate, hold, zero,
//!   or drop, so the repaired peak never exceeds the largest valid input
//!   sample.

use serde::{Deserialize, Serialize};

use crate::error::TraceError;
use crate::trace::PowerTrace;

/// How flagged samples (invalid readings, spikes, and the gaps they form)
/// are repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GapPolicy {
    /// Linear interpolation between the nearest valid samples on either
    /// side; boundary gaps hold the nearest valid sample flat.
    Interpolate,
    /// Hold the last valid sample; a leading gap back-fills from the
    /// first valid sample.
    HoldLast,
    /// Replace with zero watts (a machine whose sensor is gone draws an
    /// unknown amount; zero is the conservative floor for budgets derived
    /// from *other* nodes' headroom).
    Zero,
    /// Remove flagged samples entirely, shortening the trace. The sample
    /// step is preserved, so downstream alignment is the caller's
    /// responsibility; intended for offline statistics, not placement.
    Drop,
}

/// Configuration of a [`TraceSanitizer`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SanitizeConfig {
    /// Repair policy for flagged samples.
    pub gap_policy: GapPolicy,
    /// A valid sample is flagged as a spike when it exceeds
    /// `spike_factor × base` plus
    /// [`spike_floor_watts`](Self::spike_floor_watts), where `base` is the
    /// larger of its nearest valid neighbors and the median of all valid
    /// samples (the median keeps samples adjacent to zero-filled gaps from
    /// being misread as spikes). Must be ≥ 1; `f64::INFINITY` disables
    /// spike detection.
    pub spike_factor: f64,
    /// Absolute allowance added to the spike threshold so near-zero
    /// neighborhoods don't flag ordinary noise.
    pub spike_floor_watts: f64,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        Self {
            gap_policy: GapPolicy::Interpolate,
            spike_factor: 10.0,
            spike_floor_watts: 1.0,
        }
    }
}

impl SanitizeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSample`] (index 0) when `spike_factor`
    /// is below 1 or NaN, or `spike_floor_watts` is negative or NaN.
    pub fn validate(&self) -> Result<(), TraceError> {
        if self.spike_factor.is_nan() || self.spike_factor < 1.0 {
            return Err(TraceError::InvalidSample {
                index: 0,
                value: self.spike_factor,
            });
        }
        if self.spike_floor_watts.is_nan() || self.spike_floor_watts < 0.0 {
            return Err(TraceError::InvalidSample {
                index: 0,
                value: self.spike_floor_watts,
            });
        }
        Ok(())
    }
}

/// What a sanitization pass found and repaired.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairReport {
    /// Samples that were NaN, infinite, or negative.
    pub invalid_samples: usize,
    /// Valid samples flagged as isolated sensor spikes.
    pub spike_samples: usize,
    /// Contiguous flagged runs that were repaired (or dropped).
    pub repaired_runs: usize,
    /// Samples removed under [`GapPolicy::Drop`].
    pub dropped_samples: usize,
    /// True when not a single valid sample existed; the output is all
    /// zeros (for non-drop policies) and should be treated as missing.
    pub all_invalid: bool,
}

impl RepairReport {
    /// True when the input needed no repair at all.
    pub fn is_clean(&self) -> bool {
        self.invalid_samples == 0 && self.spike_samples == 0
    }

    /// Total samples that were touched.
    pub fn flagged(&self) -> usize {
        self.invalid_samples + self.spike_samples
    }
}

/// Detects and repairs degraded samples in raw power readings.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), so_powertrace::TraceError> {
/// use so_powertrace::TraceSanitizer;
///
/// let raw = vec![100.0, f64::NAN, -3.0, 130.0];
/// let (trace, report) = TraceSanitizer::default().sanitize(&raw, 10)?;
/// assert_eq!(trace.samples(), &[100.0, 110.0, 120.0, 130.0]);
/// assert_eq!(report.invalid_samples, 2);
/// assert_eq!(report.repaired_runs, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSanitizer {
    config: SanitizeConfig,
}

impl TraceSanitizer {
    /// A sanitizer with the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`SanitizeConfig::validate`] failures.
    pub fn new(config: SanitizeConfig) -> Result<Self, TraceError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &SanitizeConfig {
        &self.config
    }

    /// Sanitizes raw samples into a valid [`PowerTrace`] plus a repair
    /// report.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for empty input (or when
    /// [`GapPolicy::Drop`] removes every sample) and
    /// [`TraceError::ZeroStep`] for a zero step.
    pub fn sanitize(
        &self,
        samples: &[f64],
        step_minutes: u32,
    ) -> Result<(PowerTrace, RepairReport), TraceError> {
        if samples.is_empty() {
            return Err(TraceError::Empty);
        }
        if step_minutes == 0 {
            return Err(TraceError::ZeroStep);
        }

        let mut report = RepairReport::default();
        let mut current = samples.to_vec();

        // Detect → repair to a fixed point: repairing a spike lowers a
        // neighbor, which can expose a sample the first pass kept (for
        // example under [`GapPolicy::Zero`]). Running until no sample is
        // flagged makes `sanitize ∘ sanitize == sanitize` hold for every
        // policy by construction. Each round strictly lowers the flagged
        // samples, so the loop converges; the round cap is a defensive
        // bound, not an expected path.
        for _round in 0..=samples.len() {
            let mut flagged = vec![false; current.len()];
            let mut any = false;
            for (i, &v) in current.iter().enumerate() {
                if !v.is_finite() || v < 0.0 {
                    flagged[i] = true;
                    any = true;
                    report.invalid_samples += 1;
                }
            }
            if self.config.spike_factor.is_finite() {
                for i in self.detect_spikes(&current, &flagged) {
                    flagged[i] = true;
                    any = true;
                    report.spike_samples += 1;
                }
            }
            if !any {
                break;
            }
            current = self.repair(&current, &flagged, &mut report);
            if current.is_empty() {
                return Err(TraceError::Empty);
            }
        }

        let trace = PowerTrace::new(current, step_minutes)?;
        if so_telemetry::enabled() {
            so_telemetry::counter_add("so_sanitize_traces_total", &[], 1);
            so_telemetry::counter_add(
                "so_sanitize_invalid_samples_total",
                &[],
                report.invalid_samples as u64,
            );
            so_telemetry::counter_add(
                "so_sanitize_spike_samples_total",
                &[],
                report.spike_samples as u64,
            );
            so_telemetry::counter_add(
                "so_sanitize_repaired_runs_total",
                &[],
                report.repaired_runs as u64,
            );
            so_telemetry::counter_add(
                "so_sanitize_dropped_samples_total",
                &[],
                report.dropped_samples as u64,
            );
            if report.all_invalid {
                so_telemetry::counter_add("so_sanitize_all_invalid_total", &[], 1);
            }
        }
        Ok((trace, report))
    }

    /// Sanitizes an existing (already structurally valid) trace — only
    /// spike repair can apply.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] when [`GapPolicy::Drop`] removes
    /// every sample.
    pub fn sanitize_trace(
        &self,
        trace: &PowerTrace,
    ) -> Result<(PowerTrace, RepairReport), TraceError> {
        self.sanitize(trace.samples(), trace.step_minutes())
    }

    /// Indices of valid samples that tower over both their valid neighbors
    /// and the valid-sample median. The median term keeps repairs from
    /// cascading: a sample next to a zero-filled gap is not a spike as
    /// long as it sits near the trace's typical level.
    fn detect_spikes(&self, samples: &[f64], flagged: &[bool]) -> Vec<usize> {
        let valid: Vec<f64> = samples
            .iter()
            .zip(flagged)
            .filter(|(_, &f)| !f)
            .map(|(&v, _)| v)
            .collect();
        // The shared workspace median (crate::quantile): valid samples are
        // finite, so the only failure mode is an empty slice.
        let median = match crate::quantile::median(&valid) {
            Ok(m) => m,
            Err(_) => return Vec::new(),
        };

        let mut spikes = Vec::new();
        for i in 0..samples.len() {
            if flagged[i] {
                continue;
            }
            let left = (0..i).rev().find(|&j| !flagged[j]).map(|j| samples[j]);
            let right = (i + 1..samples.len())
                .find(|&j| !flagged[j])
                .map(|j| samples[j]);
            let base = match (left, right) {
                (Some(l), Some(r)) => l.max(r),
                (Some(one), None) | (None, Some(one)) => one,
                // The only valid sample has nothing to be judged against.
                (None, None) => continue,
            };
            let base = base.max(median);
            if samples[i] > self.config.spike_factor * base + self.config.spike_floor_watts {
                spikes.push(i);
            }
        }
        spikes
    }

    /// Applies the gap policy to every flagged run.
    fn repair(&self, samples: &[f64], flagged: &[bool], report: &mut RepairReport) -> Vec<f64> {
        let valid_count = flagged.iter().filter(|&&f| !f).count();
        if valid_count == 0 {
            report.all_invalid = true;
            report.repaired_runs = usize::from(!samples.is_empty());
            return match self.config.gap_policy {
                GapPolicy::Drop => {
                    report.dropped_samples = samples.len();
                    Vec::new()
                }
                _ => vec![0.0; samples.len()],
            };
        }

        let mut out = Vec::with_capacity(samples.len());
        let mut i = 0usize;
        while i < samples.len() {
            if !flagged[i] {
                out.push(samples[i]);
                i += 1;
                continue;
            }
            // A maximal flagged run [i, end).
            let mut end = i;
            while end < samples.len() && flagged[end] {
                end += 1;
            }
            report.repaired_runs += 1;
            let left = (0..i).rev().find(|&j| !flagged[j]).map(|j| samples[j]);
            let right = (end..samples.len())
                .find(|&j| !flagged[j])
                .map(|j| samples[j]);
            match self.config.gap_policy {
                GapPolicy::Drop => report.dropped_samples += end - i,
                GapPolicy::Zero => out.extend(std::iter::repeat(0.0).take(end - i)),
                GapPolicy::HoldLast => {
                    let fill = left.or(right).expect("some valid sample exists");
                    out.extend(std::iter::repeat(fill).take(end - i));
                }
                GapPolicy::Interpolate => match (left, right) {
                    (Some(l), Some(r)) => {
                        // Anchors sit one step outside the run on each side.
                        let span = (end - i + 1) as f64;
                        for k in 0..(end - i) {
                            let frac = (k + 1) as f64 / span;
                            out.push((l * (1.0 - frac) + r * frac).max(0.0));
                        }
                    }
                    (Some(one), None) | (None, Some(one)) => {
                        out.extend(std::iter::repeat(one).take(end - i));
                    }
                    (None, None) => unreachable!("a valid sample exists"),
                },
            }
            i = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sanitize(samples: &[f64]) -> (PowerTrace, RepairReport) {
        TraceSanitizer::default().sanitize(samples, 10).unwrap()
    }

    #[test]
    fn clean_input_passes_through() {
        let (t, r) = sanitize(&[1.0, 2.0, 3.0]);
        assert_eq!(t.samples(), &[1.0, 2.0, 3.0]);
        assert!(r.is_clean());
        assert_eq!(r.repaired_runs, 0);
    }

    #[test]
    fn nan_negative_and_infinite_are_repaired() {
        let (t, r) = sanitize(&[10.0, f64::NAN, f64::INFINITY, -5.0, 50.0]);
        assert_eq!(t.samples(), &[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(r.invalid_samples, 3);
        assert_eq!(r.repaired_runs, 1);
        assert!(!r.all_invalid);
    }

    #[test]
    fn boundary_gaps_hold_nearest_valid() {
        let (t, _) = sanitize(&[f64::NAN, 7.0, f64::NAN]);
        assert_eq!(t.samples(), &[7.0, 7.0, 7.0]);
    }

    #[test]
    fn spike_is_flattened() {
        let (t, r) = sanitize(&[100.0, 5000.0, 110.0]);
        assert_eq!(r.spike_samples, 1);
        assert_eq!(t.samples(), &[100.0, 105.0, 110.0]);
    }

    #[test]
    fn plausible_peaks_are_not_spikes() {
        let raw = [100.0, 340.0, 360.0, 120.0];
        let (t, r) = sanitize(&raw);
        assert!(r.is_clean());
        assert_eq!(t.samples(), &raw);
    }

    #[test]
    fn hold_last_policy() {
        let config = SanitizeConfig {
            gap_policy: GapPolicy::HoldLast,
            ..SanitizeConfig::default()
        };
        let s = TraceSanitizer::new(config).unwrap();
        let (t, _) = s.sanitize(&[5.0, f64::NAN, f64::NAN, 9.0], 10).unwrap();
        assert_eq!(t.samples(), &[5.0, 5.0, 5.0, 9.0]);
    }

    #[test]
    fn zero_policy() {
        let config = SanitizeConfig {
            gap_policy: GapPolicy::Zero,
            ..SanitizeConfig::default()
        };
        let s = TraceSanitizer::new(config).unwrap();
        let (t, _) = s.sanitize(&[5.0, -1.0, 9.0], 10).unwrap();
        assert_eq!(t.samples(), &[5.0, 0.0, 9.0]);
    }

    #[test]
    fn drop_policy_shortens() {
        let config = SanitizeConfig {
            gap_policy: GapPolicy::Drop,
            ..SanitizeConfig::default()
        };
        let s = TraceSanitizer::new(config).unwrap();
        let (t, r) = s.sanitize(&[5.0, f64::NAN, 9.0], 10).unwrap();
        assert_eq!(t.samples(), &[5.0, 9.0]);
        assert_eq!(r.dropped_samples, 1);
        // Dropping everything is an error, not an empty trace.
        assert_eq!(
            s.sanitize(&[f64::NAN, -1.0], 10).unwrap_err(),
            TraceError::Empty
        );
    }

    #[test]
    fn all_invalid_yields_zeros_and_flag() {
        let (t, r) = sanitize(&[f64::NAN, -2.0, f64::NEG_INFINITY]);
        assert_eq!(t.samples(), &[0.0, 0.0, 0.0]);
        assert!(r.all_invalid);
        assert_eq!(r.invalid_samples, 3);
    }

    #[test]
    fn sanitize_is_idempotent() {
        let raw = [100.0, f64::NAN, 9000.0, -4.0, 120.0, 130.0];
        let (once, _) = sanitize(&raw);
        let (twice, second) = TraceSanitizer::default().sanitize_trace(&once).unwrap();
        assert_eq!(once, twice);
        assert!(second.is_clean());
    }

    #[test]
    fn repair_never_raises_peak() {
        let raw = [100.0, f64::INFINITY, 90.0, f64::NAN, 80.0];
        let (t, _) = sanitize(&raw);
        assert!(t.peak() <= 100.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let s = TraceSanitizer::default();
        assert_eq!(s.sanitize(&[], 10).unwrap_err(), TraceError::Empty);
        assert_eq!(s.sanitize(&[1.0], 0).unwrap_err(), TraceError::ZeroStep);
        assert!(TraceSanitizer::new(SanitizeConfig {
            spike_factor: 0.5,
            ..SanitizeConfig::default()
        })
        .is_err());
        assert!(TraceSanitizer::new(SanitizeConfig {
            spike_floor_watts: -1.0,
            ..SanitizeConfig::default()
        })
        .is_err());
    }

    #[test]
    fn disabled_spike_detection_keeps_towers() {
        let config = SanitizeConfig {
            spike_factor: f64::INFINITY,
            ..SanitizeConfig::default()
        };
        let s = TraceSanitizer::new(config).unwrap();
        let (t, r) = s.sanitize(&[1.0, 1e6, 1.0], 10).unwrap();
        assert!(r.is_clean());
        assert_eq!(t.peak(), 1e6);
    }
}
