//! Power time-series substrate for the SmoothOperator reproduction.
//!
//! This crate provides the data types every other crate in the workspace
//! builds on:
//!
//! * [`PowerTrace`] — a validated fixed-step power time series with vector
//!   arithmetic, peaks, and quantiles (the paper's I-traces and S-traces,
//!   §3.3);
//! * [`quantile`] — the workspace's single linear-interpolation quantile
//!   convention, shared by trace percentiles, [`Ecdf`], and the sanitizer
//!   median;
//! * [`TimeGrid`] — the sampling layout (step, length, minute-of-day /
//!   day-of-week helpers);
//! * [`SlackProfile`] — power slack and energy slack against a fixed budget
//!   (Eq. 1 and Eq. 2, §2.2);
//! * [`Ecdf`] — empirical power CDFs for the StatProf baseline;
//! * [`PercentileBands`] — cross-instance percentile bands (Figure 6);
//! * [`sum_of_peaks`] / [`peak_of_sum`] — the fragmentation indicators of
//!   §2.2;
//! * [`NodeAggregate`] — an incrementally maintained aggregate trace with a
//!   cached peak, so remapping evaluates candidate swaps in `O(T)` instead
//!   of re-summing a whole power node;
//! * [`TraceArena`] — columnar storage for large trace populations: one
//!   contiguous sample buffer with [`TraceView`]/[`TraceViewMut`] handles
//!   and allocation-free batch kernels, the representation behind the
//!   100k–1M instance scale tier;
//! * [`TraceSanitizer`] — detection and repair of degraded raw telemetry
//!   (NaN/negative samples, sensor spikes, gaps) with a [`RepairReport`];
//! * [`MaskedTrace`] — a partial trace with a validity mask, fillable from
//!   a service-level prior for degraded-mode placement.
//!
//! # Examples
//!
//! Two perfectly out-of-phase traces fully cancel at their shared parent:
//!
//! ```
//! # fn main() -> Result<(), so_powertrace::TraceError> {
//! use so_powertrace::{peak_of_sum, sum_of_peaks, PowerTrace};
//!
//! let a = PowerTrace::new(vec![4.0, 0.0, 4.0, 0.0], 15)?;
//! let b = PowerTrace::new(vec![0.0, 4.0, 0.0, 4.0], 15)?;
//! assert_eq!(sum_of_peaks([&a, &b])?, 8.0);
//! assert_eq!(peak_of_sum([&a, &b])?, 4.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aggregate;
mod arena;
mod bands;
mod decompose;
mod error;
mod grid;
pub mod io;
mod mask;
mod metrics;
pub mod quantile;
mod sanitize;
pub mod sketch;
mod slack;
mod stats;
mod trace;

pub use aggregate::{peak_of_samples, NodeAggregate};
pub use arena::{TraceArena, TraceView, TraceViewMut};
pub use bands::PercentileBands;
pub use decompose::SeasonalDecomposition;
pub use error::TraceError;
pub use grid::{TimeGrid, MINUTES_PER_DAY, MINUTES_PER_WEEK};
pub use mask::MaskedTrace;
pub use metrics::{peak_of_sum, peak_reduction, sum_of_peaks};
pub use sanitize::{GapPolicy, RepairReport, SanitizeConfig, TraceSanitizer};
pub use sketch::{sketch_quantile, P2Quantile, P2_RANK_ERROR_BOUND};
pub use slack::{off_peak_mask, slack_reduction, SlackProfile};
pub use stats::{Ecdf, TraceSummary};
pub use trace::PowerTrace;
