//! Cross-instance percentile bands, the representation behind the paper's
//! Figure 6 (per-service diurnal bands such as p5–p95, p25–p75, p45–p55).

use serde::{Deserialize, Serialize};

use crate::error::TraceError;
use crate::quantile::quantile_sorted;
use crate::trace::PowerTrace;

/// Per-timestep percentile bands across a population of traces.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), so_powertrace::TraceError> {
/// use so_powertrace::{PercentileBands, PowerTrace};
///
/// let population = vec![
///     PowerTrace::new(vec![1.0, 2.0], 10)?,
///     PowerTrace::new(vec![3.0, 4.0], 10)?,
/// ];
/// let bands = PercentileBands::compute(&population, &[0.0, 0.5, 1.0])?;
/// assert_eq!(bands.series(0.5)?, &[2.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PercentileBands {
    percentiles: Vec<f64>,
    /// `series[p][t]`: value of percentile `p` at timestep `t`.
    values: Vec<Vec<f64>>,
    step_minutes: u32,
}

impl PercentileBands {
    /// Computes bands at the given quantiles (each in `[0, 1]`) across the
    /// population, per timestep.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for an empty population or quantile
    /// list, a mismatch error when traces are not on a common grid, and
    /// [`TraceError::InvalidQuantile`] for out-of-range quantiles.
    pub fn compute(population: &[PowerTrace], quantiles: &[f64]) -> Result<Self, TraceError> {
        let first = population.first().ok_or(TraceError::Empty)?;
        if quantiles.is_empty() {
            return Err(TraceError::Empty);
        }
        for &q in quantiles {
            if !(0.0..=1.0).contains(&q) || q.is_nan() {
                return Err(TraceError::InvalidQuantile(q));
            }
        }
        for t in population {
            if t.len() != first.len() {
                return Err(TraceError::LengthMismatch {
                    left: first.len(),
                    right: t.len(),
                });
            }
            if t.step_minutes() != first.step_minutes() {
                return Err(TraceError::StepMismatch {
                    left: first.step_minutes(),
                    right: t.step_minutes(),
                });
            }
        }

        let len = first.len();
        let mut values = vec![vec![0.0; len]; quantiles.len()];
        let mut column = vec![0.0; population.len()];
        #[allow(clippy::needless_range_loop)] // t indexes several columns at once
        for t in 0..len {
            for (i, trace) in population.iter().enumerate() {
                column[i] = trace.samples()[t];
            }
            column.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
            for (pi, &q) in quantiles.iter().enumerate() {
                values[pi][t] =
                    quantile_sorted(&column, q).expect("population non-empty, q validated");
            }
        }
        Ok(Self {
            percentiles: quantiles.to_vec(),
            values,
            step_minutes: first.step_minutes(),
        })
    }

    /// The quantiles the bands were computed at.
    pub fn quantiles(&self) -> &[f64] {
        &self.percentiles
    }

    /// Sampling step of the underlying traces, in minutes.
    pub fn step_minutes(&self) -> u32 {
        self.step_minutes
    }

    /// The per-timestep series for quantile `q` (must be one of the
    /// requested quantiles).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidQuantile`] if `q` was not requested at
    /// construction.
    pub fn series(&self, q: f64) -> Result<&[f64], TraceError> {
        self.percentiles
            .iter()
            .position(|&p| p == q)
            .map(|i| self.values[i].as_slice())
            .ok_or(TraceError::InvalidQuantile(q))
    }

    /// Number of timesteps covered.
    pub fn len(&self) -> usize {
        self.values[0].len()
    }

    /// Bands over a valid population are never empty; API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> Vec<PowerTrace> {
        (1..=5)
            .map(|i| PowerTrace::new(vec![i as f64, 2.0 * i as f64], 10).unwrap())
            .collect()
    }

    #[test]
    fn median_band_is_columnwise_median() {
        let bands = PercentileBands::compute(&population(), &[0.5]).unwrap();
        assert_eq!(bands.series(0.5).unwrap(), &[3.0, 6.0]);
        assert_eq!(bands.len(), 2);
        assert_eq!(bands.step_minutes(), 10);
    }

    #[test]
    fn extremes_match_min_max() {
        let bands = PercentileBands::compute(&population(), &[0.0, 1.0]).unwrap();
        assert_eq!(bands.series(0.0).unwrap(), &[1.0, 2.0]);
        assert_eq!(bands.series(1.0).unwrap(), &[5.0, 10.0]);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(PercentileBands::compute(&[], &[0.5]).is_err());
        assert!(PercentileBands::compute(&population(), &[]).is_err());
        assert!(PercentileBands::compute(&population(), &[1.5]).is_err());
        let mut pop = population();
        pop.push(PowerTrace::new(vec![1.0], 10).unwrap());
        assert!(PercentileBands::compute(&pop, &[0.5]).is_err());
    }

    #[test]
    fn unknown_series_is_error() {
        let bands = PercentileBands::compute(&population(), &[0.5]).unwrap();
        assert!(bands.series(0.25).is_err());
    }
}
