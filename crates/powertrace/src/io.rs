//! Reading and writing power traces as CSV.
//!
//! The reproduction runs on synthetic traces, but downstream users will
//! have real power-sensor logs; this module gets them into a
//! [`PowerTrace`] without extra dependencies. The accepted format is one
//! sample per line — either a bare wattage or `timestamp,wattage` (the
//! last comma-separated field is parsed; a non-numeric first line is
//! treated as a header and skipped).

use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use crate::error::TraceError;
use crate::trace::PowerTrace;

/// Error produced when reading a trace from CSV.
#[derive(Debug)]
pub enum TraceIoError {
    /// The underlying reader/writer failed.
    Io(std::io::Error),
    /// A line could not be parsed as a power sample.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content (truncated).
        content: String,
    },
    /// The parsed samples did not form a valid trace.
    Trace(TraceError),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o failure: {e}"),
            TraceIoError::Parse { line, content } => {
                write!(f, "line {line} is not a power sample: {content:?}")
            }
            TraceIoError::Trace(e) => write!(f, "parsed samples are not a valid trace: {e}"),
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Trace(e) => Some(e),
            TraceIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<TraceError> for TraceIoError {
    fn from(e: TraceError) -> Self {
        TraceIoError::Trace(e)
    }
}

/// Reads a power trace from CSV.
///
/// Accepts bare-wattage lines or `timestamp,wattage` rows (the last field
/// is the wattage). Blank lines are skipped; a non-numeric first line is
/// treated as a header. Note a `&mut` reference also implements [`Read`],
/// so an open file can be passed by `&mut file`.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] on the first malformed line,
/// [`TraceIoError::Io`] on reader failure, and [`TraceIoError::Trace`]
/// when the samples violate trace invariants (empty, negative, …).
pub fn read_csv<R: Read>(reader: R, step_minutes: u32) -> Result<PowerTrace, TraceIoError> {
    let reader = BufReader::new(reader);
    let mut samples = Vec::new();
    for (index, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let field = trimmed
            .rsplit(',')
            .next()
            .expect("rsplit yields at least one field")
            .trim();
        match field.parse::<f64>() {
            Ok(v) => samples.push(v),
            Err(_) if index == 0 => continue, // header row
            Err(_) => {
                let mut content = trimmed.to_string();
                content.truncate(60);
                return Err(TraceIoError::Parse {
                    line: index + 1,
                    content,
                });
            }
        }
    }
    Ok(PowerTrace::new(samples, step_minutes)?)
}

/// Writes a trace as `minute,wattage` CSV rows with a header.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_csv<W: Write>(trace: &PowerTrace, mut writer: W) -> Result<(), TraceIoError> {
    writeln!(writer, "minute,watts")?;
    let grid = trace.grid();
    for (i, &v) in trace.samples().iter().enumerate() {
        writeln!(writer, "{},{}", grid.minute_of(i), v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_values_roundtrip() {
        let input = "1.5\n2.5\n\n3.5\n";
        let trace = read_csv(input.as_bytes(), 10).unwrap();
        assert_eq!(trace.samples(), &[1.5, 2.5, 3.5]);
        assert_eq!(trace.step_minutes(), 10);
    }

    #[test]
    fn header_and_timestamps_are_handled() {
        let input = "minute,watts\n0,100.0\n10,150.0\n20,125.0\n";
        let trace = read_csv(input.as_bytes(), 10).unwrap();
        assert_eq!(trace.samples(), &[100.0, 150.0, 125.0]);
    }

    #[test]
    fn write_then_read_is_identity() {
        let trace = PowerTrace::new(vec![10.0, 20.0, 30.0], 15).unwrap();
        let mut buffer = Vec::new();
        write_csv(&trace, &mut buffer).unwrap();
        let back = read_csv(buffer.as_slice(), 15).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn malformed_line_is_reported_with_its_number() {
        let input = "1.0\n2.0\noops\n";
        let err = read_csv(input.as_bytes(), 10).unwrap_err();
        match err {
            TraceIoError::Parse { line, content } => {
                assert_eq!(line, 3);
                assert_eq!(content, "oops");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn invalid_samples_surface_trace_errors() {
        let err = read_csv("-5.0\n".as_bytes(), 10).unwrap_err();
        assert!(matches!(
            err,
            TraceIoError::Trace(TraceError::InvalidSample { .. })
        ));
        let err = read_csv("".as_bytes(), 10).unwrap_err();
        assert!(matches!(err, TraceIoError::Trace(TraceError::Empty)));
    }
}
