//! The [`PowerTrace`] type: a validated, fixed-step power time series.

use std::ops::{Add, AddAssign, Index, Sub};

use serde::{Deserialize, Serialize};

use crate::error::TraceError;
use crate::grid::TimeGrid;

/// A power time series: one non-negative wattage sample per grid point.
///
/// This is the substrate every SmoothOperator component operates on. The
/// paper calls a per-server series an *instance power trace* (I-trace) and a
/// per-service mean an *service power trace* (S-trace); both are plain
/// `PowerTrace` values here, and — as §3.3 notes — "since power traces are
/// simply vectors, vector arithmetic can be directly applied".
///
/// Invariants (enforced at construction):
///
/// * at least one sample,
/// * a positive sampling step,
/// * every sample finite and non-negative.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), so_powertrace::TraceError> {
/// use so_powertrace::PowerTrace;
///
/// let a = PowerTrace::new(vec![1.0, 3.0, 2.0], 10)?;
/// let b = PowerTrace::new(vec![2.0, 0.0, 1.0], 10)?;
/// let sum = a.try_add(&b)?;
/// assert_eq!(sum.peak(), 3.0);
/// assert_eq!(sum.samples(), &[3.0, 3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    samples: Vec<f64>,
    step_minutes: u32,
}

impl PowerTrace {
    /// Creates a trace from raw samples.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for an empty sample vector,
    /// [`TraceError::ZeroStep`] for a zero step, and
    /// [`TraceError::InvalidSample`] if any sample is NaN, infinite, or
    /// negative.
    pub fn new(samples: Vec<f64>, step_minutes: u32) -> Result<Self, TraceError> {
        if samples.is_empty() {
            return Err(TraceError::Empty);
        }
        if step_minutes == 0 {
            return Err(TraceError::ZeroStep);
        }
        for (index, &value) in samples.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(TraceError::InvalidSample { index, value });
            }
        }
        Ok(Self {
            samples,
            step_minutes,
        })
    }

    /// An all-zero trace covering the given grid.
    pub fn zeros(grid: TimeGrid) -> Self {
        Self {
            samples: vec![0.0; grid.len()],
            step_minutes: grid.step_minutes(),
        }
    }

    /// A constant trace covering the given grid.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite or is negative.
    pub fn constant(value: f64, grid: TimeGrid) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "power must be finite and non-negative"
        );
        Self {
            samples: vec![value; grid.len()],
            step_minutes: grid.step_minutes(),
        }
    }

    /// Builds a trace by evaluating `f` at every grid point.
    ///
    /// Negative values produced by `f` are clamped to zero so that additive
    /// noise models cannot produce physically impossible readings.
    ///
    /// # Panics
    ///
    /// Panics if `f` produces a NaN or infinite value.
    pub fn from_fn(grid: TimeGrid, mut f: impl FnMut(usize) -> f64) -> Self {
        let samples: Vec<f64> = grid
            .indices()
            .map(|i| {
                let v = f(i);
                assert!(v.is_finite(), "trace generator produced a non-finite value");
                v.max(0.0)
            })
            .collect();
        Self {
            samples,
            step_minutes: grid.step_minutes(),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// A valid trace is never empty; this exists for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sampling step in minutes.
    pub fn step_minutes(&self) -> u32 {
        self.step_minutes
    }

    /// The grid this trace is sampled on.
    pub fn grid(&self) -> TimeGrid {
        TimeGrid::new(self.step_minutes, self.samples.len())
    }

    /// Borrow the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Consume the trace, returning the raw samples.
    pub fn into_samples(self) -> Vec<f64> {
        self.samples
    }

    /// Sample at index `i`, or `None` when out of bounds.
    pub fn get(&self, i: usize) -> Option<f64> {
        self.samples.get(i).copied()
    }

    /// Maximum sample — the trace's *peak power* (the quantity that
    /// provisioning must accommodate).
    pub fn peak(&self) -> f64 {
        crate::aggregate::peak_of_samples(&self.samples)
    }

    /// Index of the (first) peak sample.
    pub fn peak_index(&self) -> usize {
        let peak = self.peak();
        self.samples
            .iter()
            .position(|&v| v == peak)
            .expect("non-empty trace always has a peak")
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::MAX, f64::min)
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Integral of power over time, in watt-minutes.
    pub fn energy_watt_minutes(&self) -> f64 {
        self.samples.iter().sum::<f64>() * self.step_minutes as f64
    }

    /// Empirical quantile under the workspace's shared linear-interpolation
    /// convention (see [`crate::quantile`]), `q` in `[0, 1]`.
    ///
    /// `quantile(1.0)` equals [`peak`](Self::peak) and `quantile(0.0)` equals
    /// [`min`](Self::min), exactly. Used by the StatProf baseline, which
    /// provisions at the `(100 − u)`-th percentile of each instance's power
    /// profile.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidQuantile`] if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<f64, TraceError> {
        crate::quantile::quantile(&self.samples, q)
    }

    /// Element-wise sum, checked for matching grids.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] or [`TraceError::StepMismatch`]
    /// when the traces are not on the same grid.
    pub fn try_add(&self, other: &PowerTrace) -> Result<PowerTrace, TraceError> {
        self.check_compatible(other)?;
        let samples = self
            .samples
            .iter()
            .zip(&other.samples)
            .map(|(a, b)| a + b)
            .collect();
        Ok(PowerTrace {
            samples,
            step_minutes: self.step_minutes,
        })
    }

    /// Element-wise difference, clamped at zero (power cannot be negative),
    /// checked for matching grids.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] or [`TraceError::StepMismatch`]
    /// when the traces are not on the same grid.
    pub fn try_sub(&self, other: &PowerTrace) -> Result<PowerTrace, TraceError> {
        self.check_compatible(other)?;
        let samples = self
            .samples
            .iter()
            .zip(&other.samples)
            .map(|(a, b)| (a - b).max(0.0))
            .collect();
        Ok(PowerTrace {
            samples,
            step_minutes: self.step_minutes,
        })
    }

    /// In-place element-wise accumulation, checked for matching grids.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] or [`TraceError::StepMismatch`]
    /// when the traces are not on the same grid.
    pub fn try_add_assign(&mut self, other: &PowerTrace) -> Result<(), TraceError> {
        self.check_compatible(other)?;
        for (a, b) in self.samples.iter_mut().zip(&other.samples) {
            *a += b;
        }
        Ok(())
    }

    /// Multiply every sample by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(&self, factor: f64) -> PowerTrace {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        PowerTrace {
            samples: self.samples.iter().map(|v| v * factor).collect(),
            step_minutes: self.step_minutes,
        }
    }

    /// A copy normalized so its peak equals `target_peak`.
    ///
    /// Traces that are identically zero are returned unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `target_peak` is negative or not finite.
    pub fn normalized_to_peak(&self, target_peak: f64) -> PowerTrace {
        let peak = self.peak();
        if peak == 0.0 {
            return self.clone();
        }
        self.scale(target_peak / peak)
    }

    /// Extract the half-open sample window `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutOfBounds`] when `end > len`, and
    /// [`TraceError::Empty`] when `start >= end`.
    pub fn window(&self, start: usize, end: usize) -> Result<PowerTrace, TraceError> {
        if end > self.samples.len() {
            return Err(TraceError::OutOfBounds {
                requested: end,
                len: self.samples.len(),
            });
        }
        if start >= end {
            return Err(TraceError::Empty);
        }
        Ok(PowerTrace {
            samples: self.samples[start..end].to_vec(),
            step_minutes: self.step_minutes,
        })
    }

    /// Downsample by an integer factor, averaging each bucket.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ZeroStep`] if `factor` is zero and
    /// [`TraceError::LengthMismatch`] if `factor` does not divide the length.
    pub fn downsample(&self, factor: usize) -> Result<PowerTrace, TraceError> {
        if factor == 0 {
            return Err(TraceError::ZeroStep);
        }
        if self.samples.len() % factor != 0 {
            return Err(TraceError::LengthMismatch {
                left: self.samples.len(),
                right: factor,
            });
        }
        let samples = self
            .samples
            .chunks_exact(factor)
            .map(|chunk| chunk.iter().sum::<f64>() / factor as f64)
            .collect();
        Ok(PowerTrace {
            samples,
            step_minutes: self.step_minutes * factor as u32,
        })
    }

    /// Resamples the trace onto a grid with step `step_minutes`, averaging
    /// (downsampling) or step-holding (upsampling) as needed. The total
    /// duration must be divisible on both grids.
    ///
    /// Useful for aligning externally collected traces (arbitrary logger
    /// intervals) with a fleet's grid before building a
    /// [`Fleet`](https://docs.rs/so-workloads)-style dataset.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ZeroStep`] for a zero step and
    /// [`TraceError::LengthMismatch`] when neither step divides the other.
    pub fn resample(&self, step_minutes: u32) -> Result<PowerTrace, TraceError> {
        if step_minutes == 0 {
            return Err(TraceError::ZeroStep);
        }
        if step_minutes == self.step_minutes {
            return Ok(self.clone());
        }
        if step_minutes % self.step_minutes == 0 {
            // Coarser grid: average buckets.
            self.downsample((step_minutes / self.step_minutes) as usize)
        } else if self.step_minutes % step_minutes == 0 {
            // Finer grid: hold each sample across its sub-steps.
            let factor = (self.step_minutes / step_minutes) as usize;
            let samples = self
                .samples
                .iter()
                .flat_map(|&v| std::iter::repeat(v).take(factor))
                .collect();
            Ok(PowerTrace {
                samples,
                step_minutes,
            })
        } else {
            Err(TraceError::LengthMismatch {
                left: self.step_minutes as usize,
                right: step_minutes as usize,
            })
        }
    }

    /// The element-wise mean of several traces on a common grid — the
    /// *averaged instance power trace* of Eq. 4 when applied to the same
    /// time-of-week across weeks, and the *service power trace* of Eq. 5
    /// when applied across a service's instances.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for an empty input and a mismatch error
    /// when the traces are not on a common grid.
    pub fn mean_of<'a>(
        traces: impl IntoIterator<Item = &'a PowerTrace>,
    ) -> Result<PowerTrace, TraceError> {
        let mut iter = traces.into_iter();
        let first = iter.next().ok_or(TraceError::Empty)?;
        let mut acc = first.clone();
        let mut count = 1usize;
        for t in iter {
            acc.try_add_assign(t)?;
            count += 1;
        }
        Ok(acc.scale(1.0 / count as f64))
    }

    /// The element-wise sum of several traces on a common grid — the
    /// aggregate power a shared power node observes.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for an empty input and a mismatch error
    /// when the traces are not on a common grid.
    pub fn sum_of<'a>(
        traces: impl IntoIterator<Item = &'a PowerTrace>,
    ) -> Result<PowerTrace, TraceError> {
        let mut iter = traces.into_iter();
        let first = iter.next().ok_or(TraceError::Empty)?;
        let mut acc = first.clone();
        for t in iter {
            acc.try_add_assign(t)?;
        }
        Ok(acc)
    }

    fn check_compatible(&self, other: &PowerTrace) -> Result<(), TraceError> {
        if self.samples.len() != other.samples.len() {
            return Err(TraceError::LengthMismatch {
                left: self.samples.len(),
                right: other.samples.len(),
            });
        }
        if self.step_minutes != other.step_minutes {
            return Err(TraceError::StepMismatch {
                left: self.step_minutes,
                right: other.step_minutes,
            });
        }
        Ok(())
    }
}

impl Index<usize> for PowerTrace {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.samples[i]
    }
}

impl Add<&PowerTrace> for &PowerTrace {
    type Output = PowerTrace;

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics when the traces are not on the same grid; use
    /// [`PowerTrace::try_add`] for a checked variant.
    fn add(self, rhs: &PowerTrace) -> PowerTrace {
        self.try_add(rhs).expect("trace grids must match for +")
    }
}

impl AddAssign<&PowerTrace> for PowerTrace {
    /// In-place element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics when the traces are not on the same grid; use
    /// [`PowerTrace::try_add_assign`] for a checked variant.
    fn add_assign(&mut self, rhs: &PowerTrace) {
        self.try_add_assign(rhs)
            .expect("trace grids must match for +=");
    }
}

impl Sub<&PowerTrace> for &PowerTrace {
    type Output = PowerTrace;

    /// Element-wise difference clamped at zero.
    ///
    /// # Panics
    ///
    /// Panics when the traces are not on the same grid; use
    /// [`PowerTrace::try_sub`] for a checked variant.
    fn sub(self, rhs: &PowerTrace) -> PowerTrace {
        self.try_sub(rhs).expect("trace grids must match for -")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(samples: &[f64]) -> PowerTrace {
        PowerTrace::new(samples.to_vec(), 10).unwrap()
    }

    #[test]
    fn construction_validates_samples() {
        assert_eq!(PowerTrace::new(vec![], 10), Err(TraceError::Empty));
        assert_eq!(PowerTrace::new(vec![1.0], 0), Err(TraceError::ZeroStep));
        assert!(matches!(
            PowerTrace::new(vec![1.0, -0.5], 10),
            Err(TraceError::InvalidSample { index: 1, .. })
        ));
        assert!(matches!(
            PowerTrace::new(vec![f64::NAN], 10),
            Err(TraceError::InvalidSample { index: 0, .. })
        ));
    }

    #[test]
    fn peak_mean_min_energy() {
        let t = trace(&[1.0, 4.0, 2.0, 1.0]);
        assert_eq!(t.peak(), 4.0);
        assert_eq!(t.peak_index(), 1);
        assert_eq!(t.min(), 1.0);
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.energy_watt_minutes(), 80.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let t = trace(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(t.quantile(0.0).unwrap(), 0.0);
        assert_eq!(t.quantile(1.0).unwrap(), 3.0);
        assert_eq!(t.quantile(0.5).unwrap(), 1.5);
        assert!((t.quantile(0.9).unwrap() - 2.7).abs() < 1e-12);
        assert!(t.quantile(1.1).is_err());
        assert!(t.quantile(-0.1).is_err());
    }

    #[test]
    fn arithmetic_checks_grids() {
        let a = trace(&[1.0, 2.0]);
        let b = PowerTrace::new(vec![1.0, 2.0], 5).unwrap();
        assert!(matches!(
            a.try_add(&b),
            Err(TraceError::StepMismatch { .. })
        ));
        let c = trace(&[1.0, 2.0, 3.0]);
        assert!(matches!(
            a.try_add(&c),
            Err(TraceError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn add_sub_scale() {
        let a = trace(&[1.0, 2.0]);
        let b = trace(&[0.5, 3.0]);
        assert_eq!((&a + &b).samples(), &[1.5, 5.0]);
        assert_eq!((&a - &b).samples(), &[0.5, 0.0]);
        assert_eq!(a.scale(2.0).samples(), &[2.0, 4.0]);
        let mut acc = a.clone();
        acc += &b;
        assert_eq!(acc.samples(), &[1.5, 5.0]);
    }

    #[test]
    fn mean_of_and_sum_of() {
        let a = trace(&[1.0, 2.0]);
        let b = trace(&[3.0, 4.0]);
        let mean = PowerTrace::mean_of([&a, &b]).unwrap();
        assert_eq!(mean.samples(), &[2.0, 3.0]);
        let sum = PowerTrace::sum_of([&a, &b]).unwrap();
        assert_eq!(sum.samples(), &[4.0, 6.0]);
        assert!(PowerTrace::mean_of(std::iter::empty()).is_err());
    }

    #[test]
    fn window_and_downsample() {
        let t = trace(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.window(1, 3).unwrap().samples(), &[2.0, 3.0]);
        assert!(t.window(2, 2).is_err());
        assert!(t.window(0, 9).is_err());
        let d = t.downsample(2).unwrap();
        assert_eq!(d.samples(), &[1.5, 3.5]);
        assert_eq!(d.step_minutes(), 20);
        assert!(t.downsample(3).is_err());
        assert!(t.downsample(0).is_err());
    }

    #[test]
    fn resample_both_directions() {
        let t = trace(&[1.0, 3.0, 5.0, 7.0]); // 10-minute step
                                              // Coarser: 20-minute buckets averaged.
        let coarse = t.resample(20).unwrap();
        assert_eq!(coarse.samples(), &[2.0, 6.0]);
        // Finer: 5-minute step-hold.
        let fine = t.resample(5).unwrap();
        assert_eq!(fine.samples(), &[1.0, 1.0, 3.0, 3.0, 5.0, 5.0, 7.0, 7.0]);
        // Identity.
        assert_eq!(t.resample(10).unwrap(), t);
        // Energy is preserved in both directions.
        assert!((coarse.energy_watt_minutes() - t.energy_watt_minutes()).abs() < 1e-9);
        assert!((fine.energy_watt_minutes() - t.energy_watt_minutes()).abs() < 1e-9);
        // Incompatible steps are rejected.
        assert!(t.resample(15).is_err());
        assert!(t.resample(0).is_err());
    }

    #[test]
    fn from_fn_clamps_negative() {
        let grid = TimeGrid::new(10, 4);
        let t = PowerTrace::from_fn(grid, |i| i as f64 - 1.5);
        assert_eq!(t.samples(), &[0.0, 0.0, 0.5, 1.5]);
    }

    #[test]
    fn normalized_to_peak() {
        let t = trace(&[1.0, 5.0]);
        let n = t.normalized_to_peak(1.0);
        assert_eq!(n.samples(), &[0.2, 1.0]);
        let z = PowerTrace::zeros(TimeGrid::new(10, 3));
        assert_eq!(z.normalized_to_peak(1.0).samples(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn trace_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PowerTrace>();
    }
}
