//! Fragmentation indicators over sets of traces (§2.2): the *sum of peaks*
//! across power nodes and the *peak of the sum* a shared parent observes.
//!
//! The gap between the two is exactly what SmoothOperator exploits: a set of
//! traces whose peaks do not coincide has `peak_of_sum` well below
//! `sum_of_peaks`.

use crate::error::TraceError;
use crate::trace::PowerTrace;

/// Sum of the individual peak powers of a set of traces.
///
/// For traces of sibling power nodes this is the paper's *sum of peaks*
/// fragmentation indicator: with a fixed set of service instances, a poor
/// placement inflates it, an asynchrony-aware placement deflates it.
///
/// # Errors
///
/// Returns [`TraceError::Empty`] when the set is empty.
pub fn sum_of_peaks<'a>(
    traces: impl IntoIterator<Item = &'a PowerTrace>,
) -> Result<f64, TraceError> {
    let mut sum = 0.0;
    let mut any = false;
    for t in traces {
        sum += t.peak();
        any = true;
    }
    if any {
        Ok(sum)
    } else {
        Err(TraceError::Empty)
    }
}

/// Peak of the aggregate (element-wise sum) of a set of traces — what the
/// supplying power node actually has to accommodate.
///
/// # Errors
///
/// Returns [`TraceError::Empty`] when the set is empty and a mismatch error
/// when the traces are not on a common grid.
pub fn peak_of_sum<'a>(
    traces: impl IntoIterator<Item = &'a PowerTrace>,
) -> Result<f64, TraceError> {
    PowerTrace::sum_of(traces).map(|t| t.peak())
}

/// Relative peak reduction `(before − after) / before`.
///
/// Returns 0 when `before` is zero.
pub fn peak_reduction(before: f64, after: f64) -> f64 {
    if before == 0.0 {
        0.0
    } else {
        (before - after) / before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(samples: &[f64]) -> PowerTrace {
        PowerTrace::new(samples.to_vec(), 10).unwrap()
    }

    #[test]
    fn synchronous_traces_leave_no_gap() {
        let a = trace(&[1.0, 2.0]);
        let b = trace(&[2.0, 4.0]);
        let sp = sum_of_peaks([&a, &b]).unwrap();
        let ps = peak_of_sum([&a, &b]).unwrap();
        assert_eq!(sp, 6.0);
        assert_eq!(ps, 6.0);
    }

    #[test]
    fn asynchronous_traces_open_a_gap() {
        let a = trace(&[4.0, 0.0]);
        let b = trace(&[0.0, 4.0]);
        assert_eq!(sum_of_peaks([&a, &b]).unwrap(), 8.0);
        assert_eq!(peak_of_sum([&a, &b]).unwrap(), 4.0);
    }

    #[test]
    fn empty_sets_are_errors() {
        assert!(sum_of_peaks(std::iter::empty()).is_err());
        assert!(peak_of_sum(std::iter::empty()).is_err());
    }

    #[test]
    fn peak_reduction_handles_zero() {
        assert_eq!(peak_reduction(0.0, 1.0), 0.0);
        assert!((peak_reduction(10.0, 9.0) - 0.1).abs() < 1e-12);
    }
}
