//! Power slack and energy slack — the paper's utilization metrics (§2.2).
//!
//! *Power slack* at time `t` is `P_budget − P_instant(t)` (Eq. 1): the
//! unused share of a power node's budget. *Energy slack* is its integral
//! over a timespan (Eq. 2). Low slack means the budget is well utilized.

use serde::{Deserialize, Serialize};

use crate::error::TraceError;
use crate::trace::PowerTrace;

/// Power-slack series and aggregate slack metrics for one power node.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), so_powertrace::TraceError> {
/// use so_powertrace::{PowerTrace, SlackProfile};
///
/// let draw = PowerTrace::new(vec![6.0, 10.0, 4.0], 10)?;
/// let slack = SlackProfile::new(&draw, 10.0)?;
/// assert_eq!(slack.min_slack(), 0.0);
/// assert_eq!(slack.energy_slack_watt_minutes(), 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlackProfile {
    slack: Vec<f64>,
    overdraw: Vec<f64>,
    budget: f64,
    step_minutes: u32,
}

impl SlackProfile {
    /// Computes the slack profile of a power draw against a fixed budget.
    ///
    /// Samples above the budget contribute zero slack and are recorded as
    /// *overdraw* instead (a real node would trip its breaker; see
    /// `so-powertree`'s breaker model).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSample`] if `budget` is negative or not
    /// finite.
    pub fn new(draw: &PowerTrace, budget: f64) -> Result<Self, TraceError> {
        if !budget.is_finite() || budget < 0.0 {
            return Err(TraceError::InvalidSample {
                index: 0,
                value: budget,
            });
        }
        let mut slack = Vec::with_capacity(draw.len());
        let mut overdraw = Vec::with_capacity(draw.len());
        for &p in draw.samples() {
            slack.push((budget - p).max(0.0));
            overdraw.push((p - budget).max(0.0));
        }
        Ok(Self {
            slack,
            overdraw,
            budget,
            step_minutes: draw.step_minutes(),
        })
    }

    /// The budget the slack is measured against.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// Per-sample slack values.
    pub fn slack_samples(&self) -> &[f64] {
        &self.slack
    }

    /// Smallest slack over the window (0 when the budget is ever reached).
    pub fn min_slack(&self) -> f64 {
        self.slack.iter().copied().fold(f64::MAX, f64::min)
    }

    /// Mean slack over the window.
    pub fn mean_slack(&self) -> f64 {
        self.slack.iter().sum::<f64>() / self.slack.len() as f64
    }

    /// Energy slack (Eq. 2): integral of power slack, in watt-minutes.
    pub fn energy_slack_watt_minutes(&self) -> f64 {
        self.slack.iter().sum::<f64>() * self.step_minutes as f64
    }

    /// Energy slack restricted to the samples where `mask` is true
    /// (e.g. off-peak hours), in watt-minutes.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] if the mask length differs
    /// from the series length.
    pub fn masked_energy_slack(&self, mask: &[bool]) -> Result<f64, TraceError> {
        if mask.len() != self.slack.len() {
            return Err(TraceError::LengthMismatch {
                left: self.slack.len(),
                right: mask.len(),
            });
        }
        Ok(self
            .slack
            .iter()
            .zip(mask)
            .filter(|(_, &m)| m)
            .map(|(s, _)| s)
            .sum::<f64>()
            * self.step_minutes as f64)
    }

    /// Whether the draw ever exceeded the budget.
    pub fn has_overdraw(&self) -> bool {
        self.overdraw.iter().any(|&v| v > 0.0)
    }

    /// Total energy drawn above the budget, in watt-minutes.
    pub fn overdraw_energy_watt_minutes(&self) -> f64 {
        self.overdraw.iter().sum::<f64>() * self.step_minutes as f64
    }
}

/// Relative energy-slack reduction achieved by an optimization:
/// `(E_before − E_after) / E_before`, in `[.., 1]`.
///
/// Returns 0 when the baseline slack is zero (nothing to reduce).
pub fn slack_reduction(before: &SlackProfile, after: &SlackProfile) -> f64 {
    let b = before.energy_slack_watt_minutes();
    if b == 0.0 {
        return 0.0;
    }
    (b - after.energy_slack_watt_minutes()) / b
}

/// Builds an off-peak mask from a reference activity trace: a sample is
/// off-peak when the reference is at or below its `threshold_quantile`.
///
/// # Errors
///
/// Returns [`TraceError::InvalidQuantile`] for quantiles outside `[0, 1]`.
pub fn off_peak_mask(
    reference: &PowerTrace,
    threshold_quantile: f64,
) -> Result<Vec<bool>, TraceError> {
    let threshold = reference.quantile(threshold_quantile)?;
    Ok(reference
        .samples()
        .iter()
        .map(|&v| v <= threshold)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(samples: &[f64]) -> PowerTrace {
        PowerTrace::new(samples.to_vec(), 10).unwrap()
    }

    #[test]
    fn slack_basics() {
        let t = trace(&[2.0, 8.0, 5.0]);
        let s = SlackProfile::new(&t, 10.0).unwrap();
        assert_eq!(s.slack_samples(), &[8.0, 2.0, 5.0]);
        assert_eq!(s.min_slack(), 2.0);
        assert_eq!(s.mean_slack(), 5.0);
        assert_eq!(s.energy_slack_watt_minutes(), 150.0);
        assert!(!s.has_overdraw());
        assert_eq!(s.budget(), 10.0);
    }

    #[test]
    fn overdraw_is_recorded_not_negative_slack() {
        let t = trace(&[12.0, 8.0]);
        let s = SlackProfile::new(&t, 10.0).unwrap();
        assert_eq!(s.slack_samples(), &[0.0, 2.0]);
        assert!(s.has_overdraw());
        assert_eq!(s.overdraw_energy_watt_minutes(), 20.0);
    }

    #[test]
    fn invalid_budget_rejected() {
        let t = trace(&[1.0]);
        assert!(SlackProfile::new(&t, -1.0).is_err());
        assert!(SlackProfile::new(&t, f64::NAN).is_err());
    }

    #[test]
    fn masked_energy_slack() {
        let t = trace(&[2.0, 8.0, 5.0]);
        let s = SlackProfile::new(&t, 10.0).unwrap();
        let e = s.masked_energy_slack(&[true, false, true]).unwrap();
        assert_eq!(e, 130.0);
        assert!(s.masked_energy_slack(&[true]).is_err());
    }

    #[test]
    fn slack_reduction_ratio() {
        let before = SlackProfile::new(&trace(&[2.0, 2.0]), 10.0).unwrap();
        let after = SlackProfile::new(&trace(&[6.0, 6.0]), 10.0).unwrap();
        assert!((slack_reduction(&before, &after) - 0.5).abs() < 1e-12);
        let zero = SlackProfile::new(&trace(&[10.0]), 10.0).unwrap();
        assert_eq!(slack_reduction(&zero, &after), 0.0);
    }

    #[test]
    fn off_peak_mask_uses_quantile_threshold() {
        let t = trace(&[1.0, 2.0, 3.0, 4.0]);
        let mask = off_peak_mask(&t, 0.5).unwrap();
        assert_eq!(mask, vec![true, true, false, false]);
        assert!(off_peak_mask(&t, 1.5).is_err());
    }
}
