//! [`NodeAggregate`]: a running element-wise sum of member traces with a
//! lazily cached peak.
//!
//! Remapping (§3.4) repeatedly asks "what is this power node's aggregate
//! trace / peak if instance *i* leaves and instance *j* arrives?". Summing
//! the node's members from scratch costs `O(|node| · T)` per question; a
//! `NodeAggregate` answers in `O(T)` by maintaining the sum incrementally
//! ([`add`](NodeAggregate::add) / [`remove`](NodeAggregate::remove)) and
//! evaluating hypothetical swaps against it without mutation
//! ([`peak_with_swap`](NodeAggregate::peak_with_swap)).
//!
//! The cached peak is invalidated on every mutation and recomputed on the
//! next [`peak`](NodeAggregate::peak) call.

use std::sync::OnceLock;

use crate::error::TraceError;
use crate::grid::TimeGrid;
use crate::trace::PowerTrace;

/// Maximum sample of a slice, folded exactly like [`PowerTrace::peak`].
///
/// Shared by trace peaks, aggregate peaks, and the simulator's telemetry so
/// every "peak of a sample vector" in the workspace is the same fold (and
/// therefore bit-identical wherever the inputs are). Returns `f64::MIN` for
/// an empty slice.
///
/// The loop runs four independent `max` lanes over `chunks_exact(4)` so the
/// compiler can keep it in 256-bit vector registers (`f64x4`). `max` is
/// associative and commutative on the values the workspace feeds it
/// (validated, NaN-free samples), so the lane-reassociated fold returns the
/// same bits as the sequential one; every peak consumer shares this exact
/// reduction pattern, which is what the bit-exactness oracles compare.
pub fn peak_of_samples(samples: &[f64]) -> f64 {
    let mut lanes = [f64::MIN; 4];
    let mut chunks = samples.chunks_exact(4);
    for chunk in &mut chunks {
        lanes[0] = lanes[0].max(chunk[0]);
        lanes[1] = lanes[1].max(chunk[1]);
        lanes[2] = lanes[2].max(chunk[2]);
        lanes[3] = lanes[3].max(chunk[3]);
    }
    let mut peak = lanes[0].max(lanes[1]).max(lanes[2].max(lanes[3]));
    for &v in chunks.remainder() {
        peak = peak.max(v);
    }
    peak
}

/// A power node's aggregate trace, maintained incrementally.
///
/// Internally this is the raw running sum of every added member minus every
/// removed one. Because floating-point subtraction is not an exact inverse
/// of addition, removing a member can leave tiny negative residues; they are
/// clamped to zero whenever samples are observed (peaks, materialized
/// traces), matching [`PowerTrace`]'s non-negativity invariant.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), so_powertrace::TraceError> {
/// use so_powertrace::{NodeAggregate, PowerTrace};
///
/// let a = PowerTrace::new(vec![4.0, 0.0], 15)?;
/// let b = PowerTrace::new(vec![0.0, 4.0], 15)?;
/// let mut node = NodeAggregate::new(a.grid());
/// node.add(&a)?;
/// node.add(&b)?;
/// assert_eq!(node.peak(), 4.0);
/// // What if `a` left and a synchronous twin of `b` arrived?
/// assert_eq!(node.peak_with_swap(&a, &b)?, 8.0);
/// // The probe did not mutate the aggregate:
/// assert_eq!(node.peak(), 4.0);
/// node.remove(&a)?;
/// assert_eq!(node.to_trace()?.samples(), &[0.0, 4.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NodeAggregate {
    sum: Vec<f64>,
    step_minutes: u32,
    count: usize,
    /// Cached `peak()`; replaced with a fresh empty cell on mutation.
    peak: OnceLock<f64>,
}

impl NodeAggregate {
    /// An empty aggregate on the given grid.
    pub fn new(grid: TimeGrid) -> Self {
        Self {
            sum: vec![0.0; grid.len()],
            step_minutes: grid.step_minutes(),
            count: 0,
            peak: OnceLock::new(),
        }
    }

    /// Builds an aggregate by adding every trace in `members`.
    ///
    /// # Errors
    ///
    /// Returns a mismatch error when the traces are not on `grid`.
    pub fn from_traces<'a>(
        grid: TimeGrid,
        members: impl IntoIterator<Item = &'a PowerTrace>,
    ) -> Result<Self, TraceError> {
        let mut agg = Self::new(grid);
        for t in members {
            agg.add(t)?;
        }
        Ok(agg)
    }

    /// Builds an aggregate by adding every sample row in `members` (e.g.
    /// arena rows). The rows are trusted to be on `grid`'s step; their
    /// length is checked. Accumulation order and association are identical
    /// to [`from_traces`](Self::from_traces), so the two construct
    /// bit-identical sums from the same samples.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] for a row that is not one
    /// grid row long.
    pub fn from_samples<'a>(
        grid: TimeGrid,
        members: impl IntoIterator<Item = &'a [f64]>,
    ) -> Result<Self, TraceError> {
        let mut agg = Self::new(grid);
        for row in members {
            agg.add_samples(row)?;
        }
        Ok(agg)
    }

    /// Number of member traces currently in the aggregate.
    pub fn count(&self) -> usize {
        self.count
    }

    /// True when no member has been added (or all have been removed).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of samples per trace.
    pub fn len(&self) -> usize {
        self.sum.len()
    }

    /// The grid the aggregate is sampled on.
    pub fn grid(&self) -> TimeGrid {
        TimeGrid::new(self.step_minutes, self.sum.len())
    }

    /// Adds a member trace to the running sum. `O(T)`.
    ///
    /// # Errors
    ///
    /// Returns a mismatch error when `trace` is not on the aggregate's grid.
    pub fn add(&mut self, trace: &PowerTrace) -> Result<(), TraceError> {
        self.check_compatible(trace)?;
        for (acc, &v) in self.sum.iter_mut().zip(trace.samples()) {
            *acc += v;
        }
        self.count += 1;
        self.peak = OnceLock::new();
        Ok(())
    }

    /// Removes a previously added member trace from the running sum. `O(T)`.
    ///
    /// # Errors
    ///
    /// Returns a mismatch error when `trace` is not on the aggregate's grid,
    /// and [`TraceError::Empty`] when the aggregate has no members.
    pub fn remove(&mut self, trace: &PowerTrace) -> Result<(), TraceError> {
        if self.count == 0 {
            return Err(TraceError::Empty);
        }
        self.check_compatible(trace)?;
        for (acc, &v) in self.sum.iter_mut().zip(trace.samples()) {
            *acc -= v;
        }
        self.count -= 1;
        self.peak = OnceLock::new();
        Ok(())
    }

    /// [`add`](Self::add) for a raw sample row (e.g. an arena row). The
    /// row's step is trusted; its length is checked. Performs the exact
    /// loop of [`add`](Self::add), so mixing the two entry points keeps the
    /// sum bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] for a wrong-length row.
    pub fn add_samples(&mut self, samples: &[f64]) -> Result<(), TraceError> {
        if samples.len() != self.sum.len() {
            return Err(TraceError::LengthMismatch {
                left: self.sum.len(),
                right: samples.len(),
            });
        }
        for (acc, &v) in self.sum.iter_mut().zip(samples) {
            *acc += v;
        }
        self.count += 1;
        self.peak = OnceLock::new();
        Ok(())
    }

    /// [`remove`](Self::remove) for a raw sample row.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] when the aggregate has no members and
    /// [`TraceError::LengthMismatch`] for a wrong-length row.
    pub fn remove_samples(&mut self, samples: &[f64]) -> Result<(), TraceError> {
        if self.count == 0 {
            return Err(TraceError::Empty);
        }
        if samples.len() != self.sum.len() {
            return Err(TraceError::LengthMismatch {
                left: self.sum.len(),
                right: samples.len(),
            });
        }
        for (acc, &v) in self.sum.iter_mut().zip(samples) {
            *acc -= v;
        }
        self.count -= 1;
        self.peak = OnceLock::new();
        Ok(())
    }

    /// The raw running sum (member additions minus removals, **unclamped**:
    /// tiny negative residues from removals are visible here; observation
    /// paths clamp at zero). This is the arena scoring kernels' input — it
    /// lets fused score computations read the node sum without
    /// materializing a trace.
    pub fn sum_samples(&self) -> &[f64] {
        &self.sum
    }

    /// The aggregate's peak power, cached until the next mutation.
    ///
    /// Equals `self.to_trace().unwrap().peak()` (samples are clamped at
    /// zero); `0.0` for an empty aggregate on a non-empty grid.
    pub fn peak(&self) -> f64 {
        *self.peak.get_or_init(|| {
            self.sum
                .iter()
                .fold(f64::MIN, |acc, &v| acc.max(v.max(0.0)))
        })
    }

    /// Peak of the hypothetical aggregate with `leaving` removed and
    /// `arriving` added — the remap engine's swap probe. `O(T)`, allocates
    /// nothing, and does **not** mutate the aggregate, so any number of
    /// candidate swaps can be evaluated concurrently against one node.
    ///
    /// # Errors
    ///
    /// Returns a mismatch error when either trace is not on the aggregate's
    /// grid.
    pub fn peak_with_swap(
        &self,
        leaving: &PowerTrace,
        arriving: &PowerTrace,
    ) -> Result<f64, TraceError> {
        self.check_compatible(leaving)?;
        self.check_compatible(arriving)?;
        let mut peak = f64::MIN;
        for ((&acc, &out), &inn) in self
            .sum
            .iter()
            .zip(leaving.samples())
            .zip(arriving.samples())
        {
            peak = peak.max((acc - out + inn).max(0.0));
        }
        Ok(peak)
    }

    /// [`peak_with_swap`](Self::peak_with_swap) for raw sample rows (e.g.
    /// arena rows): identical loop, identical result bits for the same
    /// samples.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] when either row is not one
    /// grid row long.
    pub fn peak_with_swap_samples(
        &self,
        leaving: &[f64],
        arriving: &[f64],
    ) -> Result<f64, TraceError> {
        for row in [leaving, arriving] {
            if row.len() != self.sum.len() {
                return Err(TraceError::LengthMismatch {
                    left: self.sum.len(),
                    right: row.len(),
                });
            }
        }
        let mut peak = f64::MIN;
        for ((&acc, &out), &inn) in self.sum.iter().zip(leaving).zip(arriving) {
            peak = peak.max((acc - out + inn).max(0.0));
        }
        Ok(peak)
    }

    /// Materializes the aggregate as a [`PowerTrace`] (clamped at zero).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] when the grid has no samples.
    pub fn to_trace(&self) -> Result<PowerTrace, TraceError> {
        PowerTrace::new(
            self.sum.iter().map(|&v| v.max(0.0)).collect(),
            self.step_minutes,
        )
    }

    /// Mean of the members *excluding* one of them, in `O(T)`:
    /// `(sum − excluded) / (count − 1)`. This is the paper's averaged peer
    /// trace (Eq. 6's \bar{P}) without the `O(|node| · T)` re-summation.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] when fewer than two members are present
    /// and a mismatch error when `excluded` is not on the aggregate's grid.
    pub fn mean_excluding(&self, excluded: &PowerTrace) -> Result<PowerTrace, TraceError> {
        if self.count < 2 {
            return Err(TraceError::Empty);
        }
        self.check_compatible(excluded)?;
        let scale = 1.0 / (self.count - 1) as f64;
        let samples = self
            .sum
            .iter()
            .zip(excluded.samples())
            .map(|(&acc, &v)| ((acc - v) * scale).max(0.0))
            .collect();
        PowerTrace::new(samples, self.step_minutes)
    }

    fn check_compatible(&self, trace: &PowerTrace) -> Result<(), TraceError> {
        if trace.len() != self.sum.len() {
            return Err(TraceError::LengthMismatch {
                left: self.sum.len(),
                right: trace.len(),
            });
        }
        if trace.step_minutes() != self.step_minutes {
            return Err(TraceError::StepMismatch {
                left: self.step_minutes,
                right: trace.step_minutes(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(samples: &[f64]) -> PowerTrace {
        PowerTrace::new(samples.to_vec(), 10).unwrap()
    }

    #[test]
    fn add_remove_track_sum_and_count() {
        let a = trace(&[1.0, 2.0]);
        let b = trace(&[3.0, 1.0]);
        let mut agg = NodeAggregate::new(a.grid());
        assert!(agg.is_empty());
        agg.add(&a).unwrap();
        agg.add(&b).unwrap();
        assert_eq!(agg.count(), 2);
        assert_eq!(agg.to_trace().unwrap().samples(), &[4.0, 3.0]);
        agg.remove(&a).unwrap();
        assert_eq!(agg.count(), 1);
        assert_eq!(agg.to_trace().unwrap().samples(), &[3.0, 1.0]);
    }

    #[test]
    fn peak_is_cached_and_invalidated() {
        let mut agg = NodeAggregate::new(TimeGrid::new(10, 2));
        assert_eq!(agg.peak(), 0.0);
        agg.add(&trace(&[1.0, 5.0])).unwrap();
        assert_eq!(agg.peak(), 5.0);
        assert_eq!(agg.peak(), 5.0);
        agg.remove(&trace(&[0.0, 4.0])).unwrap();
        assert_eq!(agg.peak(), 1.0);
    }

    #[test]
    fn peak_matches_from_scratch_sum() {
        let members = [
            trace(&[1.0, 4.0, 2.0]),
            trace(&[3.0, 0.0, 5.0]),
            trace(&[2.0, 2.0, 2.0]),
        ];
        let agg = NodeAggregate::from_traces(members[0].grid(), &members).unwrap();
        let scratch = PowerTrace::sum_of(&members).unwrap();
        assert_eq!(agg.peak(), scratch.peak());
        assert_eq!(agg.to_trace().unwrap(), scratch);
    }

    #[test]
    fn swap_probe_does_not_mutate() {
        let a = trace(&[4.0, 0.0]);
        let b = trace(&[0.0, 4.0]);
        let agg = NodeAggregate::from_traces(a.grid(), [&a, &b]).unwrap();
        assert_eq!(agg.peak_with_swap(&a, &b).unwrap(), 8.0);
        assert_eq!(agg.peak(), 4.0);
        assert_eq!(agg.count(), 2);
    }

    #[test]
    fn mean_excluding_matches_peer_mean() {
        let members = [trace(&[1.0, 2.0]), trace(&[3.0, 4.0]), trace(&[5.0, 6.0])];
        let agg = NodeAggregate::from_traces(members[0].grid(), &members).unwrap();
        let peers = PowerTrace::mean_of([&members[1], &members[2]]).unwrap();
        let fast = agg.mean_excluding(&members[0]).unwrap();
        for (x, y) in fast.samples().iter().zip(peers.samples()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn errors_on_mismatch_and_underflow() {
        let mut agg = NodeAggregate::new(TimeGrid::new(10, 2));
        assert!(matches!(
            agg.remove(&trace(&[1.0, 1.0])),
            Err(TraceError::Empty)
        ));
        assert!(agg.add(&trace(&[1.0, 1.0, 1.0])).is_err());
        assert!(agg
            .add(&PowerTrace::new(vec![1.0, 1.0], 5).unwrap())
            .is_err());
        agg.add(&trace(&[1.0, 1.0])).unwrap();
        assert!(agg.mean_excluding(&trace(&[1.0, 1.0])).is_err());
    }

    #[test]
    fn clamps_fp_residue_after_remove() {
        let big = trace(&[1.0e16, 1.0]);
        let small = trace(&[0.1, 0.1]);
        let mut agg = NodeAggregate::new(big.grid());
        agg.add(&big).unwrap();
        agg.add(&small).unwrap();
        agg.remove(&big).unwrap();
        // 1e16 + 0.1 - 1e16 == 0.0 in f64: the residue clamps, not panics.
        let t = agg.to_trace().unwrap();
        assert!(t.samples().iter().all(|&v| v >= 0.0));
        assert!(agg.peak() >= 0.0);
    }

    #[test]
    fn samples_entry_points_match_trace_entry_points() {
        let members = [
            trace(&[1.0, 4.0, 2.0]),
            trace(&[3.0, 0.0, 5.0]),
            trace(&[2.0, 2.0, 2.0]),
        ];
        let via_traces = NodeAggregate::from_traces(members[0].grid(), &members).unwrap();
        let via_samples =
            NodeAggregate::from_samples(members[0].grid(), members.iter().map(|t| t.samples()))
                .unwrap();
        assert_eq!(via_samples.count(), via_traces.count());
        assert_eq!(via_samples.sum_samples(), via_traces.sum_samples());
        assert_eq!(via_samples.peak(), via_traces.peak());
        assert_eq!(
            via_samples
                .peak_with_swap_samples(members[0].samples(), members[1].samples())
                .unwrap(),
            via_traces.peak_with_swap(&members[0], &members[1]).unwrap()
        );

        let mut a = via_traces.clone();
        let mut b = via_samples.clone();
        a.remove(&members[1]).unwrap();
        b.remove_samples(members[1].samples()).unwrap();
        assert_eq!(a.sum_samples(), b.sum_samples());
        assert_eq!(a.count(), b.count());

        assert!(b.add_samples(&[1.0]).is_err());
        assert!(b.remove_samples(&[1.0]).is_err());
        let mut empty = NodeAggregate::new(members[0].grid());
        assert!(matches!(
            empty.remove_samples(members[0].samples()),
            Err(TraceError::Empty)
        ));
        assert!(empty
            .peak_with_swap_samples(&[1.0], members[0].samples())
            .is_err());
    }

    #[test]
    fn peak_of_samples_matches_trace_peak() {
        let t = trace(&[1.0, 7.0, 3.0]);
        assert_eq!(peak_of_samples(t.samples()), t.peak());
        assert_eq!(peak_of_samples(&[]), f64::MIN);
    }
}
