//! Error types for power-trace construction and arithmetic.

use std::error::Error;
use std::fmt;

/// Error produced when constructing or combining [`PowerTrace`] values.
///
/// [`PowerTrace`]: crate::PowerTrace
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A trace must contain at least one sample.
    Empty,
    /// The sampling step must be a positive number of minutes.
    ZeroStep,
    /// A sample was NaN, infinite, or negative (power readings are
    /// non-negative real numbers).
    InvalidSample {
        /// Index of the offending sample.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Two traces were combined but their lengths differ.
    LengthMismatch {
        /// Length of the left-hand trace.
        left: usize,
        /// Length of the right-hand trace.
        right: usize,
    },
    /// Two traces were combined but their sampling steps differ.
    StepMismatch {
        /// Step (minutes) of the left-hand trace.
        left: u32,
        /// Step (minutes) of the right-hand trace.
        right: u32,
    },
    /// A window or index was out of bounds.
    OutOfBounds {
        /// The requested index/offset.
        requested: usize,
        /// The trace length.
        len: usize,
    },
    /// A quantile outside `[0, 1]` was requested.
    InvalidQuantile(f64),
    /// A masked trace with missing samples was used where a complete
    /// trace is required.
    MaskedSamples {
        /// Number of masked (unobserved) positions.
        masked: usize,
        /// The trace length.
        len: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Empty => write!(f, "power trace must contain at least one sample"),
            TraceError::ZeroStep => write!(f, "sampling step must be at least one minute"),
            TraceError::InvalidSample { index, value } => {
                write!(f, "invalid power sample {value} at index {index}")
            }
            TraceError::LengthMismatch { left, right } => {
                write!(f, "trace length mismatch: {left} vs {right}")
            }
            TraceError::StepMismatch { left, right } => {
                write!(f, "trace step mismatch: {left} min vs {right} min")
            }
            TraceError::OutOfBounds { requested, len } => {
                write!(
                    f,
                    "index {requested} out of bounds for trace of length {len}"
                )
            }
            TraceError::InvalidQuantile(q) => {
                write!(f, "quantile {q} outside the closed interval [0, 1]")
            }
            TraceError::MaskedSamples { masked, len } => {
                write!(
                    f,
                    "trace has {masked} of {len} samples masked; a complete trace is required"
                )
            }
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(TraceError, &str)> = vec![
            (TraceError::Empty, "at least one sample"),
            (TraceError::ZeroStep, "at least one minute"),
            (
                TraceError::InvalidSample {
                    index: 3,
                    value: f64::NAN,
                },
                "index 3",
            ),
            (TraceError::LengthMismatch { left: 2, right: 5 }, "2 vs 5"),
            (
                TraceError::StepMismatch { left: 1, right: 10 },
                "1 min vs 10 min",
            ),
            (
                TraceError::OutOfBounds {
                    requested: 9,
                    len: 4,
                },
                "out of bounds",
            ),
            (TraceError::InvalidQuantile(1.5), "1.5"),
            (TraceError::MaskedSamples { masked: 2, len: 8 }, "2 of 8"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "message {msg:?} missing {needle:?}");
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
