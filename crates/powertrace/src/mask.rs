//! Partial power traces: samples with a validity mask.
//!
//! Degraded telemetry (sensor dropout, late data) yields traces where
//! some positions are simply *unknown*. A [`MaskedTrace`] carries the
//! known samples plus a per-position validity mask, so placement and
//! remapping can fall back to a service-level prior ([`fill_with`])
//! instead of erroring out or silently treating missing power as zero.
//!
//! [`fill_with`]: MaskedTrace::fill_with

use serde::{Deserialize, Serialize};

use crate::error::TraceError;
use crate::grid::TimeGrid;
use crate::trace::PowerTrace;

/// A fixed-step power time series in which individual samples may be
/// missing.
///
/// Masked positions store `0.0` internally; their values are never read.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), so_powertrace::TraceError> {
/// use so_powertrace::{MaskedTrace, PowerTrace};
///
/// // Second sample never arrived.
/// let partial = MaskedTrace::from_samples(&[10.0, f64::NAN, 30.0], 15)?;
/// assert_eq!(partial.observed(), 2);
///
/// // Fill the hole from a service-level prior, scaled to match the
/// // observed samples (prior mean over observed positions is 20 here,
/// // matching the observed mean, so the fill is the prior's own value).
/// let prior = PowerTrace::new(vec![10.0, 20.0, 30.0], 15)?;
/// let filled = partial.fill_with(&prior)?;
/// assert_eq!(filled.samples(), &[10.0, 20.0, 30.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaskedTrace {
    samples: Vec<f64>,
    valid: Vec<bool>,
    step_minutes: u32,
}

impl MaskedTrace {
    /// Builds a masked trace from samples and a validity mask.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for no samples,
    /// [`TraceError::ZeroStep`] for a zero step,
    /// [`TraceError::LengthMismatch`] when the mask length differs, and
    /// [`TraceError::InvalidSample`] when a *valid* position holds a
    /// non-finite or negative value.
    pub fn new(samples: Vec<f64>, valid: Vec<bool>, step_minutes: u32) -> Result<Self, TraceError> {
        if samples.is_empty() {
            return Err(TraceError::Empty);
        }
        if step_minutes == 0 {
            return Err(TraceError::ZeroStep);
        }
        if samples.len() != valid.len() {
            return Err(TraceError::LengthMismatch {
                left: samples.len(),
                right: valid.len(),
            });
        }
        let mut samples = samples;
        for (index, (v, &ok)) in samples.iter_mut().zip(&valid).enumerate() {
            if ok {
                if !v.is_finite() || *v < 0.0 {
                    return Err(TraceError::InvalidSample { index, value: *v });
                }
            } else {
                *v = 0.0;
            }
        }
        Ok(Self {
            samples,
            valid,
            step_minutes,
        })
    }

    /// A fully observed masked trace (every position valid).
    pub fn from_trace(trace: &PowerTrace) -> Self {
        Self {
            samples: trace.samples().to_vec(),
            valid: vec![true; trace.len()],
            step_minutes: trace.step_minutes(),
        }
    }

    /// Builds a masked trace from raw readings, masking out every
    /// non-finite or negative sample.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for no samples and
    /// [`TraceError::ZeroStep`] for a zero step.
    pub fn from_samples(samples: &[f64], step_minutes: u32) -> Result<Self, TraceError> {
        let valid: Vec<bool> = samples.iter().map(|v| v.is_finite() && *v >= 0.0).collect();
        let samples = samples
            .iter()
            .zip(&valid)
            .map(|(&v, &ok)| if ok { v } else { 0.0 })
            .collect();
        Self::new(samples, valid, step_minutes)
    }

    /// Number of positions (observed or not).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Always false — construction rejects empty traces.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sampling step in minutes.
    pub fn step_minutes(&self) -> u32 {
        self.step_minutes
    }

    /// The sampling layout of this trace.
    pub fn grid(&self) -> TimeGrid {
        TimeGrid::new(self.step_minutes, self.samples.len())
    }

    /// The sample values (masked positions read as `0.0`).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The validity mask.
    pub fn valid(&self) -> &[bool] {
        &self.valid
    }

    /// Number of observed (valid) positions.
    pub fn observed(&self) -> usize {
        self.valid.iter().filter(|&&ok| ok).count()
    }

    /// Fraction of positions observed, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        self.observed() as f64 / self.samples.len() as f64
    }

    /// True when every position is observed.
    pub fn is_complete(&self) -> bool {
        self.valid.iter().all(|&ok| ok)
    }

    /// Mean over observed positions; `None` when nothing was observed.
    pub fn observed_mean(&self) -> Option<f64> {
        let observed = self.observed();
        if observed == 0 {
            return None;
        }
        let sum: f64 = self
            .samples
            .iter()
            .zip(&self.valid)
            .filter(|(_, &ok)| ok)
            .map(|(&v, _)| v)
            .sum();
        Some(sum / observed as f64)
    }

    /// Converts to a [`PowerTrace`], requiring full coverage.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::MaskedSamples`] when any position is masked.
    pub fn to_trace(&self) -> Result<PowerTrace, TraceError> {
        let masked = self.samples.len() - self.observed();
        if masked > 0 {
            return Err(TraceError::MaskedSamples {
                masked,
                len: self.samples.len(),
            });
        }
        PowerTrace::new(self.samples.clone(), self.step_minutes)
    }

    /// Fills masked positions from a prior trace (typically the service's
    /// S-trace), scaled so the prior's mean over the *observed* positions
    /// matches the observed mean. Falls back to the unscaled prior when
    /// nothing was observed or the prior is zero where observed.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] / [`TraceError::StepMismatch`]
    /// when the prior is on a different grid.
    pub fn fill_with(&self, prior: &PowerTrace) -> Result<PowerTrace, TraceError> {
        if prior.len() != self.samples.len() {
            return Err(TraceError::LengthMismatch {
                left: self.samples.len(),
                right: prior.len(),
            });
        }
        if prior.step_minutes() != self.step_minutes {
            return Err(TraceError::StepMismatch {
                left: self.step_minutes,
                right: prior.step_minutes(),
            });
        }
        let scale = match self.observed_mean() {
            Some(mean) => {
                let prior_sum: f64 = prior
                    .samples()
                    .iter()
                    .zip(&self.valid)
                    .filter(|(_, &ok)| ok)
                    .map(|(&v, _)| v)
                    .sum();
                let prior_mean = prior_sum / self.observed() as f64;
                if prior_mean > 0.0 {
                    mean / prior_mean
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let filled: Vec<f64> = self
            .samples
            .iter()
            .zip(&self.valid)
            .zip(prior.samples())
            .map(|((&v, &ok), &p)| if ok { v } else { (p * scale).max(0.0) })
            .collect();
        PowerTrace::new(filled, self.step_minutes)
    }

    /// Fills masked positions with a constant.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidSample`] for a non-finite or negative
    /// fill value.
    pub fn fill_constant(&self, value: f64) -> Result<PowerTrace, TraceError> {
        if !value.is_finite() || value < 0.0 {
            return Err(TraceError::InvalidSample { index: 0, value });
        }
        let filled: Vec<f64> = self
            .samples
            .iter()
            .zip(&self.valid)
            .map(|(&v, &ok)| if ok { v } else { value })
            .collect();
        PowerTrace::new(filled, self.step_minutes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_samples_masks_garbage() {
        let m = MaskedTrace::from_samples(&[5.0, f64::NAN, -2.0, 8.0], 10).unwrap();
        assert_eq!(m.valid(), &[true, false, false, true]);
        assert_eq!(m.samples(), &[5.0, 0.0, 0.0, 8.0]);
        assert_eq!(m.observed(), 2);
        assert!((m.coverage() - 0.5).abs() < 1e-12);
        assert!(!m.is_complete());
    }

    #[test]
    fn complete_round_trips_to_trace() {
        let t = PowerTrace::new(vec![1.0, 2.0], 30).unwrap();
        let m = MaskedTrace::from_trace(&t);
        assert!(m.is_complete());
        assert_eq!(m.to_trace().unwrap(), t);
    }

    #[test]
    fn to_trace_rejects_masked() {
        let m = MaskedTrace::from_samples(&[1.0, f64::NAN], 30).unwrap();
        assert_eq!(
            m.to_trace().unwrap_err(),
            TraceError::MaskedSamples { masked: 1, len: 2 }
        );
    }

    #[test]
    fn new_validates() {
        assert_eq!(
            MaskedTrace::new(vec![], vec![], 10).unwrap_err(),
            TraceError::Empty
        );
        assert_eq!(
            MaskedTrace::new(vec![1.0], vec![true], 0).unwrap_err(),
            TraceError::ZeroStep
        );
        assert_eq!(
            MaskedTrace::new(vec![1.0], vec![true, false], 10).unwrap_err(),
            TraceError::LengthMismatch { left: 1, right: 2 }
        );
        assert!(matches!(
            MaskedTrace::new(vec![-1.0], vec![true], 10),
            Err(TraceError::InvalidSample { index: 0, .. })
        ));
        // Garbage at a masked position is fine and normalizes to zero.
        let m = MaskedTrace::new(vec![f64::NAN], vec![false], 10).unwrap();
        assert_eq!(m.samples(), &[0.0]);
    }

    #[test]
    fn fill_with_scales_prior_to_observed_level() {
        // Observed samples run 2x hotter than the prior.
        let m = MaskedTrace::from_samples(&[20.0, f64::NAN, 60.0], 15).unwrap();
        let prior = PowerTrace::new(vec![10.0, 25.0, 30.0], 15).unwrap();
        let filled = m.fill_with(&prior).unwrap();
        assert_eq!(filled.samples(), &[20.0, 50.0, 60.0]);
    }

    #[test]
    fn fill_with_unobserved_uses_prior_directly() {
        let m = MaskedTrace::new(vec![0.0, 0.0], vec![false, false], 15).unwrap();
        let prior = PowerTrace::new(vec![3.0, 4.0], 15).unwrap();
        assert_eq!(m.fill_with(&prior).unwrap().samples(), &[3.0, 4.0]);
    }

    #[test]
    fn fill_with_grid_mismatch() {
        let m = MaskedTrace::from_samples(&[1.0, 2.0], 15).unwrap();
        let short = PowerTrace::new(vec![1.0], 15).unwrap();
        assert!(matches!(
            m.fill_with(&short),
            Err(TraceError::LengthMismatch { .. })
        ));
        let wrong_step = PowerTrace::new(vec![1.0, 2.0], 30).unwrap();
        assert!(matches!(
            m.fill_with(&wrong_step),
            Err(TraceError::StepMismatch { .. })
        ));
    }

    #[test]
    fn fill_constant_works_and_validates() {
        let m = MaskedTrace::from_samples(&[1.0, f64::NAN], 15).unwrap();
        assert_eq!(m.fill_constant(9.0).unwrap().samples(), &[1.0, 9.0]);
        assert!(m.fill_constant(f64::NAN).is_err());
        assert!(m.fill_constant(-1.0).is_err());
    }

    #[test]
    fn observed_mean_matches_hand_value() {
        let m = MaskedTrace::from_samples(&[2.0, f64::NAN, 4.0], 15).unwrap();
        assert_eq!(m.observed_mean(), Some(3.0));
        let none = MaskedTrace::new(vec![0.0], vec![false], 15).unwrap();
        assert_eq!(none.observed_mean(), None);
    }
}
