//! Seasonal decomposition of power traces.
//!
//! Splits a trace into its repeating daily template (the diurnal signal
//! SmoothOperator exploits) and the residual (noise plus aperiodic
//! events). Useful for characterizing workloads — a high seasonality
//! fraction means a predictable instance the placement can bank on, a low
//! one means noise-driven behaviour — and for denoising external traces.

use serde::{Deserialize, Serialize};

use crate::error::TraceError;
use crate::grid::MINUTES_PER_DAY;
use crate::trace::PowerTrace;

/// A trace split into a repeating daily template and a residual.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeasonalDecomposition {
    /// Mean power across the whole trace, watts.
    pub mean: f64,
    /// One day of the repeating diurnal template, centered on zero
    /// (template + mean + residual reconstructs the trace).
    pub daily_template: Vec<f64>,
    /// Residual per sample (trace − mean − template), may be negative.
    pub residual: Vec<f64>,
    step_minutes: u32,
}

impl SeasonalDecomposition {
    /// Decomposes a trace into mean + daily template + residual.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] when the trace does not
    /// cover a whole number of days.
    pub fn of(trace: &PowerTrace) -> Result<Self, TraceError> {
        let step = trace.step_minutes();
        if MINUTES_PER_DAY % step != 0 {
            return Err(TraceError::StepMismatch {
                left: step,
                right: MINUTES_PER_DAY,
            });
        }
        let per_day = (MINUTES_PER_DAY / step) as usize;
        if trace.len() % per_day != 0 {
            return Err(TraceError::LengthMismatch {
                left: trace.len(),
                right: per_day,
            });
        }
        let days = trace.len() / per_day;
        let mean = trace.mean();

        // Mean of each slot-of-day across days, centered.
        let mut template = vec![0.0f64; per_day];
        for (i, &v) in trace.samples().iter().enumerate() {
            template[i % per_day] += (v - mean) / days as f64;
        }
        let residual = trace
            .samples()
            .iter()
            .enumerate()
            .map(|(i, &v)| v - mean - template[i % per_day])
            .collect();
        Ok(Self {
            mean,
            daily_template: template,
            residual,
            step_minutes: step,
        })
    }

    /// Fraction of the trace's variance explained by the daily template,
    /// in `[0, 1]` — the *seasonality* of the workload.
    pub fn seasonality(&self) -> f64 {
        let per_day = self.daily_template.len();
        let template_var: f64 =
            self.daily_template.iter().map(|v| v * v).sum::<f64>() / per_day as f64;
        let residual_var: f64 =
            self.residual.iter().map(|v| v * v).sum::<f64>() / self.residual.len() as f64;
        let total = template_var + residual_var;
        if total == 0.0 {
            0.0
        } else {
            template_var / total
        }
    }

    /// The denoised trace: mean + repeated template, clamped at zero.
    pub fn denoised(&self) -> PowerTrace {
        let per_day = self.daily_template.len();
        let samples: Vec<f64> = (0..self.residual.len())
            .map(|i| (self.mean + self.daily_template[i % per_day]).max(0.0))
            .collect();
        PowerTrace::new(samples, self.step_minutes).expect("clamped samples are valid")
    }

    /// Minute-of-day at which the template peaks.
    pub fn peak_minute_of_day(&self) -> u32 {
        let idx = self
            .daily_template
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("template is finite"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        idx as u32 * self.step_minutes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::TimeGrid;

    fn diurnal_trace(days: u32, noise: f64) -> PowerTrace {
        let grid = TimeGrid::days(days, 60);
        PowerTrace::from_fn(grid, |i| {
            let m = grid.minute_of_day(i) as f64;
            let season = 100.0 + 50.0 * (2.0 * std::f64::consts::PI * m / 1440.0).sin();
            let jitter = noise * ((i * 2654435761) % 1000) as f64 / 1000.0;
            season + jitter
        })
    }

    #[test]
    fn pure_diurnal_signal_is_fully_seasonal() {
        let t = diurnal_trace(4, 0.0);
        let d = SeasonalDecomposition::of(&t).unwrap();
        assert!(d.seasonality() > 0.999, "seasonality {}", d.seasonality());
        // Reconstruction: mean + template + residual == trace.
        let per_day = d.daily_template.len();
        for (i, &v) in t.samples().iter().enumerate() {
            let rec = d.mean + d.daily_template[i % per_day] + d.residual[i];
            assert!((rec - v).abs() < 1e-9);
        }
        // Denoised equals the original for a noise-free input.
        let den = d.denoised();
        for (a, b) in den.samples().iter().zip(t.samples()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn noise_lowers_seasonality() {
        let clean = SeasonalDecomposition::of(&diurnal_trace(4, 0.0)).unwrap();
        let noisy = SeasonalDecomposition::of(&diurnal_trace(4, 80.0)).unwrap();
        assert!(noisy.seasonality() < clean.seasonality());
        assert!(noisy.seasonality() > 0.1, "diurnal signal still dominates");
    }

    #[test]
    fn flat_trace_has_zero_seasonality() {
        let grid = TimeGrid::days(2, 60);
        let t = PowerTrace::constant(42.0, grid);
        let d = SeasonalDecomposition::of(&t).unwrap();
        assert_eq!(d.seasonality(), 0.0);
        assert_eq!(d.mean, 42.0);
    }

    #[test]
    fn template_peak_matches_signal_peak() {
        let t = diurnal_trace(3, 0.0);
        let d = SeasonalDecomposition::of(&t).unwrap();
        // sin peaks at a quarter day: 360 minutes.
        assert_eq!(d.peak_minute_of_day(), 360);
    }

    #[test]
    fn partial_days_are_rejected() {
        let t = PowerTrace::new(vec![1.0; 30], 60).unwrap(); // 30 h
        assert!(SeasonalDecomposition::of(&t).is_err());
        let t = PowerTrace::new(vec![1.0; 10], 7).unwrap(); // step !| day
        assert!(SeasonalDecomposition::of(&t).is_err());
    }
}
