//! [`TraceArena`]: columnar storage for large trace populations.
//!
//! The placement pipeline is bulk arithmetic over an `n × T` sample matrix
//! (embedding rows, k-means distances, node sums, swap probes). Storing the
//! fleet as `Vec<PowerTrace>` scatters those `n` rows across the heap —
//! one allocation per instance plus pointer-chasing on every kernel — which
//! caps practical fleet sizes well below the ROADMAP's million-instance
//! target. A `TraceArena` stores all samples in **one contiguous buffer**
//! (row-major, one row per trace) and hands out typed views:
//!
//! * [`TraceView`] / [`TraceViewMut`] — borrowed handles with the familiar
//!   trace operations (peak, mean, quantile), zero-copy in both directions
//!   ([`TraceView::from_trace`] borrows a [`PowerTrace`]'s samples without
//!   copying);
//! * batch kernels — [`sum_into`](TraceArena::sum_into),
//!   [`peak_of_sum`](TraceArena::peak_of_sum) (allocation-free, time-blocked),
//!   [`axpy_into`](TraceArena::axpy_into),
//!   [`row_peaks`](TraceArena::row_peaks) and
//!   [`row_quantiles`](TraceArena::row_quantiles) (canonically chunked over
//!   rows via `so-parallel`, reusing the shared HF7 [`crate::quantile`]
//!   convention).
//!
//! # Bit-exactness contract
//!
//! Every kernel performs the *same floating-point operations in the same
//! order* as its `Vec<PowerTrace>` counterpart:
//!
//! * [`sum_into`](TraceArena::sum_into) accumulates members **sequentially
//!   in index order**, the association of [`PowerTrace::sum_of`] and
//!   [`NodeAggregate::add`](crate::NodeAggregate::add) loops;
//! * [`peak_of_sum`](TraceArena::peak_of_sum) blocks over the *time* axis
//!   only — each element's sum keeps the member-order association, and the
//!   peak fold visits elements in time order, exactly like
//!   [`peak_of_samples`](crate::peak_of_samples) over the materialized sum;
//! * the row-parallel kernels chunk *canonically* (fixed blocks of
//!   [`ROW_BLOCK`] rows), so serial and parallel runs are bit-identical —
//!   the `so-parallel` determinism contract; per-row work inside a block
//!   uses the shared 4-lane [`peak_of_samples`] fold and the `O(T)`
//!   selection quantile ([`crate::quantile::quantile_select`]), both
//!   bit-identical to their scalar/sorting predecessors;
//! * [`par_extend_rows`](TraceArena::par_extend_rows) synthesizes rows in
//!   parallel into disjoint buffer windows (each row a pure function of its
//!   index), and [`clear`](TraceArena::clear) recycles the buffer so
//!   chunked/streaming synthesis keeps peak RSS bounded;
//! * [`row_quantiles_sketch`](TraceArena::row_quantiles_sketch) is the
//!   *approximate* one-pass P² alternative — deterministic, but bound by
//!   [`crate::sketch::P2_RANK_ERROR_BOUND`] instead of bit-exactness.
//!
//! The `arena` oracle family in `so-oracles` diffs every kernel against the
//! materializing path bit-for-bit on seeded fleets.

use so_parallel::{par_chunk_map, par_fill_chunks};

use crate::aggregate::peak_of_samples;
use crate::error::TraceError;
use crate::grid::TimeGrid;
use crate::quantile;
use crate::sketch::P2Quantile;
use crate::trace::PowerTrace;

/// Time-axis block width for allocation-free fused kernels. Small enough to
/// live on the stack and stay cache-resident, large enough to amortize the
/// member loop. The value affects performance only — per-element float
/// association is independent of the block layout.
const TIME_BLOCK: usize = 512;

/// Rows per parallel work item in the batch row kernels ([`row_peaks`],
/// [`row_quantiles`]): large enough that each item amortizes its partial
/// `Vec` (and, for quantiles, one scratch buffer) over many rows, small
/// enough to load-balance a million-row arena across lanes. Chunking is
/// canonical (row blocks depend only on this constant), so the flattened
/// result is bit-identical at any thread count.
///
/// [`row_peaks`]: TraceArena::row_peaks
/// [`row_quantiles`]: TraceArena::row_quantiles
const ROW_BLOCK: usize = 4096;

/// Columnar storage for `n` equally-gridded power traces: one contiguous
/// row-major `n × T` sample buffer.
///
/// All rows share one [`TimeGrid`]; pushing enforces the same invariants as
/// [`PowerTrace::new`] (finite, non-negative samples), so every view is a
/// valid trace.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), so_powertrace::TraceError> {
/// use so_powertrace::{PowerTrace, TimeGrid, TraceArena};
///
/// let a = PowerTrace::new(vec![4.0, 0.0], 15)?;
/// let b = PowerTrace::new(vec![0.0, 4.0], 15)?;
/// let arena = TraceArena::from_traces(&[a.clone(), b])?;
/// assert_eq!(arena.len(), 2);
/// assert_eq!(arena.view(0).samples(), a.samples());
/// // Batch kernel: peak of the members' elementwise sum, allocation-free.
/// assert_eq!(arena.peak_of_sum(&[0, 1])?, 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArena {
    /// Row-major samples: trace `i` occupies `i*T .. (i+1)*T`.
    samples: Vec<f64>,
    samples_per_trace: usize,
    step_minutes: u32,
}

impl TraceArena {
    /// An empty arena whose rows will live on `grid`.
    pub fn new(grid: TimeGrid) -> Self {
        Self {
            samples: Vec::new(),
            samples_per_trace: grid.len(),
            step_minutes: grid.step_minutes(),
        }
    }

    /// An empty arena with room for `traces` rows reserved up front — one
    /// allocation for the whole population.
    pub fn with_capacity(grid: TimeGrid, traces: usize) -> Self {
        Self {
            samples: Vec::with_capacity(grid.len() * traces),
            samples_per_trace: grid.len(),
            step_minutes: grid.step_minutes(),
        }
    }

    /// Builds an arena holding a copy of every trace, in order.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for an empty slice and a mismatch error
    /// when the traces do not share one grid.
    pub fn from_traces(traces: &[PowerTrace]) -> Result<Self, TraceError> {
        let first = traces.first().ok_or(TraceError::Empty)?;
        let mut arena = Self::with_capacity(first.grid(), traces.len());
        for t in traces {
            arena.push_trace(t)?;
        }
        Ok(arena)
    }

    /// Appends a copy of `trace` as a new row, returning its index.
    ///
    /// # Errors
    ///
    /// Returns a mismatch error when `trace` is not on the arena's grid.
    pub fn push_trace(&mut self, trace: &PowerTrace) -> Result<usize, TraceError> {
        if trace.step_minutes() != self.step_minutes {
            return Err(TraceError::StepMismatch {
                left: self.step_minutes,
                right: trace.step_minutes(),
            });
        }
        self.push_samples(trace.samples())
    }

    /// Appends raw samples as a new row, returning its index. Samples are
    /// validated like [`PowerTrace::new`] (finite, non-negative).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] when `samples` is not one grid
    /// row long and [`TraceError::InvalidSample`] for a NaN, infinite, or
    /// negative sample.
    pub fn push_samples(&mut self, samples: &[f64]) -> Result<usize, TraceError> {
        if samples.len() != self.samples_per_trace {
            return Err(TraceError::LengthMismatch {
                left: self.samples_per_trace,
                right: samples.len(),
            });
        }
        for (index, &value) in samples.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(TraceError::InvalidSample { index, value });
            }
        }
        self.samples.extend_from_slice(samples);
        Ok(self.len() - 1)
    }

    /// Appends a row by evaluating `f` at every grid point — the
    /// allocation-free synthesis path for scale runs (no intermediate
    /// `Vec` per instance). Negative values are clamped to zero, matching
    /// [`PowerTrace::from_fn`].
    ///
    /// # Panics
    ///
    /// Panics if `f` produces a NaN or infinite value.
    pub fn push_with(&mut self, mut f: impl FnMut(usize) -> f64) -> usize {
        self.samples.reserve(self.samples_per_trace);
        for i in 0..self.samples_per_trace {
            let v = f(i);
            assert!(v.is_finite(), "trace generator produced a non-finite value");
            self.samples.push(v.max(0.0));
        }
        self.len() - 1
    }

    /// Appends `rows` rows at once, generating each row's samples in
    /// parallel: `fill(r, row)` writes row `base + r` (where `base` is the
    /// arena length before the call) directly into the buffer. This is the
    /// scale tier's synthesis path — one `Vec` grow for the whole batch,
    /// rows distributed over `so-parallel`'s canonical chunks, **bit-
    /// identical at any thread count** because every row is produced by a
    /// pure function of its index into a disjoint window.
    ///
    /// After `fill` returns, each row is validated and clamped exactly like
    /// [`Self::push_with`]: negative samples become `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `fill` leaves a NaN or infinite value in a row.
    pub fn par_extend_rows(&mut self, rows: usize, fill: impl Fn(usize, &mut [f64]) + Sync) {
        let t = self.samples_per_trace;
        let old_len = self.samples.len();
        self.samples.resize(old_len + rows * t, 0.0);
        par_fill_chunks(&mut self.samples[old_len..], t, |r, row| {
            fill(r, row);
            for v in row.iter_mut() {
                assert!(v.is_finite(), "trace generator produced a non-finite value");
                *v = v.max(0.0);
            }
        });
    }

    /// Removes every row, keeping the allocated buffer for reuse — the
    /// chunked/streaming synthesis loop recycles one arena across chunks so
    /// peak RSS stays bounded by the chunk size, not the fleet size.
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Number of traces (rows) in the arena.
    #[allow(clippy::len_without_is_empty)] // is_empty provided below
    pub fn len(&self) -> usize {
        self.samples
            .len()
            .checked_div(self.samples_per_trace)
            .unwrap_or(0)
    }

    /// True when no trace has been pushed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples per trace (the grid length `T`).
    pub fn samples_per_trace(&self) -> usize {
        self.samples_per_trace
    }

    /// Sampling step in minutes.
    pub fn step_minutes(&self) -> u32 {
        self.step_minutes
    }

    /// The grid every row is sampled on.
    pub fn grid(&self) -> TimeGrid {
        TimeGrid::new(self.step_minutes, self.samples_per_trace)
    }

    /// The whole contiguous sample buffer (row-major).
    pub fn flat_samples(&self) -> &[f64] {
        &self.samples
    }

    /// Raw samples of row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds (like slice indexing).
    pub fn row(&self, i: usize) -> &[f64] {
        let t = self.samples_per_trace;
        &self.samples[i * t..(i + 1) * t]
    }

    /// Borrowed view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds (like slice indexing).
    pub fn view(&self, i: usize) -> TraceView<'_> {
        TraceView {
            samples: self.row(i),
            step_minutes: self.step_minutes,
        }
    }

    /// Borrowed view of row `i`, or an error for an out-of-bounds index.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutOfBounds`] when `i >= len`.
    pub fn try_view(&self, i: usize) -> Result<TraceView<'_>, TraceError> {
        if i >= self.len() {
            return Err(TraceError::OutOfBounds {
                requested: i,
                len: self.len(),
            });
        }
        Ok(self.view(i))
    }

    /// Mutable view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds (like slice indexing).
    pub fn view_mut(&mut self, i: usize) -> TraceViewMut<'_> {
        let t = self.samples_per_trace;
        TraceViewMut {
            samples: &mut self.samples[i * t..(i + 1) * t],
            step_minutes: self.step_minutes,
        }
    }

    /// Materializes row `i` as an owned [`PowerTrace`] (copies one row).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutOfBounds`] when `i >= len`; re-validation
    /// errors can only arise after a mutable view injected invalid samples.
    pub fn to_trace(&self, i: usize) -> Result<PowerTrace, TraceError> {
        self.try_view(i)?.to_trace()
    }

    /// Materializes every row as an owned trace — the bridge back to
    /// `Vec<PowerTrace>` call sites.
    ///
    /// # Errors
    ///
    /// Same as [`to_trace`](Self::to_trace) per row.
    pub fn to_traces(&self) -> Result<Vec<PowerTrace>, TraceError> {
        (0..self.len()).map(|i| self.to_trace(i)).collect()
    }

    /// Elementwise sum of the member rows into `out`, accumulating members
    /// **sequentially in slice order** — bit-identical to
    /// [`PowerTrace::sum_of`] over the same members (and therefore to
    /// [`NodeAggregate`](crate::NodeAggregate)'s incremental sum).
    ///
    /// `O(|members| · T)`, zero allocations; each row is read contiguously.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for an empty member list,
    /// [`TraceError::LengthMismatch`] when `out` is not one row long, and
    /// [`TraceError::OutOfBounds`] for a member index past the end.
    pub fn sum_into(&self, members: &[usize], out: &mut [f64]) -> Result<(), TraceError> {
        if members.is_empty() {
            return Err(TraceError::Empty);
        }
        if out.len() != self.samples_per_trace {
            return Err(TraceError::LengthMismatch {
                left: self.samples_per_trace,
                right: out.len(),
            });
        }
        self.check_members(members)?;
        out.fill(0.0);
        for &m in members {
            add_assign(out, self.row(m));
        }
        Ok(())
    }

    /// Peak of the member rows' elementwise sum, without materializing the
    /// sum: the time axis is processed in fixed stack-resident blocks, each
    /// block accumulated member-by-member in slice order. Per-element float
    /// association is identical to [`sum_into`](Self::sum_into) +
    /// [`peak_of_samples`](crate::peak_of_samples), so the result is
    /// bit-identical to `PowerTrace::sum_of(members).peak()`.
    ///
    /// `O(|members| · T)`, zero allocations.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for an empty member list and
    /// [`TraceError::OutOfBounds`] for a member index past the end.
    pub fn peak_of_sum(&self, members: &[usize]) -> Result<f64, TraceError> {
        if members.is_empty() {
            return Err(TraceError::Empty);
        }
        self.check_members(members)?;
        let t_len = self.samples_per_trace;
        let mut block = [0.0f64; TIME_BLOCK];
        let mut peak = f64::MIN;
        let mut start = 0;
        while start < t_len {
            let width = TIME_BLOCK.min(t_len - start);
            block[..width].fill(0.0);
            for &m in members {
                let row = &self.samples[m * t_len + start..m * t_len + start + width];
                add_assign(&mut block[..width], row);
            }
            // `max` is exactly associative over validated samples, so
            // folding the block peak through `peak_of_samples`' 4-lane
            // reduction returns the same bits as the sequential fold.
            peak = peak.max(peak_of_samples(&block[..width]));
            start += width;
        }
        Ok(peak)
    }

    /// `out += alpha · row(i)` — the BLAS `axpy` over one row, used to
    /// accumulate scaled traces (e.g. running means) without intermediates.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] when `out` is not one row
    /// long, [`TraceError::OutOfBounds`] for an out-of-range row, and
    /// [`TraceError::InvalidSample`] for a non-finite `alpha`.
    pub fn axpy_into(&self, alpha: f64, i: usize, out: &mut [f64]) -> Result<(), TraceError> {
        if !alpha.is_finite() {
            return Err(TraceError::InvalidSample {
                index: 0,
                value: alpha,
            });
        }
        if out.len() != self.samples_per_trace {
            return Err(TraceError::LengthMismatch {
                left: self.samples_per_trace,
                right: out.len(),
            });
        }
        if i >= self.len() {
            return Err(TraceError::OutOfBounds {
                requested: i,
                len: self.len(),
            });
        }
        let row = self.row(i);
        // Element-wise: each `out[t]` has its own accumulation chain, so
        // the 4-wide unroll cannot reassociate anything.
        let mut out_chunks = out.chunks_exact_mut(4);
        let mut row_chunks = row.chunks_exact(4);
        for (acc, src) in (&mut out_chunks).zip(&mut row_chunks) {
            acc[0] += alpha * src[0];
            acc[1] += alpha * src[1];
            acc[2] += alpha * src[2];
            acc[3] += alpha * src[3];
        }
        for (acc, &v) in out_chunks
            .into_remainder()
            .iter_mut()
            .zip(row_chunks.remainder())
        {
            *acc += alpha * v;
        }
        Ok(())
    }

    /// Peak of every row, computed row-parallel over canonical blocks of
    /// `ROW_BLOCK` rows, bit-identical to the serial loop — the
    /// `so-parallel` determinism contract. Each row's peak is the shared
    /// [`peak_of_samples`] 4-lane fold.
    pub fn row_peaks(&self) -> Vec<f64> {
        if self.is_empty() {
            return Vec::new();
        }
        let t = self.samples_per_trace;
        let blocks = par_chunk_map(&self.samples, t * ROW_BLOCK, |_, block| {
            block.chunks(t).map(peak_of_samples).collect::<Vec<f64>>()
        });
        let mut out = Vec::with_capacity(self.len());
        for block in blocks {
            out.extend_from_slice(&block);
        }
        out
    }

    /// The `q`-quantile of every row under the workspace's shared HF7
    /// convention ([`crate::quantile`]), computed row-parallel over
    /// canonical blocks of `ROW_BLOCK` rows. Each row uses the `O(T)`
    /// selection path ([`quantile::quantile_select`]) with one scratch
    /// buffer per block — bit-identical to the full-sort
    /// [`PowerTrace::quantile`], which the arena oracle family pins.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidQuantile`] for `q` outside `[0, 1]`.
    pub fn row_quantiles(&self, q: f64) -> Result<Vec<f64>, TraceError> {
        if !(0.0..=1.0).contains(&q) || q.is_nan() {
            return Err(TraceError::InvalidQuantile(q));
        }
        if self.is_empty() {
            return Ok(Vec::new());
        }
        let t = self.samples_per_trace;
        let blocks = par_chunk_map(&self.samples, t * ROW_BLOCK, |_, block| {
            let mut scratch = Vec::with_capacity(t);
            block
                .chunks(t)
                .map(|row| quantile::quantile_select(row, q, &mut scratch))
                .collect::<Result<Vec<f64>, TraceError>>()
        });
        let mut out = Vec::with_capacity(self.len());
        for block in blocks {
            out.extend_from_slice(&block?);
        }
        Ok(out)
    }

    /// The `q`-quantile of every row estimated by the one-pass P² sketch
    /// ([`crate::sketch`]) — the approximate, streaming-friendly
    /// alternative to [`Self::row_quantiles`], parallelized over the same
    /// canonical row blocks (and therefore equally deterministic at any
    /// thread count; the sketch itself is a pure function of the row).
    ///
    /// Accuracy is the sketch's empirical contract
    /// ([`crate::sketch::P2_RANK_ERROR_BOUND`]), **not** bit-exactness —
    /// exact consumers must use [`Self::row_quantiles`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidQuantile`] for `q` outside `[0, 1]`.
    pub fn row_quantiles_sketch(&self, q: f64) -> Result<Vec<f64>, TraceError> {
        if !(0.0..=1.0).contains(&q) || q.is_nan() {
            return Err(TraceError::InvalidQuantile(q));
        }
        if self.is_empty() {
            return Ok(Vec::new());
        }
        let t = self.samples_per_trace;
        let blocks = par_chunk_map(&self.samples, t * ROW_BLOCK, |_, block| {
            block
                .chunks(t)
                .map(|row| {
                    let mut sketch = P2Quantile::new(q).expect("q validated above");
                    for &v in row {
                        sketch.observe(v);
                    }
                    sketch.estimate().expect("rows are never empty")
                })
                .collect::<Vec<f64>>()
        });
        let mut out = Vec::with_capacity(self.len());
        for block in blocks {
            out.extend_from_slice(&block);
        }
        Ok(out)
    }

    /// The `q`-quantile of row `i`, reusing `scratch` for the selection so
    /// repeated calls allocate nothing once the scratch has grown to one
    /// row. Agrees bit-for-bit with [`PowerTrace::quantile`] (`O(T)`
    /// selection of the same order statistics, same HF7 interpolation —
    /// see [`quantile::quantile_select`]).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutOfBounds`] for an out-of-range row and the
    /// shared quantile errors ([`TraceError::InvalidQuantile`], NaN
    /// samples).
    pub fn quantile_of_row(
        &self,
        i: usize,
        q: f64,
        scratch: &mut Vec<f64>,
    ) -> Result<f64, TraceError> {
        if i >= self.len() {
            return Err(TraceError::OutOfBounds {
                requested: i,
                len: self.len(),
            });
        }
        quantile::quantile_select(self.row(i), q, scratch)
    }

    fn check_members(&self, members: &[usize]) -> Result<(), TraceError> {
        let n = self.len();
        for &m in members {
            if m >= n {
                return Err(TraceError::OutOfBounds {
                    requested: m,
                    len: n,
                });
            }
        }
        Ok(())
    }
}

/// `out[t] += src[t]` with an explicit 4-wide unroll. Element-wise: each
/// output element keeps its own accumulation chain, so this is
/// bit-identical to the scalar zip loop while letting the compiler keep
/// the adds in `f64x4` registers.
fn add_assign(out: &mut [f64], src: &[f64]) {
    debug_assert_eq!(out.len(), src.len());
    let mut out_chunks = out.chunks_exact_mut(4);
    let mut src_chunks = src.chunks_exact(4);
    for (acc, s) in (&mut out_chunks).zip(&mut src_chunks) {
        acc[0] += s[0];
        acc[1] += s[1];
        acc[2] += s[2];
        acc[3] += s[3];
    }
    for (acc, &v) in out_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        *acc += v;
    }
}

/// A borrowed, read-only trace: one arena row (or a borrowed
/// [`PowerTrace`]) plus its step. `Copy`, pointer-sized — pass by value.
#[derive(Debug, Clone, Copy)]
pub struct TraceView<'a> {
    samples: &'a [f64],
    step_minutes: u32,
}

impl<'a> TraceView<'a> {
    /// Zero-copy view of an owned trace — the bridge *from* the existing
    /// trace type (no samples are copied).
    pub fn from_trace(trace: &'a PowerTrace) -> Self {
        Self {
            samples: trace.samples(),
            step_minutes: trace.step_minutes(),
        }
    }

    /// Borrow the raw samples.
    pub fn samples(&self) -> &'a [f64] {
        self.samples
    }

    /// Number of samples.
    #[allow(clippy::len_without_is_empty)] // views of valid rows are never empty
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Sampling step in minutes.
    pub fn step_minutes(&self) -> u32 {
        self.step_minutes
    }

    /// The grid this view is sampled on.
    pub fn grid(&self) -> TimeGrid {
        TimeGrid::new(self.step_minutes, self.samples.len())
    }

    /// Maximum sample — same fold as [`PowerTrace::peak`].
    pub fn peak(&self) -> f64 {
        peak_of_samples(self.samples)
    }

    /// Minimum sample — same fold as [`PowerTrace::min`].
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::MAX, f64::min)
    }

    /// Arithmetic mean — same expression as [`PowerTrace::mean`].
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Empirical quantile under the shared HF7 convention.
    ///
    /// # Errors
    ///
    /// Same as [`crate::quantile::quantile`].
    pub fn quantile(&self, q: f64) -> Result<f64, TraceError> {
        quantile::quantile(self.samples, q)
    }

    /// Materializes the view as an owned [`PowerTrace`] (copies the row).
    ///
    /// # Errors
    ///
    /// Returns validation errors only if a mutable view previously injected
    /// invalid samples.
    pub fn to_trace(&self) -> Result<PowerTrace, TraceError> {
        PowerTrace::new(self.samples.to_vec(), self.step_minutes)
    }
}

/// A borrowed, mutable trace row.
///
/// Mutation can violate the non-negativity invariant; conversions back to
/// [`PowerTrace`] re-validate, so invalid samples surface as errors there
/// rather than propagating silently.
#[derive(Debug)]
pub struct TraceViewMut<'a> {
    samples: &'a mut [f64],
    step_minutes: u32,
}

impl TraceViewMut<'_> {
    /// Borrow the raw samples mutably.
    pub fn samples_mut(&mut self) -> &mut [f64] {
        self.samples
    }

    /// Borrow the raw samples.
    pub fn samples(&self) -> &[f64] {
        self.samples
    }

    /// Sampling step in minutes.
    pub fn step_minutes(&self) -> u32 {
        self.step_minutes
    }

    /// Multiply every sample by `factor` in place, preserving invariants.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite (like
    /// [`PowerTrace::scale`]).
    pub fn scale(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        for v in self.samples.iter_mut() {
            *v *= factor;
        }
    }

    /// Overwrite the row from a slice, validating like [`PowerTrace::new`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LengthMismatch`] for a wrong-length source and
    /// [`TraceError::InvalidSample`] for NaN/infinite/negative samples.
    pub fn copy_from(&mut self, samples: &[f64]) -> Result<(), TraceError> {
        if samples.len() != self.samples.len() {
            return Err(TraceError::LengthMismatch {
                left: self.samples.len(),
                right: samples.len(),
            });
        }
        for (index, &value) in samples.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(TraceError::InvalidSample { index, value });
            }
        }
        self.samples.copy_from_slice(samples);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(samples: &[f64]) -> PowerTrace {
        PowerTrace::new(samples.to_vec(), 10).unwrap()
    }

    fn arena3() -> TraceArena {
        TraceArena::from_traces(&[
            trace(&[1.0, 4.0, 2.0]),
            trace(&[3.0, 0.0, 5.0]),
            trace(&[2.0, 2.0, 2.0]),
        ])
        .unwrap()
    }

    #[test]
    fn round_trips_traces_bit_exactly() {
        let traces = [trace(&[1.5, 0.25, 3.0]), trace(&[0.0, 7.0, 0.125])];
        let arena = TraceArena::from_traces(&traces).unwrap();
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.grid(), traces[0].grid());
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(arena.view(i).samples(), t.samples());
            assert_eq!(&arena.to_trace(i).unwrap(), t);
        }
        assert_eq!(arena.to_traces().unwrap(), traces.to_vec());
    }

    #[test]
    fn view_matches_trace_statistics() {
        let t = trace(&[1.0, 7.0, 3.0, 5.0]);
        let v = TraceView::from_trace(&t);
        assert_eq!(v.peak(), t.peak());
        assert_eq!(v.min(), t.min());
        assert_eq!(v.mean(), t.mean());
        assert_eq!(v.grid(), t.grid());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(v.quantile(q).unwrap(), t.quantile(q).unwrap());
        }
        assert_eq!(v.to_trace().unwrap(), t);
    }

    #[test]
    fn sum_into_matches_sum_of() {
        let arena = arena3();
        let traces = arena.to_traces().unwrap();
        let mut out = vec![0.0; 3];
        for members in [vec![0], vec![0, 1], vec![2, 0, 1]] {
            arena.sum_into(&members, &mut out).unwrap();
            let want = PowerTrace::sum_of(members.iter().map(|&i| &traces[i])).unwrap();
            assert_eq!(out.as_slice(), want.samples());
            assert_eq!(arena.peak_of_sum(&members).unwrap(), want.peak());
        }
    }

    #[test]
    fn peak_of_sum_blocks_across_the_time_axis() {
        // A grid longer than one TIME_BLOCK exercises the block loop.
        let len = TIME_BLOCK + 37;
        let grid = TimeGrid::new(10, len);
        let mut arena = TraceArena::new(grid);
        arena.push_with(|i| (i % 97) as f64);
        arena.push_with(|i| ((len - i) % 89) as f64);
        let a = arena.to_trace(0).unwrap();
        let b = arena.to_trace(1).unwrap();
        let want = PowerTrace::sum_of([&a, &b]).unwrap().peak();
        assert_eq!(arena.peak_of_sum(&[0, 1]).unwrap(), want);
    }

    #[test]
    fn axpy_accumulates_scaled_rows() {
        let arena = arena3();
        let mut out = vec![1.0; 3];
        arena.axpy_into(0.5, 1, &mut out).unwrap();
        assert_eq!(out, vec![1.0 + 1.5, 1.0, 1.0 + 2.5]);
        assert!(arena.axpy_into(f64::NAN, 0, &mut out).is_err());
        assert!(arena.axpy_into(1.0, 9, &mut out).is_err());
    }

    #[test]
    fn row_peaks_and_quantiles_match_traces() {
        let arena = arena3();
        let traces = arena.to_traces().unwrap();
        let peaks = arena.row_peaks();
        assert_eq!(peaks.len(), 3);
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(peaks[i], t.peak());
        }
        let mut scratch = Vec::new();
        for q in [0.0, 0.5, 0.95, 1.0] {
            let qs = arena.row_quantiles(q).unwrap();
            for (i, t) in traces.iter().enumerate() {
                assert_eq!(qs[i], t.quantile(q).unwrap());
                assert_eq!(
                    arena.quantile_of_row(i, q, &mut scratch).unwrap(),
                    t.quantile(q).unwrap()
                );
            }
        }
        assert!(arena.row_quantiles(1.5).is_err());
    }

    #[test]
    fn par_extend_rows_matches_push_with() {
        let grid = TimeGrid::new(10, 7);
        let gen = |row: usize, t: usize| ((row * 31 + t) as f64).sin() * 3.0 + row as f64;
        let mut serial = TraceArena::new(grid);
        for row in 0..100 {
            serial.push_with(|t| gen(row, t));
        }
        let mut parallel = TraceArena::new(grid);
        parallel.par_extend_rows(100, |row, out| {
            for (t, slot) in out.iter_mut().enumerate() {
                *slot = gen(row, t);
            }
        });
        assert_eq!(parallel.len(), 100);
        assert!(parallel
            .flat_samples()
            .iter()
            .zip(serial.flat_samples())
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        // Appending respects the existing base offset.
        parallel.par_extend_rows(3, |row, out| {
            for (t, slot) in out.iter_mut().enumerate() {
                *slot = gen(100 + row, t);
            }
        });
        assert_eq!(parallel.len(), 103);
        assert_eq!(
            parallel.row(102)[3].to_bits(),
            gen(102, 3).max(0.0).to_bits()
        );
    }

    #[test]
    fn clear_retains_capacity_for_reuse() {
        let mut arena = TraceArena::with_capacity(TimeGrid::new(10, 4), 8);
        arena.push_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let cap = arena.samples.capacity();
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.samples.capacity(), cap);
        arena.push_samples(&[5.0, 6.0, 7.0, 8.0]).unwrap();
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.row(0), &[5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn row_kernels_cross_block_boundaries() {
        // More rows than one ROW_BLOCK would be too slow for a unit test;
        // instead shrink the effective block by using many short rows and
        // checking the flattening logic against per-row calls.
        let grid = TimeGrid::new(10, 5);
        let mut arena = TraceArena::new(grid);
        for row in 0..1030 {
            arena.push_with(|t| ((row * 7 + t * 3) % 23) as f64);
        }
        let peaks = arena.row_peaks();
        let q = arena.row_quantiles(0.9).unwrap();
        let sketch = arena.row_quantiles_sketch(0.9).unwrap();
        assert_eq!(peaks.len(), 1030);
        assert_eq!(q.len(), 1030);
        assert_eq!(sketch.len(), 1030);
        let mut scratch = Vec::new();
        for i in [0usize, 1, 512, 1023, 1029] {
            assert_eq!(peaks[i].to_bits(), arena.view(i).peak().to_bits());
            assert_eq!(
                q[i].to_bits(),
                arena
                    .quantile_of_row(i, 0.9, &mut scratch)
                    .unwrap()
                    .to_bits()
            );
            assert!(sketch[i].is_finite());
        }
        assert!(arena.row_quantiles_sketch(1.5).is_err());
    }

    #[test]
    fn push_with_clamps_like_from_fn() {
        let grid = TimeGrid::new(10, 4);
        let mut arena = TraceArena::new(grid);
        let i = arena.push_with(|t| t as f64 - 1.0);
        assert_eq!(arena.view(i).samples(), &[0.0, 0.0, 1.0, 2.0]);
        let direct = PowerTrace::from_fn(grid, |t| t as f64 - 1.0);
        assert_eq!(arena.to_trace(i).unwrap(), direct);
    }

    #[test]
    fn view_mut_edits_in_place() {
        let mut arena = arena3();
        arena.view_mut(1).scale(2.0);
        assert_eq!(arena.view(1).samples(), &[6.0, 0.0, 10.0]);
        arena.view_mut(1).copy_from(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(arena.view(1).samples(), &[1.0, 1.0, 1.0]);
        assert!(arena.view_mut(1).copy_from(&[1.0]).is_err());
        assert!(arena.view_mut(1).copy_from(&[1.0, -2.0, 0.0]).is_err());
    }

    #[test]
    fn invalid_pushes_are_rejected() {
        let mut arena = TraceArena::new(TimeGrid::new(10, 2));
        assert!(arena.push_samples(&[1.0]).is_err());
        assert!(arena.push_samples(&[1.0, -1.0]).is_err());
        assert!(arena.push_samples(&[1.0, f64::NAN]).is_err());
        assert!(arena
            .push_trace(&PowerTrace::new(vec![1.0, 1.0], 5).unwrap())
            .is_err());
        assert_eq!(arena.len(), 0);
        assert!(arena.is_empty());
        // A failed push leaves the arena unchanged.
        arena.push_samples(&[1.0, 2.0]).unwrap();
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn empty_and_out_of_bounds_errors() {
        let arena = arena3();
        let mut out = vec![0.0; 3];
        assert_eq!(arena.sum_into(&[], &mut out), Err(TraceError::Empty));
        assert_eq!(arena.peak_of_sum(&[]), Err(TraceError::Empty));
        assert!(matches!(
            arena.peak_of_sum(&[5]),
            Err(TraceError::OutOfBounds { requested: 5, .. })
        ));
        assert!(arena.sum_into(&[0], &mut [0.0; 2]).is_err());
        assert!(arena.try_view(3).is_err());
        assert!(arena.to_trace(3).is_err());
        assert!(TraceArena::from_traces(&[]).is_err());
    }

    #[test]
    fn single_sample_rows_work() {
        let mut arena = TraceArena::new(TimeGrid::new(10, 1));
        arena.push_samples(&[5.0]).unwrap();
        arena.push_samples(&[3.0]).unwrap();
        assert_eq!(arena.peak_of_sum(&[0, 1]).unwrap(), 8.0);
        assert_eq!(arena.view(0).quantile(0.5).unwrap(), 5.0);
        assert_eq!(arena.row_peaks(), vec![5.0, 3.0]);
    }
}
