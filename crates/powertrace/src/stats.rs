//! Empirical distributions over power samples.
//!
//! The StatProf baseline (Govindan et al., reproduced in `so-baselines`)
//! models each instance's power profile as a cumulative distribution
//! function and provisions at high percentiles; [`Ecdf`] is that CDF.

use serde::{Deserialize, Serialize};

use crate::error::TraceError;
use crate::quantile::quantile_sorted;
use crate::trace::PowerTrace;

/// Empirical cumulative distribution function over a trace's samples.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), so_powertrace::TraceError> {
/// use so_powertrace::{Ecdf, PowerTrace};
///
/// let trace = PowerTrace::new(vec![1.0, 2.0, 3.0, 4.0], 10)?;
/// let ecdf = Ecdf::from_trace(&trace);
/// assert_eq!(ecdf.quantile(1.0)?, 4.0);
/// assert_eq!(ecdf.fraction_at_or_below(2.0), 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the empirical CDF of a trace's samples.
    pub fn from_trace(trace: &PowerTrace) -> Self {
        let mut sorted = trace.samples().to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        Self { sorted }
    }

    /// Builds an empirical CDF from raw samples.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Empty`] for no samples and
    /// [`TraceError::InvalidSample`] for non-finite or negative samples.
    pub fn from_samples(samples: Vec<f64>) -> Result<Self, TraceError> {
        if samples.is_empty() {
            return Err(TraceError::Empty);
        }
        for (index, &value) in samples.iter().enumerate() {
            if !value.is_finite() || value < 0.0 {
                return Err(TraceError::InvalidSample { index, value });
            }
        }
        let mut sorted = samples;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        Ok(Self { sorted })
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// A valid CDF is never empty; this exists for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Linear-interpolated quantile under the workspace's shared convention
    /// (see [`crate::quantile`]), `q` in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidQuantile`] for `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<f64, TraceError> {
        quantile_sorted(&self.sorted, q)
    }

    /// The `(100 − u)`-th percentile used by StatProf's degree of
    /// under-provisioning `u` (in percent).
    ///
    /// Degenerate cases are defined, not incidental: `u = 0` returns the
    /// maximum sample (provision for the observed peak) and `u = 100`
    /// returns the minimum sample (the 0th percentile).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidQuantile`] when `u` is outside
    /// `[0, 100]` or NaN.
    pub fn underprovisioned_power(&self, u: f64) -> Result<f64, TraceError> {
        if !(0.0..=100.0).contains(&u) || u.is_nan() {
            return Err(TraceError::InvalidQuantile(u));
        }
        self.quantile(((100.0 - u) / 100.0).clamp(0.0, 1.0))
            .map_err(|_| TraceError::InvalidQuantile(u))
    }

    /// Fraction of samples at or below `x`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("ecdf is non-empty")
    }
}

/// Summary statistics of a trace, convenient for reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Peak (maximum) power.
    pub peak: f64,
    /// Mean power.
    pub mean: f64,
    /// Minimum power.
    pub min: f64,
    /// 95th-percentile power.
    pub p95: f64,
    /// Peak-to-mean ratio; 1.0 for a perfectly flat trace.
    pub peak_to_mean: f64,
}

impl TraceSummary {
    /// Computes the summary of a trace.
    pub fn of(trace: &PowerTrace) -> Self {
        let peak = trace.peak();
        let mean = trace.mean();
        Self {
            peak,
            mean,
            min: trace.min(),
            p95: trace.quantile(0.95).expect("0.95 is a valid quantile"),
            peak_to_mean: if mean > 0.0 { peak / mean } else { 1.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_quantiles_match_trace_quantiles() {
        let t = PowerTrace::new(vec![5.0, 1.0, 3.0, 2.0, 4.0], 10).unwrap();
        let e = Ecdf::from_trace(&t);
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
            assert_eq!(e.quantile(q).unwrap(), t.quantile(q).unwrap());
        }
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 5.0);
        assert_eq!(e.len(), 5);
    }

    #[test]
    fn underprovisioning_reduces_power() {
        let samples: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let e = Ecdf::from_samples(samples).unwrap();
        let p0 = e.underprovisioned_power(0.0).unwrap();
        let p10 = e.underprovisioned_power(10.0).unwrap();
        assert_eq!(p0, 100.0);
        assert!((p10 - 90.0).abs() < 1e-9);
        assert!(p10 < p0);
    }

    #[test]
    fn underprovisioning_edge_degrees() {
        let e = Ecdf::from_samples(vec![10.0, 20.0, 30.0]).unwrap();
        // u = 0: provision at the observed peak.
        assert_eq!(e.underprovisioned_power(0.0).unwrap(), 30.0);
        // u = 100: the 0th percentile, i.e. the minimum sample.
        assert_eq!(e.underprovisioned_power(100.0).unwrap(), 10.0);
        // Out-of-range degrees are rejected, not clamped to the minimum.
        assert_eq!(
            e.underprovisioned_power(100.5),
            Err(TraceError::InvalidQuantile(100.5))
        );
        assert_eq!(
            e.underprovisioned_power(-1.0),
            Err(TraceError::InvalidQuantile(-1.0))
        );
        assert!(e.underprovisioned_power(f64::NAN).is_err());
    }

    #[test]
    fn fraction_at_or_below() {
        let e = Ecdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.fraction_at_or_below(0.5), 0.0);
        assert_eq!(e.fraction_at_or_below(2.0), 0.5);
        assert_eq!(e.fraction_at_or_below(10.0), 1.0);
    }

    #[test]
    fn from_samples_validates() {
        assert!(matches!(Ecdf::from_samples(vec![]), Err(TraceError::Empty)));
        assert!(matches!(
            Ecdf::from_samples(vec![1.0, f64::INFINITY]),
            Err(TraceError::InvalidSample { index: 1, .. })
        ));
    }

    #[test]
    fn summary_is_consistent() {
        let t = PowerTrace::new(vec![1.0, 2.0, 3.0], 10).unwrap();
        let s = TraceSummary::of(&t);
        assert_eq!(s.peak, 3.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert!((s.peak_to_mean - 1.5).abs() < 1e-12);
    }
}
