//! The workspace's single quantile convention.
//!
//! Three subsystems need quantiles of power samples — [`PowerTrace`]
//! percentiles, the [`Ecdf`] behind the StatProf(u, δ) baseline, and the
//! sanitizer's spike-detection median — and they must agree: StatProf
//! budgets are compared against trace-level percentiles, and a convention
//! mismatch (nearest-rank in one place, interpolated in another) silently
//! shifts provisioning numbers. Every quantile in the workspace therefore
//! goes through this module.
//!
//! # Convention
//!
//! The **linear-interpolation** estimator over order statistics, also known
//! as Hyndman–Fan type 7 (the default of R, NumPy, and Julia): for `n`
//! sorted samples `x[0] ≤ … ≤ x[n−1]` and `q ∈ [0, 1]`,
//!
//! ```text
//! pos  = q · (n − 1)
//! Q(q) = x[⌊pos⌋] + (pos − ⌊pos⌋) · (x[⌊pos⌋ + 1] − x[⌊pos⌋])
//! ```
//!
//! Guaranteed edge behavior (regression-tested, relied on by oracles):
//!
//! * `Q(0) == x[0]` (the minimum) and `Q(1) == x[n−1]` (the maximum) —
//!   **exactly**, with no interpolation arithmetic applied;
//! * a single-sample input returns that sample for every `q`;
//! * `Q` is monotone non-decreasing in `q` and bounded by `[min, max]`;
//! * index arithmetic is clamped, so floating-point round-off in
//!   `q · (n − 1)` can never index out of bounds or double-count a sample
//!   when the interpolation window degenerates to a single index.

use crate::error::TraceError;

#[cfg(doc)]
use crate::{stats::Ecdf, trace::PowerTrace};

/// Linear-interpolated quantile of **already sorted** samples (ascending).
///
/// This is the fast path for callers that keep samples sorted (e.g.
/// [`Ecdf`]); everyone else should use [`quantile`]. The input order is
/// trusted, not checked (a debug assertion guards tests).
///
/// # Errors
///
/// Returns [`TraceError::Empty`] for an empty slice and
/// [`TraceError::InvalidQuantile`] for `q` outside `[0, 1]` or NaN.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Result<f64, TraceError> {
    if sorted.is_empty() {
        return Err(TraceError::Empty);
    }
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(TraceError::InvalidQuantile(q));
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "quantile_sorted requires ascending input"
    );
    let n = sorted.len();
    // Exact edges first: no interpolation arithmetic may perturb them.
    if q == 0.0 || n == 1 {
        return Ok(sorted[0]);
    }
    if q == 1.0 {
        return Ok(sorted[n - 1]);
    }
    let pos = q * (n - 1) as f64;
    // Clamp the index window: `pos` is mathematically in [0, n−1], but the
    // multiplication can round up to exactly n−1 for q just below 1, and a
    // defensive bound keeps any future caller from indexing past the end.
    let lo = (pos.floor() as usize).min(n - 1);
    let hi = (lo + 1).min(n - 1);
    let frac = (pos - lo as f64).clamp(0.0, 1.0);
    if hi == lo || frac == 0.0 {
        // Degenerate window: the estimate is one order statistic; summing
        // the two interpolation terms here would double-count its weight
        // (and `0.0 * f64::MAX`-style products could produce NaN).
        return Ok(sorted[lo]);
    }
    Ok(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Linear-interpolated quantile of unsorted samples.
///
/// Sorts a copy (`O(n log n)`); callers needing many quantiles of the same
/// data should sort once and use [`quantile_sorted`].
///
/// # Errors
///
/// Returns [`TraceError::Empty`] for an empty slice,
/// [`TraceError::InvalidQuantile`] for `q` outside `[0, 1]`, and
/// [`TraceError::InvalidSample`] if a sample is NaN (unsortable).
pub fn quantile(samples: &[f64], q: f64) -> Result<f64, TraceError> {
    quantile_sorted(&sorted_copy(samples)?, q)
}

/// Median (the 0.5 quantile) of unsorted samples, under the same
/// convention: the middle sample for odd `n`, the midpoint of the two
/// middle samples for even `n`.
///
/// # Errors
///
/// Same as [`quantile`].
pub fn median(samples: &[f64]) -> Result<f64, TraceError> {
    quantile(samples, 0.5)
}

/// Sorts a copy of `samples` ascending, rejecting NaN.
fn sorted_copy(samples: &[f64]) -> Result<Vec<f64>, TraceError> {
    if let Some(index) = samples.iter().position(|v| v.is_nan()) {
        return Err(TraceError::InvalidSample {
            index,
            value: samples[index],
        });
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN was rejected above"));
    Ok(sorted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_exact_order_statistics() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&v, 1.0).unwrap(), 3.0);
    }

    #[test]
    fn single_sample_is_constant_in_q() {
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(quantile(&[7.5], q).unwrap(), 7.5);
        }
    }

    #[test]
    fn interpolates_between_order_statistics() {
        let v = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(quantile(&v, 0.5).unwrap(), 1.5);
        assert!((quantile(&v, 0.9).unwrap() - 2.7).abs() < 1e-12);
    }

    #[test]
    fn median_conventions() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn q_just_below_one_stays_in_bounds() {
        // q·(n−1) rounds to exactly n−1 here; the clamped window must not
        // read past the end.
        let v: Vec<f64> = (0..1000).map(f64::from).collect();
        let q = 1.0 - f64::EPSILON / 4.0;
        let got = quantile(&v, q).unwrap();
        assert!((0.0..=999.0).contains(&got));
    }

    #[test]
    fn degenerate_window_returns_the_order_statistic_once() {
        // pos lands exactly on an integer: the result is that sample, not
        // a sum of two weighted copies.
        let v = [0.0, 10.0, 20.0];
        assert_eq!(quantile(&v, 0.5).unwrap(), 10.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(quantile(&[], 0.5), Err(TraceError::Empty));
        assert_eq!(quantile(&[1.0], 1.5), Err(TraceError::InvalidQuantile(1.5)));
        assert_eq!(
            quantile(&[1.0], -0.1),
            Err(TraceError::InvalidQuantile(-0.1))
        );
        assert!(matches!(
            quantile(&[1.0], f64::NAN),
            Err(TraceError::InvalidQuantile(_))
        ));
        assert!(matches!(
            quantile(&[1.0, f64::NAN], 0.5),
            Err(TraceError::InvalidSample { index: 1, .. })
        ));
    }
}
