//! The workspace's single quantile convention.
//!
//! Three subsystems need quantiles of power samples — [`PowerTrace`]
//! percentiles, the [`Ecdf`] behind the StatProf(u, δ) baseline, and the
//! sanitizer's spike-detection median — and they must agree: StatProf
//! budgets are compared against trace-level percentiles, and a convention
//! mismatch (nearest-rank in one place, interpolated in another) silently
//! shifts provisioning numbers. Every quantile in the workspace therefore
//! goes through this module.
//!
//! # Convention
//!
//! The **linear-interpolation** estimator over order statistics, also known
//! as Hyndman–Fan type 7 (the default of R, NumPy, and Julia): for `n`
//! sorted samples `x[0] ≤ … ≤ x[n−1]` and `q ∈ [0, 1]`,
//!
//! ```text
//! pos  = q · (n − 1)
//! Q(q) = x[⌊pos⌋] + (pos − ⌊pos⌋) · (x[⌊pos⌋ + 1] − x[⌊pos⌋])
//! ```
//!
//! Guaranteed edge behavior (regression-tested, relied on by oracles):
//!
//! * `Q(0) == x[0]` (the minimum) and `Q(1) == x[n−1]` (the maximum) —
//!   **exactly**, with no interpolation arithmetic applied;
//! * a single-sample input returns that sample for every `q`;
//! * `Q` is monotone non-decreasing in `q` and bounded by `[min, max]`;
//! * index arithmetic is clamped, so floating-point round-off in
//!   `q · (n − 1)` can never index out of bounds or double-count a sample
//!   when the interpolation window degenerates to a single index.

use crate::error::TraceError;

#[cfg(doc)]
use crate::{stats::Ecdf, trace::PowerTrace};

/// Linear-interpolated quantile of **already sorted** samples (ascending).
///
/// This is the fast path for callers that keep samples sorted (e.g.
/// [`Ecdf`]); everyone else should use [`quantile`]. The input order is
/// trusted, not checked (a debug assertion guards tests).
///
/// # Errors
///
/// Returns [`TraceError::Empty`] for an empty slice and
/// [`TraceError::InvalidQuantile`] for `q` outside `[0, 1]` or NaN.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Result<f64, TraceError> {
    if sorted.is_empty() {
        return Err(TraceError::Empty);
    }
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(TraceError::InvalidQuantile(q));
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "quantile_sorted requires ascending input"
    );
    let n = sorted.len();
    // Exact edges first: no interpolation arithmetic may perturb them.
    if q == 0.0 || n == 1 {
        return Ok(sorted[0]);
    }
    if q == 1.0 {
        return Ok(sorted[n - 1]);
    }
    let pos = q * (n - 1) as f64;
    // Clamp the index window: `pos` is mathematically in [0, n−1], but the
    // multiplication can round up to exactly n−1 for q just below 1, and a
    // defensive bound keeps any future caller from indexing past the end.
    let lo = (pos.floor() as usize).min(n - 1);
    let hi = (lo + 1).min(n - 1);
    let frac = (pos - lo as f64).clamp(0.0, 1.0);
    if hi == lo || frac == 0.0 {
        // Degenerate window: the estimate is one order statistic; summing
        // the two interpolation terms here would double-count its weight
        // (and `0.0 * f64::MAX`-style products could produce NaN).
        return Ok(sorted[lo]);
    }
    Ok(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Linear-interpolated quantile of unsorted samples.
///
/// Sorts a copy (`O(n log n)`); callers needing many quantiles of the same
/// data should sort once and use [`quantile_sorted`], and callers needing
/// one quantile of many rows should use the `O(n)` [`quantile_select`].
///
/// # Errors
///
/// Returns [`TraceError::Empty`] for an empty slice,
/// [`TraceError::InvalidQuantile`] for `q` outside `[0, 1]`, and
/// [`TraceError::InvalidSample`] if a sample is NaN (unsortable).
pub fn quantile(samples: &[f64], q: f64) -> Result<f64, TraceError> {
    quantile_sorted(&sorted_copy(samples)?, q)
}

/// [`quantile`] via selection instead of a full sort: `O(n)` per call.
///
/// The HF7 estimate needs at most two order statistics, `x[lo]` and
/// `x[lo+1]`; this path finds them with `select_nth_unstable` (plus a
/// min-fold over the upper partition) instead of sorting the whole row.
/// Both the sort and the selection order samples by [`f64::total_cmp`], so
/// the k-th order statistic is a unique bit pattern and the result is
/// **bit-identical** to [`quantile`] on every NaN-free input — the arena
/// oracle family pins this against `PowerTrace::quantile`.
///
/// `scratch` is clobbered and reused across calls; once grown to one row
/// the call allocates nothing.
///
/// # Errors
///
/// Same as [`quantile`].
pub fn quantile_select(samples: &[f64], q: f64, scratch: &mut Vec<f64>) -> Result<f64, TraceError> {
    if samples.is_empty() {
        return Err(TraceError::Empty);
    }
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(TraceError::InvalidQuantile(q));
    }
    if let Some(index) = samples.iter().position(|v| v.is_nan()) {
        return Err(TraceError::InvalidSample {
            index,
            value: samples[index],
        });
    }
    let n = samples.len();
    // Exact edges first, mirroring `quantile_sorted`: Q(0) and Q(1) are the
    // extreme order statistics, found with a fold instead of a selection.
    if q == 0.0 || n == 1 {
        return Ok(samples
            .iter()
            .copied()
            .reduce(|a, b| if b.total_cmp(&a).is_lt() { b } else { a })
            .expect("non-empty"));
    }
    if q == 1.0 {
        return Ok(samples
            .iter()
            .copied()
            .reduce(|a, b| if b.total_cmp(&a).is_gt() { b } else { a })
            .expect("non-empty"));
    }
    let pos = q * (n - 1) as f64;
    let lo = (pos.floor() as usize).min(n - 1);
    let hi = (lo + 1).min(n - 1);
    let frac = (pos - lo as f64).clamp(0.0, 1.0);
    scratch.clear();
    scratch.extend_from_slice(samples);
    let (_, &mut x_lo, upper) = scratch.select_nth_unstable_by(lo, f64::total_cmp);
    if hi == lo || frac == 0.0 {
        return Ok(x_lo);
    }
    // x[lo+1] is the minimum of the upper partition left by the selection.
    let x_hi = upper
        .iter()
        .copied()
        .reduce(|a, b| if b.total_cmp(&a).is_lt() { b } else { a })
        .expect("hi < n implies a non-empty upper partition");
    Ok(x_lo + frac * (x_hi - x_lo))
}

/// Median (the 0.5 quantile) of unsorted samples, under the same
/// convention: the middle sample for odd `n`, the midpoint of the two
/// middle samples for even `n`.
///
/// # Errors
///
/// Same as [`quantile`].
pub fn median(samples: &[f64]) -> Result<f64, TraceError> {
    quantile(samples, 0.5)
}

/// Sorts a copy of `samples` ascending, rejecting NaN.
///
/// Ordering is [`f64::total_cmp`] (so `-0.0` sorts before `0.0`): on
/// NaN-free input it agrees with the numeric order everywhere else, and it
/// makes every order statistic a *unique bit pattern*, which is what lets
/// the selection path ([`quantile_select`]) match this sort bit-for-bit.
fn sorted_copy(samples: &[f64]) -> Result<Vec<f64>, TraceError> {
    if let Some(index) = samples.iter().position(|v| v.is_nan()) {
        return Err(TraceError::InvalidSample {
            index,
            value: samples[index],
        });
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok(sorted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_exact_order_statistics() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&v, 1.0).unwrap(), 3.0);
    }

    #[test]
    fn single_sample_is_constant_in_q() {
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(quantile(&[7.5], q).unwrap(), 7.5);
        }
    }

    #[test]
    fn interpolates_between_order_statistics() {
        let v = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(quantile(&v, 0.5).unwrap(), 1.5);
        assert!((quantile(&v, 0.9).unwrap() - 2.7).abs() < 1e-12);
    }

    #[test]
    fn median_conventions() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn q_just_below_one_stays_in_bounds() {
        // q·(n−1) rounds to exactly n−1 here; the clamped window must not
        // read past the end.
        let v: Vec<f64> = (0..1000).map(f64::from).collect();
        let q = 1.0 - f64::EPSILON / 4.0;
        let got = quantile(&v, q).unwrap();
        assert!((0.0..=999.0).contains(&got));
    }

    #[test]
    fn degenerate_window_returns_the_order_statistic_once() {
        // pos lands exactly on an integer: the result is that sample, not
        // a sum of two weighted copies.
        let v = [0.0, 10.0, 20.0];
        assert_eq!(quantile(&v, 0.5).unwrap(), 10.0);
    }

    #[test]
    fn select_is_bit_identical_to_sort() {
        let mut scratch = Vec::new();
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for n in [1usize, 2, 3, 7, 64, 168, 501] {
            let samples: Vec<f64> = (0..n).map(|_| next() * 300.0).collect();
            for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                let want = quantile(&samples, q).unwrap();
                let got = quantile_select(&samples, q, &mut scratch).unwrap();
                assert_eq!(got.to_bits(), want.to_bits(), "n={n} q={q}");
            }
        }
        // Duplicates and signed zeros order identically under total_cmp.
        let ties = [0.0, -0.0, 5.0, 5.0, -0.0, 0.0, 5.0];
        for q in [0.0, 0.3, 0.5, 0.8, 1.0] {
            assert_eq!(
                quantile_select(&ties, q, &mut scratch).unwrap().to_bits(),
                quantile(&ties, q).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn select_rejects_bad_inputs_like_sort() {
        let mut scratch = Vec::new();
        assert_eq!(
            quantile_select(&[], 0.5, &mut scratch),
            Err(TraceError::Empty)
        );
        assert_eq!(
            quantile_select(&[1.0], 1.5, &mut scratch),
            Err(TraceError::InvalidQuantile(1.5))
        );
        assert!(matches!(
            quantile_select(&[1.0, f64::NAN], 0.5, &mut scratch),
            Err(TraceError::InvalidSample { index: 1, .. })
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(quantile(&[], 0.5), Err(TraceError::Empty));
        assert_eq!(quantile(&[1.0], 1.5), Err(TraceError::InvalidQuantile(1.5)));
        assert_eq!(
            quantile(&[1.0], -0.1),
            Err(TraceError::InvalidQuantile(-0.1))
        );
        assert!(matches!(
            quantile(&[1.0], f64::NAN),
            Err(TraceError::InvalidQuantile(_))
        ));
        assert!(matches!(
            quantile(&[1.0, f64::NAN], 0.5),
            Err(TraceError::InvalidSample { index: 1, .. })
        ));
    }
}
