//! One-pass streaming quantile estimation (the P² algorithm).
//!
//! The scale tier's per-row quantile pass has an *exact* path — the shared
//! HF7 convention in [`crate::quantile`], now `O(n)` via selection — and an
//! optional *approximate* path for workloads where rows are too long to
//! buffer or arrive as a stream: [`P2Quantile`], the piecewise-parabolic
//! (P²) estimator of Jain & Chlamtac (CACM 1985). It maintains **five
//! markers** (min, two intermediates, the target quantile, max) in `O(1)`
//! memory and `O(1)` time per observation, adjusting interior marker
//! heights with a parabolic interpolation as counts grow.
//!
//! # Accuracy contract
//!
//! P² carries no distribution-free worst-case bound, so the workspace
//! quantifies its error *empirically* and gates it in CI:
//!
//! * for `n ≤ 5` observations the estimate is **exact** (the shared HF7
//!   quantile of the buffered samples), as are constant streams and the
//!   `q ∈ {0, 1}` edges (which track the running min/max markers) at any
//!   length;
//! * across the adversarial property suite (uniform, sorted, reversed,
//!   constant, continuous-bimodal, heavy-tailed, sawtooth inputs with
//!   `n ≥ 64` and `q ∈ [0.05, 0.99]`) the observed **rank error** — the
//!   distance from `q` to the interval `[#\{x < est\}/n,
//!   #\{x ≤ est\}/n]` — stays below [`P2_RANK_ERROR_BOUND`] (observed
//!   worst ≈ 0.17, on monotone-sorted streams, whose markers trail the
//!   data); both the proptests (`crates/powertrace/tests/properties.rs`)
//!   and the `arena_sketch_quantile_within_tolerance` oracle assert that
//!   bound;
//! * on the scale tier's diurnal waveforms the p99 estimate lands within
//!   1% relative value error of the exact path — measured mean 0.20%,
//!   worst 0.92% over 20 000 rows (see EXPERIMENTS.md; reproduce with
//!   the ignored `measure_sketch_p99_value_error` test in `scale.rs`).
//!
//! **Documented limitation:** distributions with large point masses
//! separated by probability gaps (e.g. a two-value stream) violate P²'s
//! continuous-distribution assumption — an estimate interpolated into a
//! gap carries irreducible rank error no matter the algorithm's state, so
//! no bound is claimed there. Short streams (`6 ≤ n < 64`) are past the
//! exact buffer but before the markers have spread to their target ranks,
//! and can err up to ~2× the bound. Use exact mode for either regime.
//!
//! Anything needing bit-exact numbers (oracles, provisioning reports,
//! committed benchmarks in exact mode) must use [`crate::quantile`]; the
//! sketch is strictly opt-in (`smoothop scale --quantiles sketch`).

use crate::error::TraceError;
use crate::quantile;

/// Empirical rank-error gate for [`P2Quantile`] on the adversarial test
/// suite — streams of `n ≥ 64` continuous-valued samples, interior
/// targets `q ∈ [0.05, 0.99]` (see the module docs for the exact family
/// and the observed worst case of ≈ 0.17). Not a mathematical guarantee —
/// a regression past this bound fails the proptests and the sketch
/// oracle.
pub const P2_RANK_ERROR_BOUND: f64 = 0.20;

/// Streaming estimator of one quantile via the P² algorithm: five markers,
/// `O(1)` memory, one pass.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), so_powertrace::TraceError> {
/// use so_powertrace::P2Quantile;
///
/// let mut sketch = P2Quantile::new(0.5)?;
/// for v in [9.0, 1.0, 3.0, 7.0, 5.0] {
///     sketch.observe(v);
/// }
/// // ≤ 5 observations: exact (HF7 median of the buffer).
/// assert_eq!(sketch.estimate(), Some(5.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct P2Quantile {
    q: f64,
    /// Observations seen so far.
    count: u64,
    /// Marker heights `h[0..5]` (valid once `count >= 5`; before that the
    /// first observations are buffered here unsorted).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks, kept as exact integers in
    /// f64).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    rates: [f64; 5],
}

impl P2Quantile {
    /// A sketch targeting quantile `q`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidQuantile`] for `q` outside `[0, 1]` or
    /// NaN. The exact edges `q ∈ {0, 1}` are accepted (they degenerate to
    /// running min/max tracking via the extreme markers, and `estimate`
    /// returns those markers directly).
    pub fn new(q: f64) -> Result<Self, TraceError> {
        if !(0.0..=1.0).contains(&q) || q.is_nan() {
            return Err(TraceError::InvalidQuantile(q));
        }
        Ok(Self {
            q,
            count: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            rates: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
        })
    }

    /// The quantile this sketch targets.
    pub fn target(&self) -> f64 {
        self.q
    }

    /// Observations fed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one observation.
    ///
    /// # Panics
    ///
    /// Panics on a NaN observation (the trace layer rejects NaN long before
    /// a sketch sees it; silently absorbing one here would corrupt the
    /// marker invariant `h[0] ≤ … ≤ h[4]`).
    pub fn observe(&mut self, value: f64) {
        assert!(!value.is_nan(), "P2Quantile cannot observe NaN");
        if self.count < 5 {
            self.heights[self.count as usize] = value;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // Locate the cell and update the extreme markers.
        let h = &mut self.heights;
        let k: usize = if value < h[0] {
            h[0] = value;
            0
        } else if value >= h[4] {
            h[4] = value;
            3
        } else {
            // Largest k in 0..=3 with h[k] <= value.
            let mut k = 0;
            while k < 3 && h[k + 1] <= value {
                k += 1;
            }
            k
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.rates[i];
        }

        // Adjust the interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = parabolic(&self.heights, &self.positions, i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        linear(&self.heights, &self.positions, i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    /// The current estimate: exact (shared HF7 over the buffered samples)
    /// for at most five observations — at exactly five the markers are
    /// still the untouched sorted sample — and the target marker's height
    /// afterwards. `None` before the first observation.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            1..=5 => {
                let buffered = &self.heights[..self.count as usize];
                Some(quantile::quantile(buffered, self.q).expect("valid q, no NaN observed"))
            }
            _ => {
                // The exact edges track the extreme markers, which are
                // maintained as the running min/max.
                if self.q == 0.0 {
                    return Some(self.heights[0]);
                }
                if self.q == 1.0 {
                    return Some(self.heights[4]);
                }
                // Interpolate over the (position, height) marker curve at
                // the HF7 target rank instead of returning `h[2]` raw.
                // During warm-up marker 2 still sits near the median rank
                // regardless of the target, so interpolation is what makes
                // small streams and extreme targets behave; asymptotically
                // it converges to `h[2]` as the marker reaches its desired
                // rank.
                let r = 1.0 + (self.count as f64 - 1.0) * self.q;
                let h = &self.heights;
                let n = &self.positions;
                for i in 0..4 {
                    if r <= n[i + 1] {
                        let span = n[i + 1] - n[i];
                        if span <= 0.0 {
                            return Some(h[i + 1]);
                        }
                        let frac = ((r - n[i]) / span).clamp(0.0, 1.0);
                        return Some(h[i] + frac * (h[i + 1] - h[i]));
                    }
                }
                Some(h[4])
            }
        }
    }
}

/// P² piecewise-parabolic height prediction for marker `i` moved by `d`.
fn parabolic(h: &[f64; 5], n: &[f64; 5], i: usize, d: f64) -> f64 {
    h[i] + d / (n[i + 1] - n[i - 1])
        * ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
}

/// Linear fallback when the parabolic prediction leaves `(h[i−1], h[i+1])`.
fn linear(h: &[f64; 5], n: &[f64; 5], i: usize, d: f64) -> f64 {
    let j = if d > 0.0 { i + 1 } else { i - 1 };
    h[i] + d * (h[j] - h[i]) / (n[j] - n[i])
}

/// One-shot convenience: streams `samples` through a [`P2Quantile`] in
/// order and returns the estimate.
///
/// # Errors
///
/// Returns [`TraceError::Empty`] for an empty slice,
/// [`TraceError::InvalidQuantile`] for an invalid `q`, and
/// [`TraceError::InvalidSample`] for a NaN sample.
pub fn sketch_quantile(samples: &[f64], q: f64) -> Result<f64, TraceError> {
    if samples.is_empty() {
        return Err(TraceError::Empty);
    }
    if let Some(index) = samples.iter().position(|v| v.is_nan()) {
        return Err(TraceError::InvalidSample {
            index,
            value: samples[index],
        });
    }
    let mut sketch = P2Quantile::new(q)?;
    for &v in samples {
        sketch.observe(v);
    }
    Ok(sketch.estimate().expect("at least one observation"))
}

/// Rank error of `estimate` against the empirical distribution of
/// `samples` for target quantile `q`: the distance from `q` to the
/// closed interval `[#\{x < est\}/n, #\{x ≤ est\}/n]` (0 when `q` lies
/// inside it). This is the metric [`P2_RANK_ERROR_BOUND`] gates; value
/// error is meaningless for heavy-tailed or two-point distributions,
/// rank error is well-defined for all of them (ties included).
pub fn rank_error(samples: &[f64], q: f64, estimate: f64) -> f64 {
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    let below = samples.iter().filter(|&&v| v < estimate).count() as f64 / n as f64;
    let at_or_below = samples.iter().filter(|&&v| v <= estimate).count() as f64 / n as f64;
    if q < below {
        below - q
    } else if q > at_or_below {
        q - at_or_below
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_streams_are_exact() {
        for n in 1..=5usize {
            let samples: Vec<f64> = (0..n).map(|i| (i as f64 * 7.3) % 5.0 + 1.0).collect();
            for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
                let got = sketch_quantile(&samples, q).unwrap();
                let want = quantile::quantile(&samples, q).unwrap();
                assert_eq!(got.to_bits(), want.to_bits(), "n={n} q={q}");
            }
        }
    }

    #[test]
    fn extreme_targets_track_min_and_max() {
        let samples: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
        assert_eq!(sketch_quantile(&samples, 0.0).unwrap(), 0.0);
        assert_eq!(sketch_quantile(&samples, 1.0).unwrap(), 100.0);
    }

    #[test]
    fn median_of_uniform_counter_is_close() {
        let samples: Vec<f64> = (0..10_000).map(|i| ((i * 7919) % 10_000) as f64).collect();
        let est = sketch_quantile(&samples, 0.5).unwrap();
        assert!(
            rank_error(&samples, 0.5, est) < 0.02,
            "median estimate {est} too far from rank 0.5"
        );
    }

    #[test]
    fn constant_stream_is_exact() {
        let samples = vec![42.0; 1000];
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(sketch_quantile(&samples, q).unwrap(), 42.0);
        }
    }

    #[test]
    fn sketch_is_deterministic() {
        let samples: Vec<f64> = (0..2048)
            .map(|i| ((i as f64) * 0.61803).sin() * 50.0)
            .collect();
        let a = sketch_quantile(&samples, 0.95).unwrap();
        let b = sketch_quantile(&samples, 0.95).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(sketch_quantile(&[], 0.5), Err(TraceError::Empty));
        assert!(matches!(
            P2Quantile::new(1.5),
            Err(TraceError::InvalidQuantile(_))
        ));
        assert!(matches!(
            sketch_quantile(&[1.0, f64::NAN], 0.5),
            Err(TraceError::InvalidSample { index: 1, .. })
        ));
        assert_eq!(P2Quantile::new(0.5).unwrap().estimate(), None);
    }

    #[test]
    fn rank_error_handles_ties() {
        let samples = [1.0, 1.0, 1.0, 2.0];
        // Estimate 1.0 covers ranks [0, 0.75]; q = 0.5 is inside.
        assert_eq!(rank_error(&samples, 0.5, 1.0), 0.0);
        // q = 0.9 is 0.15 above the covered interval.
        assert!((rank_error(&samples, 0.9, 1.0) - 0.15).abs() < 1e-12);
    }
}
