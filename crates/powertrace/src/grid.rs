//! Time grid describing the sampling layout of power traces.
//!
//! The paper records one power reading per minute over seven-day windows
//! (§3.3). The reproduction keeps the step configurable so experiments can
//! trade fidelity for speed (e.g. 10-minute sampling for full-datacenter
//! sweeps).

use serde::{Deserialize, Serialize};

/// Minutes in one day.
pub const MINUTES_PER_DAY: u32 = 24 * 60;
/// Minutes in one week.
pub const MINUTES_PER_WEEK: u32 = 7 * MINUTES_PER_DAY;

/// A uniform sampling grid: `len` samples spaced `step_minutes` apart.
///
/// A grid is cheap to copy and carries no sample data; it answers questions
/// such as "which minute-of-day does sample `i` fall on" that the synthetic
/// workload generator and the runtime simulator both need.
///
/// # Examples
///
/// ```
/// use so_powertrace::TimeGrid;
///
/// let week = TimeGrid::one_week(10);
/// assert_eq!(week.len(), 1008);
/// assert_eq!(week.minute_of(6), 60);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeGrid {
    step_minutes: u32,
    len: usize,
}

impl TimeGrid {
    /// Creates a grid of `len` samples spaced `step_minutes` apart.
    ///
    /// # Panics
    ///
    /// Panics if `step_minutes` is zero or `len` is zero; both would make the
    /// grid meaningless and every caller constructs grids from static
    /// experiment parameters.
    pub fn new(step_minutes: u32, len: usize) -> Self {
        assert!(step_minutes > 0, "time grid step must be positive");
        assert!(len > 0, "time grid must contain at least one sample");
        Self { step_minutes, len }
    }

    /// A grid covering exactly one week at the given step.
    ///
    /// # Panics
    ///
    /// Panics if `step_minutes` is zero or does not divide a week evenly.
    pub fn one_week(step_minutes: u32) -> Self {
        assert!(step_minutes > 0, "time grid step must be positive");
        assert_eq!(
            MINUTES_PER_WEEK % step_minutes,
            0,
            "step must divide one week evenly"
        );
        Self::new(step_minutes, (MINUTES_PER_WEEK / step_minutes) as usize)
    }

    /// A grid covering `days` days at the given step.
    ///
    /// # Panics
    ///
    /// Panics if `step_minutes` is zero, `days` is zero, or the step does not
    /// divide a day evenly.
    pub fn days(days: u32, step_minutes: u32) -> Self {
        assert!(days > 0, "grid must cover at least one day");
        assert!(step_minutes > 0, "time grid step must be positive");
        assert_eq!(
            MINUTES_PER_DAY % step_minutes,
            0,
            "step must divide one day evenly"
        );
        let per_day = (MINUTES_PER_DAY / step_minutes) as usize;
        Self::new(step_minutes, per_day * days as usize)
    }

    /// Number of samples in the grid.
    pub fn len(&self) -> usize {
        self.len
    }

    /// A grid is never empty; this exists for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sampling step in minutes.
    pub fn step_minutes(&self) -> u32 {
        self.step_minutes
    }

    /// Total duration covered, in minutes.
    pub fn duration_minutes(&self) -> u64 {
        self.len as u64 * self.step_minutes as u64
    }

    /// Absolute minute (from the grid origin) of sample `i`.
    pub fn minute_of(&self, i: usize) -> u64 {
        i as u64 * self.step_minutes as u64
    }

    /// Minute-of-day (0..1440) of sample `i`.
    pub fn minute_of_day(&self, i: usize) -> u32 {
        (self.minute_of(i) % MINUTES_PER_DAY as u64) as u32
    }

    /// Day index (0-based, day 0 is a Monday by convention) of sample `i`.
    pub fn day_of(&self, i: usize) -> u32 {
        (self.minute_of(i) / MINUTES_PER_DAY as u64) as u32
    }

    /// Day-of-week (0 = Monday .. 6 = Sunday) of sample `i`.
    pub fn day_of_week(&self, i: usize) -> u32 {
        self.day_of(i) % 7
    }

    /// Whether sample `i` falls on a weekend day (Saturday or Sunday).
    pub fn is_weekend(&self, i: usize) -> bool {
        self.day_of_week(i) >= 5
    }

    /// Samples per day on this grid.
    ///
    /// # Panics
    ///
    /// Panics if the step does not divide one day evenly.
    pub fn samples_per_day(&self) -> usize {
        assert_eq!(MINUTES_PER_DAY % self.step_minutes, 0);
        (MINUTES_PER_DAY / self.step_minutes) as usize
    }

    /// Iterator over sample indices.
    pub fn indices(&self) -> std::ops::Range<usize> {
        0..self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_week_has_expected_sample_count() {
        assert_eq!(TimeGrid::one_week(1).len(), 10_080);
        assert_eq!(TimeGrid::one_week(10).len(), 1_008);
        assert_eq!(TimeGrid::one_week(15).len(), 672);
    }

    #[test]
    fn minute_of_day_wraps() {
        let g = TimeGrid::one_week(60);
        assert_eq!(g.minute_of_day(0), 0);
        assert_eq!(g.minute_of_day(24), 0);
        assert_eq!(g.minute_of_day(25), 60);
    }

    #[test]
    fn day_of_week_and_weekend() {
        let g = TimeGrid::one_week(60);
        assert_eq!(g.day_of_week(0), 0);
        assert_eq!(g.day_of_week(24 * 5), 5);
        assert!(g.is_weekend(24 * 5));
        assert!(g.is_weekend(24 * 6 + 3));
        assert!(!g.is_weekend(24 * 4 + 23));
    }

    #[test]
    fn days_constructor() {
        let g = TimeGrid::days(3, 30);
        assert_eq!(g.len(), 3 * 48);
        assert_eq!(g.duration_minutes(), 3 * 1440);
        assert_eq!(g.samples_per_day(), 48);
    }

    #[test]
    #[should_panic(expected = "divide one week")]
    fn uneven_week_step_panics() {
        let _ = TimeGrid::one_week(11);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_step_panics() {
        let _ = TimeGrid::new(0, 10);
    }
}
