//! Property-based tests for the power-trace substrate.

use proptest::prelude::*;
use so_powertrace::{
    off_peak_mask, peak_of_sum, sum_of_peaks, Ecdf, NodeAggregate, PercentileBands, PowerTrace,
    SlackProfile, TraceArena, TraceView,
};

fn sample_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1000.0, len..=len)
}

fn trace_pair(len: usize) -> impl Strategy<Value = (PowerTrace, PowerTrace)> {
    (sample_vec(len), sample_vec(len)).prop_map(|(a, b)| {
        (
            PowerTrace::new(a, 10).expect("valid samples"),
            PowerTrace::new(b, 10).expect("valid samples"),
        )
    })
}

/// An independent, deliberately simple re-derivation of the shared
/// linear-interpolation (Hyndman–Fan type 7) quantile, used as the
/// reference the production implementation must agree with.
fn naive_reference_quantile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = sorted.len();
    let pos = q * (n as f64 - 1.0);
    let lo = (pos.floor() as usize).min(n - 1);
    let hi = (lo + 1).min(n - 1);
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

proptest! {
    /// The shared quantile agrees with the naive reference implementation
    /// on random inputs (including single-sample traces).
    #[test]
    fn shared_quantile_matches_naive_reference(
        v in prop::collection::vec(0.0f64..1000.0, 1..120),
        q in 0.0f64..=1.0,
    ) {
        let got = so_powertrace::quantile::quantile(&v, q).unwrap();
        let want = naive_reference_quantile(&v, q);
        prop_assert!(
            (got - want).abs() <= 1e-9 * want.abs().max(1.0),
            "quantile({q}) = {got}, reference = {want}"
        );
    }

    /// The shared quantile is monotone non-decreasing in p and bounded by
    /// the sample extremes; p = 0 and p = 1 hit them exactly.
    #[test]
    fn shared_quantile_monotone_in_p(
        v in prop::collection::vec(0.0f64..1000.0, 1..120),
        qs in prop::collection::vec(0.0f64..=1.0, 2..12),
    ) {
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).expect("quantiles are finite"));
        let values: Vec<f64> = qs
            .iter()
            .map(|&q| so_powertrace::quantile::quantile(&v, q).unwrap())
            .collect();
        for w in values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12, "not monotone: {values:?} at {qs:?}");
        }
        let min = v.iter().copied().fold(f64::MAX, f64::min);
        let max = v.iter().copied().fold(f64::MIN, f64::max);
        prop_assert!(values.iter().all(|&x| (min..=max).contains(&x)));
        prop_assert_eq!(so_powertrace::quantile::quantile(&v, 0.0).unwrap(), min);
        prop_assert_eq!(so_powertrace::quantile::quantile(&v, 1.0).unwrap(), max);
    }

    /// peak(a + b) <= peak(a) + peak(b): aggregation can only cancel peaks.
    #[test]
    fn peak_is_subadditive((a, b) in trace_pair(64)) {
        let sum = a.try_add(&b).unwrap();
        prop_assert!(sum.peak() <= a.peak() + b.peak() + 1e-9);
    }

    /// peak(a + b) >= max(peak(a), peak(b)) for non-negative traces.
    #[test]
    fn aggregate_peak_dominates_components((a, b) in trace_pair(64)) {
        let sum = a.try_add(&b).unwrap();
        prop_assert!(sum.peak() + 1e-9 >= a.peak().max(b.peak()));
    }

    /// sum_of_peaks >= peak_of_sum for any population.
    #[test]
    fn sum_of_peaks_dominates_peak_of_sum(vs in prop::collection::vec(sample_vec(32), 1..8)) {
        let traces: Vec<PowerTrace> =
            vs.into_iter().map(|v| PowerTrace::new(v, 10).unwrap()).collect();
        let sp = sum_of_peaks(traces.iter()).unwrap();
        let ps = peak_of_sum(traces.iter()).unwrap();
        prop_assert!(sp + 1e-9 >= ps);
    }

    /// Quantiles are monotone in q and bounded by [min, peak].
    #[test]
    fn quantiles_are_monotone(v in sample_vec(50), q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let t = PowerTrace::new(v, 10).unwrap();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = t.quantile(lo).unwrap();
        let b = t.quantile(hi).unwrap();
        prop_assert!(a <= b + 1e-9);
        prop_assert!(t.min() - 1e-9 <= a && b <= t.peak() + 1e-9);
    }

    /// Ecdf quantiles agree with trace quantiles.
    #[test]
    fn ecdf_matches_trace(v in sample_vec(40), q in 0.0f64..=1.0) {
        let t = PowerTrace::new(v, 10).unwrap();
        let e = Ecdf::from_trace(&t);
        prop_assert!((e.quantile(q).unwrap() - t.quantile(q).unwrap()).abs() < 1e-9);
    }

    /// Slack is non-negative and bounded by the budget; energy slack
    /// equals budget*duration minus bounded energy.
    #[test]
    fn slack_bounds(v in sample_vec(40), budget in 0.0f64..2000.0) {
        let t = PowerTrace::new(v, 10).unwrap();
        let s = SlackProfile::new(&t, budget).unwrap();
        for &x in s.slack_samples() {
            prop_assert!(x >= 0.0 && x <= budget + 1e-9);
        }
        let full_mask = vec![true; t.len()];
        let masked = s.masked_energy_slack(&full_mask).unwrap();
        prop_assert!((masked - s.energy_slack_watt_minutes()).abs() < 1e-6);
    }

    /// The off-peak mask marks at least the minimum sample and never the
    /// strict maximum when threshold < 1.
    #[test]
    fn off_peak_mask_is_sane(v in sample_vec(40)) {
        let t = PowerTrace::new(v, 10).unwrap();
        let mask = off_peak_mask(&t, 0.5).unwrap();
        prop_assert_eq!(mask.len(), t.len());
        // The min sample is always <= the median threshold.
        let min_idx = t
            .samples()
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        prop_assert!(mask[min_idx]);
    }

    /// mean_of is bounded by component extremes, per timestep.
    #[test]
    fn mean_of_is_bounded((a, b) in trace_pair(32)) {
        let m = PowerTrace::mean_of([&a, &b]).unwrap();
        for i in 0..m.len() {
            let lo = a.samples()[i].min(b.samples()[i]);
            let hi = a.samples()[i].max(b.samples()[i]);
            prop_assert!(lo - 1e-9 <= m.samples()[i] && m.samples()[i] <= hi + 1e-9);
        }
    }

    /// Percentile bands are ordered: series(q1) <= series(q2) when q1 <= q2.
    #[test]
    fn bands_are_ordered(vs in prop::collection::vec(sample_vec(16), 2..6)) {
        let traces: Vec<PowerTrace> =
            vs.into_iter().map(|v| PowerTrace::new(v, 10).unwrap()).collect();
        let bands = PercentileBands::compute(&traces, &[0.25, 0.75]).unwrap();
        let lo = bands.series(0.25).unwrap();
        let hi = bands.series(0.75).unwrap();
        for i in 0..lo.len() {
            prop_assert!(lo[i] <= hi[i] + 1e-9);
        }
    }

    /// Downsampling preserves total energy.
    #[test]
    fn downsample_preserves_energy(v in sample_vec(64)) {
        let t = PowerTrace::new(v, 10).unwrap();
        let d = t.downsample(4).unwrap();
        prop_assert!((t.energy_watt_minutes() - d.energy_watt_minutes()).abs() < 1e-6);
    }

    /// An arbitrary add/remove sequence on a [`NodeAggregate`] matches a
    /// from-scratch `PowerTrace::sum_of` over the live members at every
    /// step: the incremental cache never drifts from the ground truth.
    #[test]
    fn node_aggregate_matches_from_scratch_sum(
        vs in prop::collection::vec(sample_vec(24), 1..10),
        ops in prop::collection::vec(0usize..2048, 1..40),
    ) {
        let traces: Vec<PowerTrace> =
            vs.into_iter().map(|v| PowerTrace::new(v, 10).unwrap()).collect();
        let mut agg = NodeAggregate::new(traces[0].grid());
        let mut live: Vec<usize> = Vec::new();

        for op in ops {
            let (is_add, pick) = (op % 2 == 0, op / 2);
            if is_add || live.is_empty() {
                let idx = pick % traces.len();
                agg.add(&traces[idx]).unwrap();
                live.push(idx);
            } else {
                let at = pick % live.len();
                let idx = live.swap_remove(at);
                agg.remove(&traces[idx]).unwrap();
            }

            prop_assert_eq!(agg.count(), live.len());
            if live.is_empty() {
                prop_assert!((agg.peak() - 0.0).abs() < 1e-6);
                continue;
            }
            let expected = PowerTrace::sum_of(live.iter().map(|&i| &traces[i])).unwrap();
            prop_assert!(
                (agg.peak() - expected.peak()).abs() < 1e-6,
                "cached peak {} vs from-scratch {}", agg.peak(), expected.peak()
            );
            let got = agg.to_trace().unwrap();
            for (a, b) in got.samples().iter().zip(expected.samples()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }

    /// Traces survive the columnar round trip bit-for-bit: arena rows,
    /// zero-copy views, and materialized traces all reproduce the source
    /// samples exactly (single-sample traces included).
    #[test]
    fn arena_round_trip_is_bit_exact(
        vs in (1usize..24).prop_flat_map(|len| prop::collection::vec(sample_vec(len), 1..6)),
    ) {
        let traces: Vec<PowerTrace> =
            vs.into_iter().map(|v| PowerTrace::new(v, 10).unwrap()).collect();
        let arena = TraceArena::from_traces(&traces).unwrap();
        prop_assert_eq!(arena.len(), traces.len());
        let back = arena.to_traces().unwrap();
        for (i, t) in traces.iter().enumerate() {
            let bits = |s: &[f64]| s.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(arena.row(i)), bits(t.samples()));
            prop_assert_eq!(bits(arena.view(i).samples()), bits(t.samples()));
            prop_assert_eq!(bits(back[i].samples()), bits(t.samples()));
            prop_assert_eq!(back[i].grid(), t.grid());
            prop_assert_eq!(TraceView::from_trace(t).peak().to_bits(), t.peak().to_bits());
        }
    }

    /// The batch sum kernel matches a naive per-timestep accumulation in
    /// member order, bit for bit — the order `PowerTrace::sum_of` uses.
    #[test]
    fn arena_sum_into_matches_naive_reference(
        vs in prop::collection::vec(sample_vec(24), 1..8),
        picks in prop::collection::vec(0usize..64, 1..12),
    ) {
        let traces: Vec<PowerTrace> =
            vs.into_iter().map(|v| PowerTrace::new(v, 10).unwrap()).collect();
        let arena = TraceArena::from_traces(&traces).unwrap();
        let members: Vec<usize> = picks.iter().map(|&p| p % traces.len()).collect();

        let mut naive = vec![0.0f64; arena.samples_per_trace()];
        for &m in &members {
            for (acc, &v) in naive.iter_mut().zip(traces[m].samples()) {
                *acc += v;
            }
        }
        let mut out = vec![f64::NAN; arena.samples_per_trace()];
        arena.sum_into(&members, &mut out).unwrap();
        for (a, b) in out.iter().zip(&naive) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The fused blocked peak kernel equals the peak of the materialized
    /// sum, bit for bit, for any member multiset (duplicates allowed).
    #[test]
    fn arena_peak_of_sum_matches_naive_reference(
        vs in prop::collection::vec(sample_vec(40), 1..8),
        picks in prop::collection::vec(0usize..64, 1..12),
    ) {
        let traces: Vec<PowerTrace> =
            vs.into_iter().map(|v| PowerTrace::new(v, 10).unwrap()).collect();
        let arena = TraceArena::from_traces(&traces).unwrap();
        let members: Vec<usize> = picks.iter().map(|&p| p % traces.len()).collect();

        let mut sum = vec![0.0f64; arena.samples_per_trace()];
        arena.sum_into(&members, &mut sum).unwrap();
        let naive_peak = sum.iter().copied().fold(f64::MIN, f64::max);
        prop_assert_eq!(arena.peak_of_sum(&members).unwrap().to_bits(), naive_peak.to_bits());
    }

    /// Arena row quantiles agree bit-for-bit with the trace-layer quantile
    /// on the same samples.
    #[test]
    fn arena_quantiles_match_trace_quantiles(
        vs in prop::collection::vec(sample_vec(30), 1..5),
        q in 0.0f64..=1.0,
    ) {
        let traces: Vec<PowerTrace> =
            vs.into_iter().map(|v| PowerTrace::new(v, 10).unwrap()).collect();
        let arena = TraceArena::from_traces(&traces).unwrap();
        let mut scratch = Vec::new();
        let batch = arena.row_quantiles(q).unwrap();
        for (i, t) in traces.iter().enumerate() {
            let want = t.quantile(q).unwrap();
            prop_assert_eq!(arena.quantile_of_row(i, q, &mut scratch).unwrap().to_bits(), want.to_bits());
            prop_assert_eq!(batch[i].to_bits(), want.to_bits());
        }
    }
}

/// Deterministic edge cases the strategies above cannot reach.
#[test]
fn arena_edge_cases() {
    // An empty trace slice cannot define a grid.
    assert!(TraceArena::from_traces(&[]).is_err());

    // Empty member set has no sum.
    let t = PowerTrace::new(vec![1.0, 2.0], 10).unwrap();
    let arena = TraceArena::from_traces(std::slice::from_ref(&t)).unwrap();
    let mut out = vec![0.0; 2];
    assert!(arena.sum_into(&[], &mut out).is_err());
    assert!(arena.peak_of_sum(&[]).is_err());

    // Single-sample rows: quantiles collapse to the sample for every q.
    let single = PowerTrace::new(vec![7.5], 10).unwrap();
    let arena = TraceArena::from_traces(std::slice::from_ref(&single)).unwrap();
    let mut scratch = Vec::new();
    for q in [0.0, 0.5, 1.0] {
        assert_eq!(arena.quantile_of_row(0, q, &mut scratch).unwrap(), 7.5);
    }
    assert_eq!(arena.peak_of_sum(&[0, 0]).unwrap(), 15.0);
}

/// Warps a base vector into one of the adversarial shapes the P² sketch's
/// empirical error bound is gated against. The shapes deliberately cover
/// the estimator's weak spots: long sorted runs (markers trail the data),
/// bimodal clusters, heavy tails, and periodic arrival order. All shapes
/// except `constant` keep values distinct (continuous distributions are
/// what P² models; its point-mass behavior is a documented limitation,
/// not a gated property).
fn adversarial_shape(base: &[f64], shape: u8) -> Vec<f64> {
    // Tiny index-proportional jitter breaks ties without moving ranks.
    let jitter = |i: usize| i as f64 * 1e-6;
    match shape % 7 {
        // 0: the raw uniform draw.
        0 => base.to_vec(),
        // 1: sorted ascending.
        1 => {
            let mut v = base.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            v
        }
        // 2: sorted descending.
        2 => {
            let mut v = base.to_vec();
            v.sort_by(|a, b| b.partial_cmp(a).expect("finite samples"));
            v
        }
        // 3: constant (exact for the sketch at any length).
        3 => vec![base[0]; base.len()],
        // 4: bimodal — two well-separated continuous clusters.
        4 => base
            .iter()
            .map(|&x| {
                if x < 500.0 {
                    x * 0.2
                } else {
                    900.0 + (x - 500.0) * 0.2
                }
            })
            .collect(),
        // 5: heavy tail — quartic warp stretches the top of the range.
        5 => base.iter().map(|&x| (x / 1000.0).powi(4) * 1e8).collect(),
        // 6: sawtooth in arrival order, independent of the draw.
        _ => (0..base.len())
            .map(|i| (i % 17) as f64 * 3.0 + jitter(i))
            .collect(),
    }
}

proptest! {
    /// The selection-based quantile is bit-for-bit the full-sort quantile
    /// for every sample set and probe — the contract that lets the scale
    /// tier's hot path use `select_nth_unstable` while the oracles keep
    /// pinning against the sorted reference.
    #[test]
    fn select_quantile_is_bitwise_the_sort_quantile(
        v in prop::collection::vec(0.0f64..1000.0, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let mut scratch = Vec::new();
        let got = so_powertrace::quantile::quantile_select(&v, q, &mut scratch).unwrap();
        let want = so_powertrace::quantile::quantile(&v, q).unwrap();
        prop_assert_eq!(got.to_bits(), want.to_bits(), "q={}", q);
    }

    /// The streaming P² sketch stays within its documented empirical
    /// rank-error bound across the adversarial distribution family —
    /// streams of `n ≥ 64` and interior quantile targets, the regime the
    /// bound is documented for. (`q ∈ {0, 1}` are exact by construction
    /// and covered below; shorter streams and point-mass distributions
    /// are documented limitations of the sketch, not gated properties.)
    #[test]
    fn sketch_rank_error_is_bounded_on_adversarial_shapes(
        base in prop::collection::vec(0.0f64..1000.0, 64..400),
        q in 0.05f64..=0.99,
        shape in 0u8..7,
    ) {
        let data = adversarial_shape(&base, shape);
        let est = so_powertrace::sketch_quantile(&data, q).unwrap();
        let err = so_powertrace::sketch::rank_error(&data, q, est);
        prop_assert!(
            err <= so_powertrace::P2_RANK_ERROR_BOUND,
            "shape {} n {} q {}: estimate {} rank error {} exceeds bound {}",
            shape, data.len(), q, est, err, so_powertrace::P2_RANK_ERROR_BOUND
        );
    }

    /// The sketch's extreme targets are exact on every shape: `q = 0`
    /// tracks the running minimum marker and `q = 1` the maximum.
    #[test]
    fn sketch_extremes_are_exact_on_adversarial_shapes(
        base in prop::collection::vec(0.0f64..1000.0, 1..300),
        shape in 0u8..7,
    ) {
        let data = adversarial_shape(&base, shape);
        let min = data.iter().copied().fold(f64::MAX, f64::min);
        let max = data.iter().copied().fold(f64::MIN, f64::max);
        prop_assert_eq!(so_powertrace::sketch_quantile(&data, 0.0).unwrap(), min);
        prop_assert_eq!(so_powertrace::sketch_quantile(&data, 1.0).unwrap(), max);
    }
}
