//! Adversarial inputs into the trace substrate: NaN, negatives, infinities,
//! all-zero and single-sample traces, and aggregate add/remove churn. Every
//! case must produce a clean error or a well-defined finite value — never a
//! NaN, never a panic.

use proptest::prelude::*;
use so_powertrace::{
    GapPolicy, MaskedTrace, NodeAggregate, PowerTrace, SanitizeConfig, TimeGrid, TraceError,
    TraceSanitizer,
};

// ---------------------------------------------------------------------------
// PowerTrace construction and peak
// ---------------------------------------------------------------------------

#[test]
fn nan_sample_is_rejected_with_location() {
    let err = PowerTrace::new(vec![1.0, f64::NAN, 3.0], 10).unwrap_err();
    match err {
        TraceError::InvalidSample { index, value } => {
            assert_eq!(index, 1);
            assert!(value.is_nan());
        }
        other => panic!("expected InvalidSample, got {other:?}"),
    }
}

#[test]
fn negative_and_infinite_samples_are_rejected() {
    assert!(matches!(
        PowerTrace::new(vec![0.0, -0.5], 10),
        Err(TraceError::InvalidSample { index: 1, .. })
    ));
    assert!(matches!(
        PowerTrace::new(vec![f64::INFINITY], 10),
        Err(TraceError::InvalidSample { index: 0, .. })
    ));
    assert!(matches!(
        PowerTrace::new(vec![f64::NEG_INFINITY], 10),
        Err(TraceError::InvalidSample { index: 0, .. })
    ));
}

#[test]
fn empty_and_zero_step_are_clean_errors() {
    assert_eq!(PowerTrace::new(vec![], 10).unwrap_err(), TraceError::Empty);
    assert_eq!(
        PowerTrace::new(vec![1.0], 0).unwrap_err(),
        TraceError::ZeroStep
    );
}

#[test]
fn all_zero_trace_has_finite_zero_peak() {
    let t = PowerTrace::new(vec![0.0; 8], 10).unwrap();
    assert_eq!(t.peak(), 0.0);
    assert_eq!(t.peak_index(), 0);
    assert!(t.peak().is_finite());
}

#[test]
fn single_sample_trace_peak_is_the_sample() {
    let t = PowerTrace::new(vec![7.25], 10).unwrap();
    assert_eq!(t.peak(), 7.25);
    assert_eq!(t.peak_index(), 0);
    let sum = PowerTrace::sum_of([&t]).unwrap();
    assert_eq!(sum.peak(), 7.25);
    let mean = PowerTrace::mean_of([&t]).unwrap();
    assert_eq!(mean.peak(), 7.25);
}

// ---------------------------------------------------------------------------
// NodeAggregate add/remove churn
// ---------------------------------------------------------------------------

#[test]
fn aggregate_add_remove_round_trips_to_empty() {
    let grid = TimeGrid::new(10, 4);
    let a = PowerTrace::new(vec![1.5, 2.5, 0.0, 4.0], 10).unwrap();
    let b = PowerTrace::new(vec![0.5, 0.0, 3.0, 1.0], 10).unwrap();
    let mut agg = NodeAggregate::new(grid);
    agg.add(&a).unwrap();
    agg.add(&b).unwrap();
    assert_eq!(agg.count(), 2);
    agg.remove(&a).unwrap();
    agg.remove(&b).unwrap();
    assert!(agg.is_empty());
    // Floating-point residue never turns the empty aggregate's peak
    // negative or NaN, and to_trace stays constructible.
    assert!(agg.peak().is_finite());
    let t = agg.to_trace().unwrap();
    assert!(t.samples().iter().all(|v| v.is_finite() && *v >= 0.0));
}

#[test]
fn aggregate_remove_from_empty_is_a_clean_error() {
    let grid = TimeGrid::new(10, 2);
    let t = PowerTrace::new(vec![1.0, 2.0], 10).unwrap();
    let mut agg = NodeAggregate::new(grid);
    assert_eq!(agg.remove(&t).unwrap_err(), TraceError::Empty);
}

#[test]
fn aggregate_rejects_mismatched_grids() {
    let grid = TimeGrid::new(10, 2);
    let wrong_len = PowerTrace::new(vec![1.0, 2.0, 3.0], 10).unwrap();
    let wrong_step = PowerTrace::new(vec![1.0, 2.0], 30).unwrap();
    let mut agg = NodeAggregate::new(grid);
    assert!(matches!(
        agg.add(&wrong_len),
        Err(TraceError::LengthMismatch { .. })
    ));
    assert!(matches!(
        agg.add(&wrong_step),
        Err(TraceError::StepMismatch { .. })
    ));
}

#[test]
fn mean_excluding_needs_two_members() {
    let grid = TimeGrid::new(10, 2);
    let t = PowerTrace::new(vec![1.0, 2.0], 10).unwrap();
    let mut agg = NodeAggregate::new(grid);
    agg.add(&t).unwrap();
    assert_eq!(agg.mean_excluding(&t).unwrap_err(), TraceError::Empty);
}

// ---------------------------------------------------------------------------
// Sanitizer and mask edge cases
// ---------------------------------------------------------------------------

#[test]
fn sanitizer_survives_all_garbage_input() {
    let garbage = vec![f64::NAN, f64::INFINITY, -3.0, f64::NEG_INFINITY];
    let s = TraceSanitizer::default();
    let (trace, report) = s.sanitize(&garbage, 10).unwrap();
    assert!(report.all_invalid);
    assert_eq!(trace.samples(), &[0.0; 4]);
    // Drop policy on all-garbage input has nothing left: clean error.
    let dropper = TraceSanitizer::new(SanitizeConfig {
        gap_policy: GapPolicy::Drop,
        ..SanitizeConfig::default()
    })
    .unwrap();
    assert_eq!(
        dropper.sanitize(&garbage, 10).unwrap_err(),
        TraceError::Empty
    );
}

#[test]
fn masked_trace_with_no_valid_samples_still_reports_coverage() {
    let m = MaskedTrace::from_samples(&[f64::NAN, -1.0], 10).unwrap();
    assert_eq!(m.observed(), 0);
    assert_eq!(m.coverage(), 0.0);
    assert_eq!(m.observed_mean(), None);
    assert!(matches!(
        m.to_trace(),
        Err(TraceError::MaskedSamples { masked: 2, len: 2 })
    ));
}

// ---------------------------------------------------------------------------
// Properties: the sanitizer is idempotent and never raises the peak
// ---------------------------------------------------------------------------

/// Raw telemetry: mixes plausible values with NaN, infinities, negatives,
/// and absurd spikes.
fn hostile_samples(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            5 => 0.0f64..1_000.0,
            1 => Just(f64::NAN),
            1 => Just(f64::INFINITY),
            1 => Just(f64::NEG_INFINITY),
            1 => -1_000.0f64..0.0,
            1 => 1.0e9f64..1.0e12,
        ],
        len..=len,
    )
}

fn any_policy() -> impl Strategy<Value = GapPolicy> {
    prop_oneof![
        Just(GapPolicy::Interpolate),
        Just(GapPolicy::HoldLast),
        Just(GapPolicy::Zero),
        Just(GapPolicy::Drop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sanitizing a sanitized trace changes nothing (and the output is
    /// always a fully valid trace).
    #[test]
    fn sanitizer_is_idempotent(
        samples in hostile_samples(24),
        policy in any_policy(),
    ) {
        let s = TraceSanitizer::new(SanitizeConfig {
            gap_policy: policy,
            ..SanitizeConfig::default()
        })
        .unwrap();
        let first = s.sanitize(&samples, 10);
        let Ok((trace, _)) = first else {
            // Drop policy may legitimately empty the trace; nothing more
            // to check.
            prop_assert_eq!(policy, GapPolicy::Drop);
            return Ok(());
        };
        prop_assert!(trace.samples().iter().all(|v| v.is_finite() && *v >= 0.0));
        let (again, report) = s.sanitize(trace.samples(), 10).unwrap();
        prop_assert!(report.is_clean(), "second pass flagged {report:?}");
        prop_assert_eq!(again.samples(), trace.samples());
    }

    /// The sanitized peak never exceeds the largest plausible (finite,
    /// non-negative) input sample: repairs only ever lower power.
    #[test]
    fn sanitizer_never_raises_the_peak(
        samples in hostile_samples(24),
        policy in any_policy(),
    ) {
        let s = TraceSanitizer::new(SanitizeConfig {
            gap_policy: policy,
            ..SanitizeConfig::default()
        })
        .unwrap();
        if let Ok((trace, _)) = s.sanitize(&samples, 10) {
            let plausible_peak = samples
                .iter()
                .copied()
                .filter(|v| v.is_finite() && *v >= 0.0)
                .fold(0.0f64, f64::max);
            prop_assert!(
                trace.peak() <= plausible_peak + 1e-9,
                "peak {} exceeds best input {}",
                trace.peak(),
                plausible_peak
            );
        }
    }

    /// Completing a masked trace from any valid prior yields a valid trace
    /// that preserves the observed samples bit-for-bit.
    #[test]
    fn fill_preserves_observed_samples(
        samples in hostile_samples(16),
        prior in prop::collection::vec(0.0f64..500.0, 16..=16),
    ) {
        let m = MaskedTrace::from_samples(&samples, 10).unwrap();
        let p = PowerTrace::new(prior, 10).unwrap();
        let filled = m.fill_with(&p).unwrap();
        for t in 0..m.len() {
            prop_assert!(filled.samples()[t].is_finite() && filled.samples()[t] >= 0.0);
            if m.valid()[t] {
                prop_assert_eq!(filled.samples()[t], m.samples()[t]);
            }
        }
    }
}
