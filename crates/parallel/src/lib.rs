//! Deterministic data-parallel helpers over `std::thread::scope`.
//!
//! The placement → clustering → remap pipeline parallelizes with two
//! primitives whose results are **bit-identical** to a serial loop no
//! matter how many worker threads actually run:
//!
//! * [`par_map`] — positional map: `out[i] = f(i, &items[i])`. Each
//!   worker fills a disjoint contiguous slice of the output, so thread
//!   count and scheduling can never reorder results.
//! * [`par_chunk_map`] — canonically chunked map for reductions. The
//!   input is cut into fixed-size chunks whose boundaries depend only
//!   on `chunk_len` (never on the worker count); callers fold the
//!   per-chunk partials **in chunk order**, which pins the
//!   floating-point association once for serial and parallel alike.
//!
//! Worker threads come out of a process-wide budget (defaulting to
//! [`std::thread::available_parallelism`]) so that nested calls — e.g.
//! per-child placement recursion invoking parallel k-means — share one
//! pool-sized allotment instead of multiplying threads. When no budget
//! is free, inside [`serial_scope`], or with the `threads` feature
//! disabled, every helper degenerates to the plain serial loop and
//! produces the same bits.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide override of the lane budget; 0 means "unset, use the
/// machine's available parallelism".
static LIMIT: AtomicUsize = AtomicUsize::new(0);

/// Spawned worker threads currently alive across all helpers.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Nesting depth of [`serial_scope`] on this thread.
    static SERIAL_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Maximum number of lanes (caller thread + spawned workers) a helper
/// may use. Defaults to the machine's available parallelism.
pub fn thread_limit() -> usize {
    match LIMIT.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Overrides [`thread_limit`] process-wide. `1` disables spawning.
///
/// Intended for tests and benchmarks that need a fixed lane count
/// regardless of the host's core count (e.g. exercising the threaded
/// path on a single-core CI runner).
pub fn set_thread_limit(lanes: usize) {
    LIMIT.store(lanes.max(1), Ordering::Relaxed);
}

/// True when the current thread is inside a [`serial_scope`].
pub fn is_serial() -> bool {
    SERIAL_DEPTH.with(|depth| depth.get() > 0)
}

/// Runs `f` with all helpers on this thread forced to their serial
/// path. Because the serial path spawns nothing, the force extends to
/// everything `f` calls. Scopes nest; panics restore the previous
/// state.
pub fn serial_scope<R>(f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            SERIAL_DEPTH.with(|depth| depth.set(depth.get() - 1));
        }
    }
    SERIAL_DEPTH.with(|depth| depth.set(depth.get() + 1));
    let _guard = Guard;
    f()
}

/// A reservation of spawned-worker slots against the global budget.
struct Permit {
    count: usize,
}

impl Permit {
    /// Tries to reserve up to `want` worker slots; `None` when the
    /// budget is exhausted (the caller then runs serially).
    fn acquire(want: usize) -> Option<Permit> {
        if want == 0 {
            return None;
        }
        // The caller thread itself occupies one lane, so only
        // `limit - 1` spawned workers may exist at once.
        let budget = thread_limit().saturating_sub(1);
        let mut current = ACTIVE.load(Ordering::Relaxed);
        loop {
            let grant = want.min(budget.saturating_sub(current));
            if grant == 0 {
                return None;
            }
            match ACTIVE.compare_exchange_weak(
                current,
                current + grant,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Permit { count: grant }),
                Err(actual) => current = actual,
            }
        }
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(self.count, Ordering::Relaxed);
    }
}

/// Lane count for a task that splits into `parts` independent pieces:
/// at most one lane per piece, capped by the budget, and 1 whenever
/// threading is off for any reason.
fn lanes_for(parts: usize) -> usize {
    if !cfg!(feature = "threads") || parts < 2 || is_serial() {
        1
    } else {
        parts.min(thread_limit())
    }
}

/// Computes `produce(i)` for `i in 0..count` into a positional output,
/// splitting the index range contiguously across `lanes` threads.
fn run<R: Send>(count: usize, lanes: usize, produce: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if lanes <= 1 || count < 2 {
        return (0..count).map(produce).collect();
    }
    let permit = match Permit::acquire(lanes - 1) {
        Some(permit) => permit,
        None => return (0..count).map(produce).collect(),
    };
    let lanes = permit.count + 1;
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(count).collect();
    {
        // Hand each lane a disjoint `&mut` window of the output so
        // results land positionally without any post-hoc reordering.
        let mut windows: Vec<(usize, &mut [Option<R>])> = Vec::with_capacity(lanes);
        let mut rest = out.as_mut_slice();
        let mut start = 0usize;
        for lane in 0..lanes {
            let len = count / lanes + usize::from(lane < count % lanes);
            let (head, tail) = rest.split_at_mut(len);
            windows.push((start, head));
            start += len;
            rest = tail;
        }
        let produce = &produce;
        std::thread::scope(|scope| {
            let mut windows = windows.into_iter();
            let (first_base, first_window) = windows.next().expect("lanes >= 1");
            for (base, window) in windows {
                scope.spawn(move || {
                    for (offset, slot) in window.iter_mut().enumerate() {
                        *slot = Some(produce(base + offset));
                    }
                });
            }
            // The caller thread works the first window instead of
            // blocking on the join.
            for (offset, slot) in first_window.iter_mut().enumerate() {
                *slot = Some(produce(first_base + offset));
            }
        });
    }
    drop(permit);
    out.into_iter()
        .map(|slot| slot.expect("every lane fills its window"))
        .collect()
}

/// Positional parallel map: returns `[f(0, &items[0]), f(1, &items[1]), ..]`.
///
/// `grain` is the minimum number of items worth giving one thread; the
/// call runs serially unless at least two grains of work exist. Use a
/// small grain for coarse items (placement subtrees, candidate nodes)
/// and a large one for cheap element-wise work (distance evaluations).
pub fn par_map<T, R, F>(items: &[T], grain: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let lanes = lanes_for(items.len() / grain.max(1));
    run(items.len(), lanes, |i| f(i, &items[i]))
}

/// Number of lanes a data-parallel helper would use right now: `1`
/// whenever threading is unavailable (feature off, inside a
/// [`serial_scope`]), the current [`thread_limit`] otherwise. Reporting
/// only — the actual grant still depends on the shared budget at call
/// time.
pub fn effective_lanes() -> usize {
    if !cfg!(feature = "threads") || is_serial() {
        1
    } else {
        thread_limit()
    }
}

/// Fills canonical fixed-size chunks of `out` in parallel: chunk `c` is
/// `out[c * chunk_len .. min((c + 1) * chunk_len, n)]` — the same layout
/// as [`par_chunk_map`] — and `f(c, chunk)` writes it.
///
/// Because every element is written exactly once, by one call, from a
/// chunk index that depends only on `chunk_len`, the result is
/// bit-identical at any thread count: this is the deterministic parallel
/// *synthesis* primitive (the write-side dual of [`par_chunk_map`]'s
/// read-side reductions), used to generate trace populations row-by-row.
pub fn par_fill_chunks<T, F>(out: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n = out.len();
    let chunks = n.div_ceil(chunk_len);
    let lanes = lanes_for(chunks);
    let serial = |out: &mut [T]| {
        for (c, chunk) in out.chunks_mut(chunk_len).enumerate() {
            f(c, chunk);
        }
    };
    if lanes <= 1 || chunks < 2 {
        return serial(out);
    }
    let permit = match Permit::acquire(lanes - 1) {
        Some(permit) => permit,
        None => return serial(out),
    };
    let lanes = permit.count + 1;
    // Hand each lane a contiguous run of whole chunks, as a disjoint
    // `&mut` window of the output.
    let f = &f;
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut chunk_base = 0usize;
        let mut first: Option<(usize, &mut [T])> = None;
        for lane in 0..lanes {
            let lane_chunks = chunks / lanes + usize::from(lane < chunks % lanes);
            let take = (lane_chunks * chunk_len).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            if lane == 0 {
                first = Some((chunk_base, head));
            } else {
                let base = chunk_base;
                scope.spawn(move || {
                    for (offset, chunk) in head.chunks_mut(chunk_len).enumerate() {
                        f(base + offset, chunk);
                    }
                });
            }
            chunk_base += lane_chunks;
        }
        // The caller thread works the first window instead of blocking
        // on the join.
        let (base, head) = first.expect("lanes >= 1");
        for (offset, chunk) in head.chunks_mut(chunk_len).enumerate() {
            f(base + offset, chunk);
        }
    });
    drop(permit);
}

/// Parallel map over canonical fixed-size chunks of `items`.
///
/// Chunk `c` is `items[c * chunk_len .. min((c + 1) * chunk_len, n)]` —
/// a layout that depends only on `chunk_len`, never on how many threads
/// run. Folding the returned partials in order therefore reproduces the
/// serial result bit-for-bit, which is how the k-means update step and
/// trace summations keep parallel floating-point math deterministic.
pub fn par_chunk_map<T, R, F>(items: &[T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n = items.len();
    let chunks = n.div_ceil(chunk_len);
    let lanes = lanes_for(chunks);
    run(chunks, lanes, |c| {
        let lo = c * chunk_len;
        f(c, &items[lo..(lo + chunk_len).min(n)])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_is_positional() {
        set_thread_limit(4);
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, 1, |i, &x| x * 2 + i as u64);
        let expected: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x * 2 + i as u64)
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn chunk_layout_is_canonical() {
        set_thread_limit(4);
        let items: Vec<usize> = (0..10).collect();
        let chunks = par_chunk_map(&items, 4, |c, chunk| (c, chunk.to_vec()));
        assert_eq!(
            chunks,
            vec![
                (0, vec![0, 1, 2, 3]),
                (1, vec![4, 5, 6, 7]),
                (2, vec![8, 9])
            ]
        );
    }

    #[test]
    fn chunked_float_sums_match_serial_bits() {
        set_thread_limit(4);
        let items: Vec<f64> = (0..4097).map(|i| (i as f64).sin() * 1e-3 + 0.1).collect();
        let sum = |partials: Vec<f64>| partials.into_iter().fold(0.0f64, |a, b| a + b);
        let parallel = sum(par_chunk_map(&items, 256, |_, chunk| {
            chunk.iter().fold(0.0f64, |a, b| a + b)
        }));
        let serial = serial_scope(|| {
            sum(par_chunk_map(&items, 256, |_, chunk| {
                chunk.iter().fold(0.0f64, |a, b| a + b)
            }))
        });
        assert_eq!(parallel.to_bits(), serial.to_bits());
    }

    #[test]
    fn serial_scope_spawns_nothing() {
        set_thread_limit(4);
        let caller = std::thread::current().id();
        let items: Vec<u32> = (0..256).collect();
        let ids = serial_scope(|| par_map(&items, 1, |_, _| std::thread::current().id()));
        assert!(ids.iter().all(|&id| id == caller));
        assert!(!is_serial(), "scope restores the previous state");
    }

    #[test]
    fn nested_calls_share_the_budget() {
        set_thread_limit(3);
        let outer: Vec<usize> = (0..4).collect();
        let out = par_map(&outer, 1, |_, &row| {
            let inner: Vec<usize> = (0..64).collect();
            par_map(&inner, 1, |_, &x| x + row).iter().sum::<usize>()
        });
        let expected: Vec<usize> = outer
            .iter()
            .map(|&row| (0..64).map(|x| x + row).sum())
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn fill_chunks_matches_serial_bits() {
        set_thread_limit(4);
        let n = 4097;
        let gen = |c: usize, chunk: &mut [f64]| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = ((c * 31 + i) as f64).sin() * 0.5 + c as f64;
            }
        };
        let mut parallel = vec![0.0f64; n];
        par_fill_chunks(&mut parallel, 64, gen);
        let mut serial = vec![0.0f64; n];
        serial_scope(|| par_fill_chunks(&mut serial, 64, gen));
        assert!(parallel
            .iter()
            .zip(&serial)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn fill_chunks_layout_is_canonical() {
        set_thread_limit(4);
        let mut out = vec![0usize; 10];
        par_fill_chunks(&mut out, 4, |c, chunk| chunk.fill(c + 1));
        assert_eq!(out, vec![1, 1, 1, 1, 2, 2, 2, 2, 3, 3]);
        let mut empty: Vec<u8> = Vec::new();
        par_fill_chunks(&mut empty, 8, |_, chunk| chunk.fill(1));
        assert!(empty.is_empty());
    }

    #[test]
    fn effective_lanes_respects_serial_scope() {
        set_thread_limit(4);
        if cfg!(feature = "threads") {
            assert_eq!(effective_lanes(), 4);
        } else {
            assert_eq!(effective_lanes(), 1);
        }
        assert_eq!(serial_scope(effective_lanes), 1);
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        set_thread_limit(4);
        let none: Vec<u8> = Vec::new();
        assert!(par_map(&none, 1, |_, &x| x).is_empty());
        assert!(par_chunk_map(&none, 8, |_, c: &[u8]| c.len()).is_empty());
        assert_eq!(par_map(&[7u8], 1, |_, &x| x), vec![7]);
    }
}
