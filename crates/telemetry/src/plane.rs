//! The live observability plane: one bundle tying a [`RecordingSink`],
//! a [`FlightRecorder`], and an [`AlertEngine`] together behind a
//! shareable handle.
//!
//! The plane is what a resident engine attaches to (and what the HTTP
//! listener serves from): engine hooks record journal events into the
//! flight ring, per-batch orchestration feeds signal snapshots to the
//! alert engine, and every `AlertFired` or breaker-budget violation
//! captures a postmortem dump of the last-N events automatically.
//!
//! Alert *decisions* only depend on the signal stream (see
//! [`AlertEngine`]); the sink clock only stamps timestamps. A plane on a
//! [virtual clock](crate::TelemetryClock::deterministic) therefore
//! yields fully bit-stable dumps, and a wall-clock plane still yields
//! bit-stable alert counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::alerts::{AlertEngine, AlertTransition};
use crate::flight::{FlightKind, FlightRecorder};
use crate::sink::{RecordingSink, TelemetrySink};

/// How many postmortem dumps the plane retains (oldest evicted first).
const MAX_DUMPS: usize = 16;

/// One captured postmortem: the flight ring rendered at the moment an
/// anomaly fired.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Dump ordinal (0-based over the plane's lifetime).
    pub ordinal: u64,
    /// Capture time, milliseconds since the sink clock origin.
    pub ts_ms: u64,
    /// Why the dump was taken (e.g. `alert breaker_budget_violation`).
    pub reason: String,
    /// Records captured.
    pub records: usize,
    /// The rendered JSONL (see [`FlightRecorder::to_jsonl`]).
    pub jsonl: String,
}

/// The live observability plane.
///
/// Cheap to share (`Arc`) and safe to call from the engine thread and
/// the HTTP listener concurrently; the flight ring and alert engine sit
/// behind their own mutexes, and counters are atomics.
#[derive(Debug)]
pub struct LivePlane {
    sink: Arc<RecordingSink>,
    flight: Mutex<FlightRecorder>,
    alerts: Mutex<AlertEngine>,
    dumps: Mutex<Vec<FlightDump>>,
    dump_ordinal: AtomicU64,
    batches: AtomicU64,
    events: AtomicU64,
    breaker_violations: AtomicU64,
    pending_violations: AtomicU64,
    started_ms: u64,
}

impl LivePlane {
    /// A plane over `sink` with a flight ring of `flight_capacity`
    /// records and the given alert rules.
    pub fn new(
        sink: Arc<RecordingSink>,
        flight_capacity: usize,
        rules: Vec<crate::alerts::AlertRule>,
    ) -> Self {
        let started_ms = sink.now_ms();
        Self {
            sink,
            flight: Mutex::new(FlightRecorder::with_capacity(flight_capacity)),
            alerts: Mutex::new(AlertEngine::new(rules)),
            dumps: Mutex::new(Vec::new()),
            dump_ordinal: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            events: AtomicU64::new(0),
            breaker_violations: AtomicU64::new(0),
            pending_violations: AtomicU64::new(0),
            started_ms,
        }
    }

    /// The plane's metric/event sink (install it process-globally with
    /// [`crate::install`] to route the engine's gauges here too).
    pub fn sink(&self) -> &Arc<RecordingSink> {
        &self.sink
    }

    /// Records one flight record, stamping the sink clock.
    pub fn record_event(&self, kind: FlightKind, a: u64, b: u64, c: u64, value: f64) {
        self.events.fetch_add(1, Ordering::Relaxed);
        let ts = self.sink.now_ms();
        self.flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(ts, kind, a, b, c, value);
    }

    /// Records a breaker-budget violation (an admission bounced by a
    /// power budget while a slot was free) and captures a postmortem
    /// dump immediately. The violation is also queued into the
    /// `breaker_violations_delta` signal for the next alert evaluation.
    pub fn note_breaker_violation(&self, ordinal: u64, candidate_watts: f64) {
        self.breaker_violations.fetch_add(1, Ordering::Relaxed);
        self.pending_violations.fetch_add(1, Ordering::Relaxed);
        self.record_event(FlightKind::BreakerViolation, 0, ordinal, 0, candidate_watts);
        self.dump_flight("breaker-budget violation");
    }

    /// Breaker-budget violations recorded so far.
    pub fn breaker_violations(&self) -> u64 {
        self.breaker_violations.load(Ordering::Relaxed)
    }

    /// Marks one event batch processed.
    pub fn note_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Evaluates the alert rules against one signal snapshot.
    ///
    /// The plane prepends its own `breaker_violations_delta` signal
    /// (violations since the previous evaluation, then resets the
    /// pending count). Every transition is recorded into the flight
    /// ring; every `AlertFired` additionally captures a postmortem dump.
    pub fn evaluate_alerts(&self, signals: &[(&str, f64)]) -> Vec<AlertTransition> {
        let delta = self.pending_violations.swap(0, Ordering::Relaxed);
        let mut all: Vec<(&str, f64)> = Vec::with_capacity(signals.len() + 1);
        all.push(("breaker_violations_delta", delta as f64));
        all.extend_from_slice(signals);
        let (transitions, names) = {
            let mut engine = self.alerts.lock().unwrap_or_else(PoisonError::into_inner);
            let transitions = engine.evaluate(&all);
            (transitions, engine.rule_names())
        };
        for t in &transitions {
            let kind = if t.fired {
                FlightKind::AlertFired
            } else {
                FlightKind::AlertResolved
            };
            self.record_event(kind, t.rule as u64, t.eval, 0, t.value);
            if t.fired {
                let name = names.get(t.rule).map(String::as_str).unwrap_or("?");
                self.dump_flight(&format!("alert {name} fired"));
            }
        }
        transitions
    }

    /// `(fired_total, resolved_total)` alert transition counts.
    pub fn alert_counts(&self) -> (u64, u64) {
        let engine = self.alerts.lock().unwrap_or_else(PoisonError::into_inner);
        (engine.fired_total(), engine.resolved_total())
    }

    /// Names of currently-active alert rules.
    pub fn active_alerts(&self) -> Vec<String> {
        let engine = self.alerts.lock().unwrap_or_else(PoisonError::into_inner);
        let names = engine.rule_names();
        engine
            .active()
            .into_iter()
            .filter_map(|i| names.get(i).cloned())
            .collect()
    }

    /// Captures a postmortem dump of the whole flight ring. Returns the
    /// number of records captured.
    pub fn dump_flight(&self, reason: &str) -> usize {
        let jsonl = self.flight_jsonl(0);
        let records = jsonl.lines().count();
        let dump = FlightDump {
            ordinal: self.dump_ordinal.fetch_add(1, Ordering::Relaxed),
            ts_ms: self.sink.now_ms(),
            reason: reason.to_string(),
            records,
            jsonl,
        };
        let mut dumps = self.dumps.lock().unwrap_or_else(PoisonError::into_inner);
        dumps.push(dump);
        if dumps.len() > MAX_DUMPS {
            let excess = dumps.len() - MAX_DUMPS;
            dumps.drain(..excess);
        }
        records
    }

    /// The retained postmortem dumps, oldest first.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.dumps
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Total postmortem dumps captured (including evicted ones).
    pub fn dumps_total(&self) -> u64 {
        self.dump_ordinal.load(Ordering::Relaxed)
    }

    /// The most recent `n` flight records (0 = all held) as JSONL, with
    /// alert rule indices resolved to names.
    pub fn flight_jsonl(&self, n: usize) -> String {
        let names = self
            .alerts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .rule_names();
        self.flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .to_jsonl(n, &names)
    }

    /// The most recent `n` flight records (0 = all held), oldest first —
    /// the raw form of [`flight_jsonl`](Self::flight_jsonl) for callers
    /// (oracles, tests) that diff record bits instead of rendered text.
    pub fn flight_records(&self, n: usize) -> Vec<crate::flight::FlightRecord> {
        self.flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recent(n)
    }

    /// `(held, total, dropped)` flight ring occupancy counts.
    pub fn flight_counts(&self) -> (usize, u64, u64) {
        let flight = self.flight.lock().unwrap_or_else(PoisonError::into_inner);
        (flight.len(), flight.total(), flight.dropped())
    }

    /// The `/alerts` endpoint body.
    pub fn alerts_json(&self) -> String {
        self.alerts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .to_json()
    }

    /// The `/health` endpoint body: liveness plus headline counters.
    /// Status degrades to `"alerting"` while any alert is active.
    pub fn health_json(&self) -> String {
        let (fired, resolved) = self.alert_counts();
        let active = self.active_alerts().len();
        let (flight_len, flight_total, _) = self.flight_counts();
        let status = if active == 0 { "ok" } else { "alerting" };
        format!(
            "{{\"status\":\"{}\",\"uptime_ms\":{},\"batches\":{},\"events\":{},\"breaker_violations\":{},\"alerts_active\":{},\"alerts_fired_total\":{},\"alerts_resolved_total\":{},\"flight_records\":{},\"flight_total\":{},\"dumps\":{}}}",
            status,
            self.sink.now_ms().saturating_sub(self.started_ms),
            self.batches.load(Ordering::Relaxed),
            self.events.load(Ordering::Relaxed),
            self.breaker_violations.load(Ordering::Relaxed),
            active,
            fired,
            resolved,
            flight_len,
            flight_total,
            self.dumps_total(),
        )
    }

    /// The `/metrics` endpoint body (Prometheus text format).
    pub fn metrics_text(&self) -> String {
        self.sink.prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alerts::AlertRule;

    fn plane() -> LivePlane {
        LivePlane::new(
            Arc::new(RecordingSink::with_virtual_clock()),
            8,
            vec![AlertRule::above("hot", "t", 10.0, 5.0, 1)],
        )
    }

    #[test]
    fn breaker_violation_dumps_and_feeds_the_delta_signal() {
        let rules = vec![AlertRule::above(
            "breaker_budget_violation",
            "breaker_violations_delta",
            0.5,
            0.5,
            1,
        )];
        let plane = LivePlane::new(Arc::new(RecordingSink::with_virtual_clock()), 8, rules);
        plane.record_event(FlightKind::Committed, 0, 0, 2, 0.0);
        plane.note_breaker_violation(3, 950.0);
        assert_eq!(plane.breaker_violations(), 1);
        assert_eq!(plane.dumps_total(), 1, "violation captures a postmortem");
        let fired = plane.evaluate_alerts(&[]);
        assert_eq!(fired.len(), 1);
        assert!(fired[0].fired);
        // Second eval: delta reset to 0 → resolves, no re-fire.
        let next = plane.evaluate_alerts(&[]);
        assert_eq!(next.len(), 1);
        assert!(!next[0].fired);
        // One dump from the violation, one from the AlertFired.
        assert_eq!(plane.dumps_total(), 2);
        let dumps = plane.dumps();
        assert!(dumps[0].reason.contains("breaker-budget"));
        assert!(dumps[1].reason.contains("alert breaker_budget_violation"));
        assert!(dumps[1].jsonl.contains("\"kind\":\"breaker_violation\""));
    }

    #[test]
    fn alert_fired_records_into_flight_with_rule_name() {
        let plane = plane();
        let fired = plane.evaluate_alerts(&[("t", 50.0)]);
        assert_eq!(fired.len(), 1);
        let jsonl = plane.flight_jsonl(0);
        assert!(jsonl.contains("\"kind\":\"alert_fired\",\"rule\":\"hot\""));
        assert_eq!(plane.active_alerts(), vec!["hot".to_string()]);
        assert!(plane.health_json().contains("\"status\":\"alerting\""));
        plane.evaluate_alerts(&[("t", 1.0)]);
        assert!(plane.health_json().contains("\"status\":\"ok\""));
    }

    #[test]
    fn health_json_carries_counters() {
        let plane = plane();
        plane.note_batch();
        plane.record_event(FlightKind::Retired, 1, 0, 4, 0.0);
        let health = plane.health_json();
        assert!(health.contains("\"batches\":1"));
        assert!(health.contains("\"events\":1"));
        assert!(health.contains("\"flight_records\":1"));
    }
}
