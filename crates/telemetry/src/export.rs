//! Exporters: JSON-lines event logs and Prometheus text-format
//! snapshots.
//!
//! Both formats are hand-rolled (the crate is dependency-free) and
//! deterministic: events export in emission order, metrics in the
//! registry's canonical key order, and floats render through Rust's
//! shortest-roundtrip `Display` — the same bits always produce the same
//! text, which is what the golden tests pin.

use crate::registry::{MetricsRegistry, BUCKET_BOUNDS};
use crate::sink::{Event, FieldValue};

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a float as a JSON number (`null` for non-finite values,
/// which JSON cannot represent).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format_f64(v)
    } else {
        "null".to_string()
    }
}

/// Shortest-roundtrip float formatting (`Display` omits the fractional
/// part for integral floats; Prometheus and JSON both accept that).
fn format_f64(v: f64) -> String {
    format!("{v}")
}

/// Renders recorded events as JSON-lines: one event object per line.
///
/// ```text
/// {"ts_ms":0,"kind":"span_start","path":"place"}
/// {"ts_ms":5,"kind":"span_end","path":"place","duration_ms":4}
/// ```
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&format!(
            "{{\"ts_ms\":{},\"kind\":\"{}\",\"path\":\"{}\"",
            event.ts_ms,
            event.kind.label(),
            json_escape(&event.path)
        ));
        if let Some(d) = event.duration_ms {
            out.push_str(&format!(",\"duration_ms\":{d}"));
        }
        if !event.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (key, value)) in event.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let rendered = match value {
                    FieldValue::U64(v) => v.to_string(),
                    FieldValue::F64(v) => json_f64(*v),
                    FieldValue::Str(v) => format!("\"{}\"", json_escape(v)),
                    FieldValue::Bool(v) => v.to_string(),
                };
                out.push_str(&format!("\"{}\":{rendered}", json_escape(key)));
            }
            out.push('}');
        }
        out.push_str("}\n");
    }
    out
}

/// Renders a metric snapshot in the Prometheus text exposition format:
/// counters, then gauges, then histograms, each in canonical key order
/// with one `# TYPE` header per metric name.
pub fn registry_to_prometheus(registry: &MetricsRegistry) -> String {
    let mut out = String::new();

    let mut last_name = String::new();
    for (key, value) in registry.counters() {
        if key.name() != last_name {
            out.push_str(&format!("# TYPE {} counter\n", key.name()));
            last_name = key.name().to_string();
        }
        out.push_str(&format!(
            "{}{} {}\n",
            key.name(),
            key.label_block(None),
            value
        ));
    }

    last_name.clear();
    for (key, value) in registry.gauges() {
        if key.name() != last_name {
            out.push_str(&format!("# TYPE {} gauge\n", key.name()));
            last_name = key.name().to_string();
        }
        out.push_str(&format!(
            "{}{} {}\n",
            key.name(),
            key.label_block(None),
            format_f64(value)
        ));
    }

    last_name.clear();
    for (key, hist) in registry.histograms() {
        if key.name() != last_name {
            out.push_str(&format!("# TYPE {} histogram\n", key.name()));
            last_name = key.name().to_string();
        }
        let mut cumulative = 0u64;
        for (i, &count) in hist.bucket_counts().iter().enumerate() {
            cumulative += count;
            let le = if i < BUCKET_BOUNDS.len() {
                format_f64(BUCKET_BOUNDS[i])
            } else {
                "+Inf".to_string()
            };
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                key.name(),
                key.label_block(Some(("le", &le))),
                cumulative
            ));
        }
        out.push_str(&format!(
            "{}_sum{} {}\n",
            key.name(),
            key.label_block(None),
            format_f64(hist.sum())
        ));
        out.push_str(&format!(
            "{}_count{} {}\n",
            key.name(),
            key.label_block(None),
            hist.count()
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::EventKind;

    #[test]
    fn jsonl_escapes_and_orders() {
        let events = vec![
            Event {
                ts_ms: 0,
                kind: EventKind::SpanStart,
                path: "a\"b".to_string(),
                duration_ms: None,
                fields: Vec::new(),
            },
            Event {
                ts_ms: 1,
                kind: EventKind::Point,
                path: "a\"b/p".to_string(),
                duration_ms: None,
                fields: vec![
                    ("n".to_string(), FieldValue::U64(3)),
                    ("x".to_string(), FieldValue::F64(f64::NAN)),
                ],
            },
        ];
        let text = events_to_jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"ts_ms\":0,\"kind\":\"span_start\",\"path\":\"a\\\"b\"}"
        );
        assert!(lines[1].contains("\"fields\":{\"n\":3,\"x\":null}"));
    }

    #[test]
    fn prometheus_renders_all_metric_kinds() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("c_total", &[("k", "v")], 7);
        reg.gauge_set("g", &[], 2.5);
        reg.observe("h", &[], 0.5);
        reg.observe("h", &[], 2.0);
        let text = registry_to_prometheus(&reg);
        assert!(text.contains("# TYPE c_total counter\nc_total{k=\"v\"} 7\n"));
        assert!(text.contains("# TYPE g gauge\ng 2.5\n"));
        // 0.5 lands in the le="0.5"? No — bounds are decades: le="1".
        assert!(text.contains("h_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("h_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("h_sum 2.5\n"));
        assert!(text.contains("h_count 2\n"));
    }

    #[test]
    fn bucket_lines_are_cumulative() {
        let mut reg = MetricsRegistry::new();
        for v in [0.5, 0.5, 5.0, 5e7] {
            reg.observe("h", &[], v);
        }
        let text = registry_to_prometheus(&reg);
        let last: u64 = text
            .lines()
            .filter(|l| l.starts_with("h_bucket{le=\"+Inf\"}"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .next()
            .unwrap();
        assert_eq!(last, 4, "+Inf bucket carries the total count");
    }
}
