//! The metrics registry: counters, gauges, and fixed-bucket histograms.

use std::collections::BTreeMap;

/// Upper bounds of the fixed histogram buckets (an implicit `+Inf`
/// overflow bucket follows the last bound).
///
/// One decade per bucket from a microsecond/micro-watt up to a megawatt
/// covers every quantity the workspace observes — wall times in
/// milliseconds, per-step power in watts, score gains around one — with
/// bounded memory and without per-histogram configuration. Fixed bounds
/// keep merged shards structurally identical by construction.
pub const BUCKET_BOUNDS: [f64; 13] = [
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6,
];

/// A metric identity: name plus canonically sorted label pairs.
///
/// Two call sites naming the same labels in different orders address the
/// same metric, and `Ord` on the key pins the export order — exporters
/// iterate the registry's `BTreeMap`s, so snapshots are reproducible.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting labels canonically by label name.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sorted label pairs.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// Renders `{k="v",..}` (empty string when unlabeled), optionally
    /// with an extra trailing pair (the exporter's `le` bucket label).
    pub(crate) fn label_block(&self, extra: Option<(&str, &str)>) -> String {
        if self.labels.is_empty() && extra.is_none() {
            return String::new();
        }
        let mut pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        if let Some((k, v)) = extra {
            pairs.push(format!("{k}=\"{v}\""));
        }
        format!("{{{}}}", pairs.join(","))
    }
}

/// A fixed-bucket histogram.
///
/// Bucket counts are plain integer increments and the running sum
/// accumulates in fixed-point micro-units, so observations arriving from
/// parallel workers in any order produce the same histogram — the
/// determinism-across-thread-counts contract. Non-finite observations
/// land in the overflow bucket and are excluded from the sum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_micros: i64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: vec![0; BUCKET_BOUNDS.len() + 1],
            total: 0,
            sum_micros: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.counts[idx] += 1;
        self.total += 1;
        if value.is_finite() {
            // Saturating: one absurd observation (e.g. an effectively
            // unbounded budget headroom) must not wrap the run's sum.
            self.sum_micros = self.sum_micros.saturating_add((value * 1e6).round() as i64);
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of finite observations (micro-unit fixed-point resolution).
    pub fn sum(&self) -> f64 {
        self.sum_micros as f64 / 1e6
    }

    /// Mean of finite observations; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum() / self.total as f64
        }
    }

    /// Per-bucket counts; the last entry is the `+Inf` overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (acc, v) in self.counts.iter_mut().zip(&other.counts) {
            *acc += v;
        }
        self.total += other.total;
        self.sum_micros += other.sum_micros;
    }
}

/// An in-memory collection of counters, gauges, and histograms.
///
/// All maps are `BTreeMap`s keyed by [`MetricKey`], so iteration — and
/// therefore every export — happens in one canonical order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `delta` to a counter.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self
            .counters
            .entry(MetricKey::new(name, labels))
            .or_insert(0) += delta;
    }

    /// Sets a gauge to `value`.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauges.insert(MetricKey::new(name, labels), value);
    }

    /// Records one histogram observation.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.histograms
            .entry(MetricKey::new(name, labels))
            .or_default()
            .observe(value);
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&MetricKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&MetricKey::new(name, labels)).copied()
    }

    /// A recorded histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(&MetricKey::new(name, labels))
    }

    /// All counters in canonical key order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// All gauges in canonical key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricKey, f64)> {
        self.gauges.iter().map(|(k, &v)| (k, v))
    }

    /// All histograms in canonical key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricKey, &Histogram)> {
        self.histograms.iter()
    }

    /// Merges another registry (a per-worker shard) into this one:
    /// counters add, histograms merge bucket-wise, and gauges take the
    /// other registry's value. Merging shards **in canonical shard
    /// order** makes the combined registry independent of how the shards
    /// were scheduled — the same discipline `so-parallel` uses for its
    /// chunked floating-point reductions.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (key, &delta) in &other.counters {
            *self.counters.entry(key.clone()).or_insert(0) += delta;
        }
        for (key, &value) in &other.gauges {
            self.gauges.insert(key.clone(), value);
        }
        for (key, hist) in &other.histograms {
            self.histograms.entry(key.clone()).or_default().merge(hist);
        }
    }

    /// Folds per-worker shards into one registry, in the order given.
    pub fn merge_shards(shards: impl IntoIterator<Item = MetricsRegistry>) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        for shard in shards {
            merged.merge_from(&shard);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_order_is_canonicalized() {
        let a = MetricKey::new("m", &[("b", "2"), ("a", "1")]);
        let b = MetricKey::new("m", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.label_block(None), "{a=\"1\",b=\"2\"}");
    }

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("c", &[], 2);
        reg.counter_add("c", &[], 3);
        assert_eq!(reg.counter("c", &[]), 5);
        assert_eq!(reg.counter("missing", &[]), 0);
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let mut h = Histogram::default();
        for v in [0.5e-6, 0.5, 5.0, 1e9, f64::NAN] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 5);
        // NaN and 1e9 both land in the overflow bucket.
        assert_eq!(h.bucket_counts()[BUCKET_BOUNDS.len()], 2);
        // The sum skips the non-finite observation.
        assert!((h.sum() - (0.5e-6 + 0.5 + 5.0 + 1e9)).abs() < 1.0);
    }

    #[test]
    fn shard_merge_is_order_independent_for_commutative_metrics() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", &[], 1);
        a.observe("h", &[], 0.5);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", &[], 2);
        b.observe("h", &[], 50.0);

        let ab = MetricsRegistry::merge_shards([a.clone(), b.clone()]);
        let ba = MetricsRegistry::merge_shards([b, a]);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c", &[]), 3);
        assert_eq!(ab.histogram("h", &[]).unwrap().count(), 2);
    }
}
