//! Human-readable run reports rendered from a metric snapshot.

use crate::registry::MetricsRegistry;

/// The report section a metric belongs to: the first component of its
/// name after the `so_` prefix (`so_placement_runs_total` → section
/// `placement`; names without the prefix group under `other`).
fn section_of(name: &str) -> &str {
    let rest = name.strip_prefix("so_").unwrap_or(name);
    match rest.split('_').next() {
        Some(head) if !head.is_empty() => head,
        _ => "other",
    }
}

fn key_line(name: &str, labels: String) -> String {
    format!("{name}{labels}")
}

/// Renders a metric snapshot as a human-readable run summary, grouped
/// into per-subsystem sections (placement, remap, sim, drift, …) in
/// deterministic order. This is what `smoothop report` prints.
pub fn render_report(registry: &MetricsRegistry) -> String {
    if registry.is_empty() {
        return "telemetry run report: no metrics recorded\n".to_string();
    }

    // (section, rendered line) triples, collected then grouped.
    let mut lines: Vec<(String, String)> = Vec::new();
    for (key, value) in registry.counters() {
        lines.push((
            section_of(key.name()).to_string(),
            format!(
                "{:<56} {value}",
                key_line(key.name(), key.label_block(None))
            ),
        ));
    }
    for (key, value) in registry.gauges() {
        lines.push((
            section_of(key.name()).to_string(),
            format!(
                "{:<56} {value:.4}",
                key_line(key.name(), key.label_block(None))
            ),
        ));
    }
    for (key, hist) in registry.histograms() {
        lines.push((
            section_of(key.name()).to_string(),
            format!(
                "{:<56} count={} sum={:.3} mean={:.3}",
                key_line(key.name(), key.label_block(None)),
                hist.count(),
                hist.sum(),
                hist.mean()
            ),
        ));
    }

    let mut sections: Vec<String> = lines.iter().map(|(s, _)| s.clone()).collect();
    sections.sort();
    sections.dedup();

    let mut out = String::from("telemetry run report\n====================\n");
    for section in sections {
        out.push_str(&format!("\n[{section}]\n"));
        for (s, line) in &lines {
            if *s == section {
                out.push_str(&format!("  {line}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_groups_by_subsystem() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("so_remap_swaps_accepted_total", &[], 4);
        reg.gauge_set(
            "so_placement_sum_of_peaks_watts",
            &[("level", "rack")],
            10.5,
        );
        reg.observe("so_sim_step_power_watts", &[], 120.0);
        let text = render_report(&reg);
        let placement = text.find("[placement]").unwrap();
        let remap = text.find("[remap]").unwrap();
        let sim = text.find("[sim]").unwrap();
        assert!(placement < remap && remap < sim, "sections sort: {text}");
        assert!(text.contains("so_remap_swaps_accepted_total"));
        assert!(text.contains("level=\"rack\""));
        assert!(text.contains("count=1"));
    }

    #[test]
    fn empty_registry_reports_cleanly() {
        assert!(render_report(&MetricsRegistry::new()).contains("no metrics recorded"));
    }
}
