//! Hierarchical timed spans.

use std::cell::RefCell;

use crate::sink::{with_active, EventKind};

thread_local! {
    /// The open span names on this thread, root first.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// The current span path joined with `/`, with `name` appended.
pub(crate) fn current_path_with(name: &str) -> String {
    SPAN_STACK.with(|stack| {
        let stack = stack.borrow();
        if stack.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", stack.join("/"), name)
        }
    })
}

/// Opens a timed span; the returned guard closes it on drop.
///
/// While a sink is installed, the span emits a `span_start` event
/// immediately and a `span_end` event with its duration when dropped,
/// and nests under any span already open on this thread (the path is
/// `/`-joined). With no sink installed this is free: the guard holds
/// nothing and drop does nothing.
///
/// Spans are thread-local; open and close them from serial
/// orchestration code, not inside `par_map` workers (worker threads
/// would each start their own root, and event order would depend on
/// scheduling — see the crate-level determinism contract).
pub fn span(name: &str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { active: None };
    }
    let path = current_path_with(name);
    SPAN_STACK.with(|stack| stack.borrow_mut().push(name.to_string()));
    let start_ms = with_active(|sink| {
        let start = sink.now_ms();
        sink.emit(EventKind::SpanStart, &path, None, &[]);
        start
    })
    .unwrap_or(0);
    SpanGuard {
        active: Some(OpenSpan { path, start_ms }),
    }
}

#[derive(Debug)]
struct OpenSpan {
    path: String,
    start_ms: u64,
}

/// Guard for an open [`span`]; closes the span when dropped.
#[derive(Debug)]
#[must_use = "a span closes when its guard drops; bind it with `let _span = ...`"]
pub struct SpanGuard {
    active: Option<OpenSpan>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.active.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        with_active(|sink| {
            let duration = sink.now_ms().saturating_sub(open.start_ms);
            sink.emit(EventKind::SpanEnd, &open.path, Some(duration), &[]);
        });
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::sink::{with_sink, RecordingSink};

    #[test]
    fn spans_nest_and_time() {
        let sink = Arc::new(RecordingSink::with_virtual_clock());
        with_sink(sink.clone(), || {
            let _outer = span("outer");
            let _inner = span("inner");
        });
        let events = sink.events();
        let paths: Vec<(&str, EventKind)> =
            events.iter().map(|e| (e.path.as_str(), e.kind)).collect();
        assert_eq!(
            paths,
            vec![
                ("outer", EventKind::SpanStart),
                ("outer/inner", EventKind::SpanStart),
                ("outer/inner", EventKind::SpanEnd),
                ("outer", EventKind::SpanEnd),
            ]
        );
        // Virtual clock: every reading ticks once, so durations are exact.
        assert!(events[2].duration_ms.is_some());
        assert!(events[3].duration_ms >= events[2].duration_ms);
    }

    #[test]
    fn disabled_span_is_inert() {
        let _span = span("nobody-listening");
        // No sink: the stack must stay empty so later spans root correctly.
        SPAN_STACK.with(|stack| assert!(stack.borrow().is_empty()));
    }
}
