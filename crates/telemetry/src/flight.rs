//! Bounded flight recorder: a fixed-capacity ring buffer of recent
//! engine events, dumpable as JSONL for postmortems.
//!
//! The recorder is the observability plane's black box. Producers push
//! [`FlightRecord`]s — plain-old-data mirrors of the online engine's
//! journal events plus alert transitions — into a preallocated ring.
//! Once the ring reaches capacity every push overwrites the oldest
//! record in place, so the steady state allocates nothing and the memory
//! footprint is fixed at construction time. When an anomaly fires
//! (breaker-budget violation, alert transition, oracle failure) the last
//! N records are rendered to JSON-lines and shipped with the report.
//!
//! Records are engine-agnostic on purpose: this crate sits at the bottom
//! of the workspace dependency graph, so the engine encodes its
//! `EventRecord`s into the generic `(kind, a, b, c, value)` payload and
//! decodes them back on the oracle side. The JSONL dump names the payload
//! slots per kind (`slot`/`ordinal`/`rack`/…) so postmortems read
//! naturally without the decoder.

use crate::export::{json_escape, json_f64};

/// What kind of moment a [`FlightRecord`] captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// An arrival was committed onto a rack (`a`=slot, `b`=ordinal,
    /// `c`=rack).
    Committed,
    /// An arrival was rejected (`b`=ordinal).
    Rejected,
    /// A live instance was retired (`a`=slot, `c`=rack).
    Retired,
    /// Repair moved a live instance between racks (`a`=slot, `b`=from
    /// rack, `c`=to rack).
    Moved,
    /// A journal-compaction checkpoint pinning one live slot (`a`=slot,
    /// `c`=rack).
    Checkpoint,
    /// An alert rule transitioned to firing (`a`=rule index,
    /// `b`=evaluation index, `value`=measured signal).
    AlertFired,
    /// An alert rule transitioned back to resolved (`a`=rule index,
    /// `b`=evaluation index, `value`=measured signal).
    AlertResolved,
    /// An admission was rejected by a breaker budget while a slot was
    /// free (`b`=ordinal, `value`=candidate peak watts).
    BreakerViolation,
}

impl FlightKind {
    /// Stable lowercase label used by the JSONL dump.
    pub fn label(self) -> &'static str {
        match self {
            FlightKind::Committed => "committed",
            FlightKind::Rejected => "rejected",
            FlightKind::Retired => "retired",
            FlightKind::Moved => "moved",
            FlightKind::Checkpoint => "checkpoint",
            FlightKind::AlertFired => "alert_fired",
            FlightKind::AlertResolved => "alert_resolved",
            FlightKind::BreakerViolation => "breaker_violation",
        }
    }

    /// True for kinds that mirror an engine journal event (the subset
    /// the replay oracle compares against the journal suffix).
    pub fn is_journal_event(self) -> bool {
        matches!(
            self,
            FlightKind::Committed
                | FlightKind::Rejected
                | FlightKind::Retired
                | FlightKind::Moved
                | FlightKind::Checkpoint
        )
    }
}

/// One recorded moment. Plain old data (`Copy`), so ring writes are a
/// store, never an allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightRecord {
    /// Monotone sequence number over the recorder's lifetime (assigned
    /// by [`FlightRecorder::record`]; survives ring wrap, so dumps show
    /// how much history was overwritten).
    pub seq: u64,
    /// Milliseconds since the owning clock's origin.
    pub ts_ms: u64,
    /// What happened.
    pub kind: FlightKind,
    /// First payload slot (meaning depends on `kind`; see [`FlightKind`]).
    pub a: u64,
    /// Second payload slot.
    pub b: u64,
    /// Third payload slot.
    pub c: u64,
    /// Float payload (signal value for alerts, candidate watts for
    /// breaker violations; 0.0 otherwise).
    pub value: f64,
}

/// Fixed-capacity ring buffer of [`FlightRecord`]s.
///
/// The backing storage is reserved up front; after the ring fills, every
/// [`record`](FlightRecorder::record) overwrites the oldest entry in
/// place — zero allocation in steady state.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: Vec<FlightRecord>,
    capacity: usize,
    head: usize,
    seq: u64,
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` records
    /// (`capacity` is clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            ring: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            seq: 0,
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total records ever pushed (including overwritten ones).
    pub fn total(&self) -> u64 {
        self.seq
    }

    /// Records lost to ring wrap.
    pub fn dropped(&self) -> u64 {
        self.seq - self.ring.len() as u64
    }

    /// Pushes one record, overwriting the oldest when full. Returns the
    /// assigned sequence number.
    pub fn record(
        &mut self,
        ts_ms: u64,
        kind: FlightKind,
        a: u64,
        b: u64,
        c: u64,
        value: f64,
    ) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        let record = FlightRecord {
            seq,
            ts_ms,
            kind,
            a,
            b,
            c,
            value,
        };
        if self.ring.len() < self.capacity {
            self.ring.push(record);
        } else {
            self.ring[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
        }
        seq
    }

    /// The most recent `n` records, oldest first (`n == 0` means all
    /// currently held).
    pub fn recent(&self, n: usize) -> Vec<FlightRecord> {
        let held = self.ring.len();
        let take = if n == 0 { held } else { n.min(held) };
        let mut out = Vec::with_capacity(take);
        // Oldest record sits at `head` once the ring has wrapped, at 0
        // before that (head stays 0 until the first overwrite).
        let start = held - take;
        for i in 0..take {
            let idx = (self.head + start + i) % held.max(1);
            out.push(self.ring[idx]);
        }
        out
    }

    /// Renders the most recent `n` records (0 = all) as JSON-lines,
    /// naming payload slots per kind and resolving alert rule indices
    /// through `rule_names` when provided.
    pub fn to_jsonl(&self, n: usize, rule_names: &[String]) -> String {
        let mut out = String::new();
        for record in self.recent(n) {
            out.push_str(&render_record(&record, rule_names));
            out.push('\n');
        }
        out
    }
}

/// Renders one record as a single JSON object line.
fn render_record(record: &FlightRecord, rule_names: &[String]) -> String {
    let mut line = format!(
        "{{\"seq\":{},\"ts_ms\":{},\"kind\":\"{}\"",
        record.seq,
        record.ts_ms,
        record.kind.label()
    );
    match record.kind {
        FlightKind::Committed => {
            line.push_str(&format!(
                ",\"slot\":{},\"ordinal\":{},\"rack\":{}",
                record.a, record.b, record.c
            ));
        }
        FlightKind::Rejected => {
            line.push_str(&format!(",\"ordinal\":{}", record.b));
        }
        FlightKind::Retired | FlightKind::Checkpoint => {
            line.push_str(&format!(",\"slot\":{},\"rack\":{}", record.a, record.c));
        }
        FlightKind::Moved => {
            line.push_str(&format!(
                ",\"slot\":{},\"from\":{},\"to\":{}",
                record.a, record.b, record.c
            ));
        }
        FlightKind::AlertFired | FlightKind::AlertResolved => {
            let rule = rule_names
                .get(record.a as usize)
                .map(|name| format!("\"{}\"", json_escape(name)))
                .unwrap_or_else(|| record.a.to_string());
            line.push_str(&format!(
                ",\"rule\":{rule},\"eval\":{},\"value\":{}",
                record.b,
                json_f64(record.value)
            ));
        }
        FlightKind::BreakerViolation => {
            line.push_str(&format!(
                ",\"ordinal\":{},\"value\":{}",
                record.b,
                json_f64(record.value)
            ));
        }
    }
    line.push('}');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_keeps_seq() {
        let mut rec = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            rec.record(i, FlightKind::Committed, i, i, i, 0.0);
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.total(), 5);
        assert_eq!(rec.dropped(), 2);
        let recent = rec.recent(0);
        assert_eq!(
            recent.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest-first order survives wrap"
        );
        let last_two = rec.recent(2);
        assert_eq!(
            last_two.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![3, 4]
        );
    }

    #[test]
    fn steady_state_does_not_grow_the_ring() {
        let mut rec = FlightRecorder::with_capacity(4);
        for i in 0..100u64 {
            rec.record(i, FlightKind::Retired, i, 0, 0, 0.0);
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.capacity(), 4);
        assert!(rec.ring.capacity() >= 4);
        assert_eq!(rec.total(), 100);
    }

    #[test]
    fn jsonl_names_payload_slots_per_kind() {
        let mut rec = FlightRecorder::with_capacity(8);
        rec.record(1, FlightKind::Committed, 7, 3, 2, 0.0);
        rec.record(2, FlightKind::Rejected, 0, 9, 0, 0.0);
        rec.record(3, FlightKind::Moved, 7, 2, 5, 0.0);
        rec.record(4, FlightKind::AlertFired, 0, 11, 0, 1.5);
        rec.record(5, FlightKind::BreakerViolation, 0, 12, 0, 900.0);
        let names = vec!["breaker_budget_violation".to_string()];
        let text = rec.to_jsonl(0, &names);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(
            lines[0],
            "{\"seq\":0,\"ts_ms\":1,\"kind\":\"committed\",\"slot\":7,\"ordinal\":3,\"rack\":2}"
        );
        assert_eq!(
            lines[1],
            "{\"seq\":1,\"ts_ms\":2,\"kind\":\"rejected\",\"ordinal\":9}"
        );
        assert_eq!(
            lines[2],
            "{\"seq\":2,\"ts_ms\":3,\"kind\":\"moved\",\"slot\":7,\"from\":2,\"to\":5}"
        );
        assert_eq!(
            lines[3],
            "{\"seq\":3,\"ts_ms\":4,\"kind\":\"alert_fired\",\"rule\":\"breaker_budget_violation\",\"eval\":11,\"value\":1.5}"
        );
        assert_eq!(
            lines[4],
            "{\"seq\":4,\"ts_ms\":5,\"kind\":\"breaker_violation\",\"ordinal\":12,\"value\":900}"
        );
    }

    #[test]
    fn zero_n_dumps_everything_and_large_n_clamps() {
        let mut rec = FlightRecorder::with_capacity(2);
        rec.record(0, FlightKind::Retired, 1, 0, 4, 0.0);
        assert_eq!(rec.recent(10).len(), 1);
        assert_eq!(rec.to_jsonl(0, &[]).lines().count(), 1);
    }
}
