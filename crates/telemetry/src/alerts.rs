//! Declarative alert engine: threshold, burn-rate, and drift rules with
//! hysteresis, evaluated incrementally once per event batch.
//!
//! The engine is a pure deterministic state machine: feed it one named
//! signal snapshot per evaluation ([`AlertEngine::evaluate`]) and it
//! returns the [`AlertTransition`]s that snapshot caused. Nothing inside
//! reads a clock, a thread id, or the process-global sink state for its
//! *decisions*, so alert streams are bit-identical at any thread count —
//! the caller drives evaluation from a serial orchestration point (the
//! online engine's per-batch hook) and the signals themselves are
//! thread-count-independent resident aggregates.
//!
//! Hysteresis has two knobs per rule: `for_evals` (the breach streak
//! required before firing — suppresses one-sample blips) and the
//! `fire_at`/`resolve_at` threshold pair (a rule that fired stays active
//! until the measure crosses `resolve_at`, so a signal hovering at the
//! fire threshold produces one alert, not one per evaluation).
//!
//! Rule windows are preallocated rings: steady-state evaluation
//! allocates only the (small, bounded) transition vector it returns.

use crate::export::json_escape;
use crate::sink::{counter_add, gauge_set};

/// How a rule turns its signal window into a breach decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlertKind {
    /// Breach while the latest sample is above `fire_at`; resolve once
    /// it is at or below `resolve_at` (`resolve_at ≤ fire_at`).
    Above,
    /// Breach while the latest sample is below `fire_at`; resolve once
    /// it is at or above `resolve_at` (`resolve_at ≥ fire_at`).
    Below,
    /// Burn rate: mean of the last `fast` samples divided by the mean of
    /// the last `slow` samples (`fast < slow`). Breach above `fire_at`,
    /// resolve at or below `resolve_at`. Undefined (skipped) until
    /// `slow` samples have arrived or while the slow mean is ~0.
    BurnRate {
        /// Fast window length in evaluations.
        fast: usize,
        /// Slow window length in evaluations (must exceed `fast`).
        slow: usize,
    },
    /// Drift: absolute deviation of the latest sample from the mean of
    /// the preceding `window` samples. Breach above `fire_at`, resolve
    /// at or below `resolve_at`. Undefined until `window + 1` samples
    /// have arrived.
    Drift {
        /// Baseline window length in evaluations.
        window: usize,
    },
}

impl AlertKind {
    /// Samples of history the rule needs to hold.
    fn window_len(&self) -> usize {
        match *self {
            AlertKind::Above | AlertKind::Below => 1,
            AlertKind::BurnRate { slow, .. } => slow.max(2),
            AlertKind::Drift { window } => window.max(1) + 1,
        }
    }
}

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Stable rule name (appears in transitions, dumps, and metrics).
    pub name: String,
    /// The signal key the rule watches (see [`AlertEngine::evaluate`]).
    pub signal: String,
    /// How the measure is computed from the signal window.
    pub kind: AlertKind,
    /// Measure threshold that arms the breach streak.
    pub fire_at: f64,
    /// Measure threshold that resolves an active alert.
    pub resolve_at: f64,
    /// Consecutive breached evaluations required before firing (clamped
    /// to at least 1).
    pub for_evals: u32,
}

impl AlertRule {
    /// Convenience constructor for a simple `Above` threshold rule.
    pub fn above(name: &str, signal: &str, fire_at: f64, resolve_at: f64, for_evals: u32) -> Self {
        Self {
            name: name.to_string(),
            signal: signal.to_string(),
            kind: AlertKind::Above,
            fire_at,
            resolve_at,
            for_evals,
        }
    }
}

/// One journaled alert state change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertTransition {
    /// Index of the rule (into [`AlertEngine::rules`]).
    pub rule: usize,
    /// Evaluation index (0-based) at which the transition happened.
    pub eval: u64,
    /// `true` for `AlertFired`, `false` for `AlertResolved`.
    pub fired: bool,
    /// The rule's computed measure at the transition.
    pub value: f64,
}

/// Per-rule runtime state: a preallocated sample ring plus the
/// hysteresis counters.
#[derive(Debug, Clone)]
struct RuleState {
    window: Vec<f64>,
    head: usize,
    filled: usize,
    streak: u32,
    active: bool,
}

impl RuleState {
    fn new(window_len: usize) -> Self {
        Self {
            window: vec![0.0; window_len],
            head: 0,
            filled: 0,
            streak: 0,
            active: false,
        }
    }

    fn push(&mut self, value: f64) {
        self.window[self.head] = value;
        self.head = (self.head + 1) % self.window.len();
        self.filled = (self.filled + 1).min(self.window.len());
    }

    /// Mean of the most recent `n` samples (`n ≤ filled`), accumulated
    /// newest-to-oldest in a fixed order for bit-stable results.
    fn tail_mean(&self, n: usize) -> f64 {
        let len = self.window.len();
        let mut sum = 0.0;
        for i in 0..n {
            let idx = (self.head + len - 1 - i) % len;
            sum += self.window[idx];
        }
        sum / n as f64
    }

    /// The most recent sample.
    fn latest(&self) -> f64 {
        let len = self.window.len();
        self.window[(self.head + len - 1) % len]
    }

    /// Mean of the `window`-sized baseline preceding the latest sample.
    fn baseline_mean(&self, window: usize) -> f64 {
        let len = self.window.len();
        let mut sum = 0.0;
        for i in 1..=window {
            let idx = (self.head + len - 1 - i) % len;
            sum += self.window[idx];
        }
        sum / window as f64
    }
}

/// Upper bound on the retained transition journal; older entries are
/// discarded (transitions are rare, so in practice this never trips on
/// a healthy fleet — it is a leak bound for the pathological case).
const MAX_JOURNAL: usize = 1024;

/// The alert engine: a set of rules plus their evaluation state.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    evals: u64,
    journal: Vec<AlertTransition>,
    journal_dropped: u64,
    fired_total: u64,
    resolved_total: u64,
}

impl AlertEngine {
    /// An engine over `rules` with all alerts initially resolved.
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let states = rules
            .iter()
            .map(|rule| RuleState::new(rule.kind.window_len()))
            .collect();
        Self {
            rules,
            states,
            evals: 0,
            journal: Vec::new(),
            journal_dropped: 0,
            fired_total: 0,
            resolved_total: 0,
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Rule names in rule order (for resolving flight-record indices).
    pub fn rule_names(&self) -> Vec<String> {
        self.rules.iter().map(|r| r.name.clone()).collect()
    }

    /// Evaluations performed so far.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Total `AlertFired` transitions so far.
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Total `AlertResolved` transitions so far.
    pub fn resolved_total(&self) -> u64 {
        self.resolved_total
    }

    /// Indices of currently-active (fired, unresolved) rules.
    pub fn active(&self) -> Vec<usize> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.active)
            .map(|(i, _)| i)
            .collect()
    }

    /// The retained transition journal, oldest first.
    pub fn journal(&self) -> &[AlertTransition] {
        &self.journal
    }

    /// Evaluates every rule against one signal snapshot and returns the
    /// transitions this evaluation caused.
    ///
    /// `signals` is a list of `(key, value)` pairs; a rule whose signal
    /// key is absent is skipped this round (its window and streak are
    /// untouched). Rules are evaluated in declaration order and the
    /// whole pass is pure state-machine arithmetic, so transition
    /// streams are bit-identical for identical signal streams.
    pub fn evaluate(&mut self, signals: &[(&str, f64)]) -> Vec<AlertTransition> {
        let eval = self.evals;
        self.evals += 1;
        let mut transitions = Vec::new();
        for (index, rule) in self.rules.iter().enumerate() {
            let Some(&(_, value)) = signals.iter().find(|(key, _)| *key == rule.signal) else {
                continue;
            };
            let state = &mut self.states[index];
            state.push(value);
            let Some(measure) = measure(rule, state) else {
                continue;
            };
            let (breach, clear) = match rule.kind {
                AlertKind::Below => (measure < rule.fire_at, measure >= rule.resolve_at),
                _ => (measure > rule.fire_at, measure <= rule.resolve_at),
            };
            if state.active {
                if clear {
                    state.active = false;
                    state.streak = 0;
                    transitions.push(AlertTransition {
                        rule: index,
                        eval,
                        fired: false,
                        value: measure,
                    });
                }
            } else if breach {
                state.streak += 1;
                if state.streak >= rule.for_evals.max(1) {
                    state.active = true;
                    state.streak = 0;
                    transitions.push(AlertTransition {
                        rule: index,
                        eval,
                        fired: true,
                        value: measure,
                    });
                }
            } else {
                state.streak = 0;
            }
        }
        for transition in &transitions {
            let name = &self.rules[transition.rule].name;
            if transition.fired {
                self.fired_total += 1;
                counter_add("so_alerts_fired_total", &[("rule", name)], 1);
            } else {
                self.resolved_total += 1;
                counter_add("so_alerts_resolved_total", &[("rule", name)], 1);
            }
        }
        if !transitions.is_empty() {
            gauge_set(
                "so_alerts_active",
                &[],
                self.states.iter().filter(|s| s.active).count() as f64,
            );
        }
        self.journal.extend_from_slice(&transitions);
        if self.journal.len() > MAX_JOURNAL {
            let excess = self.journal.len() - MAX_JOURNAL;
            self.journal.drain(..excess);
            self.journal_dropped += excess as u64;
        }
        transitions
    }

    /// Renders the engine state as one JSON object (the `/alerts`
    /// endpoint body): totals, active rules, and the journal tail.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"evals\":{},\"fired_total\":{},\"resolved_total\":{},\"journal_dropped\":{}",
            self.evals, self.fired_total, self.resolved_total, self.journal_dropped
        );
        out.push_str(",\"active\":[");
        for (i, index) in self.active().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json_escape(&self.rules[*index].name)));
        }
        out.push_str("],\"journal\":[");
        for (i, t) in self.journal.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"eval\":{},\"fired\":{},\"value\":{}}}",
                json_escape(&self.rules[t.rule].name),
                t.eval,
                t.fired,
                crate::export::json_f64(t.value)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Computes a rule's measure from its window, or `None` while the
/// window is not yet warm enough to define one.
fn measure(rule: &AlertRule, state: &RuleState) -> Option<f64> {
    match rule.kind {
        AlertKind::Above | AlertKind::Below => Some(state.latest()),
        AlertKind::BurnRate { fast, slow } => {
            let fast = fast.max(1);
            let slow = slow.max(fast + 1);
            if state.filled < slow {
                return None;
            }
            let slow_mean = state.tail_mean(slow);
            if slow_mean.abs() < f64::EPSILON {
                return None;
            }
            Some(state.tail_mean(fast) / slow_mean)
        }
        AlertKind::Drift { window } => {
            let window = window.max(1);
            if state.filled < window + 1 {
                return None;
            }
            Some((state.latest() - state.baseline_mean(window)).abs())
        }
    }
}

/// The default rule set the online engine's observability plane runs
/// with: breaker-budget violations, rejection-rate spikes, root-power
/// burn rate, asynchrony drift, and rack-level fragmentation pressure.
///
/// Signal keys match what `OnlineFleet::observe_batch` publishes; a rule
/// whose signal the caller never publishes simply stays quiet.
pub fn default_online_rules() -> Vec<AlertRule> {
    vec![
        // Any breaker-budget violation in the batch fires immediately
        // (delta signal: violations since the previous evaluation); it
        // resolves on the first clean batch.
        AlertRule::above(
            "breaker_budget_violation",
            "breaker_violations_delta",
            0.5,
            0.5,
            1,
        ),
        // More than half of a batch's arrivals bounced.
        AlertRule::above("rejection_rate_spike", "batch_rejection_rate", 0.5, 0.1, 1),
        // Root draw growing ≥ 15% faster over the fast window than the
        // slow baseline — headroom is burning down.
        AlertRule {
            name: "headroom_burn_rate".to_string(),
            signal: "root_power_watts".to_string(),
            kind: AlertKind::BurnRate { fast: 2, slow: 8 },
            fire_at: 1.15,
            resolve_at: 1.05,
            for_evals: 1,
        },
        // Mean rack asynchrony drifting from its rolling baseline —
        // placement quality is degrading as load shifts.
        AlertRule {
            name: "asynchrony_drift".to_string(),
            signal: "mean_rack_asynchrony".to_string(),
            kind: AlertKind::Drift { window: 8 },
            fire_at: 0.25,
            resolve_at: 0.10,
            for_evals: 2,
        },
        // Nearly all remaining rack headroom is stranded behind full
        // slots or breaker-bound paths.
        AlertRule::above(
            "rack_fragmentation",
            "fragmentation_ratio_rack",
            0.9,
            0.75,
            2,
        ),
    ]
}

/// An `Above` rule on a per-level stranded-watts signal
/// (`stranded_watts_<level>`), for callers that know their budget scale.
pub fn stranded_watts_rule(level: &str, fire_at_watts: f64) -> AlertRule {
    AlertRule::above(
        &format!("stranded_watts_{level}"),
        &format!("stranded_watts_{level}"),
        fire_at_watts,
        fire_at_watts * 0.8,
        2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn above(fire: f64, resolve: f64, for_evals: u32) -> AlertEngine {
        AlertEngine::new(vec![AlertRule::above("r", "s", fire, resolve, for_evals)])
    }

    #[test]
    fn fires_once_with_hysteresis_then_resolves() {
        let mut engine = above(10.0, 5.0, 2);
        assert!(engine.evaluate(&[("s", 12.0)]).is_empty(), "streak 1 of 2");
        let fired = engine.evaluate(&[("s", 13.0)]);
        assert_eq!(fired.len(), 1);
        assert!(fired[0].fired);
        // Hovering above fire_at and dipping between resolve_at and
        // fire_at must NOT re-fire or resolve.
        assert!(engine.evaluate(&[("s", 14.0)]).is_empty());
        assert!(engine.evaluate(&[("s", 7.0)]).is_empty());
        assert_eq!(engine.active(), vec![0]);
        let resolved = engine.evaluate(&[("s", 4.0)]);
        assert_eq!(resolved.len(), 1);
        assert!(!resolved[0].fired);
        assert!(engine.active().is_empty());
        assert_eq!(engine.fired_total(), 1);
        assert_eq!(engine.resolved_total(), 1);
    }

    #[test]
    fn streak_resets_on_a_clean_sample() {
        let mut engine = above(10.0, 5.0, 3);
        engine.evaluate(&[("s", 12.0)]);
        engine.evaluate(&[("s", 12.0)]);
        engine.evaluate(&[("s", 1.0)]); // streak broken
        engine.evaluate(&[("s", 12.0)]);
        assert!(engine.evaluate(&[("s", 12.0)]).is_empty(), "streak only 2");
        assert_eq!(engine.evaluate(&[("s", 12.0)]).len(), 1);
    }

    #[test]
    fn below_rule_uses_inverted_thresholds() {
        let mut engine = AlertEngine::new(vec![AlertRule {
            name: "low".to_string(),
            signal: "s".to_string(),
            kind: AlertKind::Below,
            fire_at: 2.0,
            resolve_at: 3.0,
            for_evals: 1,
        }]);
        assert_eq!(engine.evaluate(&[("s", 1.0)]).len(), 1);
        assert!(
            engine.evaluate(&[("s", 2.5)]).is_empty(),
            "between thresholds"
        );
        assert_eq!(engine.evaluate(&[("s", 3.5)]).len(), 1);
    }

    #[test]
    fn burn_rate_needs_a_warm_window_and_detects_growth() {
        let mut engine = AlertEngine::new(vec![AlertRule {
            name: "burn".to_string(),
            signal: "p".to_string(),
            kind: AlertKind::BurnRate { fast: 1, slow: 4 },
            fire_at: 1.3,
            resolve_at: 1.05,
            for_evals: 1,
        }]);
        // Flat stream: warm but never breaches.
        for _ in 0..6 {
            assert!(engine.evaluate(&[("p", 100.0)]).is_empty());
        }
        // Step growth: fast mean pulls ahead of the slow baseline.
        let fired = engine.evaluate(&[("p", 300.0)]);
        assert_eq!(fired.len(), 1, "300/(mean of 100,100,100,300) > 1.3");
        // Flattening out resolves.
        let mut resolved = Vec::new();
        for _ in 0..6 {
            resolved.extend(engine.evaluate(&[("p", 300.0)]));
        }
        assert_eq!(resolved.len(), 1);
        assert!(!resolved[0].fired);
    }

    #[test]
    fn drift_compares_latest_against_rolling_baseline() {
        let mut engine = AlertEngine::new(vec![AlertRule {
            name: "drift".to_string(),
            signal: "a".to_string(),
            kind: AlertKind::Drift { window: 3 },
            fire_at: 0.5,
            resolve_at: 0.2,
            for_evals: 1,
        }]);
        for _ in 0..3 {
            assert!(engine.evaluate(&[("a", 1.0)]).is_empty(), "warming");
        }
        assert!(engine.evaluate(&[("a", 1.1)]).is_empty(), "|1.1-1.0| < 0.5");
        assert_eq!(engine.evaluate(&[("a", 2.0)]).len(), 1);
    }

    #[test]
    fn missing_signal_skips_the_rule() {
        let mut engine = above(10.0, 5.0, 1);
        assert!(engine.evaluate(&[("other", 100.0)]).is_empty());
        assert_eq!(engine.evals(), 1);
        assert_eq!(engine.evaluate(&[("s", 100.0)]).len(), 1);
    }

    #[test]
    fn monotone_ramp_fires_at_most_once() {
        // Hysteresis monotonicity: a monotone increasing signal produces
        // exactly one fire and zero resolves, for any for_evals.
        for for_evals in 1..=4u32 {
            let mut engine = above(50.0, 40.0, for_evals);
            let mut fired = 0;
            let mut resolved = 0;
            for i in 0..40 {
                for t in engine.evaluate(&[("s", i as f64 * 3.0)]) {
                    if t.fired {
                        fired += 1;
                    } else {
                        resolved += 1;
                    }
                }
            }
            assert_eq!(fired, 1, "for_evals {for_evals}");
            assert_eq!(resolved, 0);
        }
    }

    #[test]
    fn json_rendering_lists_active_rules_and_journal() {
        let mut engine = above(1.0, 0.5, 1);
        engine.evaluate(&[("s", 2.0)]);
        let json = engine.to_json();
        assert!(json.contains("\"fired_total\":1"));
        assert!(json.contains("\"active\":[\"r\"]"));
        assert!(json.contains("{\"rule\":\"r\",\"eval\":0,\"fired\":true,\"value\":2}"));
    }

    #[test]
    fn default_rules_are_well_formed() {
        let rules = default_online_rules();
        assert!(rules.len() >= 5);
        let engine = AlertEngine::new(rules);
        assert!(engine.active().is_empty());
        let stranded = stranded_watts_rule("rack", 500.0);
        assert_eq!(stranded.signal, "stranded_watts_rack");
    }
}
