//! The sink trait, the process-global sink, and the two built-in sinks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use crate::clock::TelemetryClock;
use crate::registry::MetricsRegistry;

/// A typed value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

/// What kind of event a record is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span began.
    SpanStart,
    /// A span ended (carries `duration_ms`).
    SpanEnd,
    /// A point-in-time annotation.
    Point,
}

impl EventKind {
    /// Stable lowercase label used by the JSON-lines exporter.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Point => "point",
        }
    }
}

/// One recorded event (a span boundary or a point annotation).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Milliseconds since the sink's clock origin.
    pub ts_ms: u64,
    /// The event kind.
    pub kind: EventKind,
    /// Hierarchical span path, `/`-separated (e.g. `place/embed`).
    pub path: String,
    /// Span duration, on [`EventKind::SpanEnd`] events.
    pub duration_ms: Option<u64>,
    /// Additional typed fields.
    pub fields: Vec<(String, FieldValue)>,
}

/// Destination for telemetry.
///
/// Implementations must be cheap and non-blocking enough to sit on hot
/// paths; they are called behind the global [`enabled`] check, so the
/// disabled path never reaches them. Metric methods may be called from
/// parallel worker threads — implementations must only rely on
/// commutative updates (integer adds, fixed-point sums) for cross-thread
/// determinism. [`emit`](TelemetrySink::emit) is only called from serial
/// orchestration points (see the crate docs' determinism contract).
pub trait TelemetrySink: Send + Sync {
    /// Current time in milliseconds; sinks without a clock return 0.
    fn now_ms(&self) -> u64 {
        0
    }
    /// Adds `delta` to a counter.
    fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64);
    /// Sets a gauge.
    fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64);
    /// Records a histogram observation.
    fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64);
    /// Records a span boundary or point event.
    fn emit(
        &self,
        kind: EventKind,
        path: &str,
        duration_ms: Option<u64>,
        fields: &[(&str, FieldValue)],
    );
}

/// A sink that drops everything. Installed implicitly when no sink is
/// installed; every method is an empty inline body, so the compiler
/// erases the calls entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    #[inline]
    fn counter_add(&self, _name: &str, _labels: &[(&str, &str)], _delta: u64) {}
    #[inline]
    fn gauge_set(&self, _name: &str, _labels: &[(&str, &str)], _value: f64) {}
    #[inline]
    fn observe(&self, _name: &str, _labels: &[(&str, &str)], _value: f64) {}
    #[inline]
    fn emit(
        &self,
        _kind: EventKind,
        _path: &str,
        _duration_ms: Option<u64>,
        _fields: &[(&str, FieldValue)],
    ) {
    }
}

/// A sink that records metrics into a [`MetricsRegistry`] and events
/// into an ordered log, stamping timestamps from its [`TelemetryClock`].
#[derive(Debug)]
pub struct RecordingSink {
    clock: TelemetryClock,
    metrics: Mutex<MetricsRegistry>,
    events: Mutex<Vec<Event>>,
}

impl RecordingSink {
    /// A recording sink stamping real elapsed milliseconds.
    pub fn with_wall_clock() -> Self {
        Self::with_clock(TelemetryClock::wall())
    }

    /// A recording sink on the deterministic virtual clock — bit-stable
    /// timestamps for golden tests and reproducible run reports.
    pub fn with_virtual_clock() -> Self {
        Self::with_clock(TelemetryClock::deterministic())
    }

    /// A recording sink on an explicit clock.
    pub fn with_clock(clock: TelemetryClock) -> Self {
        Self {
            clock,
            metrics: Mutex::new(MetricsRegistry::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    /// A deep copy of the current metric state.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// A copy of the recorded events, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The recorded events as JSON-lines text.
    pub fn jsonl(&self) -> String {
        crate::export::events_to_jsonl(&self.events())
    }

    /// The metric state as a Prometheus text-format snapshot.
    pub fn prometheus(&self) -> String {
        crate::export::registry_to_prometheus(&self.snapshot())
    }
}

impl TelemetrySink for RecordingSink {
    fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .counter_add(name, labels, delta);
    }

    fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .gauge_set(name, labels, value);
    }

    fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .observe(name, labels, value);
    }

    fn emit(
        &self,
        kind: EventKind,
        path: &str,
        duration_ms: Option<u64>,
        fields: &[(&str, FieldValue)],
    ) {
        let event = Event {
            ts_ms: self.clock.now_ms(),
            kind,
            path: path.to_string(),
            duration_ms,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }
}

/// Fast-path switch: true only while a sink is installed. Relaxed loads
/// keep the disabled path at one predictable branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed sink.
static SINK: RwLock<Option<Arc<dyn TelemetrySink>>> = RwLock::new(None);

/// Serializes [`with_sink`] scopes so concurrently running tests cannot
/// observe each other's metrics through the process-global sink.
static SCOPE: Mutex<()> = Mutex::new(());

/// True while a sink is installed. Instrumented call sites check this
/// before computing labels or values, keeping the disabled path
/// allocation-free.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` as the process-global telemetry destination.
pub fn install(sink: Arc<dyn TelemetrySink>) {
    let mut slot = SINK.write().unwrap_or_else(PoisonError::into_inner);
    *slot = Some(sink);
    ENABLED.store(true, Ordering::Release);
}

/// Removes and returns the installed sink, disabling telemetry.
pub fn uninstall() -> Option<Arc<dyn TelemetrySink>> {
    let mut slot = SINK.write().unwrap_or_else(PoisonError::into_inner);
    ENABLED.store(false, Ordering::Release);
    slot.take()
}

/// Runs `f` with `sink` installed, then restores the previous state —
/// including when `f` panics. Scopes are serialized process-wide (one
/// `with_sink` at a time, so parallel tests do not cross-contaminate);
/// nesting `with_sink` inside `f` therefore deadlocks and is not
/// supported.
pub fn with_sink<R>(sink: Arc<dyn TelemetrySink>, f: impl FnOnce() -> R) -> R {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            uninstall();
        }
    }
    let _scope = SCOPE.lock().unwrap_or_else(PoisonError::into_inner);
    install(sink);
    let _restore = Restore;
    f()
}

/// Runs `f` against the installed sink, if any.
pub(crate) fn with_active<R>(f: impl FnOnce(&dyn TelemetrySink) -> R) -> Option<R> {
    if !enabled() {
        return None;
    }
    let slot = SINK.read().unwrap_or_else(PoisonError::into_inner);
    slot.as_deref().map(f)
}

/// Adds `delta` to the named counter on the installed sink.
///
/// Counters are safe to bump from parallel workers: u64 addition is
/// commutative, so totals are thread-count independent.
#[inline]
pub fn counter_add(name: &str, labels: &[(&str, &str)], delta: u64) {
    if !enabled() {
        return;
    }
    with_active(|sink| sink.counter_add(name, labels, delta));
}

/// Sets the named gauge on the installed sink.
///
/// For deterministic snapshots, set a given gauge key from one serial
/// point only (distinct keys — e.g. one per tree node — are fine from
/// parallel workers: each key still has a single writer).
#[inline]
pub fn gauge_set(name: &str, labels: &[(&str, &str)], value: f64) {
    if !enabled() {
        return;
    }
    with_active(|sink| sink.gauge_set(name, labels, value));
}

/// Records a histogram observation on the installed sink.
///
/// Safe from parallel workers: bucket counts are integer adds and the
/// sum accumulates in fixed-point micro-units (see
/// [`Histogram`](crate::Histogram)).
#[inline]
pub fn observe(name: &str, labels: &[(&str, &str)], value: f64) {
    if !enabled() {
        return;
    }
    with_active(|sink| sink.observe(name, labels, value));
}

/// Emits a point event under the current span path.
///
/// Events are ordered, so only call this from serial orchestration
/// points (the determinism contract; see the crate docs).
pub fn point(name: &str, fields: &[(&str, FieldValue)]) {
    if !enabled() {
        return;
    }
    let path = crate::span::current_path_with(name);
    with_active(|sink| sink.emit(EventKind::Point, &path, None, fields));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_noop() {
        // No sink installed (scoped): nothing panics, nothing records.
        counter_add("so_test_disabled", &[], 1);
        gauge_set("so_test_disabled", &[], 1.0);
        observe("so_test_disabled", &[], 1.0);
        point("so_test_disabled", &[]);
    }

    #[test]
    fn with_sink_restores_on_panic() {
        let sink = Arc::new(RecordingSink::with_virtual_clock());
        let result = std::panic::catch_unwind(|| {
            with_sink(sink, || panic!("boom"));
        });
        assert!(result.is_err());
        assert!(!enabled(), "panic must not leave the sink installed");
    }

    #[test]
    fn recording_sink_collects_all_kinds() {
        let sink = Arc::new(RecordingSink::with_virtual_clock());
        with_sink(sink.clone(), || {
            counter_add("so_test_total", &[("k", "v")], 3);
            gauge_set("so_test_gauge", &[], 2.5);
            observe("so_test_hist", &[], 0.25);
            point("note", &[("ok", FieldValue::Bool(true))]);
        });
        let snap = sink.snapshot();
        assert_eq!(snap.counter("so_test_total", &[("k", "v")]), 3);
        assert_eq!(snap.gauge("so_test_gauge", &[]), Some(2.5));
        assert_eq!(snap.histogram("so_test_hist", &[]).unwrap().count(), 1);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Point);
        assert_eq!(events[0].path, "note");
    }
}
