//! Unified telemetry for the SmoothOperator workspace.
//!
//! SmoothOperator is operationally a *monitoring* system — the paper's
//! framework "continuously records the I-traces and the S-traces and
//! dynamically re-evaluates the severity of the fragmentation problem"
//! (§3.6). This crate is the reproduction's equivalent nervous system:
//! every hot path (embedding, k-means, placement recursion, remapping,
//! the runtime simulator, trace sanitization) reports counters, gauges,
//! histograms, and timed spans through one process-global
//! [`TelemetrySink`].
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** The default sink is [`NoopSink`] and
//!    no sink is installed; every recording entry point first checks one
//!    relaxed atomic load ([`enabled`]) and returns without allocating.
//!    Placement/remap/simulation outputs are bit-identical whether or not
//!    the instrumentation code is compiled in.
//! 2. **Determinism.** A [`RecordingSink`] driven by the
//!    [virtual clock](TelemetryClock::deterministic) produces identical
//!    metric snapshots no matter how many worker threads run: counters
//!    and histogram buckets are commutative integer adds, histogram sums
//!    accumulate in fixed-point micro-units, and gauges are only ever set
//!    from serial orchestration points (or under distinct keys). This
//!    matches the `so-parallel` reduction discipline — parallel shards
//!    merge in canonical order via [`MetricsRegistry::merge_from`].
//! 3. **No dependencies.** Exporters are hand-rolled: JSON-lines events
//!    ([`export::events_to_jsonl`]) and Prometheus text-format snapshots
//!    ([`export::registry_to_prometheus`]).
//!
//! On top of the batch substrate sits the *live plane* for resident
//! engines: a bounded [`FlightRecorder`] ring of recent events, a
//! declarative [`AlertEngine`] with hysteresis, the [`LivePlane`] bundle
//! tying them to a [`RecordingSink`], and a dependency-free blocking
//! [`MetricsServer`] serving `/metrics`, `/health`, `/alerts`, and
//! `/flight?n=K`.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use so_telemetry::{self as telemetry, RecordingSink};
//!
//! let sink = Arc::new(RecordingSink::with_virtual_clock());
//! telemetry::with_sink(sink.clone(), || {
//!     let _span = telemetry::span("demo");
//!     telemetry::counter_add("so_demo_total", &[], 2);
//!     telemetry::gauge_set("so_demo_level", &[("level", "rack")], 1.5);
//!     telemetry::observe("so_demo_watts", &[], 120.0);
//! });
//! let snapshot = sink.snapshot();
//! assert_eq!(snapshot.counter("so_demo_total", &[]), 2);
//! assert!(sink.prometheus().contains("so_demo_level{level=\"rack\"} 1.5"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alerts;
mod clock;
pub mod export;
mod flight;
mod http;
mod plane;
mod registry;
mod report;
mod sink;
mod span;

pub use alerts::{
    default_online_rules, stranded_watts_rule, AlertEngine, AlertKind, AlertRule, AlertTransition,
};
pub use clock::TelemetryClock;
pub use flight::{FlightKind, FlightRecord, FlightRecorder};
pub use http::{
    route_plane, wake_addr, HttpHandler, HttpRequest, HttpResponse, HttpServer, MetricsServer,
};
pub use plane::{FlightDump, LivePlane};
pub use registry::{Histogram, MetricKey, MetricsRegistry, BUCKET_BOUNDS};
pub use report::render_report;
pub use sink::{
    counter_add, enabled, gauge_set, install, observe, point, uninstall, with_sink, Event,
    EventKind, FieldValue, NoopSink, RecordingSink, TelemetrySink,
};
pub use span::{span, SpanGuard};
