//! A tiny dependency-free blocking HTTP listener serving the live
//! observability plane.
//!
//! Deliberately minimal — this is a scrape surface, not a web server:
//! one `std::net::TcpListener`, one service thread, one connection at a
//! time. That is exactly what a Prometheus scraper or a `curl` in a
//! runbook needs, and it keeps the crate free of dependencies and the
//! request path free of surprises.
//!
//! Two layers live here:
//!
//! * [`HttpServer`] — the generic listener: parses a request line (plus
//!   a `Content-Length`-framed body for non-GET methods), hands an
//!   [`HttpRequest`] to a routing closure, and writes the returned
//!   [`HttpResponse`]. Resident services (the `smoothop serve` daemon)
//!   mount their own routes on it.
//! * [`MetricsServer`] — the scrape surface built on top: routes
//!   `/metrics`, `/health`, `/alerts`, and `/flight` to a [`LivePlane`]
//!   via [`route_plane`].
//!
//! Endpoints served by [`MetricsServer`]:
//!
//! | Path          | Body                                            |
//! |---------------|-------------------------------------------------|
//! | `/metrics`    | Prometheus text snapshot of the plane's sink    |
//! | `/health`     | JSON liveness + headline counters               |
//! | `/alerts`     | JSON alert engine state (active + journal)      |
//! | `/flight?n=K` | JSONL of the last `K` flight records (all if `n` omitted, none for `n=0`) |

use std::io::{Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::plane::LivePlane;

/// The request line must terminate within this many bytes; longer lines
/// are answered `414 URI Too Long` instead of being parsed truncated.
const MAX_REQUEST_LINE: usize = 2048;
/// Header block cap for methods that carry a body.
const MAX_HEAD: usize = 16 * 1024;
/// Body cap; larger payloads are answered `413 Payload Too Large`.
const MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed inbound request, as handed to an [`HttpServer`] router.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, ...), verbatim.
    pub method: String,
    /// Target path with the query string stripped (e.g. `/flight`).
    pub path: String,
    /// Raw query string without the leading `?` (empty if absent).
    pub query: String,
    /// Request body (empty for `GET`).
    pub body: String,
}

impl HttpRequest {
    /// The value of query parameter `key`, if present (first match).
    /// `Some("")` distinguishes `?n=` from an absent `?n` — both parse,
    /// the router decides what empty means.
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// A response for the listener to serialize: status, content type, body.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code (200, 400, 404, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A `200 OK` with the given content type.
    #[must_use]
    pub fn ok(content_type: &'static str, body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type,
            body: body.into(),
        }
    }

    /// A `200 OK` JSON response.
    #[must_use]
    pub fn json(body: impl Into<String>) -> Self {
        Self::ok("application/json", body)
    }

    /// A plain-text error response with the given status.
    #[must_use]
    pub fn error(status: u16, message: impl Into<String>) -> Self {
        let mut body = message.into();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body,
        }
    }

    /// The canonical `404 Not Found`.
    #[must_use]
    pub fn not_found() -> Self {
        Self::error(404, "not found")
    }

    /// The canonical `405 Method Not Allowed`.
    #[must_use]
    pub fn method_not_allowed() -> Self {
        Self::error(405, "method not allowed")
    }

    /// The canonical `400 Bad Request` with a reason.
    #[must_use]
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::error(400, message)
    }
}

/// The routing closure an [`HttpServer`] dispatches every request to.
pub type HttpHandler = dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync;

/// A running dependency-free HTTP listener. One service thread, one
/// connection at a time, blocking I/O with 2 s read/write timeouts.
/// Shuts down (blocking until the service thread exits) on
/// [`shutdown`](HttpServer::shutdown) or drop.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("stopped", &self.stop.load(Ordering::Acquire))
            .finish()
    }
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, port 0 for ephemeral) and
    /// serves requests through `handler` from a background thread named
    /// `thread_name`.
    ///
    /// # Errors
    ///
    /// Propagates bind / thread-spawn failures.
    pub fn spawn(
        addr: &str,
        thread_name: &str,
        handler: Arc<HttpHandler>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(thread_name.to_string())
            .spawn(move || serve(&listener, &handler, &thread_stop))?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins the service thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // The service thread is parked in `accept`; a throwaway
        // connection wakes it so it can observe the stop flag. Connect
        // to loopback, not the literal bound address: a wildcard bind
        // reports `0.0.0.0:<port>` (or `[::]:<port>`), which is not a
        // connectable destination on every platform — a failed wake
        // would leave `join` hanging until a real scrape arrives.
        let _ = TcpStream::connect(wake_addr(self.addr));
        let _ = handle.join();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The address the shutdown wake-up connection should dial for a
/// listener bound at `bound`: wildcard addresses (`0.0.0.0`, `[::]`)
/// map to the same-family loopback on the bound port, concrete
/// addresses pass through unchanged.
#[must_use]
pub fn wake_addr(bound: SocketAddr) -> SocketAddr {
    let ip = match bound.ip() {
        IpAddr::V4(v4) if v4.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
        IpAddr::V6(v6) if v6.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
        other => other,
    };
    SocketAddr::new(ip, bound.port())
}

/// A running metrics listener serving a [`LivePlane`]. Shuts down
/// (blocking until the service thread exits) on
/// [`shutdown`](MetricsServer::shutdown) or drop.
#[derive(Debug)]
pub struct MetricsServer {
    inner: HttpServer,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, port 0 for ephemeral) and
    /// serves `plane` from a background thread.
    ///
    /// # Errors
    ///
    /// Propagates bind / thread-spawn failures.
    pub fn spawn(addr: &str, plane: Arc<LivePlane>) -> std::io::Result<Self> {
        let inner = HttpServer::spawn(
            addr,
            "so-metrics-http",
            Arc::new(move |req| route_plane(&plane, req)),
        )?;
        Ok(Self { inner })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// Stops the listener and joins the service thread.
    pub fn shutdown(self) {
        self.inner.shutdown();
    }
}

/// Routes one request against a [`LivePlane`]: the four scrape
/// endpoints, `405` for non-GET methods, `404` otherwise. Exported so
/// resident services can mount the scrape surface alongside their own
/// routes on a single [`HttpServer`].
#[must_use]
pub fn route_plane(plane: &LivePlane, req: &HttpRequest) -> HttpResponse {
    if req.method != "GET" {
        return HttpResponse::method_not_allowed();
    }
    match req.path.as_str() {
        "/metrics" => HttpResponse::ok(
            "text/plain; version=0.0.4; charset=utf-8",
            plane.metrics_text(),
        ),
        "/health" => HttpResponse::json(plane.health_json()),
        "/alerts" => HttpResponse::json(plane.alerts_json()),
        "/flight" => route_flight(plane, req),
        _ => HttpResponse::not_found(),
    }
}

/// `/flight` query semantics: `n` omitted → all held records, explicit
/// `n=0` → zero records, `n=K` → the last `K`, malformed `n` → `400`.
fn route_flight(plane: &LivePlane, req: &HttpRequest) -> HttpResponse {
    match req.query_param("n") {
        None => HttpResponse::ok("application/x-ndjson", plane.flight_jsonl(0)),
        Some(raw) => match raw.parse::<usize>() {
            Ok(0) => HttpResponse::ok("application/x-ndjson", String::new()),
            Ok(k) => HttpResponse::ok("application/x-ndjson", plane.flight_jsonl(k)),
            Err(_) => HttpResponse::bad_request(format!("malformed flight count n={raw:?}")),
        },
    }
}

fn serve(listener: &TcpListener, handler: &Arc<HttpHandler>, stop: &Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A wedged client must not wedge the scrape surface.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = handle_connection(stream, handler);
    }
}

/// Outcome of reading enough of the request to route it.
enum ReadOutcome {
    Request(HttpRequest),
    /// Protocol-level rejection decided before routing (414, 413, 400).
    Reject(HttpResponse),
    /// Peer vanished before sending a complete request line.
    Closed,
}

fn handle_connection(mut stream: TcpStream, handler: &Arc<HttpHandler>) -> std::io::Result<()> {
    let response = match read_request(&mut stream)? {
        ReadOutcome::Request(req) => handler(&req),
        ReadOutcome::Reject(resp) => {
            // The peer may still be mid-send (that is usually why the
            // request was rejected). Closing with unread inbound data
            // turns into an RST that can destroy the response before
            // the client reads it; drain a bounded amount first so the
            // close is a clean FIN.
            drain_excess(&mut stream);
            resp
        }
        ReadOutcome::Closed => return Ok(()),
    };
    respond(&mut stream, &response)
}

fn read_request(stream: &mut TcpStream) -> std::io::Result<ReadOutcome> {
    let mut buf = Vec::with_capacity(MAX_REQUEST_LINE);
    // Read until the request line is complete (ends with \r\n). A line
    // that has not terminated within MAX_REQUEST_LINE bytes would
    // previously be parsed truncated and mis-routed to 404; reject it
    // explicitly instead.
    let line_end = loop {
        if let Some(pos) = find_crlf(&buf) {
            break pos;
        }
        if buf.len() >= MAX_REQUEST_LINE {
            return Ok(ReadOutcome::Reject(HttpResponse::error(
                414,
                "request line too long",
            )));
        }
        if read_chunk(stream, &mut buf)? == 0 {
            if buf.is_empty() {
                return Ok(ReadOutcome::Closed);
            }
            break buf.len();
        }
    };
    let line = String::from_utf8_lossy(&buf[..line_end]).into_owned();
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    // GET carries no body: respond as soon as the request line is in,
    // exactly as a scrape client expects. Other methods are framed by
    // Content-Length, so the full head plus body must be read first.
    let body = if method == "GET" {
        String::new()
    } else {
        match read_body(stream, &mut buf)? {
            Ok(body) => body,
            Err(reject) => return Ok(ReadOutcome::Reject(reject)),
        }
    };
    Ok(ReadOutcome::Request(HttpRequest {
        method,
        path,
        query,
        body,
    }))
}

/// Reads the rest of the header block and the `Content-Length`-framed
/// body. Returns `Err(response)` for protocol rejections.
fn read_body(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
) -> std::io::Result<Result<String, HttpResponse>> {
    let head_end = loop {
        if let Some(pos) = find_head_end(buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD {
            return Ok(Err(HttpResponse::error(431, "header block too large")));
        }
        if read_chunk(stream, buf)? == 0 {
            return Ok(Err(HttpResponse::bad_request("truncated request head")));
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    // Absent Content-Length means an empty body; a present but
    // unparseable one is a protocol error.
    let content_length = match head.lines().skip(1).find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.eq_ignore_ascii_case("content-length")
            .then(|| value.trim().parse::<usize>())
    }) {
        None => 0,
        Some(Ok(length)) => length,
        Some(Err(_)) => {
            return Ok(Err(HttpResponse::bad_request("malformed content-length")));
        }
    };
    if content_length > MAX_BODY {
        return Ok(Err(HttpResponse::error(413, "payload too large")));
    }
    let body_start = head_end + 4;
    while buf.len() < body_start + content_length {
        if read_chunk(stream, buf)? == 0 {
            return Ok(Err(HttpResponse::bad_request("truncated request body")));
        }
    }
    let body = String::from_utf8_lossy(&buf[body_start..body_start + content_length]).into_owned();
    Ok(Ok(body))
}

/// Discards whatever the peer has already sent, bounded in both bytes
/// (256 KiB) and time (250 ms), so rejects close cleanly.
fn drain_excess(stream: &mut TcpStream) {
    const DRAIN_CAP: usize = 256 * 1024;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut chunk = [0u8; 2048];
    let mut drained = 0;
    while drained < DRAIN_CAP {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn read_chunk(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<usize> {
    let mut chunk = [0u8; 2048];
    let n = stream.read(&mut chunk)?;
    buf.extend_from_slice(&chunk[..n]);
    Ok(n)
}

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn respond(stream: &mut TcpStream, response: &HttpResponse) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.1 {} {reason}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.content_type,
        response.body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alerts::AlertRule;
    use crate::sink::{RecordingSink, TelemetrySink};

    fn get(addr: SocketAddr, target: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    fn test_plane() -> Arc<LivePlane> {
        let sink = Arc::new(RecordingSink::with_virtual_clock());
        sink.gauge_set("so_test_gauge", &[], 4.0);
        let plane = Arc::new(LivePlane::new(
            sink,
            8,
            vec![AlertRule::above("hot", "t", 1.0, 0.5, 1)],
        ));
        plane.evaluate_alerts(&[("t", 2.0)]);
        plane
    }

    #[test]
    fn serves_all_four_endpoints() {
        let plane = test_plane();
        let server = MetricsServer::spawn("127.0.0.1:0", Arc::clone(&plane)).unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(body.contains("so_test_gauge 4"));

        let (head, body) = get(addr, "/health");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(body.contains("\"status\":\"alerting\""));

        let (_, body) = get(addr, "/alerts");
        assert!(body.contains("\"active\":[\"hot\"]"));

        let (_, body) = get(addr, "/flight?n=1");
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"kind\":\"alert_fired\""));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.shutdown();
    }

    #[test]
    fn flight_count_semantics_cover_omitted_zero_and_malformed() {
        let plane = test_plane();
        // Two more alert evaluations so the ring holds several records.
        plane.evaluate_alerts(&[("t", 0.0)]);
        plane.evaluate_alerts(&[("t", 2.0)]);
        let held = plane.flight_jsonl(0).lines().count();
        assert!(held >= 2, "fixture should hold >= 2 records, got {held}");
        let server = MetricsServer::spawn("127.0.0.1:0", Arc::clone(&plane)).unwrap();
        let addr = server.addr();

        // Omitted n: every held record.
        let (head, body) = get(addr, "/flight");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body.lines().count(), held);

        // Explicit n=0: zero records, still 200.
        let (head, body) = get(addr, "/flight?n=0");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "");

        // Malformed n: 400, not a full dump.
        for target in [
            "/flight?n=zzz",
            "/flight?n=",
            "/flight?n=-1",
            "/flight?n=1x",
        ] {
            let (head, body) = get(addr, target);
            assert!(
                head.starts_with("HTTP/1.1 400"),
                "{target} should be rejected: {head}"
            );
            assert!(body.contains("malformed"), "{target}: {body}");
        }

        // Bounded n still works and other params are ignored.
        let (head, body) = get(addr, "/flight?pretty=1&n=1");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body.lines().count(), 1);

        server.shutdown();
    }

    #[test]
    fn oversized_request_line_gets_414_not_a_truncated_route() {
        let plane = test_plane();
        let server = MetricsServer::spawn("127.0.0.1:0", Arc::clone(&plane)).unwrap();
        let addr = server.addr();

        // A /metrics prefix plus a huge query: the pre-fix code would
        // truncate at the buffer boundary and route the mangled target.
        let long_target = format!("/metrics?pad={}", "x".repeat(3 * MAX_REQUEST_LINE));
        let (head, _) = get(addr, &long_target);
        assert!(head.starts_with("HTTP/1.1 414"), "{head}");

        server.shutdown();
    }

    #[test]
    fn non_get_methods_are_rejected_with_405() {
        let plane = test_plane();
        let server = MetricsServer::spawn("127.0.0.1:0", Arc::clone(&plane)).unwrap();
        let addr = server.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\nhi")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");

        server.shutdown();
    }

    #[test]
    fn wake_addr_maps_wildcards_to_loopback() {
        let cases = [
            ("0.0.0.0:9184", "127.0.0.1:9184"),
            ("[::]:9184", "[::1]:9184"),
            ("127.0.0.1:9184", "127.0.0.1:9184"),
            ("192.0.2.7:80", "192.0.2.7:80"),
        ];
        for (bound, expect) in cases {
            let bound: SocketAddr = bound.parse().unwrap();
            let expect: SocketAddr = expect.parse().unwrap();
            assert_eq!(wake_addr(bound), expect, "bound {bound}");
        }
    }

    #[test]
    fn wildcard_bind_shuts_down_without_traffic() {
        let plane = test_plane();
        let server = MetricsServer::spawn("0.0.0.0:0", Arc::clone(&plane)).unwrap();
        assert!(server.addr().ip().is_unspecified());
        // Must return promptly with no scrape ever arriving: the wake
        // connection has to reach the listener through loopback.
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown hung for {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn slow_client_hits_read_timeout_without_wedging_the_server() {
        let plane = test_plane();
        let server = MetricsServer::spawn("127.0.0.1:0", Arc::clone(&plane)).unwrap();
        let addr = server.addr();

        // A client that connects and sends only half a request line,
        // then stalls. The 2 s read timeout must reclaim the service
        // thread so later scrapes still succeed.
        let mut wedged = TcpStream::connect(addr).unwrap();
        wedged.write_all(b"GET /met").unwrap();

        let (head, _) = get(addr, "/health");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        drop(wedged);
        server.shutdown();
    }

    #[test]
    fn concurrent_scrapes_survive_shutdown() {
        let plane = test_plane();
        let server = MetricsServer::spawn("127.0.0.1:0", Arc::clone(&plane)).unwrap();
        let addr = server.addr();

        // Scrapers race the shutdown: every connection must either get
        // a well-formed response or a clean connection error — never a
        // hang past the read timeout.
        let scrapers: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..8 {
                        let Ok(mut stream) = TcpStream::connect(addr) else {
                            return;
                        };
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                        if stream
                            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                            .is_err()
                        {
                            return;
                        }
                        let mut response = String::new();
                        if stream.read_to_string(&mut response).is_err() {
                            return;
                        }
                        if !response.is_empty() {
                            assert!(response.starts_with("HTTP/1.1 "), "{response}");
                        }
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        server.shutdown();
        for scraper in scrapers {
            scraper.join().unwrap();
        }
    }

    #[test]
    fn generic_server_routes_post_bodies() {
        let handler: Arc<HttpHandler> = Arc::new(|req| {
            if req.method == "POST" && req.path == "/echo" {
                HttpResponse::ok("text/plain; charset=utf-8", req.body.clone())
            } else {
                HttpResponse::not_found()
            }
        });
        let server = HttpServer::spawn("127.0.0.1:0", "so-test-http", handler).unwrap();
        let addr = server.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        let body = "slot 3 120.5\nslot 4 80.25\n";
        stream
            .write_all(
                format!(
                    "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, got) = response.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(got, body);

        server.shutdown();
    }
}
