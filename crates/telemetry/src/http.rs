//! A tiny dependency-free blocking HTTP listener serving the live
//! observability plane.
//!
//! Deliberately minimal — this is a scrape surface, not a web server:
//! one `std::net::TcpListener`, one service thread, one connection at a
//! time, HTTP/1.x `GET` only. That is exactly what a Prometheus scraper
//! or a `curl` in a runbook needs, and it keeps the crate free of
//! dependencies and the request path free of surprises.
//!
//! Endpoints:
//!
//! | Path          | Body                                            |
//! |---------------|-------------------------------------------------|
//! | `/metrics`    | Prometheus text snapshot of the plane's sink    |
//! | `/health`     | JSON liveness + headline counters               |
//! | `/alerts`     | JSON alert engine state (active + journal)      |
//! | `/flight?n=K` | JSONL of the last `K` flight records (all if no `n`) |

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::plane::LivePlane;

/// A running metrics listener. Shuts down (blocking until the service
/// thread exits) on [`shutdown`](MetricsServer::shutdown) or drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, port 0 for ephemeral) and
    /// serves `plane` from a background thread.
    pub fn spawn(addr: &str, plane: Arc<LivePlane>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("so-metrics-http".to_string())
            .spawn(move || serve(listener, plane, thread_stop))?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins the service thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // The service thread is parked in `accept`; a throwaway
        // connection wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve(listener: TcpListener, plane: Arc<LivePlane>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A wedged client must not wedge the scrape surface.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = handle_connection(stream, &plane);
    }
}

fn handle_connection(mut stream: TcpStream, plane: &LivePlane) -> std::io::Result<()> {
    let mut buf = [0u8; 2048];
    let mut read = 0;
    // Read until the request line is complete (ends with \r\n). Headers
    // beyond the first line are irrelevant and may still be in flight.
    while read < buf.len() {
        let n = stream.read(&mut buf[read..])?;
        if n == 0 {
            break;
        }
        read += n;
        if buf[..read].windows(2).any(|w| w == b"\r\n") {
            break;
        }
    }
    let request = String::from_utf8_lossy(&buf[..read]);
    let Some(line) = request.lines().next() else {
        return Ok(());
    };
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(
            &mut stream,
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &plane.metrics_text(),
        ),
        "/health" => respond(&mut stream, 200, "application/json", &plane.health_json()),
        "/alerts" => respond(&mut stream, 200, "application/json", &plane.alerts_json()),
        "/flight" => {
            let n = query
                .split('&')
                .find_map(|pair| pair.strip_prefix("n="))
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(0);
            respond(
                &mut stream,
                200,
                "application/x-ndjson",
                &plane.flight_jsonl(n),
            )
        }
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alerts::AlertRule;
    use crate::sink::{RecordingSink, TelemetrySink};

    fn get(addr: SocketAddr, target: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_four_endpoints() {
        let sink = Arc::new(RecordingSink::with_virtual_clock());
        sink.gauge_set("so_test_gauge", &[], 4.0);
        let plane = Arc::new(LivePlane::new(
            sink,
            8,
            vec![AlertRule::above("hot", "t", 1.0, 0.5, 1)],
        ));
        plane.evaluate_alerts(&[("t", 2.0)]);
        let server = MetricsServer::spawn("127.0.0.1:0", Arc::clone(&plane)).unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(body.contains("so_test_gauge 4"));

        let (head, body) = get(addr, "/health");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(body.contains("\"status\":\"alerting\""));

        let (_, body) = get(addr, "/alerts");
        assert!(body.contains("\"active\":[\"hot\"]"));

        let (_, body) = get(addr, "/flight?n=1");
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"kind\":\"alert_fired\""));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.shutdown();
    }
}
