//! Wall-clock and deterministic virtual time sources.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The time source a [`RecordingSink`](crate::RecordingSink) stamps
/// events with.
///
/// * [`TelemetryClock::wall`] measures real elapsed milliseconds since
///   the clock was created — the right choice for production profiling.
/// * [`TelemetryClock::deterministic`] is a virtual clock: every reading
///   advances a counter by exactly one millisecond-tick. Instrumented
///   runs that read the clock in a deterministic order (the contract for
///   spans and events, which are only emitted from serial orchestration
///   points) therefore produce bit-identical timestamps on every run and
///   every machine — the property the exporter golden tests pin down.
#[derive(Debug)]
pub enum TelemetryClock {
    /// Real elapsed time since construction.
    Wall(Instant),
    /// Deterministic tick counter: each reading returns the current tick
    /// and advances by one.
    Virtual(AtomicU64),
}

impl TelemetryClock {
    /// A wall clock starting at zero now.
    pub fn wall() -> Self {
        TelemetryClock::Wall(Instant::now())
    }

    /// A deterministic virtual clock starting at tick zero.
    pub fn deterministic() -> Self {
        TelemetryClock::Virtual(AtomicU64::new(0))
    }

    /// Milliseconds since the clock's origin. Virtual clocks advance one
    /// tick per reading.
    pub fn now_ms(&self) -> u64 {
        match self {
            TelemetryClock::Wall(origin) => origin.elapsed().as_millis() as u64,
            TelemetryClock::Virtual(tick) => tick.fetch_add(1, Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_ticks_once_per_reading() {
        let clock = TelemetryClock::deterministic();
        assert_eq!(clock.now_ms(), 0);
        assert_eq!(clock.now_ms(), 1);
        assert_eq!(clock.now_ms(), 2);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let clock = TelemetryClock::wall();
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a);
    }
}
