//! Golden tests for the two exporters.
//!
//! Both run a fixed scenario under the deterministic virtual clock (every
//! clock reading ticks exactly once) and assert the *entire* exported
//! text, byte for byte. Any change to the JSONL or Prometheus formats —
//! field order, float rendering, bucket bounds, `# TYPE` placement — must
//! update these strings consciously.

use std::sync::Arc;

use so_telemetry::{
    counter_add, gauge_set, observe, point, span, with_sink, FieldValue, MetricsRegistry,
    RecordingSink,
};

#[test]
fn jsonl_export_is_bit_stable() {
    let sink = Arc::new(RecordingSink::with_virtual_clock());
    with_sink(sink.clone(), || {
        // Clock reads: span start (0), span-start emit (1).
        let _outer = span("place");
        // Clock read: point emit (2).
        point(
            "kmeans",
            &[
                ("clusters", FieldValue::U64(3)),
                ("movement", FieldValue::F64(0.5)),
                ("mode", FieldValue::Str("kmeans++".to_string())),
                ("balanced", FieldValue::Bool(true)),
            ],
        );
        {
            // Clock reads: start (3), emit (4); on drop: now (5), emit (6).
            let _inner = span("embed");
        }
        // Outer drop: now (7) → duration 7, emit (8).
    });

    let expected = concat!(
        "{\"ts_ms\":1,\"kind\":\"span_start\",\"path\":\"place\"}\n",
        "{\"ts_ms\":2,\"kind\":\"point\",\"path\":\"place/kmeans\",\"fields\":{\"clusters\":3,\"movement\":0.5,\"mode\":\"kmeans++\",\"balanced\":true}}\n",
        "{\"ts_ms\":4,\"kind\":\"span_start\",\"path\":\"place/embed\"}\n",
        "{\"ts_ms\":6,\"kind\":\"span_end\",\"path\":\"place/embed\",\"duration_ms\":2}\n",
        "{\"ts_ms\":8,\"kind\":\"span_end\",\"path\":\"place\",\"duration_ms\":7}\n",
    );
    assert_eq!(sink.jsonl(), expected);
}

#[test]
fn prometheus_export_is_bit_stable() {
    let sink = Arc::new(RecordingSink::with_virtual_clock());
    with_sink(sink.clone(), || {
        counter_add("so_kmeans_runs_total", &[], 2);
        counter_add("so_placement_runs_total", &[], 1);
        gauge_set(
            "so_placement_mean_asynchrony_score",
            &[("level", "RPP")],
            2.0,
        );
        gauge_set(
            "so_placement_mean_asynchrony_score",
            &[("level", "RACK")],
            1.5,
        );
        observe("so_sim_step_power_watts", &[], 0.5);
        observe("so_sim_step_power_watts", &[], 120.0);
    });

    let expected = concat!(
        "# TYPE so_kmeans_runs_total counter\n",
        "so_kmeans_runs_total 2\n",
        "# TYPE so_placement_runs_total counter\n",
        "so_placement_runs_total 1\n",
        "# TYPE so_placement_mean_asynchrony_score gauge\n",
        "so_placement_mean_asynchrony_score{level=\"RACK\"} 1.5\n",
        "so_placement_mean_asynchrony_score{level=\"RPP\"} 2\n",
        "# TYPE so_sim_step_power_watts histogram\n",
        "so_sim_step_power_watts_bucket{le=\"0.000001\"} 0\n",
        "so_sim_step_power_watts_bucket{le=\"0.00001\"} 0\n",
        "so_sim_step_power_watts_bucket{le=\"0.0001\"} 0\n",
        "so_sim_step_power_watts_bucket{le=\"0.001\"} 0\n",
        "so_sim_step_power_watts_bucket{le=\"0.01\"} 0\n",
        "so_sim_step_power_watts_bucket{le=\"0.1\"} 0\n",
        "so_sim_step_power_watts_bucket{le=\"1\"} 1\n",
        "so_sim_step_power_watts_bucket{le=\"10\"} 1\n",
        "so_sim_step_power_watts_bucket{le=\"100\"} 1\n",
        "so_sim_step_power_watts_bucket{le=\"1000\"} 2\n",
        "so_sim_step_power_watts_bucket{le=\"10000\"} 2\n",
        "so_sim_step_power_watts_bucket{le=\"100000\"} 2\n",
        "so_sim_step_power_watts_bucket{le=\"1000000\"} 2\n",
        "so_sim_step_power_watts_bucket{le=\"+Inf\"} 2\n",
        "so_sim_step_power_watts_sum 120.5\n",
        "so_sim_step_power_watts_count 2\n",
    );
    assert_eq!(sink.prometheus(), expected);
}

#[test]
fn virtual_clock_runs_are_reproducible() {
    // The same scenario twice produces the same bytes — the property the
    // two goldens above rely on.
    let run = || {
        let sink = Arc::new(RecordingSink::with_virtual_clock());
        with_sink(sink.clone(), || {
            let _s = span("root");
            counter_add("so_repeat_total", &[], 1);
            observe("so_repeat_hist", &[], 42.0);
        });
        (sink.jsonl(), sink.prometheus())
    };
    assert_eq!(run(), run());
}

#[test]
fn empty_registry_exports_empty_text() {
    assert_eq!(
        so_telemetry::render_report(&MetricsRegistry::new()),
        "telemetry run report: no metrics recorded\n"
    );
}
