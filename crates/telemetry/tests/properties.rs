//! Property-based tests for the metrics registry.

use proptest::prelude::*;
use so_telemetry::{Histogram, MetricsRegistry};

fn observations() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            -1.0e9f64..1.0e9,
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(0.0),
        ],
        0..64,
    )
}

proptest! {
    /// Every observation lands in exactly one bucket: the per-bucket
    /// counts always sum to the sample count, NaN and infinities
    /// included (they land in the overflow bucket).
    #[test]
    fn bucket_counts_sum_to_sample_count(values in observations()) {
        let mut h = Histogram::default();
        for &v in &values {
            h.observe(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), values.len() as u64);
    }

    /// Merging shards preserves the invariant and matches observing the
    /// concatenated stream directly.
    #[test]
    fn merged_shards_match_direct_observation(a in observations(), b in observations()) {
        let mut direct = MetricsRegistry::new();
        for &v in a.iter().chain(&b) {
            direct.observe("h", &[], v);
        }

        let mut shard_a = MetricsRegistry::new();
        for &v in &a {
            shard_a.observe("h", &[], v);
        }
        let mut shard_b = MetricsRegistry::new();
        for &v in &b {
            shard_b.observe("h", &[], v);
        }
        let merged = MetricsRegistry::merge_shards([shard_a, shard_b]);

        let n = (a.len() + b.len()) as u64;
        let dh = direct.histogram("h", &[]);
        let mh = merged.histogram("h", &[]);
        match (dh, mh) {
            (Some(dh), Some(mh)) => {
                prop_assert_eq!(dh, mh);
                prop_assert_eq!(mh.bucket_counts().iter().sum::<u64>(), n);
            }
            (None, None) => prop_assert_eq!(n, 0),
            _ => prop_assert!(false, "one side recorded, the other did not"),
        }
    }
}
