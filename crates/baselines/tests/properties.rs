//! Property-based tests for the baseline schemes.

use proptest::prelude::*;
use so_baselines::{
    aggregate_required_budget, oblivious_placement, random_placement, shave_with_battery,
    statprof_required_budget, BatteryModel, ProvisioningDegrees,
};
use so_powertrace::{PowerTrace, TimeGrid};
use so_powertree::{Level, PowerTopology};
use so_workloads::{DcScenario, Fleet, InstanceSpec, ServiceClass};

fn topo() -> PowerTopology {
    PowerTopology::builder()
        .suites(1)
        .msbs_per_suite(1)
        .sbs_per_msb(2)
        .rpps_per_sb(2)
        .racks_per_rpp(2)
        .rack_capacity(6)
        .build()
        .expect("valid shape")
}

fn small_fleet(n: usize) -> Fleet {
    let grid = TimeGrid::one_week(240);
    let specs: Vec<InstanceSpec> = (0..n)
        .map(|i| InstanceSpec::nominal(ServiceClass::ALL[i % ServiceClass::ALL.len()], i as u64))
        .collect();
    Fleet::generate(specs, grid, 1).expect("fleet generates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Placements are balanced: rack loads differ by at most one.
    #[test]
    fn placements_balance_racks(n in 1usize..=48, mixing in 0.0f64..=1.0, seed in 0u64..100) {
        let topo = topo();
        let fleet = small_fleet(n);
        for assignment in [
            oblivious_placement(&fleet, &topo, mixing, seed).unwrap(),
            random_placement(n, &topo, seed).unwrap(),
        ] {
            let sizes: Vec<usize> = assignment.by_rack().values().map(|v| v.len()).collect();
            let max = sizes.iter().copied().max().unwrap_or(0);
            let min_used = sizes.iter().copied().min().unwrap_or(0);
            prop_assert!(max - min_used <= 1 || sizes.len() < topo.racks().len());
            prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        }
    }

    /// StatProf requirements dominate the aggregate-aware requirements at
    /// equal degrees, on the same placement, for arbitrary traces.
    #[test]
    fn statprof_dominates_aggregate_on_same_placement(
        seed in 0u64..50,
        u in 0.0f64..20.0,
        d in 0.0f64..0.2,
    ) {
        let topo = topo();
        let fleet = DcScenario::dc1().generate_fleet(24).unwrap();
        let assignment = random_placement(24, &topo, seed).unwrap();
        let degrees = ProvisioningDegrees { underprovision_pct: u, overbooking: d };
        let statprof =
            statprof_required_budget(&topo, &assignment, fleet.test_traces(), degrees).unwrap();
        let aggregate =
            aggregate_required_budget(&topo, &assignment, fleet.test_traces(), degrees).unwrap();
        for level in Level::ALL {
            prop_assert!(
                aggregate.at_level(level) <= statprof.at_level(level) + 1e-6,
                "{level}: {} > {}",
                aggregate.at_level(level),
                statprof.at_level(level)
            );
        }
    }

    /// Battery shaving conserves energy: shaved + uncovered equals the
    /// total over-budget energy.
    #[test]
    fn battery_energy_conservation(
        samples in prop::collection::vec(0.0f64..1000.0, 16..64),
        budget in 100.0f64..900.0,
        capacity_min in 1.0f64..200.0,
    ) {
        let trace = PowerTrace::new(samples, 10).unwrap();
        let overdraw: f64 = trace
            .samples()
            .iter()
            .map(|&p| (p - budget).max(0.0))
            .sum::<f64>()
            * 10.0;
        let battery = BatteryModel::sized_for(200.0, capacity_min);
        let outcome = shave_with_battery(&trace, budget, battery);
        prop_assert!(
            (outcome.shaved_watt_minutes + outcome.uncovered_watt_minutes - overdraw).abs()
                < 1e-6,
            "shaved {} + uncovered {} != overdraw {}",
            outcome.shaved_watt_minutes,
            outcome.uncovered_watt_minutes,
            overdraw
        );
        prop_assert!(outcome.min_state_of_charge >= -1e-9);
    }

    /// A bigger battery never covers less.
    #[test]
    fn bigger_battery_is_monotone(
        samples in prop::collection::vec(0.0f64..1000.0, 16..48),
        budget in 100.0f64..900.0,
    ) {
        let trace = PowerTrace::new(samples, 10).unwrap();
        let small = shave_with_battery(&trace, budget, BatteryModel::sized_for(150.0, 20.0));
        let large = shave_with_battery(&trace, budget, BatteryModel::sized_for(150.0, 200.0));
        prop_assert!(large.uncovered_watt_minutes <= small.uncovered_watt_minutes + 1e-6);
    }
}
