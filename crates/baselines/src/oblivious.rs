//! The oblivious (service-grouped) baseline placement.
//!
//! Production datacenters traditionally place instances of the same service
//! together — "instances of the same services are typically placed
//! together" (§1) — which groups synchronous power patterns under the same
//! sub-trees and fragments the power budget. A `mixing` knob reproduces the
//! paper's observation that some datacenters' historical placements were
//! accidentally more balanced than others (DC1 vs DC3, §5.2.1).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use so_powertree::{Assignment, NodeId, PowerTopology, TreeError};
use so_workloads::Fleet;

/// Places the fleet service-grouped: instances in fleet order (grouped by
/// service) fill racks in contiguous blocks, racks used evenly.
///
/// `mixing` in `[0, 1]` pre-shuffles that fraction of instances, modeling
/// historically accumulated interleaving (0 = strictly grouped, 1 = fully
/// random).
///
/// # Errors
///
/// Returns [`TreeError::RackOverCapacity`] when the fleet exceeds the
/// topology's capacity.
///
/// # Panics
///
/// Panics if `mixing` is outside `[0, 1]` or not finite.
pub fn oblivious_placement(
    fleet: &Fleet,
    topology: &PowerTopology,
    mixing: f64,
    seed: u64,
) -> Result<Assignment, TreeError> {
    assert!(
        mixing.is_finite() && (0.0..=1.0).contains(&mixing),
        "mixing must be in [0, 1]"
    );
    let n = fleet.len();
    let mut order: Vec<usize> = (0..n).collect();

    if mixing > 0.0 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let shuffled_count = ((n as f64) * mixing).round() as usize;
        // Pick the positions to scramble, then permute only those.
        let mut positions: Vec<usize> = (0..n).collect();
        positions.shuffle(&mut rng);
        let mut chosen: Vec<usize> = positions.into_iter().take(shuffled_count).collect();
        chosen.sort_unstable();
        let mut values: Vec<usize> = chosen.iter().map(|&p| order[p]).collect();
        values.shuffle(&mut rng);
        for (&p, &v) in chosen.iter().zip(&values) {
            order[p] = v;
        }
    }

    block_fill(&order, topology)
}

/// Fully random balanced placement.
///
/// # Errors
///
/// Returns [`TreeError::RackOverCapacity`] when the fleet exceeds the
/// topology's capacity.
pub fn random_placement(
    n: usize,
    topology: &PowerTopology,
    seed: u64,
) -> Result<Assignment, TreeError> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    block_fill(&order, topology)
}

/// Fills racks evenly with contiguous blocks of `order`.
fn block_fill(order: &[usize], topology: &PowerTopology) -> Result<Assignment, TreeError> {
    let racks = topology.racks();
    let n = order.len();
    let base = n / racks.len();
    let rem = n % racks.len();

    let mut rack_of: Vec<NodeId> = vec![racks[0]; n];
    let mut cursor = 0usize;
    for (r, &rack) in racks.iter().enumerate() {
        let take = base + usize::from(r < rem);
        for &i in &order[cursor..(cursor + take).min(n)] {
            rack_of[i] = rack;
        }
        cursor += take;
    }
    Assignment::new(rack_of, topology)
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_workloads::DcScenario;

    fn topo() -> PowerTopology {
        PowerTopology::builder()
            .suites(1)
            .msbs_per_suite(1)
            .sbs_per_msb(2)
            .rpps_per_sb(2)
            .racks_per_rpp(2)
            .rack_capacity(8)
            .build()
            .unwrap()
    }

    #[test]
    fn grouped_placement_keeps_services_contiguous() {
        let fleet = DcScenario::dc3().generate_fleet(32).unwrap();
        let topo = topo();
        let a = oblivious_placement(&fleet, &topo, 0.0, 1).unwrap();
        // Each rack hosts 4 instances with contiguous fleet indices.
        for (_, instances) in a.by_rack() {
            assert_eq!(instances.len(), 4);
            let min = *instances.iter().min().unwrap();
            let max = *instances.iter().max().unwrap();
            assert_eq!(max - min, 3, "rack block {instances:?} not contiguous");
        }
    }

    #[test]
    fn racks_are_used_evenly_with_remainder() {
        let fleet = DcScenario::dc1().generate_fleet(30).unwrap();
        let topo = topo();
        let a = oblivious_placement(&fleet, &topo, 0.0, 1).unwrap();
        let sizes: Vec<usize> = a.by_rack().values().map(|v| v.len()).collect();
        assert!(sizes.iter().all(|&s| s == 3 || s == 4), "sizes {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 30);
    }

    #[test]
    fn full_mixing_breaks_contiguity() {
        let fleet = DcScenario::dc3().generate_fleet(64).unwrap();
        let topo = topo();
        let a = oblivious_placement(&fleet, &topo, 1.0, 7).unwrap();
        let contiguous_racks = a
            .by_rack()
            .values()
            .filter(|instances| {
                let min = *instances.iter().min().unwrap();
                let max = *instances.iter().max().unwrap();
                max - min == instances.len() - 1
            })
            .count();
        assert!(
            contiguous_racks < 3,
            "{contiguous_racks} racks remained contiguous"
        );
    }

    #[test]
    fn random_placement_is_balanced_and_seed_deterministic() {
        let topo = topo();
        let a = random_placement(40, &topo, 9).unwrap();
        let b = random_placement(40, &topo, 9).unwrap();
        assert_eq!(a, b);
        assert!(a.by_rack().values().all(|v| v.len() == 5));
    }

    #[test]
    fn over_capacity_is_rejected() {
        let fleet = DcScenario::dc1().generate_fleet(65).unwrap();
        let topo = topo(); // capacity 64
        assert!(oblivious_placement(&fleet, &topo, 0.0, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "mixing")]
    fn invalid_mixing_panics() {
        let fleet = DcScenario::dc1().generate_fleet(8).unwrap();
        let topo = topo();
        let _ = oblivious_placement(&fleet, &topo, 1.5, 1);
    }
}
