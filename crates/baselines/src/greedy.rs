//! Greedy peak-aware placement — a stronger comparator than the paper's
//! baselines.
//!
//! First-fit-decreasing by peak: instances are placed one at a time
//! (largest peak first) onto the rack whose whole root path absorbs the
//! instance with the smallest total *peak increase*. This is the natural
//! "direct optimization" alternative to SmoothOperator's
//! cluster-and-deal; the `ext_greedy` bench compares their quality and
//! cost.

use so_powertrace::PowerTrace;
use so_powertree::{Assignment, NodeId, PowerTopology, TreeError};

/// Places `traces` (one per instance) onto the topology greedily.
///
/// For each instance, every rack with a free slot is scored by the sum of
/// aggregate-peak increases along the rack's path to the root; the
/// smallest-cost rack wins. Instances are processed in descending order of
/// their own trace peak (first-fit decreasing).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use so_baselines::greedy_peak_placement;
/// use so_powertree::PowerTopology;
/// use so_workloads::DcScenario;
///
/// let fleet = DcScenario::dc1().generate_fleet(40)?;
/// let topo = PowerTopology::builder().build()?;
/// let assignment = greedy_peak_placement(&topo, fleet.averaged_traces())?;
/// assert_eq!(assignment.len(), 40);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`TreeError::RackOverCapacity`] when the instances exceed the
/// topology's capacity, and propagates trace mismatches.
pub fn greedy_peak_placement(
    topology: &PowerTopology,
    traces: &[PowerTrace],
) -> Result<Assignment, TreeError> {
    let n = traces.len();
    if n > topology.server_capacity() {
        return Err(TreeError::RackOverCapacity {
            rack: topology.racks()[0],
            assigned: n,
            capacity: topology.server_capacity(),
        });
    }
    if n == 0 {
        return Assignment::new(Vec::new(), topology);
    }
    let len = traces[0].len();
    for t in traces {
        if t.len() != len {
            return Err(TreeError::Trace(
                so_powertrace::TraceError::LengthMismatch {
                    left: len,
                    right: t.len(),
                },
            ));
        }
    }

    // Running aggregate samples and current peak per node.
    let mut aggregate = vec![vec![0.0f64; len]; topology.len()];
    let mut peak = vec![0.0f64; topology.len()];

    // Pre-computed root paths per rack (rack itself included).
    let racks = topology.racks();
    let mut paths: Vec<Vec<NodeId>> = Vec::with_capacity(racks.len());
    for &rack in racks {
        let mut path = vec![rack];
        path.extend(topology.ancestors(rack)?);
        paths.push(path);
    }
    let mut free_slots = vec![topology.rack_capacity(); racks.len()];

    // First-fit decreasing by instance peak.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        traces[b]
            .peak()
            .partial_cmp(&traces[a].peak())
            .expect("peaks are finite")
    });

    let mut rack_of = vec![racks[0]; n];
    for &i in &order {
        let samples = traces[i].samples();
        let mut best: Option<(usize, f64)> = None;
        for (r, path) in paths.iter().enumerate() {
            if free_slots[r] == 0 {
                continue;
            }
            let mut cost = 0.0;
            for node in path {
                let idx = node.index();
                let agg = &aggregate[idx];
                let mut new_peak = 0.0f64;
                for (a, s) in agg.iter().zip(samples) {
                    let v = a + s;
                    if v > new_peak {
                        new_peak = v;
                    }
                }
                cost += new_peak - peak[idx];
            }
            if best.map_or(true, |(_, bc)| cost < bc) {
                best = Some((r, cost));
            }
        }
        let (r, _) = best.expect("capacity was checked up front");
        free_slots[r] -= 1;
        rack_of[i] = racks[r];
        for node in &paths[r] {
            let idx = node.index();
            let mut new_peak = 0.0f64;
            for (a, s) in aggregate[idx].iter_mut().zip(samples) {
                *a += s;
                if *a > new_peak {
                    new_peak = *a;
                }
            }
            peak[idx] = new_peak;
        }
    }
    Assignment::new(rack_of, topology)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oblivious::random_placement;
    use so_powertree::{Level, NodeAggregates};
    use so_workloads::DcScenario;

    fn topo() -> PowerTopology {
        PowerTopology::builder()
            .suites(1)
            .msbs_per_suite(1)
            .sbs_per_msb(2)
            .rpps_per_sb(2)
            .racks_per_rpp(2)
            .rack_capacity(6)
            .build()
            .unwrap()
    }

    #[test]
    fn complementary_pairs_are_separated() {
        let t = PowerTopology::builder()
            .suites(1)
            .msbs_per_suite(1)
            .sbs_per_msb(1)
            .rpps_per_sb(1)
            .racks_per_rpp(2)
            .rack_capacity(1)
            .build()
            .unwrap();
        let traces = vec![
            PowerTrace::new(vec![10.0, 0.0], 10).unwrap(),
            PowerTrace::new(vec![10.0, 0.0], 10).unwrap(),
        ];
        let assignment = greedy_peak_placement(&t, &traces).unwrap();
        // With one slot per rack, the two synchronous instances must split.
        assert_ne!(
            assignment.rack_of(0).unwrap(),
            assignment.rack_of(1).unwrap()
        );
    }

    #[test]
    fn beats_random_on_heterogeneous_fleets() {
        let fleet = DcScenario::dc3().generate_fleet(48).unwrap();
        let t = topo();
        let greedy = greedy_peak_placement(&t, fleet.averaged_traces()).unwrap();
        let random = random_placement(48, &t, 3).unwrap();

        let test = fleet.test_traces();
        let g = NodeAggregates::compute(&t, &greedy, test)
            .unwrap()
            .sum_of_peaks(&t, Level::Rack);
        let r = NodeAggregates::compute(&t, &random, test)
            .unwrap()
            .sum_of_peaks(&t, Level::Rack);
        assert!(g < r, "greedy {g} should beat random {r}");
    }

    #[test]
    fn respects_capacity_and_covers_everyone() {
        let fleet = DcScenario::dc1().generate_fleet(48).unwrap();
        let t = topo(); // capacity 48
        let assignment = greedy_peak_placement(&t, fleet.averaged_traces()).unwrap();
        assert_eq!(assignment.len(), 48);
        for (_, members) in assignment.by_rack() {
            assert!(members.len() <= t.rack_capacity());
        }
        // Over capacity is rejected.
        let fleet = DcScenario::dc1().generate_fleet(49).unwrap();
        assert!(greedy_peak_placement(&t, fleet.averaged_traces()).is_err());
    }

    #[test]
    fn empty_input_yields_empty_assignment() {
        let t = topo();
        let assignment = greedy_peak_placement(&t, &[]).unwrap();
        assert!(assignment.is_empty());
    }
}
