//! Baseline placement and provisioning schemes the paper compares against.
//!
//! * [`oblivious_placement`] — the traditional service-grouped layout
//!   (instances of one service land together), with a `mixing` knob to
//!   model historically interleaved datacenters;
//! * [`random_placement`] — a fully random balanced layout;
//! * [`statprof_required_budget`] / [`aggregate_required_budget`] — the
//!   StatProf(u, δ) statistical-multiplexing provisioning baseline and the
//!   SmoOp(u, δ) aggregate-trace counterpart of Figure 11;
//! * [`shave_with_battery`] — DistributedUPS-style battery peak shaving,
//!   reproducing the paper's critique that batteries cannot span
//!   hours-long diurnal peaks.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod esd;
mod greedy;
mod oblivious;
mod statprof;

pub use esd::{shave_with_battery, BatteryModel, ShaveOutcome};
pub use greedy::greedy_peak_placement;
pub use oblivious::{oblivious_placement, random_placement};
pub use statprof::{
    aggregate_required_budget, statprof_required_budget, ProvisioningDegrees, ProvisioningReport,
};
