//! The StatProf baseline: statistical-profiling power provisioning
//! (Govindan et al., EuroSys 2009), as compared against in the paper's
//! Figure 11.
//!
//! StatProf models each instance's power as an empirical CDF and
//! provisions every node at the sum of its instances'
//! `(100 − u)`-th-percentile powers (degree of under-provisioning `u`),
//! with an additional datacenter-level overbooking factor `1/(1 + δ)`. It
//! ignores *when* instances draw power; SmoothOperator's counterpart
//! provisions each node at the `(100 − u)`-th percentile of the node's
//! *aggregate* trace, capturing temporal cancellation.

use serde::{Deserialize, Serialize};
use so_powertrace::{Ecdf, PowerTrace};
use so_powertree::{Assignment, Level, NodeAggregates, PowerTopology, TreeError};

/// Degrees of under-provisioning and overbooking, the `(u, δ)` pair of the
/// paper's `StatProf(u, δ)` / `SmoOp(u, δ)` notation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProvisioningDegrees {
    /// Degree of under-provisioning `u`, percent (provision at the
    /// `(100 − u)`-th percentile).
    pub underprovision_pct: f64,
    /// Degree of overbooking `δ` applied at the datacenter level.
    pub overbooking: f64,
}

impl ProvisioningDegrees {
    /// The conservative `(0, 0)` setting: provision for observed peaks.
    pub fn none() -> Self {
        Self {
            underprovision_pct: 0.0,
            overbooking: 0.0,
        }
    }

    /// Validates the degrees. Degenerate-but-legal settings are defined
    /// explicitly rather than left to float coincidence:
    ///
    /// * `u = 0` provisions at the observed peak (the 100th percentile);
    /// * `u = 100` provisions at the 0th percentile — the minimum sample;
    /// * `δ = 0` applies no overbooking (the datacenter divisor is
    ///   exactly `1`).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`](so_powertrace::TraceError) when `u` is
    /// outside `[0, 100]` or NaN, or `δ` is negative or NaN.
    pub fn validate(&self) -> Result<(), so_powertrace::TraceError> {
        if !(0.0..=100.0).contains(&self.underprovision_pct) || self.underprovision_pct.is_nan() {
            return Err(so_powertrace::TraceError::InvalidQuantile(
                self.underprovision_pct,
            ));
        }
        if self.overbooking.is_nan() || self.overbooking < 0.0 {
            return Err(so_powertrace::TraceError::InvalidSample {
                index: 0,
                value: self.overbooking,
            });
        }
        Ok(())
    }

    /// Quantile to provision at: `(100 − u) / 100`, exactly `0.0` for
    /// `u = 100` and exactly `1.0` for `u = 0` (validated range).
    fn quantile(&self) -> f64 {
        ((100.0 - self.underprovision_pct) / 100.0).clamp(0.0, 1.0)
    }
}

/// Required power budget per level under some provisioning scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvisioningReport {
    /// `(level, required watts)`, root level first.
    pub required: Vec<(Level, f64)>,
}

impl ProvisioningReport {
    /// Required budget at one level.
    pub fn at_level(&self, level: Level) -> f64 {
        self.required[level.depth()].1
    }
}

/// StatProf(u, δ): per-node requirement is the *sum of per-instance
/// percentile powers*; the datacenter level is overbooked by `1/(1 + δ)`.
///
/// With `(0, 0)` the datacenter requirement is exactly the fleet's
/// sum-of-peaks; with `u = 100` every node is provisioned at the sum of
/// its instances' minimum samples (see
/// [`ProvisioningDegrees::validate`] for the documented degenerate
/// cases).
///
/// # Errors
///
/// Rejects invalid degrees ([`ProvisioningDegrees::validate`]) and
/// propagates tree/trace errors.
pub fn statprof_required_budget(
    topology: &PowerTopology,
    assignment: &Assignment,
    instance_traces: &[PowerTrace],
    degrees: ProvisioningDegrees,
) -> Result<ProvisioningReport, TreeError> {
    degrees.validate().map_err(TreeError::Trace)?;
    if assignment.len() != instance_traces.len() {
        return Err(TreeError::InstanceCountMismatch {
            assignment: assignment.len(),
            traces: instance_traces.len(),
        });
    }
    let q = degrees.quantile();
    let percentile_power: Vec<f64> = instance_traces
        .iter()
        .map(|t| Ecdf::from_trace(t).quantile(q))
        .collect::<Result<_, _>>()?;

    // Per-instance percentile powers accumulate up the tree exactly like
    // traces do, but as scalars.
    let mut node_power = vec![0.0f64; topology.len()];
    for (i, &p) in percentile_power.iter().enumerate() {
        node_power[assignment.rack_of(i)?.index()] += p;
    }
    for idx in (1..topology.len()).rev() {
        if let Some(parent) = topology.node(so_powertree::NodeId::new(idx))?.parent() {
            node_power[parent.index()] += node_power[idx];
        }
    }

    let required = Level::ALL
        .iter()
        .map(|&level| {
            let mut total: f64 = topology
                .nodes_at_level(level)
                .iter()
                .map(|&id| node_power[id.index()])
                .sum();
            if level == Level::Datacenter {
                total /= 1.0 + degrees.overbooking;
            }
            (level, total)
        })
        .collect();
    Ok(ProvisioningReport { required })
}

/// SmoOp(u, δ): per-node requirement is the `(100 − u)`-th percentile of
/// the node's *aggregate* trace; the datacenter level is overbooked by
/// `1/(1 + δ)`. With `(0, 0)` this is exactly peak-of-aggregate
/// provisioning — the datacenter requirement equals the true aggregate
/// peak of the whole fleet (an invariant `so-oracles` enforces).
///
/// # Errors
///
/// Rejects invalid degrees ([`ProvisioningDegrees::validate`]) and
/// propagates tree/trace errors.
pub fn aggregate_required_budget(
    topology: &PowerTopology,
    assignment: &Assignment,
    instance_traces: &[PowerTrace],
    degrees: ProvisioningDegrees,
) -> Result<ProvisioningReport, TreeError> {
    degrees.validate().map_err(TreeError::Trace)?;
    let aggregates = NodeAggregates::compute(topology, assignment, instance_traces)?;
    let q = degrees.quantile();
    let required = Level::ALL
        .iter()
        .map(|&level| {
            let mut total = 0.0;
            for &id in topology.nodes_at_level(level) {
                total += aggregates.trace(id)?.quantile(q)?;
            }
            if level == Level::Datacenter {
                total /= 1.0 + degrees.overbooking;
            }
            Ok((level, total))
        })
        .collect::<Result<Vec<_>, TreeError>>()?;
    Ok(ProvisioningReport { required })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> PowerTopology {
        PowerTopology::builder()
            .suites(1)
            .msbs_per_suite(1)
            .sbs_per_msb(1)
            .rpps_per_sb(2)
            .racks_per_rpp(2)
            .rack_capacity(2)
            .build()
            .unwrap()
    }

    fn out_of_phase_traces() -> Vec<PowerTrace> {
        vec![
            PowerTrace::new(vec![100.0, 0.0], 10).unwrap(),
            PowerTrace::new(vec![0.0, 100.0], 10).unwrap(),
            PowerTrace::new(vec![100.0, 0.0], 10).unwrap(),
            PowerTrace::new(vec![0.0, 100.0], 10).unwrap(),
        ]
    }

    #[test]
    fn statprof_ignores_temporal_cancellation() {
        let t = topo();
        let a = Assignment::round_robin(&t, 4).unwrap();
        let traces = out_of_phase_traces();
        let degrees = ProvisioningDegrees::none();

        let statprof = statprof_required_budget(&t, &a, &traces, degrees).unwrap();
        let smoop = aggregate_required_budget(&t, &a, &traces, degrees).unwrap();

        // StatProf at the DC level: sum of peaks = 400.
        assert_eq!(statprof.at_level(Level::Datacenter), 400.0);
        // Aggregate-aware: peaks cancel pairwise, total stays 200.
        assert_eq!(smoop.at_level(Level::Datacenter), 200.0);
        // At every level SmoOp requires at most what StatProf requires.
        for level in Level::ALL {
            assert!(smoop.at_level(level) <= statprof.at_level(level) + 1e-9);
        }
    }

    #[test]
    fn underprovisioning_lowers_requirements() {
        let t = topo();
        let a = Assignment::round_robin(&t, 4).unwrap();
        // Spiky traces: percentile provisioning cuts the requirement.
        let traces: Vec<PowerTrace> = (0..4)
            .map(|_| {
                let mut v = vec![10.0; 100];
                v[3] = 200.0;
                PowerTrace::new(v, 10).unwrap()
            })
            .collect();
        let none = statprof_required_budget(&t, &a, &traces, ProvisioningDegrees::none()).unwrap();
        let under = statprof_required_budget(
            &t,
            &a,
            &traces,
            ProvisioningDegrees {
                underprovision_pct: 5.0,
                overbooking: 0.0,
            },
        )
        .unwrap();
        for level in Level::ALL {
            assert!(under.at_level(level) < none.at_level(level));
        }
    }

    #[test]
    fn overbooking_only_affects_datacenter_level() {
        let t = topo();
        let a = Assignment::round_robin(&t, 4).unwrap();
        let traces = out_of_phase_traces();
        let none = statprof_required_budget(&t, &a, &traces, ProvisioningDegrees::none()).unwrap();
        let over = statprof_required_budget(
            &t,
            &a,
            &traces,
            ProvisioningDegrees {
                underprovision_pct: 0.0,
                overbooking: 0.1,
            },
        )
        .unwrap();
        assert!(over.at_level(Level::Datacenter) < none.at_level(Level::Datacenter));
        for level in [Level::Suite, Level::Msb, Level::Sb, Level::Rpp, Level::Rack] {
            assert_eq!(over.at_level(level), none.at_level(level));
        }
    }

    #[test]
    fn full_underprovisioning_budgets_at_minimum_samples() {
        let t = topo();
        let a = Assignment::round_robin(&t, 4).unwrap();
        let traces: Vec<PowerTrace> = (0..4)
            .map(|i| PowerTrace::new(vec![10.0 + i as f64, 50.0, 90.0], 10).unwrap())
            .collect();
        let degrees = ProvisioningDegrees {
            underprovision_pct: 100.0,
            overbooking: 0.0,
        };
        let statprof = statprof_required_budget(&t, &a, &traces, degrees).unwrap();
        // u = 100 → the 0th percentile: sum of the per-instance minima.
        let min_sum: f64 = traces.iter().map(|t| t.min()).sum();
        assert_eq!(statprof.at_level(Level::Datacenter), min_sum);
        // SmoOp at u = 100: minimum of each node's aggregate trace.
        let smoop = aggregate_required_budget(&t, &a, &traces, degrees).unwrap();
        let aggregate_min = PowerTrace::sum_of(traces.iter()).unwrap().min();
        assert!((smoop.at_level(Level::Datacenter) - aggregate_min).abs() < 1e-9);
    }

    #[test]
    fn zero_overbooking_divides_by_exactly_one() {
        let t = topo();
        let a = Assignment::round_robin(&t, 4).unwrap();
        let traces = out_of_phase_traces();
        let report =
            statprof_required_budget(&t, &a, &traces, ProvisioningDegrees::none()).unwrap();
        // δ = 0 is the identity, bit-for-bit: no `x / 1.0` drift.
        let sum_of_peaks: f64 = traces.iter().map(|t| t.peak()).sum();
        assert_eq!(report.at_level(Level::Datacenter), sum_of_peaks);
    }

    #[test]
    fn all_zero_traces_have_zero_budgets() {
        let t = topo();
        let a = Assignment::round_robin(&t, 4).unwrap();
        let traces: Vec<PowerTrace> = (0..4)
            .map(|_| PowerTrace::new(vec![0.0; 4], 10).unwrap())
            .collect();
        for degrees in [
            ProvisioningDegrees::none(),
            ProvisioningDegrees {
                underprovision_pct: 100.0,
                overbooking: 0.5,
            },
        ] {
            let statprof = statprof_required_budget(&t, &a, &traces, degrees).unwrap();
            let smoop = aggregate_required_budget(&t, &a, &traces, degrees).unwrap();
            for level in Level::ALL {
                assert_eq!(statprof.at_level(level), 0.0);
                assert_eq!(smoop.at_level(level), 0.0);
            }
        }
    }

    #[test]
    fn invalid_degrees_are_rejected() {
        let t = topo();
        let a = Assignment::round_robin(&t, 4).unwrap();
        let traces = out_of_phase_traces();
        for degrees in [
            ProvisioningDegrees {
                underprovision_pct: 101.0,
                overbooking: 0.0,
            },
            ProvisioningDegrees {
                underprovision_pct: -5.0,
                overbooking: 0.0,
            },
            ProvisioningDegrees {
                underprovision_pct: 0.0,
                overbooking: -0.5,
            },
            ProvisioningDegrees {
                underprovision_pct: f64::NAN,
                overbooking: 0.0,
            },
        ] {
            assert!(statprof_required_budget(&t, &a, &traces, degrees).is_err());
            assert!(aggregate_required_budget(&t, &a, &traces, degrees).is_err());
        }
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let t = topo();
        let a = Assignment::round_robin(&t, 4).unwrap();
        let traces = out_of_phase_traces();
        assert!(
            statprof_required_budget(&t, &a, &traces[..2], ProvisioningDegrees::none()).is_err()
        );
    }
}
