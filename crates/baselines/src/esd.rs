//! Energy-storage-device (battery) peak shaving — the DistributedUPS-style
//! baseline the paper compares against qualitatively.
//!
//! Prior work places batteries at power nodes and discharges them during
//! peaks. The paper's critique (§1, §6): battery capacity "can only handle
//! peaks that span at most tens of minutes, making it unsuitable for
//! Facebook type of workloads whose peak may last for hours", and
//! unbalanced placements deplete the batteries of hot nodes while cold
//! nodes never use theirs. This module reproduces both effects.

use serde::{Deserialize, Serialize};
use so_powertrace::PowerTrace;

/// A battery attached to one power node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryModel {
    /// Usable energy, watt-minutes.
    pub capacity_watt_minutes: f64,
    /// Maximum discharge rate, watts.
    pub max_discharge_watts: f64,
    /// Maximum recharge rate, watts.
    pub max_recharge_watts: f64,
    /// Round-trip efficiency in `(0, 1]` (applied on recharge).
    pub efficiency: f64,
}

impl BatteryModel {
    /// A battery sized to carry `minutes` of `watts` overdraw.
    pub fn sized_for(watts: f64, minutes: f64) -> Self {
        Self {
            capacity_watt_minutes: watts * minutes,
            max_discharge_watts: watts,
            max_recharge_watts: watts / 2.0,
            efficiency: 0.9,
        }
    }
}

/// Outcome of shaving one node's power trace with a battery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShaveOutcome {
    /// Samples where the budget was exceeded and the battery could *not*
    /// fully cover the gap.
    pub uncovered_samples: usize,
    /// Total over-budget energy the battery absorbed, watt-minutes.
    pub shaved_watt_minutes: f64,
    /// Total over-budget energy left uncovered, watt-minutes.
    pub uncovered_watt_minutes: f64,
    /// Lowest state of charge reached, watt-minutes.
    pub min_state_of_charge: f64,
}

impl ShaveOutcome {
    /// Whether the battery kept the node within budget throughout.
    pub fn fully_covered(&self) -> bool {
        self.uncovered_samples == 0
    }
}

/// Simulates battery peak shaving of `draw` against `budget_watts`.
///
/// The battery starts full, discharges (up to rate and state of charge)
/// whenever the draw exceeds the budget, and recharges from headroom when
/// below it.
///
/// # Panics
///
/// Panics if the battery parameters or budget are not positive/finite.
pub fn shave_with_battery(
    draw: &PowerTrace,
    budget_watts: f64,
    battery: BatteryModel,
) -> ShaveOutcome {
    assert!(
        budget_watts.is_finite() && budget_watts > 0.0,
        "budget must be positive"
    );
    assert!(
        battery.capacity_watt_minutes > 0.0
            && battery.max_discharge_watts > 0.0
            && battery.max_recharge_watts >= 0.0
            && battery.efficiency > 0.0
            && battery.efficiency <= 1.0,
        "battery parameters must be positive"
    );

    let step = draw.step_minutes() as f64;
    let mut soc = battery.capacity_watt_minutes;
    let mut min_soc = soc;
    let mut uncovered_samples = 0;
    let mut shaved = 0.0;
    let mut uncovered = 0.0;

    for &p in draw.samples() {
        if p > budget_watts {
            let deficit = p - budget_watts;
            let deliverable = battery.max_discharge_watts.min(soc / step).min(deficit);
            soc -= deliverable * step;
            shaved += deliverable * step;
            let remaining = deficit - deliverable;
            if remaining > 1e-9 {
                uncovered_samples += 1;
                uncovered += remaining * step;
            }
        } else {
            let headroom = budget_watts - p;
            let intake = battery.max_recharge_watts.min(headroom);
            soc = (soc + intake * step * battery.efficiency).min(battery.capacity_watt_minutes);
        }
        min_soc = min_soc.min(soc);
    }
    ShaveOutcome {
        uncovered_samples,
        shaved_watt_minutes: shaved,
        uncovered_watt_minutes: uncovered,
        min_state_of_charge: min_soc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(samples: Vec<f64>) -> PowerTrace {
        PowerTrace::new(samples, 10).unwrap()
    }

    #[test]
    fn short_burst_is_fully_covered() {
        // 20 minutes of +100 W overdraw; battery sized for 30 minutes.
        let mut samples = vec![500.0; 30];
        samples[10] = 700.0;
        samples[11] = 700.0;
        let outcome =
            shave_with_battery(&trace(samples), 600.0, BatteryModel::sized_for(100.0, 30.0));
        assert!(outcome.fully_covered());
        assert!((outcome.shaved_watt_minutes - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn hours_long_peak_depletes_the_battery() {
        // 6 hours of +100 W overdraw; battery carries only 30 minutes.
        let samples: Vec<f64> = (0..60)
            .map(|t| if (10..46).contains(&t) { 700.0 } else { 500.0 })
            .collect();
        let outcome =
            shave_with_battery(&trace(samples), 600.0, BatteryModel::sized_for(100.0, 30.0));
        assert!(!outcome.fully_covered());
        assert!(outcome.uncovered_samples > 20, "battery lasted too long");
        assert!(outcome.min_state_of_charge < 1.0);
    }

    #[test]
    fn discharge_rate_limits_tall_spikes() {
        // A single sample of +500 W but the battery can only push 100 W.
        let mut samples = vec![500.0; 10];
        samples[5] = 1_100.0;
        let outcome =
            shave_with_battery(&trace(samples), 600.0, BatteryModel::sized_for(100.0, 60.0));
        assert_eq!(outcome.uncovered_samples, 1);
        assert!((outcome.uncovered_watt_minutes - 4_000.0).abs() < 1e-6);
    }

    #[test]
    fn battery_recharges_between_bursts() {
        // Two 20-minute bursts separated by a long idle valley.
        let mut samples = vec![100.0; 100];
        samples[5..7].fill(700.0);
        samples[80..82].fill(700.0);
        let outcome =
            shave_with_battery(&trace(samples), 600.0, BatteryModel::sized_for(100.0, 25.0));
        assert!(
            outcome.fully_covered(),
            "recharge should cover the second burst"
        );
    }
}
