//! Property-based tests for the power-tree substrate.

use proptest::prelude::*;
use so_powertrace::PowerTrace;
use so_powertree::{Assignment, Level, NodeAggregates, PowerTopology};

fn small_topology() -> PowerTopology {
    PowerTopology::builder()
        .suites(1)
        .msbs_per_suite(2)
        .sbs_per_msb(2)
        .rpps_per_sb(2)
        .racks_per_rpp(2)
        .rack_capacity(4)
        .rack_budget_watts(1_000.0)
        .build()
        .expect("valid shape")
}

fn instance_traces(n: usize, len: usize) -> impl Strategy<Value = Vec<PowerTrace>> {
    prop::collection::vec(prop::collection::vec(0.0f64..100.0, len..=len), n..=n).prop_map(|vs| {
        vs.into_iter()
            .map(|v| PowerTrace::new(v, 10).expect("valid samples"))
            .collect()
    })
}

proptest! {
    /// Root aggregate equals the element-wise sum of all instance traces,
    /// regardless of the assignment.
    #[test]
    fn root_aggregate_is_assignment_invariant(
        traces in instance_traces(16, 8),
        seed in 0usize..16,
    ) {
        let topo = small_topology();
        let racks = topo.racks();
        // Two different assignments over the same instances.
        let a1 = Assignment::round_robin(&topo, 16).unwrap();
        let rack_of: Vec<_> = (0..16).map(|i| racks[(i + seed) % racks.len()]).collect();
        let a2 = Assignment::new(rack_of, &topo).unwrap();

        let agg1 = NodeAggregates::compute(&topo, &a1, &traces).unwrap();
        let agg2 = NodeAggregates::compute(&topo, &a2, &traces).unwrap();
        let r1 = agg1.trace(topo.root()).unwrap();
        let r2 = agg2.trace(topo.root()).unwrap();
        for i in 0..r1.len() {
            prop_assert!((r1.samples()[i] - r2.samples()[i]).abs() < 1e-6);
        }
    }

    /// At every level, the sum of node aggregates equals the root aggregate
    /// (power is conserved down the tree).
    #[test]
    fn per_level_aggregates_conserve_power(traces in instance_traces(16, 6)) {
        let topo = small_topology();
        let a = Assignment::round_robin(&topo, 16).unwrap();
        let agg = NodeAggregates::compute(&topo, &a, &traces).unwrap();
        let root = agg.trace(topo.root()).unwrap().clone();
        for level in [Level::Suite, Level::Msb, Level::Sb, Level::Rpp, Level::Rack] {
            let level_traces: Vec<_> = topo
                .nodes_at_level(level)
                .iter()
                .map(|&id| agg.trace(id).unwrap())
                .collect();
            let sum = PowerTrace::sum_of(level_traces.into_iter()).unwrap();
            for i in 0..root.len() {
                prop_assert!((root.samples()[i] - sum.samples()[i]).abs() < 1e-6);
            }
        }
    }

    /// Sum of peaks is monotone in depth: aggregating children can only
    /// cancel peaks, so each level's sum of peaks is at least its parent
    /// level's (fragmentation is worst at the leaves).
    #[test]
    fn sum_of_peaks_grows_with_depth(traces in instance_traces(16, 6)) {
        let topo = small_topology();
        let a = Assignment::round_robin(&topo, 16).unwrap();
        let agg = NodeAggregates::compute(&topo, &a, &traces).unwrap();
        let mut prev = 0.0f64;
        for level in Level::ALL {
            let sp = agg.sum_of_peaks(&topo, level);
            prop_assert!(sp + 1e-6 >= prev, "level {level} sum {sp} below parent {prev}");
            prev = sp;
        }
    }

    /// instances_under(root) is always the full instance set.
    #[test]
    fn instances_under_root_is_everything(n in 1usize..=60) {
        let topo = small_topology();
        let a = Assignment::round_robin(&topo, n).unwrap();
        let under = a.instances_under(&topo, topo.root()).unwrap();
        prop_assert_eq!(under, (0..n).collect::<Vec<_>>());
    }

    /// Swapping two instances never changes per-rack instance counts.
    #[test]
    fn swap_preserves_rack_counts(i in 0usize..16, j in 0usize..16) {
        let topo = small_topology();
        let mut a = Assignment::round_robin(&topo, 16).unwrap();
        let counts_before: Vec<usize> =
            a.by_rack().values().map(|v| v.len()).collect();
        a.swap(i, j).unwrap();
        let counts_after: Vec<usize> =
            a.by_rack().values().map(|v| v.len()).collect();
        prop_assert_eq!(counts_before, counts_after);
    }
}
