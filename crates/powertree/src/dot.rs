//! Graphviz export of power topologies.
//!
//! `dot -Tsvg topology.dot -o topology.svg` renders the tree with budgets
//! (and, when supplied, per-node peak annotations) — handy for inspecting
//! fragmentation visually.

use std::fmt::Write as _;

use crate::error::TreeError;
use crate::topology::PowerTopology;

/// Renders the topology in Graphviz `dot` format.
///
/// When `peaks` is provided (indexed by node id, e.g. from
/// [`NodeAggregates`]), each node is annotated with its peak and
/// utilization, and nodes above 90% budget are highlighted.
///
/// [`NodeAggregates`]: crate::NodeAggregates
///
/// # Errors
///
/// Returns [`TreeError::InstanceCountMismatch`] when `peaks` does not
/// cover every node.
pub fn to_dot(topology: &PowerTopology, peaks: Option<&[f64]>) -> Result<String, TreeError> {
    if let Some(peaks) = peaks {
        if peaks.len() != topology.len() {
            return Err(TreeError::InstanceCountMismatch {
                assignment: topology.len(),
                traces: peaks.len(),
            });
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "digraph power_topology {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for node in topology.nodes() {
        let mut label = format!("{}\\n{:.0} W budget", node.name(), node.budget_watts());
        let mut attrs = String::new();
        if let Some(peaks) = peaks {
            let peak = peaks[node.id().index()];
            let utilization = if node.budget_watts() > 0.0 {
                peak / node.budget_watts()
            } else {
                0.0
            };
            let _ = write!(label, "\\npeak {:.0} W ({:.0}%)", peak, 100.0 * utilization);
            if utilization > 0.9 {
                attrs.push_str(", style=filled, fillcolor=\"#ffcccc\"");
            }
        }
        let _ = writeln!(out, "  n{} [label=\"{label}\"{attrs}];", node.id().index());
    }
    for node in topology.nodes() {
        for &child in node.children() {
            let _ = writeln!(out, "  n{} -> n{};", node.id().index(), child.index());
        }
    }
    let _ = writeln!(out, "}}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> PowerTopology {
        PowerTopology::builder()
            .suites(1)
            .msbs_per_suite(1)
            .sbs_per_msb(1)
            .rpps_per_sb(1)
            .racks_per_rpp(2)
            .rack_capacity(2)
            .rack_budget_watts(100.0)
            .build()
            .unwrap()
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let t = topo();
        let dot = to_dot(&t, None).unwrap();
        assert!(dot.starts_with("digraph power_topology {"));
        assert!(dot.trim_end().ends_with('}'));
        for node in t.nodes() {
            assert!(dot.contains(&format!("n{} [", node.id().index())));
            assert!(dot.contains(node.name()));
        }
        // Edges: every non-root node appears as a target.
        let edges = dot.matches(" -> ").count();
        assert_eq!(edges, t.len() - 1);
    }

    #[test]
    fn peak_annotations_and_highlighting() {
        let t = topo();
        // Rack budgets are 100 W; one rack at 95 W is highlighted.
        let mut peaks = vec![0.0; t.len()];
        let hot = t.racks()[0];
        peaks[hot.index()] = 95.0;
        let dot = to_dot(&t, Some(&peaks)).unwrap();
        assert!(dot.contains("peak 95 W (95%)"));
        assert!(dot.contains("fillcolor"));
    }

    #[test]
    fn mismatched_peaks_rejected() {
        let t = topo();
        assert!(to_dot(&t, Some(&[1.0])).is_err());
    }
}
