//! Headroom and utilization reporting across the tree.

use serde::{Deserialize, Serialize};

use crate::aggregate::NodeAggregates;
use crate::error::TreeError;
use crate::level::Level;
use crate::node::NodeId;
use crate::topology::PowerTopology;

/// Headroom numbers for one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeHeadroom {
    /// The node.
    pub node: NodeId,
    /// Its level.
    pub level: Level,
    /// Configured budget, watts.
    pub budget_watts: f64,
    /// Aggregate peak power, watts.
    pub peak_watts: f64,
    /// `budget − peak`, watts (negative when over-committed).
    pub headroom_watts: f64,
    /// `peak / budget`: how much of the budget the peak uses.
    pub peak_utilization: f64,
}

/// Headroom for every node of a topology under one assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadroomReport {
    entries: Vec<NodeHeadroom>,
}

impl HeadroomReport {
    /// Computes headroom for every node.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] if the aggregates do not cover the
    /// topology.
    pub fn compute(
        topology: &PowerTopology,
        aggregates: &NodeAggregates,
    ) -> Result<Self, TreeError> {
        let mut entries = Vec::with_capacity(topology.len());
        for node in topology.nodes() {
            let peak = aggregates.peak(node.id())?;
            let budget = node.budget_watts();
            entries.push(NodeHeadroom {
                node: node.id(),
                level: node.level(),
                budget_watts: budget,
                peak_watts: peak,
                headroom_watts: budget - peak,
                peak_utilization: if budget > 0.0 { peak / budget } else { 0.0 },
            });
        }
        Ok(Self { entries })
    }

    /// All entries, in node-id order.
    pub fn entries(&self) -> &[NodeHeadroom] {
        &self.entries
    }

    /// Entries of one level.
    pub fn at_level(&self, level: Level) -> impl Iterator<Item = &NodeHeadroom> {
        self.entries.iter().filter(move |e| e.level == level)
    }

    /// The entry for one node.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] for unknown nodes.
    pub fn node(&self, node: NodeId) -> Result<&NodeHeadroom, TreeError> {
        self.entries
            .get(node.index())
            .ok_or(TreeError::UnknownNode(node))
    }

    /// Total headroom at one level, watts (clamped at zero per node: an
    /// over-committed node contributes no usable headroom elsewhere).
    pub fn usable_at_level(&self, level: Level) -> f64 {
        self.at_level(level)
            .map(|e| e.headroom_watts.max(0.0))
            .sum()
    }

    /// The node with the least headroom at a level — the fragmentation
    /// bottleneck the remapping framework targets first.
    pub fn tightest_at_level(&self, level: Level) -> Option<&NodeHeadroom> {
        self.at_level(level).min_by(|a, b| {
            a.headroom_watts
                .partial_cmp(&b.headroom_watts)
                .expect("headroom values are finite")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use so_powertrace::PowerTrace;

    #[test]
    fn report_matches_manual_computation() {
        let t = PowerTopology::builder()
            .suites(1)
            .msbs_per_suite(1)
            .sbs_per_msb(1)
            .rpps_per_sb(1)
            .racks_per_rpp(2)
            .rack_capacity(1)
            .rack_budget_watts(100.0)
            .build()
            .unwrap();
        let a = Assignment::round_robin(&t, 2).unwrap();
        let traces = vec![
            PowerTrace::new(vec![80.0, 20.0], 10).unwrap(),
            PowerTrace::new(vec![20.0, 90.0], 10).unwrap(),
        ];
        let agg = NodeAggregates::compute(&t, &a, &traces).unwrap();
        let report = HeadroomReport::compute(&t, &agg).unwrap();

        let racks: Vec<_> = report.at_level(Level::Rack).collect();
        assert_eq!(racks.len(), 2);
        assert_eq!(racks[0].headroom_watts, 20.0);
        assert_eq!(racks[1].headroom_watts, 10.0);

        // RPP budget 200, aggregate [100, 110] peak 110 -> headroom 90.
        let rpp = report.at_level(Level::Rpp).next().unwrap();
        assert_eq!(rpp.headroom_watts, 90.0);
        assert!((rpp.peak_utilization - 0.55).abs() < 1e-12);

        assert_eq!(report.usable_at_level(Level::Rack), 30.0);
        let tightest = report.tightest_at_level(Level::Rack).unwrap();
        assert_eq!(tightest.headroom_watts, 10.0);
    }
}
