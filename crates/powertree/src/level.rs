//! Levels of the multi-level power delivery infrastructure (Figure 2).
//!
//! Facebook datacenters feature a four-level infrastructure consistent with
//! the Open Compute Project specification: each datacenter is composed of
//! suites fed by main switching boards (MSBs), which feed switching boards
//! (SBs), which feed reactive power panels (RPPs), which finally feed racks
//! of servers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One level of the power delivery tree, from the datacenter root down to
/// the rack that servers plug into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Level {
    /// The datacenter root (fed by the substation).
    Datacenter,
    /// A suite: one room of the datacenter.
    Suite,
    /// Main switching board.
    Msb,
    /// Switching board.
    Sb,
    /// Reactive power panel — the lowest-level *power node*; the paper's
    /// leaf power nodes where fragmentation bites hardest.
    Rpp,
    /// A rack of servers (the unit service instances are assigned to).
    Rack,
}

impl Level {
    /// All levels, root first.
    pub const ALL: [Level; 6] = [
        Level::Datacenter,
        Level::Suite,
        Level::Msb,
        Level::Sb,
        Level::Rpp,
        Level::Rack,
    ];

    /// Depth below the root: `Datacenter` is 0, `Rack` is 5.
    pub fn depth(self) -> usize {
        match self {
            Level::Datacenter => 0,
            Level::Suite => 1,
            Level::Msb => 2,
            Level::Sb => 3,
            Level::Rpp => 4,
            Level::Rack => 5,
        }
    }

    /// The level directly below, or `None` for `Rack`.
    pub fn child(self) -> Option<Level> {
        match self {
            Level::Datacenter => Some(Level::Suite),
            Level::Suite => Some(Level::Msb),
            Level::Msb => Some(Level::Sb),
            Level::Sb => Some(Level::Rpp),
            Level::Rpp => Some(Level::Rack),
            Level::Rack => None,
        }
    }

    /// The level directly above, or `None` for `Datacenter`.
    pub fn parent(self) -> Option<Level> {
        match self {
            Level::Datacenter => None,
            Level::Suite => Some(Level::Datacenter),
            Level::Msb => Some(Level::Suite),
            Level::Sb => Some(Level::Msb),
            Level::Rpp => Some(Level::Sb),
            Level::Rack => Some(Level::Rpp),
        }
    }

    /// Whether this is the rack (leaf) level.
    pub fn is_rack(self) -> bool {
        self == Level::Rack
    }

    /// Short display name matching the paper's figures
    /// (`DC`, `SUITE`, `MSB`, `SB`, `RPP`, `RACK`).
    pub fn short_name(self) -> &'static str {
        match self {
            Level::Datacenter => "DC",
            Level::Suite => "SUITE",
            Level::Msb => "MSB",
            Level::Sb => "SB",
            Level::Rpp => "RPP",
            Level::Rack => "RACK",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depths_are_contiguous_root_first() {
        for (i, level) in Level::ALL.iter().enumerate() {
            assert_eq!(level.depth(), i);
        }
    }

    #[test]
    fn child_and_parent_are_inverse() {
        for level in Level::ALL {
            if let Some(child) = level.child() {
                assert_eq!(child.parent(), Some(level));
            }
            if let Some(parent) = level.parent() {
                assert_eq!(parent.child(), Some(level));
            }
        }
        assert_eq!(Level::Rack.child(), None);
        assert_eq!(Level::Datacenter.parent(), None);
    }

    #[test]
    fn ordering_follows_depth() {
        assert!(Level::Datacenter < Level::Suite);
        assert!(Level::Rpp < Level::Rack);
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(Level::Rpp.to_string(), "RPP");
        assert_eq!(Level::Datacenter.to_string(), "DC");
    }
}
