//! Circuit-breaker model: "when the aggregate power at a power node exceeds
//! the power budget of that node, after a short amount of time, the circuit
//! breaker is tripped and the power supply for the entire sub-tree is shut
//! down" (§2.2).

use serde::{Deserialize, Serialize};

use crate::aggregate::NodeAggregates;
use crate::error::TreeError;
use crate::node::NodeId;
use crate::topology::PowerTopology;

/// A breaker trip: `node` exceeded its budget for at least the breaker's
/// sustain window starting at sample `start`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TripEvent {
    /// The tripped node.
    pub node: NodeId,
    /// First sample index of the sustained overdraw.
    pub start: usize,
    /// Number of consecutive over-budget samples observed.
    pub duration: usize,
    /// Highest power drawn during the overdraw, in watts.
    pub peak_watts: f64,
}

/// Breaker behaviour: an overdraw must persist for `sustain_samples`
/// consecutive samples before the breaker trips (real breakers tolerate
/// brief transients).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerModel {
    sustain_samples: usize,
}

impl Default for BreakerModel {
    fn default() -> Self {
        Self { sustain_samples: 2 }
    }
}

impl BreakerModel {
    /// A breaker that trips after `sustain_samples` consecutive over-budget
    /// samples (at least 1).
    pub fn new(sustain_samples: usize) -> Self {
        Self {
            sustain_samples: sustain_samples.max(1),
        }
    }

    /// The configured sustain window, in samples.
    pub fn sustain_samples(&self) -> usize {
        self.sustain_samples
    }

    /// Scans every node's aggregate trace against the topology's
    /// configured budgets and reports all trips.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] if the aggregates do not cover the
    /// topology (cannot happen for aggregates computed against it).
    pub fn evaluate(
        &self,
        topology: &PowerTopology,
        aggregates: &NodeAggregates,
    ) -> Result<Vec<TripEvent>, TreeError> {
        let budgets: Vec<f64> = topology.nodes().iter().map(|n| n.budget_watts()).collect();
        self.evaluate_with_budgets(topology, aggregates, &budgets)
    }

    /// Scans every node's aggregate trace against caller-supplied budgets
    /// (indexed by node id; use `f64::INFINITY` to exempt a node). Useful
    /// for what-if analyses where the provisioned budgets differ from the
    /// topology's nominal ones.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InstanceCountMismatch`] when `budgets` does not
    /// cover every node, and [`TreeError::UnknownNode`] if the aggregates
    /// do not cover the topology.
    pub fn evaluate_with_budgets(
        &self,
        topology: &PowerTopology,
        aggregates: &NodeAggregates,
        budgets: &[f64],
    ) -> Result<Vec<TripEvent>, TreeError> {
        if budgets.len() != topology.len() {
            return Err(TreeError::InstanceCountMismatch {
                assignment: topology.len(),
                traces: budgets.len(),
            });
        }
        let mut trips = Vec::new();
        for node in topology.nodes() {
            let budget = budgets[node.id().index()];
            let trace = aggregates.trace(node.id())?;
            let mut run_start = None;
            let mut run_peak = 0.0f64;
            for (i, &p) in trace.samples().iter().enumerate() {
                if p > budget {
                    if run_start.is_none() {
                        run_start = Some(i);
                        run_peak = p;
                    } else {
                        run_peak = run_peak.max(p);
                    }
                } else if let Some(start) = run_start.take() {
                    let duration = i - start;
                    if duration >= self.sustain_samples {
                        trips.push(TripEvent {
                            node: node.id(),
                            start,
                            duration,
                            peak_watts: run_peak,
                        });
                    }
                }
            }
            if let Some(start) = run_start {
                let duration = trace.len() - start;
                if duration >= self.sustain_samples {
                    trips.push(TripEvent {
                        node: node.id(),
                        start,
                        duration,
                        peak_watts: run_peak,
                    });
                }
            }
        }
        Ok(trips)
    }

    /// Whether any node would trip.
    ///
    /// # Errors
    ///
    /// Same as [`evaluate`](Self::evaluate).
    pub fn is_safe(
        &self,
        topology: &PowerTopology,
        aggregates: &NodeAggregates,
    ) -> Result<bool, TreeError> {
        Ok(self.evaluate(topology, aggregates)?.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::Assignment;
    use so_powertrace::PowerTrace;

    fn topo() -> PowerTopology {
        PowerTopology::builder()
            .suites(1)
            .msbs_per_suite(1)
            .sbs_per_msb(1)
            .rpps_per_sb(1)
            .racks_per_rpp(1)
            .rack_capacity(2)
            .rack_budget_watts(100.0)
            .build()
            .unwrap()
    }

    fn aggregates(samples: Vec<f64>) -> (PowerTopology, NodeAggregates) {
        let t = topo();
        let a = Assignment::round_robin(&t, 1).unwrap();
        let traces = vec![PowerTrace::new(samples, 10).unwrap()];
        let agg = NodeAggregates::compute(&t, &a, &traces).unwrap();
        (t, agg)
    }

    #[test]
    fn brief_transient_does_not_trip() {
        let (t, agg) = aggregates(vec![50.0, 150.0, 50.0]);
        let model = BreakerModel::new(2);
        assert!(model.is_safe(&t, &agg).unwrap());
    }

    #[test]
    fn sustained_overdraw_trips_whole_path() {
        let (t, agg) = aggregates(vec![50.0, 150.0, 150.0, 50.0]);
        let model = BreakerModel::new(2);
        let trips = model.evaluate(&t, &agg).unwrap();
        // Every level sees the same overdraw (budgets all equal one rack's).
        assert_eq!(trips.len(), 6);
        assert!(trips.iter().all(|e| e.start == 1 && e.duration == 2));
        assert!(trips.iter().all(|e| e.peak_watts == 150.0));
    }

    #[test]
    fn overdraw_running_to_end_of_trace_trips() {
        let (t, agg) = aggregates(vec![50.0, 150.0, 150.0]);
        let model = BreakerModel::new(2);
        assert!(!model.is_safe(&t, &agg).unwrap());
    }

    #[test]
    fn sustain_is_clamped_to_one() {
        let model = BreakerModel::new(0);
        assert_eq!(model.sustain_samples(), 1);
        let (t, agg) = aggregates(vec![150.0, 50.0]);
        assert!(!model.is_safe(&t, &agg).unwrap());
    }
}
