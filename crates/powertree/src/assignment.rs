//! Mapping of service instances onto racks.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::TreeError;
use crate::node::NodeId;
use crate::topology::PowerTopology;

/// An assignment of service instances (dense indices `0..n`) to racks of a
/// [`PowerTopology`].
///
/// Both SmoothOperator's placement and the baselines produce `Assignment`
/// values; everything downstream (aggregation, provisioning, the runtime
/// simulator) consumes them.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), so_powertree::TreeError> {
/// use so_powertree::{Assignment, PowerTopology};
///
/// let topo = PowerTopology::builder().build()?;
/// let assignment = Assignment::round_robin(&topo, 100)?;
/// assert_eq!(assignment.len(), 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    rack_of: Vec<NodeId>,
}

impl Assignment {
    /// Creates an assignment from an explicit instance → rack map, validated
    /// against the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] / [`TreeError::NotARack`] for bad
    /// targets and [`TreeError::RackOverCapacity`] when any rack receives
    /// more instances than [`PowerTopology::rack_capacity`].
    pub fn new(rack_of: Vec<NodeId>, topology: &PowerTopology) -> Result<Self, TreeError> {
        let mut counts: BTreeMap<NodeId, usize> = BTreeMap::new();
        for &rack in &rack_of {
            let node = topology.node(rack)?;
            if !node.is_rack() {
                return Err(TreeError::NotARack(rack));
            }
            *counts.entry(rack).or_insert(0) += 1;
        }
        let capacity = topology.rack_capacity();
        for (rack, assigned) in counts {
            if assigned > capacity {
                return Err(TreeError::RackOverCapacity {
                    rack,
                    assigned,
                    capacity,
                });
            }
        }
        Ok(Self { rack_of })
    }

    /// Deals `n` instances across all racks in round-robin order — a
    /// placement-agnostic starting point for tests and examples.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::RackOverCapacity`] when `n` exceeds the
    /// datacenter's server capacity.
    pub fn round_robin(topology: &PowerTopology, n: usize) -> Result<Self, TreeError> {
        let racks = topology.racks();
        let rack_of = (0..n).map(|i| racks[i % racks.len()]).collect();
        Self::new(rack_of, topology)
    }

    /// Number of instances covered.
    pub fn len(&self) -> usize {
        self.rack_of.len()
    }

    /// Whether the assignment covers no instances.
    pub fn is_empty(&self) -> bool {
        self.rack_of.is_empty()
    }

    /// The rack hosting instance `i`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownInstance`] for an out-of-range index.
    pub fn rack_of(&self, i: usize) -> Result<NodeId, TreeError> {
        self.rack_of
            .get(i)
            .copied()
            .ok_or(TreeError::UnknownInstance(i))
    }

    /// The full instance → rack slice.
    pub fn racks(&self) -> &[NodeId] {
        &self.rack_of
    }

    /// Instances grouped by rack, racks in id order.
    pub fn by_rack(&self) -> BTreeMap<NodeId, Vec<usize>> {
        let mut map: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for (i, &rack) in self.rack_of.iter().enumerate() {
            map.entry(rack).or_default().push(i);
        }
        map
    }

    /// All instances hosted in the subtree rooted at `node`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] for a node outside the topology.
    pub fn instances_under(
        &self,
        topology: &PowerTopology,
        node: NodeId,
    ) -> Result<Vec<usize>, TreeError> {
        let racks = topology.racks_under(node)?;
        let by_rack = self.by_rack();
        let mut out = Vec::new();
        for rack in racks {
            if let Some(instances) = by_rack.get(&rack) {
                out.extend_from_slice(instances);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Swaps the racks of instances `a` and `b` — the primitive the
    /// remapping framework (§3.6) uses for incremental repair.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownInstance`] for out-of-range indices.
    pub fn swap(&mut self, a: usize, b: usize) -> Result<(), TreeError> {
        if a >= self.rack_of.len() {
            return Err(TreeError::UnknownInstance(a));
        }
        if b >= self.rack_of.len() {
            return Err(TreeError::UnknownInstance(b));
        }
        self.rack_of.swap(a, b);
        Ok(())
    }

    /// Moves instance `i` to `rack`, validating the target (capacity is
    /// *not* rechecked — callers moving instances should use [`swap`] to
    /// preserve per-rack counts, or re-validate with [`Assignment::new`]).
    ///
    /// [`swap`]: Self::swap
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownInstance`] / [`TreeError::NotARack`] for
    /// bad arguments.
    pub fn move_to(
        &mut self,
        topology: &PowerTopology,
        i: usize,
        rack: NodeId,
    ) -> Result<(), TreeError> {
        if i >= self.rack_of.len() {
            return Err(TreeError::UnknownInstance(i));
        }
        if !topology.node(rack)?.is_rack() {
            return Err(TreeError::NotARack(rack));
        }
        self.rack_of[i] = rack;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> PowerTopology {
        PowerTopology::builder()
            .suites(1)
            .msbs_per_suite(1)
            .sbs_per_msb(1)
            .rpps_per_sb(2)
            .racks_per_rpp(2)
            .rack_capacity(3)
            .build()
            .unwrap()
    }

    #[test]
    fn round_robin_balances() {
        let t = topo();
        let a = Assignment::round_robin(&t, 8).unwrap();
        let by_rack = a.by_rack();
        assert_eq!(by_rack.len(), 4);
        for instances in by_rack.values() {
            assert_eq!(instances.len(), 2);
        }
    }

    #[test]
    fn capacity_is_enforced() {
        let t = topo();
        assert!(Assignment::round_robin(&t, 12).is_ok());
        let err = Assignment::round_robin(&t, 13).unwrap_err();
        assert!(matches!(err, TreeError::RackOverCapacity { .. }));
    }

    #[test]
    fn non_rack_targets_rejected() {
        let t = topo();
        let err = Assignment::new(vec![t.root()], &t).unwrap_err();
        assert!(matches!(err, TreeError::NotARack(_)));
    }

    #[test]
    fn instances_under_subtrees() {
        let t = topo();
        let a = Assignment::round_robin(&t, 8).unwrap();
        let all = a.instances_under(&t, t.root()).unwrap();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
        let rpp = t.nodes_at_level(crate::Level::Rpp)[0];
        let under = a.instances_under(&t, rpp).unwrap();
        assert_eq!(under.len(), 4);
    }

    #[test]
    fn swap_and_move() {
        let t = topo();
        let mut a = Assignment::round_robin(&t, 4).unwrap();
        let r0 = a.rack_of(0).unwrap();
        let r1 = a.rack_of(1).unwrap();
        a.swap(0, 1).unwrap();
        assert_eq!(a.rack_of(0).unwrap(), r1);
        assert_eq!(a.rack_of(1).unwrap(), r0);
        assert!(a.swap(0, 99).is_err());

        a.move_to(&t, 0, r0).unwrap();
        assert_eq!(a.rack_of(0).unwrap(), r0);
        assert!(a.move_to(&t, 0, t.root()).is_err());
    }
}
