//! Construction and navigation of the power delivery tree.

use serde::{Deserialize, Serialize};

use crate::error::TreeError;
use crate::level::Level;
use crate::node::{NodeId, PowerNode};

/// Fan-outs and budgets describing a regular power tree.
///
/// The default shape is a small OCP-style datacenter that keeps simulation
/// tractable: 2 suites × 2 MSBs × 2 SBs × 3 RPPs × 4 racks = 96 racks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyShape {
    /// Suites per datacenter.
    pub suites: usize,
    /// Main switching boards per suite.
    pub msbs_per_suite: usize,
    /// Switching boards per MSB.
    pub sbs_per_msb: usize,
    /// Reactive power panels per SB.
    pub rpps_per_sb: usize,
    /// Racks per RPP.
    pub racks_per_rpp: usize,
    /// Servers (service instances) each rack can host.
    pub rack_capacity: usize,
    /// Power budget of one rack, in watts.
    pub rack_budget_watts: f64,
}

impl Default for TopologyShape {
    fn default() -> Self {
        Self {
            suites: 2,
            msbs_per_suite: 2,
            sbs_per_msb: 2,
            rpps_per_sb: 3,
            racks_per_rpp: 4,
            rack_capacity: 20,
            rack_budget_watts: 6_000.0,
        }
    }
}

impl TopologyShape {
    /// Total number of racks the shape produces.
    pub fn rack_count(&self) -> usize {
        self.suites * self.msbs_per_suite * self.sbs_per_msb * self.rpps_per_sb * self.racks_per_rpp
    }

    /// Total server capacity of the datacenter.
    pub fn server_capacity(&self) -> usize {
        self.rack_count() * self.rack_capacity
    }

    fn fan_out(&self, level: Level) -> usize {
        match level {
            Level::Datacenter => self.suites,
            Level::Suite => self.msbs_per_suite,
            Level::Msb => self.sbs_per_msb,
            Level::Sb => self.rpps_per_sb,
            Level::Rpp => self.racks_per_rpp,
            Level::Rack => 0,
        }
    }
}

/// Builder for [`PowerTopology`] (see [`PowerTopology::builder`]).
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    shape: TopologyShape,
    name: String,
}

impl TopologyBuilder {
    /// Sets the number of suites.
    pub fn suites(&mut self, n: usize) -> &mut Self {
        self.shape.suites = n;
        self
    }

    /// Sets the number of MSBs per suite.
    pub fn msbs_per_suite(&mut self, n: usize) -> &mut Self {
        self.shape.msbs_per_suite = n;
        self
    }

    /// Sets the number of SBs per MSB.
    pub fn sbs_per_msb(&mut self, n: usize) -> &mut Self {
        self.shape.sbs_per_msb = n;
        self
    }

    /// Sets the number of RPPs per SB.
    pub fn rpps_per_sb(&mut self, n: usize) -> &mut Self {
        self.shape.rpps_per_sb = n;
        self
    }

    /// Sets the number of racks per RPP.
    pub fn racks_per_rpp(&mut self, n: usize) -> &mut Self {
        self.shape.racks_per_rpp = n;
        self
    }

    /// Sets the number of servers each rack hosts.
    pub fn rack_capacity(&mut self, n: usize) -> &mut Self {
        self.shape.rack_capacity = n;
        self
    }

    /// Sets the rack power budget in watts.
    pub fn rack_budget_watts(&mut self, watts: f64) -> &mut Self {
        self.shape.rack_budget_watts = watts;
        self
    }

    /// Sets the datacenter name used as the root of node names.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Builds the topology.
    ///
    /// Budgets of internal nodes are the sum of their children's budgets
    /// ("the power budget of each node is approximately the sum of the
    /// budgets of its children", §2.1).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::ZeroFanOut`] for a zero fan-out at any level and
    /// [`TreeError::ZeroRackCapacity`] for a zero rack capacity.
    pub fn build(&self) -> Result<PowerTopology, TreeError> {
        let shape = self.shape;
        for level in [
            Level::Datacenter,
            Level::Suite,
            Level::Msb,
            Level::Sb,
            Level::Rpp,
        ] {
            if shape.fan_out(level) == 0 {
                return Err(TreeError::ZeroFanOut(level));
            }
        }
        if shape.rack_capacity == 0 {
            return Err(TreeError::ZeroRackCapacity);
        }
        if !(shape.rack_budget_watts.is_finite()) || shape.rack_budget_watts <= 0.0 {
            return Err(TreeError::ZeroRackCapacity);
        }

        let mut nodes: Vec<PowerNode> = Vec::new();
        let root = NodeId::new(0);
        nodes.push(PowerNode {
            id: root,
            level: Level::Datacenter,
            budget_watts: 0.0,
            parent: None,
            children: Vec::new(),
            name: self.name.clone(),
        });

        // Breadth-first construction: parents always have smaller ids than
        // their children, which later lets aggregation run in one reverse
        // pass.
        let mut frontier = vec![root];
        for level in [Level::Suite, Level::Msb, Level::Sb, Level::Rpp, Level::Rack] {
            let parent_level = level.parent().expect("non-root levels have parents");
            let fan_out = shape.fan_out(parent_level);
            let mut next = Vec::with_capacity(frontier.len() * fan_out);
            for &parent in &frontier {
                for k in 0..fan_out {
                    let id = NodeId::new(nodes.len());
                    let name = format!(
                        "{}/{}{}",
                        nodes[parent.index()].name,
                        level.short_name().to_lowercase(),
                        k
                    );
                    nodes.push(PowerNode {
                        id,
                        level,
                        budget_watts: 0.0,
                        parent: Some(parent),
                        children: Vec::new(),
                        name,
                    });
                    nodes[parent.index()].children.push(id);
                    next.push(id);
                }
            }
            frontier = next;
        }

        // Budgets bottom-up: racks get the configured budget, every internal
        // node the sum of its children.
        for i in (0..nodes.len()).rev() {
            if nodes[i].level.is_rack() {
                nodes[i].budget_watts = shape.rack_budget_watts;
            } else {
                nodes[i].budget_watts = nodes[i]
                    .children
                    .iter()
                    .map(|c| nodes[c.index()].budget_watts)
                    .sum();
            }
        }

        let mut by_level: Vec<Vec<NodeId>> = vec![Vec::new(); Level::ALL.len()];
        for node in &nodes {
            by_level[node.level.depth()].push(node.id);
        }

        Ok(PowerTopology {
            nodes,
            root,
            shape,
            by_level,
        })
    }
}

/// An immutable multi-level power delivery tree.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), so_powertree::TreeError> {
/// use so_powertree::{Level, PowerTopology};
///
/// let topo = PowerTopology::builder()
///     .suites(1)
///     .msbs_per_suite(2)
///     .sbs_per_msb(2)
///     .rpps_per_sb(2)
///     .racks_per_rpp(3)
///     .rack_capacity(10)
///     .build()?;
/// assert_eq!(topo.nodes_at_level(Level::Rack).len(), 24);
/// assert_eq!(topo.server_capacity(), 240);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTopology {
    nodes: Vec<PowerNode>,
    root: NodeId,
    shape: TopologyShape,
    by_level: Vec<Vec<NodeId>>,
}

impl PowerTopology {
    /// Starts building a topology with the default shape.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder {
            shape: TopologyShape::default(),
            name: "dc".to_string(),
        }
    }

    /// Builds a topology directly from a shape description.
    ///
    /// # Errors
    ///
    /// Same as [`TopologyBuilder::build`].
    pub fn from_shape(shape: TopologyShape, name: impl Into<String>) -> Result<Self, TreeError> {
        TopologyBuilder {
            shape,
            name: name.into(),
        }
        .build()
    }

    /// The shape this topology was built from.
    pub fn shape(&self) -> &TopologyShape {
        &self.shape
    }

    /// The root (datacenter) node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes in the tree (all levels).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A topology always has at least a root; API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] for an id outside this topology.
    pub fn node(&self, id: NodeId) -> Result<&PowerNode, TreeError> {
        self.nodes.get(id.index()).ok_or(TreeError::UnknownNode(id))
    }

    /// All nodes, in id order (parents before children).
    pub fn nodes(&self) -> &[PowerNode] {
        &self.nodes
    }

    /// Ids of all nodes at a level, in construction order.
    pub fn nodes_at_level(&self, level: Level) -> &[NodeId] {
        &self.by_level[level.depth()]
    }

    /// Ids of all racks.
    pub fn racks(&self) -> &[NodeId] {
        self.nodes_at_level(Level::Rack)
    }

    /// Servers each rack can host.
    pub fn rack_capacity(&self) -> usize {
        self.shape.rack_capacity
    }

    /// Total server capacity of the datacenter.
    pub fn server_capacity(&self) -> usize {
        self.shape.server_capacity()
    }

    /// The racks inside the subtree rooted at `id`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] for an id outside this topology.
    pub fn racks_under(&self, id: NodeId) -> Result<Vec<NodeId>, TreeError> {
        let node = self.node(id)?;
        if node.is_rack() {
            return Ok(vec![id]);
        }
        let mut racks = Vec::new();
        let mut stack: Vec<NodeId> = node.children().to_vec();
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n.index()];
            if node.is_rack() {
                racks.push(n);
            } else {
                stack.extend_from_slice(node.children());
            }
        }
        racks.sort();
        Ok(racks)
    }

    /// A copy of this topology with per-rack budgets replaced by
    /// `rack_budgets` (aligned with [`racks`](Self::racks)); internal
    /// nodes' budgets are recomputed as the sum of their children's.
    ///
    /// Useful for modeling non-uniform historical provisioning (e.g.
    /// budgets sized per rack from observed peaks).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InstanceCountMismatch`] when the budget vector
    /// does not cover every rack, and [`TreeError::ZeroRackCapacity`] for
    /// non-positive or non-finite budgets.
    pub fn with_rack_budgets(&self, rack_budgets: &[f64]) -> Result<Self, TreeError> {
        if rack_budgets.len() != self.racks().len() {
            return Err(TreeError::InstanceCountMismatch {
                assignment: self.racks().len(),
                traces: rack_budgets.len(),
            });
        }
        if rack_budgets.iter().any(|b| !b.is_finite() || *b <= 0.0) {
            return Err(TreeError::ZeroRackCapacity);
        }
        let mut out = self.clone();
        for (&rack, &budget) in self.racks().iter().zip(rack_budgets) {
            out.nodes[rack.index()].budget_watts = budget;
        }
        for i in (0..out.nodes.len()).rev() {
            if !out.nodes[i].level.is_rack() {
                out.nodes[i].budget_watts = out.nodes[i]
                    .children
                    .iter()
                    .map(|c| out.nodes[c.index()].budget_watts)
                    .sum();
            }
        }
        Ok(out)
    }

    /// Path from `id` up to (and including) the root.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] for an id outside this topology.
    pub fn ancestors(&self, id: NodeId) -> Result<Vec<NodeId>, TreeError> {
        let mut node = self.node(id)?;
        let mut path = Vec::new();
        while let Some(parent) = node.parent() {
            path.push(parent);
            node = self.node(parent)?;
        }
        Ok(path)
    }

    /// Whether `ancestor` lies on the path from `id` to the root
    /// (a node is not its own ancestor).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] for ids outside this topology.
    pub fn is_ancestor(&self, ancestor: NodeId, id: NodeId) -> Result<bool, TreeError> {
        self.node(ancestor)?;
        Ok(self.ancestors(id)?.contains(&ancestor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PowerTopology {
        PowerTopology::builder()
            .suites(1)
            .msbs_per_suite(2)
            .sbs_per_msb(2)
            .rpps_per_sb(2)
            .racks_per_rpp(2)
            .rack_capacity(4)
            .rack_budget_watts(1_000.0)
            .build()
            .unwrap()
    }

    #[test]
    fn node_counts_per_level() {
        let t = small();
        assert_eq!(t.nodes_at_level(Level::Datacenter).len(), 1);
        assert_eq!(t.nodes_at_level(Level::Suite).len(), 1);
        assert_eq!(t.nodes_at_level(Level::Msb).len(), 2);
        assert_eq!(t.nodes_at_level(Level::Sb).len(), 4);
        assert_eq!(t.nodes_at_level(Level::Rpp).len(), 8);
        assert_eq!(t.nodes_at_level(Level::Rack).len(), 16);
        assert_eq!(t.len(), 32);
    }

    #[test]
    fn budgets_sum_up_the_tree() {
        let t = small();
        let root = t.node(t.root()).unwrap();
        assert_eq!(root.budget_watts(), 16.0 * 1_000.0);
        for node in t.nodes() {
            if !node.is_rack() {
                let child_sum: f64 = node
                    .children()
                    .iter()
                    .map(|c| t.node(*c).unwrap().budget_watts())
                    .sum();
                assert!((node.budget_watts() - child_sum).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn parents_precede_children() {
        let t = small();
        for node in t.nodes() {
            if let Some(parent) = node.parent() {
                assert!(parent.index() < node.id().index());
            }
        }
    }

    #[test]
    fn racks_under_counts() {
        let t = small();
        assert_eq!(t.racks_under(t.root()).unwrap().len(), 16);
        let sb = t.nodes_at_level(Level::Sb)[0];
        assert_eq!(t.racks_under(sb).unwrap().len(), 4);
        let rack = t.racks()[3];
        assert_eq!(t.racks_under(rack).unwrap(), vec![rack]);
    }

    #[test]
    fn ancestors_walk_to_root() {
        let t = small();
        let rack = t.racks()[0];
        let path = t.ancestors(rack).unwrap();
        assert_eq!(path.len(), 5);
        assert_eq!(*path.last().unwrap(), t.root());
        assert!(t.is_ancestor(t.root(), rack).unwrap());
        assert!(!t.is_ancestor(rack, t.root()).unwrap());
        assert!(!t.is_ancestor(rack, rack).unwrap());
    }

    #[test]
    fn names_are_hierarchical() {
        let t = small();
        let rack = t.node(t.racks()[0]).unwrap();
        assert!(rack.name().starts_with("dc/suite0/msb0/sb0/rpp0/rack"));
    }

    #[test]
    fn with_rack_budgets_rebuilds_internal_sums() {
        let t = small();
        let budgets: Vec<f64> = (0..16).map(|i| 100.0 * (i + 1) as f64).collect();
        let custom = t.with_rack_budgets(&budgets).unwrap();
        let total: f64 = budgets.iter().sum();
        assert!((custom.node(custom.root()).unwrap().budget_watts() - total).abs() < 1e-9);
        // Racks carry exactly the requested budgets.
        for (rack, &budget) in custom.racks().iter().zip(&budgets) {
            assert_eq!(custom.node(*rack).unwrap().budget_watts(), budget);
        }
        // Internal consistency is preserved.
        for node in custom.nodes() {
            if !node.is_rack() {
                let child_sum: f64 = node
                    .children()
                    .iter()
                    .map(|c| custom.node(*c).unwrap().budget_watts())
                    .sum();
                assert!((node.budget_watts() - child_sum).abs() < 1e-9);
            }
        }
        // Validation.
        assert!(t.with_rack_budgets(&budgets[..3]).is_err());
        assert!(t.with_rack_budgets(&[-1.0; 16]).is_err());
    }

    #[test]
    fn zero_fan_out_is_rejected() {
        let err = PowerTopology::builder().suites(0).build().unwrap_err();
        assert_eq!(err, TreeError::ZeroFanOut(Level::Datacenter));
        let err = PowerTopology::builder()
            .rack_capacity(0)
            .build()
            .unwrap_err();
        assert_eq!(err, TreeError::ZeroRackCapacity);
    }

    #[test]
    fn unknown_node_is_rejected() {
        let t = small();
        assert!(t.node(NodeId::new(999)).is_err());
        assert!(t.racks_under(NodeId::new(999)).is_err());
    }
}
