//! Power nodes and their identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::level::Level;

/// Identifier of a node within one [`PowerTopology`].
///
/// Ids are dense indices assigned by the topology builder; they are only
/// meaningful relative to the topology that produced them.
///
/// [`PowerTopology`]: crate::PowerTopology
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from a raw index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The raw index (usable to index topology-sized arrays).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One power delivery device in the tree: a budget, a level, and links to
/// its parent and children.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerNode {
    pub(crate) id: NodeId,
    pub(crate) level: Level,
    pub(crate) budget_watts: f64,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
    pub(crate) name: String,
}

impl PowerNode {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's level in the tree.
    pub fn level(&self) -> Level {
        self.level
    }

    /// The fixed power budget supplied to this node, in watts.
    pub fn budget_watts(&self) -> f64 {
        self.budget_watts
    }

    /// The supplying parent node, or `None` for the root.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// The nodes this node supplies.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Human-readable hierarchical name, e.g. `dc/suite1/msb0/sb1/rpp2/rack3`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this node is a rack (servers attach only to racks).
    pub fn is_rack(&self) -> bool {
        self.level.is_rack()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip_and_display() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "#42");
    }

    #[test]
    fn node_ids_order_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
