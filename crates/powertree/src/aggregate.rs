//! Bottom-up aggregation of instance power traces through the tree.

use so_parallel::par_map;
use so_powertrace::{NodeAggregate, PowerTrace, SlackProfile, TimeGrid};

use crate::assignment::Assignment;
use crate::error::TreeError;
use crate::level::Level;
use crate::node::NodeId;
use crate::topology::PowerTopology;

/// Per-node aggregate power traces for one (assignment, trace-set) pair.
///
/// The aggregate at a node is the element-wise sum of the traces of every
/// instance hosted in its subtree — exactly what the node's power sensor
/// would read.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use so_powertrace::PowerTrace;
/// use so_powertree::{Assignment, NodeAggregates, PowerTopology};
///
/// let topo = PowerTopology::builder().build()?;
/// let traces = vec![PowerTrace::new(vec![100.0, 200.0], 10)?; 10];
/// let assignment = Assignment::round_robin(&topo, 10)?;
/// let agg = NodeAggregates::compute(&topo, &assignment, &traces)?;
/// assert_eq!(agg.trace(topo.root())?.peak(), 2000.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NodeAggregates {
    traces: Vec<PowerTrace>,
}

impl NodeAggregates {
    /// Aggregates instance traces through the tree.
    ///
    /// Racks are summed concurrently (each rack's [`NodeAggregate`] adds
    /// its instances in ascending id order), then one level-synchronous
    /// upward pass sums each internal node's children — nodes within a
    /// level are independent, so every level is also a parallel map. The
    /// result does not depend on the thread count.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InstanceCountMismatch`] when the assignment and
    /// trace set disagree, and propagates grid mismatches as
    /// [`TreeError::Trace`].
    pub fn compute(
        topology: &PowerTopology,
        assignment: &Assignment,
        instance_traces: &[PowerTrace],
    ) -> Result<Self, TreeError> {
        if assignment.len() != instance_traces.len() {
            return Err(TreeError::InstanceCountMismatch {
                assignment: assignment.len(),
                traces: instance_traces.len(),
            });
        }
        let grid = match instance_traces.first() {
            Some(t) => t.grid(),
            None => TimeGrid::new(1, 1),
        };

        // Group instances by hosting rack (ascending instance id per rack).
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); topology.len()];
        for i in 0..instance_traces.len() {
            members[assignment.rack_of(i)?.index()].push(i);
        }

        let mut traces: Vec<PowerTrace> = (0..topology.len())
            .map(|_| PowerTrace::zeros(grid))
            .collect();

        // Rack sums, one rack per parallel task.
        let racks = topology.nodes_at_level(Level::Rack);
        let rack_traces = par_map(racks, 4, |_, &rack| -> Result<PowerTrace, TreeError> {
            let agg = NodeAggregate::from_traces(
                grid,
                members[rack.index()].iter().map(|&i| &instance_traces[i]),
            )?;
            Ok(agg.to_trace()?)
        });
        for (&rack, trace) in racks.iter().zip(rack_traces) {
            traces[rack.index()] = trace?;
        }

        // Upward pass, deepest internal level first; each node sums its
        // children in ascending id order.
        let mut level = Some(Level::Rpp);
        while let Some(current) = level {
            let nodes = topology.nodes_at_level(current);
            let sums = par_map(nodes, 4, |_, &id| -> Result<PowerTrace, TreeError> {
                let children = topology.node(id)?.children();
                let agg =
                    NodeAggregate::from_traces(grid, children.iter().map(|c| &traces[c.index()]))?;
                Ok(agg.to_trace()?)
            });
            let sums: Vec<PowerTrace> = sums.into_iter().collect::<Result<_, _>>()?;
            for (&id, trace) in nodes.iter().zip(sums) {
                traces[id.index()] = trace;
            }
            level = current.parent();
        }

        Ok(Self { traces })
    }

    /// An all-zero aggregate set on `grid` — the starting state of an
    /// incremental maintainer (an empty fleet sums to zero at every node).
    ///
    /// Unlike [`NodeAggregates::compute`] on an empty fleet (which has no
    /// trace to take a grid from), the grid here is explicit, so the zero
    /// traces live on the same grid later refreshes will use.
    pub fn zeros(topology: &PowerTopology, grid: TimeGrid) -> Self {
        Self {
            traces: (0..topology.len())
                .map(|_| PowerTrace::zeros(grid))
                .collect(),
        }
    }

    /// Canonically recomputes the aggregate of one rack from its member
    /// sample rows.
    ///
    /// This is the leaf half of incremental maintenance: instead of
    /// adding/subtracting the changed member in place (which leaves
    /// floating-point residue — subtraction is not an exact inverse of
    /// addition), the rack's sum is rebuilt from scratch with exactly the
    /// float operations [`NodeAggregates::compute`] performs (members
    /// accumulated in iteration order onto a zero buffer, then clamped via
    /// the same materialization). Pass members in ascending instance order
    /// to stay bit-identical to a from-scratch [`NodeAggregates::compute`]
    /// of the same fleet.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] for ids outside the topology,
    /// [`TreeError::NotARack`] for internal nodes, and propagates row
    /// length mismatches as [`TreeError::Trace`].
    pub fn refresh_rack<'a>(
        &mut self,
        topology: &PowerTopology,
        rack: NodeId,
        members: impl IntoIterator<Item = &'a [f64]>,
    ) -> Result<(), TreeError> {
        let node = topology.node(rack)?;
        if !node.is_rack() {
            return Err(TreeError::NotARack(rack));
        }
        let grid = self.traces[rack.index()].grid();
        let agg = NodeAggregate::from_samples(grid, members)?;
        self.traces[rack.index()] = agg.to_trace()?;
        Ok(())
    }

    /// Canonically recomputes every ancestor of the given racks, deepest
    /// level first, after one or more [`refresh_rack`] calls.
    ///
    /// Each affected internal node re-sums its children in ascending id
    /// order — the exact float work of [`NodeAggregates::compute`]'s upward
    /// pass — so the refreshed traces are bit-identical to a from-scratch
    /// recompute of the same fleet. Untouched subtrees are skipped, which
    /// is what makes maintenance O(path) instead of O(tree).
    ///
    /// [`refresh_rack`]: NodeAggregates::refresh_rack
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] for ids outside the topology and
    /// propagates grid mismatches as [`TreeError::Trace`].
    pub fn refresh_ancestors(
        &mut self,
        topology: &PowerTopology,
        racks: &[NodeId],
    ) -> Result<(), TreeError> {
        let Some(&first) = racks.first() else {
            return Ok(());
        };
        let grid = self
            .traces
            .get(first.index())
            .ok_or(TreeError::UnknownNode(first))?
            .grid();
        let mut affected = std::collections::BTreeSet::new();
        for &rack in racks {
            for ancestor in topology.ancestors(rack)? {
                affected.insert(ancestor);
            }
        }
        let mut level = Some(Level::Rpp);
        while let Some(current) = level {
            for &id in topology.nodes_at_level(current) {
                if !affected.contains(&id) {
                    continue;
                }
                let children = topology.node(id)?.children();
                let agg = NodeAggregate::from_traces(
                    grid,
                    children.iter().map(|c| &self.traces[c.index()]),
                )?;
                self.traces[id.index()] = agg.to_trace()?;
            }
            level = current.parent();
        }
        Ok(())
    }

    /// The aggregate trace at `node`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] for ids outside the topology.
    pub fn trace(&self, node: NodeId) -> Result<&PowerTrace, TreeError> {
        self.traces
            .get(node.index())
            .ok_or(TreeError::UnknownNode(node))
    }

    /// Peak aggregate power at `node`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] for ids outside the topology.
    pub fn peak(&self, node: NodeId) -> Result<f64, TreeError> {
        Ok(self.trace(node)?.peak())
    }

    /// The paper's *sum of peaks* fragmentation indicator at one level: the
    /// sum over all nodes of that level of each node's aggregate peak.
    pub fn sum_of_peaks(&self, topology: &PowerTopology, level: Level) -> f64 {
        topology
            .nodes_at_level(level)
            .iter()
            .map(|&id| self.traces[id.index()].peak())
            .sum()
    }

    /// Headroom at `node`: budget minus aggregate peak (negative when the
    /// node is over-committed).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] for ids outside the topology.
    pub fn headroom(&self, topology: &PowerTopology, node: NodeId) -> Result<f64, TreeError> {
        let budget = topology.node(node)?.budget_watts();
        Ok(budget - self.trace(node)?.peak())
    }

    /// Slack profile of `node` against its configured budget.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] for ids outside the topology.
    pub fn slack(&self, topology: &PowerTopology, node: NodeId) -> Result<SlackProfile, TreeError> {
        let budget = topology.node(node)?.budget_watts();
        Ok(SlackProfile::new(self.trace(node)?, budget)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> PowerTopology {
        PowerTopology::builder()
            .suites(1)
            .msbs_per_suite(1)
            .sbs_per_msb(1)
            .rpps_per_sb(2)
            .racks_per_rpp(2)
            .rack_capacity(2)
            .rack_budget_watts(500.0)
            .build()
            .unwrap()
    }

    fn traces() -> Vec<PowerTrace> {
        vec![
            PowerTrace::new(vec![100.0, 0.0], 10).unwrap(),
            PowerTrace::new(vec![0.0, 100.0], 10).unwrap(),
            PowerTrace::new(vec![50.0, 50.0], 10).unwrap(),
            PowerTrace::new(vec![25.0, 75.0], 10).unwrap(),
        ]
    }

    #[test]
    fn root_aggregate_is_total() {
        let t = topo();
        let a = Assignment::round_robin(&t, 4).unwrap();
        let agg = NodeAggregates::compute(&t, &a, &traces()).unwrap();
        let root = agg.trace(t.root()).unwrap();
        assert_eq!(root.samples(), &[175.0, 225.0]);
    }

    #[test]
    fn rack_aggregates_match_assignment() {
        let t = topo();
        // Instances 0..3 round-robin across 4 racks: one per rack.
        let a = Assignment::round_robin(&t, 4).unwrap();
        let agg = NodeAggregates::compute(&t, &a, &traces()).unwrap();
        let racks = t.racks();
        assert_eq!(agg.trace(racks[0]).unwrap().samples(), &[100.0, 0.0]);
        assert_eq!(agg.trace(racks[3]).unwrap().samples(), &[25.0, 75.0]);
    }

    #[test]
    fn sum_of_peaks_counts_each_node() {
        let t = topo();
        let a = Assignment::round_robin(&t, 4).unwrap();
        let agg = NodeAggregates::compute(&t, &a, &traces()).unwrap();
        // Rack peaks: 100, 100, 50, 75.
        assert_eq!(agg.sum_of_peaks(&t, Level::Rack), 325.0);
        // Two RPPs: racks (0,1) -> [100, 100] peak 100; racks (2,3) -> [75, 125] peak 125.
        assert_eq!(agg.sum_of_peaks(&t, Level::Rpp), 225.0);
        // Root peak: 225.
        assert_eq!(agg.sum_of_peaks(&t, Level::Datacenter), 225.0);
    }

    #[test]
    fn headroom_and_slack() {
        let t = topo();
        let a = Assignment::round_robin(&t, 4).unwrap();
        let agg = NodeAggregates::compute(&t, &a, &traces()).unwrap();
        let rack = t.racks()[0];
        assert_eq!(agg.headroom(&t, rack).unwrap(), 400.0);
        let slack = agg.slack(&t, rack).unwrap();
        assert_eq!(slack.min_slack(), 400.0);
    }

    #[test]
    fn incremental_refresh_is_bit_identical_to_compute() {
        let t = topo();
        let traces = traces();
        let a = Assignment::round_robin(&t, 4).unwrap();
        let grid = traces[0].grid();

        // Maintain incrementally: start from zeros, refresh each rack from
        // its members, then refresh the ancestor paths.
        let mut inc = NodeAggregates::zeros(&t, grid);
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); t.len()];
        for i in 0..traces.len() {
            members[a.rack_of(i).unwrap().index()].push(i);
        }
        for &rack in t.racks() {
            inc.refresh_rack(
                &t,
                rack,
                members[rack.index()].iter().map(|&i| traces[i].samples()),
            )
            .unwrap();
        }
        inc.refresh_ancestors(&t, t.racks()).unwrap();

        let scratch = NodeAggregates::compute(&t, &a, &traces).unwrap();
        for id in t.nodes().iter().map(|n| n.id()) {
            let got = inc.trace(id).unwrap().samples();
            let want = scratch.trace(id).unwrap().samples();
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.to_bits(), w.to_bits(), "node {id} diverged");
            }
        }
    }

    #[test]
    fn partial_refresh_touches_only_named_paths() {
        let t = topo();
        let traces = traces();
        let grid = traces[0].grid();
        let mut inc = NodeAggregates::zeros(&t, grid);
        let rack = t.racks()[0];
        inc.refresh_rack(&t, rack, [traces[0].samples()]).unwrap();
        inc.refresh_ancestors(&t, &[rack]).unwrap();
        // The refreshed path carries the member; the sibling RPP stays zero.
        assert_eq!(inc.trace(rack).unwrap().samples(), traces[0].samples());
        assert_eq!(inc.peak(t.root()).unwrap(), 100.0);
        let other_rpp = t.nodes_at_level(Level::Rpp)[1];
        assert_eq!(inc.peak(other_rpp).unwrap(), 0.0);
    }

    #[test]
    fn refresh_rack_rejects_internal_nodes_and_unknown_ids() {
        let t = topo();
        let grid = traces()[0].grid();
        let mut inc = NodeAggregates::zeros(&t, grid);
        let err = inc
            .refresh_rack(&t, t.root(), std::iter::empty())
            .unwrap_err();
        assert!(matches!(err, TreeError::NotARack(_)));
        let bogus = crate::node::NodeId::new(t.len() + 5);
        let err = inc.refresh_rack(&t, bogus, std::iter::empty()).unwrap_err();
        assert!(matches!(err, TreeError::UnknownNode(_)));
    }

    #[test]
    fn refresh_ancestors_with_no_racks_is_a_no_op() {
        let t = topo();
        let grid = traces()[0].grid();
        let mut inc = NodeAggregates::zeros(&t, grid);
        inc.refresh_ancestors(&t, &[]).unwrap();
        assert_eq!(inc.peak(t.root()).unwrap(), 0.0);
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let t = topo();
        let a = Assignment::round_robin(&t, 4).unwrap();
        let err = NodeAggregates::compute(&t, &a, &traces()[..3]).unwrap_err();
        assert!(matches!(err, TreeError::InstanceCountMismatch { .. }));
    }
}
