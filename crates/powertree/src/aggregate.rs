//! Bottom-up aggregation of instance power traces through the tree.

use so_parallel::par_map;
use so_powertrace::{NodeAggregate, PowerTrace, SlackProfile, TimeGrid};

use crate::assignment::Assignment;
use crate::error::TreeError;
use crate::level::Level;
use crate::node::NodeId;
use crate::topology::PowerTopology;

/// Per-node aggregate power traces for one (assignment, trace-set) pair.
///
/// The aggregate at a node is the element-wise sum of the traces of every
/// instance hosted in its subtree — exactly what the node's power sensor
/// would read.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use so_powertrace::PowerTrace;
/// use so_powertree::{Assignment, NodeAggregates, PowerTopology};
///
/// let topo = PowerTopology::builder().build()?;
/// let traces = vec![PowerTrace::new(vec![100.0, 200.0], 10)?; 10];
/// let assignment = Assignment::round_robin(&topo, 10)?;
/// let agg = NodeAggregates::compute(&topo, &assignment, &traces)?;
/// assert_eq!(agg.trace(topo.root())?.peak(), 2000.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NodeAggregates {
    traces: Vec<PowerTrace>,
}

impl NodeAggregates {
    /// Aggregates instance traces through the tree.
    ///
    /// Racks are summed concurrently (each rack's [`NodeAggregate`] adds
    /// its instances in ascending id order), then one level-synchronous
    /// upward pass sums each internal node's children — nodes within a
    /// level are independent, so every level is also a parallel map. The
    /// result does not depend on the thread count.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::InstanceCountMismatch`] when the assignment and
    /// trace set disagree, and propagates grid mismatches as
    /// [`TreeError::Trace`].
    pub fn compute(
        topology: &PowerTopology,
        assignment: &Assignment,
        instance_traces: &[PowerTrace],
    ) -> Result<Self, TreeError> {
        if assignment.len() != instance_traces.len() {
            return Err(TreeError::InstanceCountMismatch {
                assignment: assignment.len(),
                traces: instance_traces.len(),
            });
        }
        let grid = match instance_traces.first() {
            Some(t) => t.grid(),
            None => TimeGrid::new(1, 1),
        };

        // Group instances by hosting rack (ascending instance id per rack).
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); topology.len()];
        for i in 0..instance_traces.len() {
            members[assignment.rack_of(i)?.index()].push(i);
        }

        let mut traces: Vec<PowerTrace> = (0..topology.len())
            .map(|_| PowerTrace::zeros(grid))
            .collect();

        // Rack sums, one rack per parallel task.
        let racks = topology.nodes_at_level(Level::Rack);
        let rack_traces = par_map(racks, 4, |_, &rack| -> Result<PowerTrace, TreeError> {
            let agg = NodeAggregate::from_traces(
                grid,
                members[rack.index()].iter().map(|&i| &instance_traces[i]),
            )?;
            Ok(agg.to_trace()?)
        });
        for (&rack, trace) in racks.iter().zip(rack_traces) {
            traces[rack.index()] = trace?;
        }

        // Upward pass, deepest internal level first; each node sums its
        // children in ascending id order.
        let mut level = Some(Level::Rpp);
        while let Some(current) = level {
            let nodes = topology.nodes_at_level(current);
            let sums = par_map(nodes, 4, |_, &id| -> Result<PowerTrace, TreeError> {
                let children = topology.node(id)?.children();
                let agg =
                    NodeAggregate::from_traces(grid, children.iter().map(|c| &traces[c.index()]))?;
                Ok(agg.to_trace()?)
            });
            let sums: Vec<PowerTrace> = sums.into_iter().collect::<Result<_, _>>()?;
            for (&id, trace) in nodes.iter().zip(sums) {
                traces[id.index()] = trace;
            }
            level = current.parent();
        }

        Ok(Self { traces })
    }

    /// The aggregate trace at `node`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] for ids outside the topology.
    pub fn trace(&self, node: NodeId) -> Result<&PowerTrace, TreeError> {
        self.traces
            .get(node.index())
            .ok_or(TreeError::UnknownNode(node))
    }

    /// Peak aggregate power at `node`.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] for ids outside the topology.
    pub fn peak(&self, node: NodeId) -> Result<f64, TreeError> {
        Ok(self.trace(node)?.peak())
    }

    /// The paper's *sum of peaks* fragmentation indicator at one level: the
    /// sum over all nodes of that level of each node's aggregate peak.
    pub fn sum_of_peaks(&self, topology: &PowerTopology, level: Level) -> f64 {
        topology
            .nodes_at_level(level)
            .iter()
            .map(|&id| self.traces[id.index()].peak())
            .sum()
    }

    /// Headroom at `node`: budget minus aggregate peak (negative when the
    /// node is over-committed).
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] for ids outside the topology.
    pub fn headroom(&self, topology: &PowerTopology, node: NodeId) -> Result<f64, TreeError> {
        let budget = topology.node(node)?.budget_watts();
        Ok(budget - self.trace(node)?.peak())
    }

    /// Slack profile of `node` against its configured budget.
    ///
    /// # Errors
    ///
    /// Returns [`TreeError::UnknownNode`] for ids outside the topology.
    pub fn slack(&self, topology: &PowerTopology, node: NodeId) -> Result<SlackProfile, TreeError> {
        let budget = topology.node(node)?.budget_watts();
        Ok(SlackProfile::new(self.trace(node)?, budget)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> PowerTopology {
        PowerTopology::builder()
            .suites(1)
            .msbs_per_suite(1)
            .sbs_per_msb(1)
            .rpps_per_sb(2)
            .racks_per_rpp(2)
            .rack_capacity(2)
            .rack_budget_watts(500.0)
            .build()
            .unwrap()
    }

    fn traces() -> Vec<PowerTrace> {
        vec![
            PowerTrace::new(vec![100.0, 0.0], 10).unwrap(),
            PowerTrace::new(vec![0.0, 100.0], 10).unwrap(),
            PowerTrace::new(vec![50.0, 50.0], 10).unwrap(),
            PowerTrace::new(vec![25.0, 75.0], 10).unwrap(),
        ]
    }

    #[test]
    fn root_aggregate_is_total() {
        let t = topo();
        let a = Assignment::round_robin(&t, 4).unwrap();
        let agg = NodeAggregates::compute(&t, &a, &traces()).unwrap();
        let root = agg.trace(t.root()).unwrap();
        assert_eq!(root.samples(), &[175.0, 225.0]);
    }

    #[test]
    fn rack_aggregates_match_assignment() {
        let t = topo();
        // Instances 0..3 round-robin across 4 racks: one per rack.
        let a = Assignment::round_robin(&t, 4).unwrap();
        let agg = NodeAggregates::compute(&t, &a, &traces()).unwrap();
        let racks = t.racks();
        assert_eq!(agg.trace(racks[0]).unwrap().samples(), &[100.0, 0.0]);
        assert_eq!(agg.trace(racks[3]).unwrap().samples(), &[25.0, 75.0]);
    }

    #[test]
    fn sum_of_peaks_counts_each_node() {
        let t = topo();
        let a = Assignment::round_robin(&t, 4).unwrap();
        let agg = NodeAggregates::compute(&t, &a, &traces()).unwrap();
        // Rack peaks: 100, 100, 50, 75.
        assert_eq!(agg.sum_of_peaks(&t, Level::Rack), 325.0);
        // Two RPPs: racks (0,1) -> [100, 100] peak 100; racks (2,3) -> [75, 125] peak 125.
        assert_eq!(agg.sum_of_peaks(&t, Level::Rpp), 225.0);
        // Root peak: 225.
        assert_eq!(agg.sum_of_peaks(&t, Level::Datacenter), 225.0);
    }

    #[test]
    fn headroom_and_slack() {
        let t = topo();
        let a = Assignment::round_robin(&t, 4).unwrap();
        let agg = NodeAggregates::compute(&t, &a, &traces()).unwrap();
        let rack = t.racks()[0];
        assert_eq!(agg.headroom(&t, rack).unwrap(), 400.0);
        let slack = agg.slack(&t, rack).unwrap();
        assert_eq!(slack.min_slack(), 400.0);
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let t = topo();
        let a = Assignment::round_robin(&t, 4).unwrap();
        let err = NodeAggregates::compute(&t, &a, &traces()[..3]).unwrap_err();
        assert!(matches!(err, TreeError::InstanceCountMismatch { .. }));
    }
}
