//! Multi-level datacenter power-delivery-tree substrate.
//!
//! Models the four-level Facebook/OCP power infrastructure of the paper's
//! Figure 2: datacenter → suites → main switching boards (MSBs) → switching
//! boards (SBs) → reactive power panels (RPPs) → racks. Servers attach only
//! to racks, so fragmentation at the RPP level directly limits how many
//! servers a datacenter can host.
//!
//! The crate provides:
//!
//! * [`PowerTopology`] / [`TopologyShape`] — tree construction with budgets
//!   that sum bottom-up;
//! * [`Assignment`] — the instance → rack mapping placements produce;
//! * [`NodeAggregates`] — per-node aggregate power traces (what each power
//!   node's sensor reads) plus the sum-of-peaks fragmentation indicator;
//! * [`BreakerModel`] — sustained-overdraw circuit-breaker trips;
//! * [`HeadroomReport`] — budget/peak/headroom accounting per node.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aggregate;
mod assignment;
mod breaker;
mod dot;
mod error;
mod headroom;
mod level;
mod node;
mod topology;

pub use aggregate::NodeAggregates;
pub use assignment::Assignment;
pub use breaker::{BreakerModel, TripEvent};
pub use dot::to_dot;
pub use error::TreeError;
pub use headroom::{HeadroomReport, NodeHeadroom};
pub use level::Level;
pub use node::{NodeId, PowerNode};
pub use topology::{PowerTopology, TopologyBuilder, TopologyShape};
