//! Error types for power-tree construction and queries.

use std::error::Error;
use std::fmt;

use crate::level::Level;
use crate::node::NodeId;

/// Error produced by topology construction or trace aggregation.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// A fan-out of zero was requested at some level.
    ZeroFanOut(Level),
    /// A rack capacity of zero servers was requested.
    ZeroRackCapacity,
    /// A node id does not exist in this topology.
    UnknownNode(NodeId),
    /// An instance index in an assignment is out of range.
    UnknownInstance(usize),
    /// An assignment maps an instance to a node that is not a rack.
    NotARack(NodeId),
    /// An assignment and a trace set disagree on the number of instances.
    InstanceCountMismatch {
        /// Instances in the assignment.
        assignment: usize,
        /// Instance traces supplied.
        traces: usize,
    },
    /// A rack was assigned more instances than its capacity.
    RackOverCapacity {
        /// The overfull rack.
        rack: NodeId,
        /// Number of instances assigned.
        assigned: usize,
        /// The rack's capacity.
        capacity: usize,
    },
    /// Trace aggregation failed (grid mismatch between instance traces).
    Trace(so_powertrace::TraceError),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::ZeroFanOut(level) => {
                write!(f, "fan-out at level {level} must be at least one")
            }
            TreeError::ZeroRackCapacity => write!(f, "rack capacity must be at least one server"),
            TreeError::UnknownNode(id) => write!(f, "node {id} does not exist in this topology"),
            TreeError::UnknownInstance(i) => write!(f, "instance index {i} is out of range"),
            TreeError::NotARack(id) => write!(f, "node {id} is not a rack"),
            TreeError::InstanceCountMismatch { assignment, traces } => write!(
                f,
                "assignment covers {assignment} instances but {traces} traces were supplied"
            ),
            TreeError::RackOverCapacity {
                rack,
                assigned,
                capacity,
            } => write!(
                f,
                "rack {rack} assigned {assigned} instances, above its capacity of {capacity}"
            ),
            TreeError::Trace(e) => write!(f, "trace aggregation failed: {e}"),
        }
    }
}

impl Error for TreeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TreeError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<so_powertrace::TraceError> for TreeError {
    fn from(e: so_powertrace::TraceError) -> Self {
        TreeError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TreeError::RackOverCapacity {
            rack: NodeId::new(7),
            assigned: 40,
            capacity: 30,
        };
        let msg = err.to_string();
        assert!(msg.contains("40"));
        assert!(msg.contains("30"));
    }

    #[test]
    fn trace_error_has_source() {
        use std::error::Error as _;
        let err = TreeError::from(so_powertrace::TraceError::Empty);
        assert!(err.source().is_some());
    }
}
