//! Mutation smoke test: the oracle harness is only worth its keep if a
//! deliberately broken implementation actually trips it. Each test plants
//! a classic quantile bug and asserts at least one oracle objects; the
//! production implementation passes the same probes untouched.

use so_oracles::differential::quantile_matches_reference;
use so_oracles::{OracleFamily, OracleReport};

fn samples() -> Vec<f64> {
    // Irregular but deterministic: enough spread that interpolation,
    // indexing, and edge handling all matter.
    (0..57).map(|i| ((i * 37) % 101) as f64 + 0.25).collect()
}

fn sorted(samples: &[f64]) -> Vec<f64> {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    s
}

#[test]
fn nearest_rank_quantile_is_caught() {
    // Bug: nearest-rank via truncation instead of linear interpolation —
    // the very convention drift the shared quantile module removed.
    let broken = |samples: &[f64], q: f64| {
        let s = sorted(samples);
        let idx = ((q * s.len() as f64) as usize).min(s.len() - 1);
        Some(s[idx])
    };
    let mut report = OracleReport::new();
    quantile_matches_reference(broken, &samples(), &mut report);
    assert!(
        !report.is_clean(),
        "broken quantile slipped past the oracle"
    );
    assert!(report
        .violations()
        .iter()
        .all(|v| v.family == OracleFamily::Differential));
}

#[test]
fn unclamped_ceil_indexing_is_caught() {
    // Bug: the pre-fix `interpolated_quantile` edge case — `ceil` lands
    // one past the end at q = 1, here "fixed" by wrapping instead of
    // clamping.
    let broken = |samples: &[f64], q: f64| {
        let s = sorted(samples);
        let pos = q * (s.len() - 1) as f64;
        let (lo, hi) = (pos.floor() as usize, (pos.ceil() as usize + 1) % s.len());
        let frac = pos - pos.floor();
        Some(s[lo] * (1.0 - frac) + s[hi] * frac)
    };
    let mut report = OracleReport::new();
    quantile_matches_reference(broken, &samples(), &mut report);
    assert!(!report.is_clean());
}

#[test]
fn off_by_one_position_is_caught() {
    // Bug: `q · n` instead of `q · (n − 1)` — shifts every interior
    // quantile upward.
    let broken = |samples: &[f64], q: f64| {
        let s = sorted(samples);
        let pos = (q * s.len() as f64).min((s.len() - 1) as f64);
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(s.len() - 1);
        let frac = pos - lo as f64;
        Some(s[lo] * (1.0 - frac) + s[hi] * frac)
    };
    let mut report = OracleReport::new();
    quantile_matches_reference(broken, &samples(), &mut report);
    assert!(!report.is_clean());
}

#[test]
fn production_quantile_is_clean() {
    let mut report = OracleReport::new();
    quantile_matches_reference(
        |s, q| so_powertrace::quantile::quantile(s, q).ok(),
        &samples(),
        &mut report,
    );
    assert!(report.is_clean(), "{:#?}", report.violations());
    assert!(report.evaluations(OracleFamily::Differential) > 0);
}
