//! Mutation smoke test: the oracle harness is only worth its keep if a
//! deliberately broken implementation actually trips it. Each test plants
//! a classic bug — quantile convention drift, a stale online aggregate, a
//! wrong-leaf commit — and asserts at least one oracle objects; the
//! production implementations pass the same probes untouched.

use so_core::{CommitPolicy, OnlineConfig, OnlineFleet};
use so_oracles::differential::quantile_matches_reference;
use so_oracles::online::{check_commit_decision, check_resident_aggregates};
use so_oracles::{Fixture, OracleFamily, OracleReport};
use so_powertrace::PowerTrace;
use so_powertree::{NodeAggregates, NodeId};
use so_workloads::DcScenario;

fn samples() -> Vec<f64> {
    // Irregular but deterministic: enough spread that interpolation,
    // indexing, and edge handling all matter.
    (0..57).map(|i| ((i * 37) % 101) as f64 + 0.25).collect()
}

fn sorted(samples: &[f64]) -> Vec<f64> {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    s
}

#[test]
fn nearest_rank_quantile_is_caught() {
    // Bug: nearest-rank via truncation instead of linear interpolation —
    // the very convention drift the shared quantile module removed.
    let broken = |samples: &[f64], q: f64| {
        let s = sorted(samples);
        let idx = ((q * s.len() as f64) as usize).min(s.len() - 1);
        Some(s[idx])
    };
    let mut report = OracleReport::new();
    quantile_matches_reference(broken, &samples(), &mut report);
    assert!(
        !report.is_clean(),
        "broken quantile slipped past the oracle"
    );
    assert!(report
        .violations()
        .iter()
        .all(|v| v.family == OracleFamily::Differential));
}

#[test]
fn unclamped_ceil_indexing_is_caught() {
    // Bug: the pre-fix `interpolated_quantile` edge case — `ceil` lands
    // one past the end at q = 1, here "fixed" by wrapping instead of
    // clamping.
    let broken = |samples: &[f64], q: f64| {
        let s = sorted(samples);
        let pos = q * (s.len() - 1) as f64;
        let (lo, hi) = (pos.floor() as usize, (pos.ceil() as usize + 1) % s.len());
        let frac = pos - pos.floor();
        Some(s[lo] * (1.0 - frac) + s[hi] * frac)
    };
    let mut report = OracleReport::new();
    quantile_matches_reference(broken, &samples(), &mut report);
    assert!(!report.is_clean());
}

#[test]
fn off_by_one_position_is_caught() {
    // Bug: `q · n` instead of `q · (n − 1)` — shifts every interior
    // quantile upward.
    let broken = |samples: &[f64], q: f64| {
        let s = sorted(samples);
        let pos = (q * s.len() as f64).min((s.len() - 1) as f64);
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(s.len() - 1);
        let frac = pos - lo as f64;
        Some(s[lo] * (1.0 - frac) + s[hi] * frac)
    };
    let mut report = OracleReport::new();
    quantile_matches_reference(broken, &samples(), &mut report);
    assert!(!report.is_clean());
}

/// A small fixture-driven engine with every fixture trace committed —
/// the live state the online mutation probes corrupt.
fn driven_engine() -> (OnlineFleet, Vec<PowerTrace>) {
    let fixture = Fixture::generate(&DcScenario::dc1(), 16, 9).unwrap();
    let traces = fixture.traces().to_vec();
    let grid = traces[0].grid();
    let cap = traces.iter().map(PowerTrace::peak).sum::<f64>() * 2.0 + 100.0;
    let mut engine = OnlineFleet::new(
        fixture.topology.clone(),
        grid,
        OnlineConfig {
            policy: CommitPolicy::BestAsynchrony,
            repair_budget: 0,
            min_gain: 0.0,
            ..OnlineConfig::default()
        },
    )
    .with_budgets(vec![cap; fixture.topology.len()])
    .unwrap();
    engine.apply(&traces, &[]).unwrap();
    assert_eq!(engine.live_len(), traces.len());
    (engine, traces)
}

fn live_racks(engine: &OnlineFleet) -> Vec<NodeId> {
    engine
        .live_slots()
        .iter()
        .map(|&s| engine.rack_of(s).unwrap())
        .collect()
}

#[test]
fn stale_aggregate_after_retirement_is_caught() {
    // Bug: an engine that skips the aggregate subtraction on retirement —
    // modeled by snapshotting the aggregates, retiring an instance, and
    // presenting the stale snapshot as the claimed resident state.
    let (mut engine, _) = driven_engine();
    let stale = engine.aggregates().clone();
    let victim = engine.live_slots()[0];
    engine.retire(victim).unwrap();
    let (traces, _, _) = engine.live_view().unwrap();
    let racks = live_racks(&engine);
    let mut report = OracleReport::new();
    check_resident_aggregates(
        engine.topology(),
        engine.grid(),
        &traces,
        &racks,
        &stale,
        &mut report,
    )
    .unwrap();
    assert!(
        !report.is_clean(),
        "stale aggregates slipped past the oracle"
    );
    assert!(report
        .violations()
        .iter()
        .all(|v| v.family == OracleFamily::Online));
}

#[test]
fn wrong_leaf_commit_is_caught() {
    // Bug: an engine that evaluates the policy but commits to some other
    // admissible rack — the journal claims a leaf the offline replay of
    // the same pre-state would never pick.
    let (engine, traces) = driven_engine();
    let candidate = &traces[0];
    let decisions = engine.decisions(candidate).unwrap();
    let best = so_core::select_decision(&engine.config().policy, &decisions)
        .expect("candidate is admissible somewhere")
        .rack;
    let wrong = decisions
        .iter()
        .find(|d| d.fits && d.rack != best)
        .expect("more than one admissible rack")
        .rack;
    let (pre_traces, _, _) = engine.live_view().unwrap();
    let pre_racks = live_racks(&engine);
    let mut report = OracleReport::new();
    check_commit_decision(
        engine.topology(),
        engine.budgets(),
        engine.grid(),
        &pre_traces,
        &pre_racks,
        candidate,
        &engine.config().policy,
        engine.config().sample_salt,
        engine.arrivals_seen(),
        Some(wrong),
        &mut report,
    )
    .unwrap();
    assert!(
        !report.is_clean(),
        "wrong-leaf commit slipped past the oracle"
    );
    assert_eq!(report.violations_in(OracleFamily::Online), 1);

    // The engine's actual choice passes the same probe.
    let mut clean = OracleReport::new();
    check_commit_decision(
        engine.topology(),
        engine.budgets(),
        engine.grid(),
        &pre_traces,
        &pre_racks,
        candidate,
        &engine.config().policy,
        engine.config().sample_salt,
        engine.arrivals_seen(),
        Some(best),
        &mut clean,
    )
    .unwrap();
    assert!(clean.is_clean(), "{:#?}", clean.violations());
}

#[test]
fn production_online_engine_is_clean() {
    let (engine, _) = driven_engine();
    let (traces, _, _) = engine.live_view().unwrap();
    let racks = live_racks(&engine);
    let mut report = OracleReport::new();
    check_resident_aggregates(
        engine.topology(),
        engine.grid(),
        &traces,
        &racks,
        engine.aggregates(),
        &mut report,
    )
    .unwrap();
    assert!(report.is_clean(), "{:#?}", report.violations());
    assert!(report.evaluations(OracleFamily::Online) > 0);

    // An empty claim against an empty fleet is clean too (the zeros path).
    let empty = OnlineFleet::new(engine.topology().clone(), engine.grid(), *engine.config());
    let mut zero_report = OracleReport::new();
    check_resident_aggregates(
        empty.topology(),
        empty.grid(),
        &[],
        &[],
        &NodeAggregates::zeros(empty.topology(), empty.grid()),
        &mut zero_report,
    )
    .unwrap();
    assert!(zero_report.is_clean(), "{:#?}", zero_report.violations());
}

#[test]
fn production_quantile_is_clean() {
    let mut report = OracleReport::new();
    quantile_matches_reference(
        |s, q| so_powertrace::quantile::quantile(s, q).ok(),
        &samples(),
        &mut report,
    );
    assert!(report.is_clean(), "{:#?}", report.violations());
    assert!(report.evaluations(OracleFamily::Differential) > 0);
}

#[test]
fn off_by_one_sweep_fit_is_caught() {
    // Bug: the plan sweep loop admits one rack past the cap (`k + 1`
    // fitted where `k` fit) — the classic off-by-one in "largest k with
    // required[k-1] ≤ cap". The budget sits exactly on a sweep point so
    // the inclusive-boundary law is exercised too.
    let required = [80.0, 100.0, 120.0, 140.0];
    let deltas = so_oracles::plan::PLAN_DELTAS;
    let one_past = |series: &[f64], budget: f64, delta: f64| {
        (so_oracles::plan::reference_racks_fit(series, budget, delta) + 1).min(series.len())
    };
    let mut report = OracleReport::new();
    so_oracles::plan::check_sweep_fit(&one_past, &required, 100.0, &deltas, &mut report);
    assert!(!report.is_clean(), "off-by-one sweep fit slipped past");
    assert!(report
        .violations()
        .iter()
        .all(|v| v.family == OracleFamily::Plan));

    // Bug variant: strict `<` at the cap — a rack whose requirement
    // exactly equals the overbooked budget must still fit.
    let exclusive = |series: &[f64], budget: f64, delta: f64| {
        let cap = budget * (1.0 + delta);
        series.iter().take_while(|&&req| req < cap).count()
    };
    let mut strict_report = OracleReport::new();
    so_oracles::plan::check_sweep_fit(&exclusive, &required, 100.0, &deltas, &mut strict_report);
    assert!(
        !strict_report.is_clean(),
        "exclusive cap comparison slipped past"
    );

    // The reference itself passes the same probe clean.
    let mut clean = OracleReport::new();
    so_oracles::plan::check_sweep_fit(
        &so_oracles::plan::reference_racks_fit,
        &required,
        100.0,
        &deltas,
        &mut clean,
    );
    assert!(clean.is_clean(), "{:#?}", clean.violations());
    assert!(clean.evaluations(OracleFamily::Plan) > 0);
}
