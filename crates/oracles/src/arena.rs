//! Arena oracles: columnar [`TraceArena`] pipelines diffed against their
//! `Vec<PowerTrace>` twins.
//!
//! | oracle | sides | agreement |
//! |---|---|---|
//! | `arena_round_trip_is_bit_exact` | `from_traces` → rows / `to_traces` vs originals | bit-identical samples & grid |
//! | `arena_sum_kernel_matches_trace_sum` | `TraceArena::sum_into` vs `PowerTrace::sum_of` per rack | bit-identical samples |
//! | `arena_peak_kernel_matches_trace_peak` | `TraceArena::peak_of_sum` vs materialized sum's peak | bit-identical |
//! | `arena_embedding_matches_trace_embedding` | `score_vectors_arena` vs `score_vectors_from_traces` | bit-identical vectors |
//! | `arena_remap_matches_trace_remap` | `remap_arena` vs `remap_traces` | identical report & assignment |
//! | `arena_quantiles_match_trace_quantiles` | `quantile_of_row`/`row_quantiles` vs `PowerTrace::quantile` | bit-identical |
//! | `arena_statprof_is_bit_identical` | `statprof_required_budget` over round-tripped traces vs originals | `ProvisioningReport ==` |
//! | `arena_axpy_matches_scalar_loop` | `TraceArena::axpy_into` vs an element-order scalar loop | bit-identical |
//! | `arena_parallel_synth_is_bit_exact` | `par_extend_rows` (parallel and under `serial_scope`) vs `push_with` | bit-identical samples |
//! | `arena_sketch_quantile_within_tolerance` | `row_quantiles_sketch` vs the exact per-row distribution | rank error ≤ `P2_RANK_ERROR_BOUND` |
//!
//! Every oracle here except the sketch oracle is *exact* (`to_bits` or
//! derived `==`): the arena kernels are documented to perform the same
//! float operations in the same order as the trace-based paths, so any
//! ULP of drift is a bug, not a tolerance question. This is what lets the
//! scale tier and the remap hot path swap storage layouts without
//! re-validating numerics. The P² sketch is the one documented
//! approximation, and its oracle gates the documented empirical rank-error
//! bound instead of bits.

use so_baselines::{statprof_required_budget, ProvisioningDegrees};
use so_core::{
    remap_arena, remap_traces, score_vectors_arena, score_vectors_from_traces, RemapConfig,
    ServiceTraces,
};
use so_powertrace::{sketch, PowerTrace, TraceArena, P2_RANK_ERROR_BOUND};
use so_powertree::Level;

use crate::{Fixture, OracleError, OracleFamily, OracleReport};

const FAMILY: OracleFamily = OracleFamily::Arena;

/// Quantile probes shared by the per-row quantile oracle — edge-heavy on
/// purpose (`0`/`1` must hit min/peak exactly).
const PROBES: [f64; 7] = [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0];

/// Runs every arena oracle over the fixture.
///
/// # Errors
///
/// Returns [`OracleError`] when an oracle cannot be evaluated at all;
/// failed evaluations are recorded in `report` instead.
pub fn run(fixture: &Fixture, report: &mut OracleReport) -> Result<(), OracleError> {
    let traces = fixture.traces();
    let arena = TraceArena::from_traces(traces)?;
    round_trip(traces, &arena, report)?;
    sum_kernels(fixture, &arena, report)?;
    embedding(fixture, &arena, report)?;
    remap(fixture, &arena, report)?;
    quantiles(traces, &arena, report)?;
    statprof(fixture, &arena, report)?;
    axpy(traces, &arena, report)?;
    parallel_synth(traces, &arena, report);
    sketch_quantiles(traces, &arena, report)?;
    Ok(())
}

/// Traces → arena → traces must lose nothing: every row aliases the same
/// bits, and the materialized round-trip reproduces grid and samples.
fn round_trip(
    traces: &[PowerTrace],
    arena: &TraceArena,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    report.check(
        FAMILY,
        "arena_round_trip_is_bit_exact",
        arena.len() == traces.len() && arena.step_minutes() == traces[0].step_minutes(),
        || {
            format!(
                "arena shape ({} rows, step {}) != fleet ({} traces, step {})",
                arena.len(),
                arena.step_minutes(),
                traces.len(),
                traces[0].step_minutes()
            )
        },
    );
    let back = arena.to_traces()?;
    for (i, trace) in traces.iter().enumerate() {
        let bits_equal = |a: &[f64], b: &[f64]| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        };
        report.check(
            FAMILY,
            "arena_round_trip_is_bit_exact",
            bits_equal(arena.row(i), trace.samples())
                && bits_equal(back[i].samples(), trace.samples())
                && back[i].grid() == trace.grid(),
            || format!("row {i} diverges from its source trace after the round trip"),
        );
    }
    Ok(())
}

/// Batch sum/peak kernels vs the trace layer's `sum_of`, per rack
/// membership of the fixture placement — the member sets the remap hot
/// path actually aggregates over.
fn sum_kernels(
    fixture: &Fixture,
    arena: &TraceArena,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let traces = fixture.traces();
    let mut out = vec![0.0f64; arena.samples_per_trace()];
    for (rack, members) in fixture.assignment.by_rack() {
        if members.is_empty() {
            continue;
        }
        let scratch = PowerTrace::sum_of(members.iter().map(|&i| &traces[i]))?;
        arena.sum_into(&members, &mut out)?;
        report.check(
            FAMILY,
            "arena_sum_kernel_matches_trace_sum",
            out.iter()
                .zip(scratch.samples())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            || {
                format!(
                    "sum_into over rack {rack:?} ({} members) drifts from PowerTrace::sum_of",
                    members.len()
                )
            },
        );
        report.check_exact(
            FAMILY,
            "arena_peak_kernel_matches_trace_peak",
            arena.peak_of_sum(&members)?,
            scratch.peak(),
        );
    }
    Ok(())
}

/// Fused arena embedding vs the trace-slice embedding, cell by cell.
fn embedding(
    fixture: &Fixture,
    arena: &TraceArena,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let members: Vec<usize> = (0..fixture.fleet.len()).collect();
    let straces = ServiceTraces::extract(&fixture.fleet, &members, 4)?;
    let from_traces = score_vectors_from_traces(fixture.traces(), &members, &straces)?;
    let from_arena = score_vectors_arena(arena, &members, &straces)?;
    for (row, (a, b)) in from_arena.iter().zip(&from_traces).enumerate() {
        report.check(
            FAMILY,
            "arena_embedding_matches_trace_embedding",
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
            || format!("embedding row {row} diverges between arena and trace paths"),
        );
    }
    Ok(())
}

/// The whole remap loop — peaks, node scores, fused swap evaluation, swap
/// commits — run once over traces and once over the arena. Reports and
/// final assignments carry every score the loop computed, so `==` here
/// pins the entire hot path.
fn remap(
    fixture: &Fixture,
    arena: &TraceArena,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let config = RemapConfig {
        max_swaps: 8,
        ..RemapConfig::default()
    };
    let mut trace_assignment = fixture.assignment.clone();
    let trace_report = remap_traces(
        fixture.traces(),
        &fixture.topology,
        &mut trace_assignment,
        config,
    )?;
    let mut arena_assignment = fixture.assignment.clone();
    let arena_report = remap_arena(arena, &fixture.topology, &mut arena_assignment, config)?;
    report.check(
        FAMILY,
        "arena_remap_matches_trace_remap",
        trace_report == arena_report && trace_assignment == arena_assignment,
        || {
            format!(
                "trace remap ({} swaps, final worst {}) != arena remap ({} swaps, final worst {})",
                trace_report.swaps.len(),
                trace_report.final_worst_score,
                arena_report.swaps.len(),
                arena_report.final_worst_score
            )
        },
    );
    Ok(())
}

/// Per-row quantiles (the StatProf kernel): the scratch-reusing
/// `quantile_of_row` and the batch `row_quantiles` against
/// `PowerTrace::quantile`, which all share one HF7 implementation.
fn quantiles(
    traces: &[PowerTrace],
    arena: &TraceArena,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let mut scratch = Vec::new();
    for (i, trace) in traces.iter().enumerate().take(6) {
        for q in PROBES {
            report.check_exact(
                FAMILY,
                "arena_quantiles_match_trace_quantiles",
                arena.quantile_of_row(i, q, &mut scratch)?,
                trace.quantile(q)?,
            );
        }
    }
    let batch = arena.row_quantiles(0.95)?;
    for (i, trace) in traces.iter().enumerate() {
        report.check_exact(
            FAMILY,
            "arena_quantiles_match_trace_quantiles",
            batch[i],
            trace.quantile(0.95)?,
        );
    }
    Ok(())
}

/// `StatProf(0, 0)` over arena round-tripped traces vs the originals: the
/// provisioning report (every level) must compare equal, because the
/// round trip is bit-exact and the baseline is deterministic.
fn statprof(
    fixture: &Fixture,
    arena: &TraceArena,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let from_traces = statprof_required_budget(
        &fixture.topology,
        &fixture.assignment,
        fixture.traces(),
        ProvisioningDegrees::none(),
    )?;
    let round_tripped = arena.to_traces()?;
    let from_arena = statprof_required_budget(
        &fixture.topology,
        &fixture.assignment,
        &round_tripped,
        ProvisioningDegrees::none(),
    )?;
    report.check(
        FAMILY,
        "arena_statprof_is_bit_identical",
        from_traces == from_arena,
        || {
            format!(
                "StatProf(0,0) diverges: datacenter {} vs {}",
                from_traces.at_level(Level::Datacenter),
                from_arena.at_level(Level::Datacenter)
            )
        },
    );
    Ok(())
}

/// `axpy_into` (the 4-wide unrolled scaled-add kernel) vs a plain scalar
/// loop in element order: the unroll touches disjoint elements with one
/// multiply-add each, so reassociation never enters and the results must
/// share every bit.
fn axpy(
    traces: &[PowerTrace],
    arena: &TraceArena,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let width = arena.samples_per_trace();
    let mut fused = vec![0.5f64; width];
    let mut scalar = fused.clone();
    for (i, trace) in traces.iter().enumerate().take(6) {
        let alpha = 1.0 + i as f64 * 0.25;
        arena.axpy_into(alpha, i, &mut fused)?;
        for (out, &x) in scalar.iter_mut().zip(trace.samples()) {
            *out += alpha * x;
        }
        report.check(
            FAMILY,
            "arena_axpy_matches_scalar_loop",
            fused
                .iter()
                .zip(&scalar)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            || format!("axpy_into(alpha={alpha}, row {i}) drifts from the scalar loop"),
        );
    }
    Ok(())
}

/// Parallel synthesis must be bit-identical to serial synthesis: the same
/// per-row generator pushed through `push_with` (row at a time, serial),
/// `par_extend_rows` at the ambient thread budget, and `par_extend_rows`
/// forced serial via `serial_scope` must produce the same buffer bits.
fn parallel_synth(traces: &[PowerTrace], arena: &TraceArena, report: &mut OracleReport) {
    let fill = |r: usize, out: &mut [f64]| out.copy_from_slice(traces[r].samples());

    let mut serial_pushed = TraceArena::with_capacity(arena.grid(), traces.len());
    for trace in traces {
        let samples = trace.samples();
        serial_pushed.push_with(|t| samples[t]);
    }
    let mut parallel = TraceArena::with_capacity(arena.grid(), traces.len());
    parallel.par_extend_rows(traces.len(), fill);
    let mut forced_serial = TraceArena::with_capacity(arena.grid(), traces.len());
    so_parallel::serial_scope(|| forced_serial.par_extend_rows(traces.len(), fill));

    let bits = |arena: &TraceArena| -> Vec<u64> {
        arena.flat_samples().iter().map(|v| v.to_bits()).collect()
    };
    let want = bits(&serial_pushed);
    report.check(
        FAMILY,
        "arena_parallel_synth_is_bit_exact",
        bits(&parallel) == want,
        || {
            format!(
                "par_extend_rows at {} lane(s) diverges from push_with",
                so_parallel::effective_lanes()
            )
        },
    );
    report.check(
        FAMILY,
        "arena_parallel_synth_is_bit_exact",
        bits(&forced_serial) == want,
        || "par_extend_rows under serial_scope diverges from push_with".to_string(),
    );
}

/// The opt-in P² streaming sketch vs the exact per-row distribution: for
/// every probe the sketch's rank error must stay within the documented
/// empirical bound, and the `q ∈ {0, 1}` edges must be exact (they track
/// the running min/max markers).
fn sketch_quantiles(
    traces: &[PowerTrace],
    arena: &TraceArena,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    for q in PROBES {
        let estimates = arena.row_quantiles_sketch(q)?;
        for (i, trace) in traces.iter().enumerate().take(8) {
            if q == 0.0 || q == 1.0 {
                report.check_exact(
                    FAMILY,
                    "arena_sketch_quantile_within_tolerance",
                    estimates[i],
                    trace.quantile(q)?,
                );
            } else {
                let error = sketch::rank_error(trace.samples(), q, estimates[i]);
                report.check(
                    FAMILY,
                    "arena_sketch_quantile_within_tolerance",
                    error <= P2_RANK_ERROR_BOUND,
                    || {
                        format!(
                            "row {i} q={q}: sketch estimate {} has rank error {error} > {P2_RANK_ERROR_BOUND}",
                            estimates[i]
                        )
                    },
                );
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_workloads::DcScenario;

    #[test]
    fn arena_oracles_agree_on_a_small_fixture() {
        let fixture = Fixture::generate(&DcScenario::dc1(), 32, 5).unwrap();
        let mut report = OracleReport::new();
        run(&fixture, &mut report).unwrap();
        assert!(report.is_clean(), "{:#?}", report.violations());
        assert!(report.evaluations(OracleFamily::Arena) > 40);
    }

    #[test]
    fn arena_oracles_are_deterministic() {
        let fixture = Fixture::generate(&DcScenario::dc3(), 24, 11).unwrap();
        let mut a = OracleReport::new();
        run(&fixture, &mut a).unwrap();
        let mut b = OracleReport::new();
        run(&fixture, &mut b).unwrap();
        assert_eq!(a, b);
    }
}
