//! Invariant oracles: properties that must hold for any single run of the
//! pipeline, checked over the fixture's placement and a handful of
//! rng-sampled instance subsets.
//!
//! | oracle | property |
//! |---|---|
//! | `score_within_cardinality_bounds` | `1 ≤ A_M ≤ \|M\|` for every non-empty trace set |
//! | `peak_of_sum_bounded_by_sum_of_peaks` | aggregation can only cancel peaks |
//! | `remap_swap_gains_exceed_min_gain` | each accepted swap's gains clear `min_gain` at both nodes |
//! | `remap_never_worsens_worst_score` | swap-based remapping never lowers the worst node's score |
//! | `statprof_zero_degrees_is_sum_of_peaks` | `StatProf(0,0)` DC budget = fleet sum-of-peaks |
//! | `smoop_zero_degrees_is_aggregate_peak` | `SmoOp(0,0)` DC budget = true aggregate peak |
//! | `smoop_bounded_by_statprof` | at zero degrees, per-level `SmoOp ≤ StatProf` |
//! | `quantile_edges_are_extremes` | `q=0` → min and `q=1` → max, exactly |
//! | `quantile_monotone_in_q` | quantiles never decrease as `q` grows |
//!
//! Tolerances: score and budget comparisons allow `1e-9` relative error
//! because the two sides accumulate floats in different orders; the
//! quantile edge laws are exact by the documented contract of
//! [`so_powertrace::quantile`].

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use so_baselines::{aggregate_required_budget, statprof_required_budget, ProvisioningDegrees};
use so_core::{asynchrony_score, remap_traces, RemapConfig};
use so_powertrace::{peak_of_sum, sum_of_peaks, PowerTrace};
use so_powertree::Level;

use crate::{Fixture, OracleError, OracleFamily, OracleReport};

const FAMILY: OracleFamily = OracleFamily::Invariant;
const REL_TOL: f64 = 1e-9;

/// Runs every invariant oracle over the fixture.
///
/// # Errors
///
/// Returns [`OracleError`] when an oracle cannot be evaluated at all;
/// failed evaluations are recorded in `report` instead.
pub fn run(
    fixture: &Fixture,
    rng: &mut StdRng,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    score_bounds(fixture, rng, report)?;
    remap_objective(fixture, report)?;
    provisioning_identities(fixture, report)?;
    quantile_laws(fixture, rng, report)?;
    Ok(())
}

/// `1 ≤ A_M ≤ |M|` and `peak_of_sum ≤ sum_of_peaks`, for every hosting
/// rack's member set, random subsets of the fleet, and the full fleet.
fn score_bounds(
    fixture: &Fixture,
    rng: &mut StdRng,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let traces = fixture.traces();
    let mut subsets: Vec<Vec<usize>> = fixture
        .assignment
        .by_rack()
        .into_values()
        .filter(|m| !m.is_empty())
        .collect();
    let mut indices: Vec<usize> = (0..traces.len()).collect();
    for _ in 0..8 {
        indices.shuffle(rng);
        let size = rng.gen_range(1..=indices.len().min(16));
        subsets.push(indices[..size].to_vec());
    }
    subsets.push((0..traces.len()).collect());

    for members in &subsets {
        let set: Vec<&PowerTrace> = members.iter().map(|&i| &traces[i]).collect();
        let score = asynchrony_score(set.iter().copied())?;
        let m = set.len() as f64;
        report.check(
            FAMILY,
            "score_within_cardinality_bounds",
            (1.0 - REL_TOL..=m * (1.0 + REL_TOL)).contains(&score),
            || format!("A_M = {score} outside [1, {m}] for |M| = {m}"),
        );
        let sp = sum_of_peaks(set.iter().copied())?;
        let ps = peak_of_sum(set.iter().copied())?;
        report.check(
            FAMILY,
            "peak_of_sum_bounded_by_sum_of_peaks",
            ps <= sp * (1.0 + REL_TOL) + f64::MIN_POSITIVE,
            || format!("peak_of_sum {ps} exceeds sum_of_peaks {sp}"),
        );
    }
    Ok(())
}

/// Remap swaps clear the configured minimum gain at both endpoints, and
/// the run never worsens the worst node's asynchrony score.
fn remap_objective(fixture: &Fixture, report: &mut OracleReport) -> Result<(), OracleError> {
    let config = RemapConfig {
        max_swaps: 8,
        ..RemapConfig::default()
    };
    let mut assignment = fixture.assignment.clone();
    let outcome = remap_traces(fixture.traces(), &fixture.topology, &mut assignment, config)?;
    for swap in &outcome.swaps {
        report.check(
            FAMILY,
            "remap_swap_gains_exceed_min_gain",
            swap.gain_node >= config.min_gain - REL_TOL
                && swap.gain_partner >= config.min_gain - REL_TOL,
            || {
                format!(
                    "swap {}↔{} gains ({}, {}) below min_gain {}",
                    swap.instance_out,
                    swap.instance_in,
                    swap.gain_node,
                    swap.gain_partner,
                    config.min_gain
                )
            },
        );
    }
    report.check(
        FAMILY,
        "remap_never_worsens_worst_score",
        outcome.final_worst_score >= outcome.initial_worst_score * (1.0 - REL_TOL),
        || {
            format!(
                "worst score fell from {} to {}",
                outcome.initial_worst_score, outcome.final_worst_score
            )
        },
    );
    Ok(())
}

/// The zero-degree provisioning identities of §5.1: `StatProf(0,0)`'s
/// datacenter budget is the fleet's sum-of-peaks, `SmoOp(0,0)`'s is the
/// true aggregate peak, and `SmoOp ≤ StatProf` holds per level (at zero
/// degrees; the inequality reverses at `u = 100`, where per-instance
/// minima sum *below* the aggregate minimum).
fn provisioning_identities(
    fixture: &Fixture,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let traces = fixture.traces();
    let degrees = ProvisioningDegrees::none();
    let statprof =
        statprof_required_budget(&fixture.topology, &fixture.assignment, traces, degrees)?;
    let smoop = aggregate_required_budget(&fixture.topology, &fixture.assignment, traces, degrees)?;

    report.check_close(
        FAMILY,
        "statprof_zero_degrees_is_sum_of_peaks",
        statprof.at_level(Level::Datacenter),
        sum_of_peaks(traces.iter())?,
        REL_TOL,
    );
    report.check_close(
        FAMILY,
        "smoop_zero_degrees_is_aggregate_peak",
        smoop.at_level(Level::Datacenter),
        peak_of_sum(traces.iter())?,
        REL_TOL,
    );
    for level in Level::ALL {
        let (s, a) = (statprof.at_level(level), smoop.at_level(level));
        report.check(
            FAMILY,
            "smoop_bounded_by_statprof",
            a <= s * (1.0 + REL_TOL) + f64::MIN_POSITIVE,
            || format!("SmoOp(0,0) = {a} exceeds StatProf(0,0) = {s} at {level:?}"),
        );
    }
    Ok(())
}

/// The documented quantile edge laws: `q = 0` returns the minimum and
/// `q = 1` the maximum exactly, and quantiles are monotone in `q`.
fn quantile_laws(
    fixture: &Fixture,
    rng: &mut StdRng,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let traces = fixture.traces();
    for _ in 0..6 {
        let t = &traces[rng.gen_range(0..traces.len())];
        report.check_exact(
            FAMILY,
            "quantile_edges_are_extremes",
            t.quantile(0.0)?,
            t.min(),
        );
        report.check_exact(
            FAMILY,
            "quantile_edges_are_extremes",
            t.quantile(1.0)?,
            t.peak(),
        );
        let mut prev = t.quantile(0.0)?;
        for step in 1..=10 {
            let q = f64::from(step) / 10.0;
            let v = t.quantile(q)?;
            report.check(FAMILY, "quantile_monotone_in_q", v >= prev, || {
                format!("quantile({q}) = {v} below quantile({}) = {prev}", q - 0.1)
            });
            prev = v;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use so_workloads::DcScenario;

    #[test]
    fn invariants_hold_on_a_small_fixture() {
        let fixture = Fixture::generate(&DcScenario::dc3(), 32, 11).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut report = OracleReport::new();
        run(&fixture, &mut rng, &mut report).unwrap();
        assert!(report.is_clean(), "{:#?}", report.violations());
        assert!(report.evaluations(OracleFamily::Invariant) > 20);
    }
}
