//! Correctness oracles for the SmoothOperator reproduction.
//!
//! Every layer of this workspace makes promises that ordinary example-based
//! tests only spot-check: the asynchrony score is bounded by the set size,
//! the parallel placement is bit-identical to the serial one, scaling every
//! trace by a constant must not change any placement decision. This crate
//! turns those promises into *oracles* — executable checks that can be run
//! against arbitrary (seeded) synthetic fleets — and bundles them into a
//! randomized battery suitable for CI and for the `smoothop check`
//! subcommand.
//!
//! Eight oracle families (see `DESIGN.md` §7):
//!
//! * **Invariant** ([`invariant`]) — properties of a single run: score
//!   bounds `1 ≤ A_M ≤ |M|`, peak-of-sum ≤ sum-of-peaks, remapping never
//!   worsens the worst node, `StatProf(0,0)`/`SmoOp(0,0)` provisioning
//!   identities, quantile edge laws.
//! * **Differential** ([`differential`]) — two implementations of the same
//!   contract must agree: serial vs parallel placement and remap, cached
//!   vs from-scratch aggregation, `simulate` vs `simulate_with_faults` on
//!   an empty schedule, the sanitizer as identity on clean traces, and any
//!   quantile implementation vs an independent reference.
//! * **Metamorphic** ([`metamorphic`]) — known input transforms with known
//!   output effects: instance permutation, uniform power scaling
//!   (bit-exact for power-of-two factors), circular time shifts.
//! * **Arena** ([`arena`]) — the columnar [`so_powertrace::TraceArena`]
//!   pipelines vs their `Vec<PowerTrace>` twins: round-trips, batch sum
//!   and peak kernels, embeddings, remap, and per-row quantiles (the
//!   StatProf kernel) must all be *bit-identical* — the contract the
//!   allocation-free hot paths rely on.
//! * **Online** ([`online`]) — the resident [`so_core::online::OnlineFleet`]
//!   engine vs offline recomputes: after any event sequence its aggregates,
//!   peaks, and asynchrony scores must be bit-identical to a from-scratch
//!   [`so_powertree::NodeAggregates::compute`] of the final fleet, and every
//!   journaled commit/reject must match an independent materialized replay
//!   of the commit policy.
//! * **Observability** ([`observability`]) — the live plane must tell the
//!   truth: the flight recorder's journal-event suffix is bit-identical to
//!   the engine journal's suffix, a clean stream fires no violation-class
//!   alert while a planted breaker-budget violation fires *exactly one*
//!   `AlertFired` (with a postmortem dump) per excursion, the cached
//!   fragmentation path matches the full recompute bit-for-bit, and
//!   journal compaction keeps the replay oracle sound.
//! * **Daemon** ([`daemon`]) — the resident [`so_core::daemon::DaemonFleet`]
//!   ingest path vs batch recomputes: after *any* streamed sample sequence
//!   (including ring wrap-around and interleaved arrival/retirement churn)
//!   the incrementally maintained aggregates, window peaks, and cached
//!   asynchrony scores must be bit-identical to a from-scratch
//!   [`so_powertree::NodeAggregates::compute`] of the materialized windows,
//!   and an independent ring-replay model must agree on every window cell.
//! * **Plan** ([`plan`]) — the capacity-planning sweep's laws: requirement
//!   series are monotone in rack count, peak-of-sum ≤ sum-of-peaks at every
//!   sweep point (so SmoothOperator never fits fewer racks than StatProf),
//!   racks-fit is monotone non-decreasing in the overbooking allowance δ
//!   and non-increasing under a burstiness-raising trace transform, and a
//!   planned-then-simulated fleet never exceeds the overbooked budget.
//!
//! Oracle outcomes accumulate in an [`OracleReport`]; each evaluation also
//! emits the telemetry counters `so_oracle_evaluations_total` and
//! `so_oracle_violations_total` (labeled by family) when a telemetry sink
//! is installed.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), so_oracles::OracleError> {
//! use so_oracles::{run_battery, BatteryConfig};
//!
//! let outcome = run_battery(&BatteryConfig {
//!     seed: 7,
//!     instances: 48,
//! })?;
//! assert!(outcome.report.is_clean(), "{:#?}", outcome.report.violations());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::error::Error;
use std::fmt;

pub mod arena;
pub mod battery;
pub mod daemon;
pub mod differential;
pub mod fixture;
pub mod invariant;
pub mod metamorphic;
pub mod observability;
pub mod online;
pub mod plan;

pub use battery::{run_battery, BatteryConfig, BatteryOutcome};
pub use fixture::{fitting_topology, rotate_trace, Fixture};

/// The eight oracle families of the correctness harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OracleFamily {
    /// Properties that must hold for any single run.
    Invariant,
    /// Two implementations of the same contract must agree.
    Differential,
    /// Known input transforms with known output effects.
    Metamorphic,
    /// Columnar-arena pipelines must be bit-identical to their
    /// `Vec<PowerTrace>` twins.
    Arena,
    /// The online placement engine must agree bit-for-bit with offline
    /// recomputes of its resident state and commit decisions.
    Online,
    /// The live observability plane (flight recorder, alert engine,
    /// journal compaction) must report exactly what the engine did.
    Observability,
    /// The resident daemon's incremental ring-buffer ingest must be
    /// bit-identical to batch recomputes of the materialized windows.
    Daemon,
    /// The capacity-planning sweep must obey its monotonicity and
    /// budget-safety laws (SmoothOperator racks-fit ≥ StatProf racks-fit,
    /// δ-monotonicity, planned fleets stay within the overbooked cap).
    Plan,
}

impl OracleFamily {
    /// All families, in reporting order.
    pub const ALL: [OracleFamily; 8] = [
        OracleFamily::Invariant,
        OracleFamily::Differential,
        OracleFamily::Metamorphic,
        OracleFamily::Arena,
        OracleFamily::Online,
        OracleFamily::Observability,
        OracleFamily::Daemon,
        OracleFamily::Plan,
    ];

    /// Stable lower-case label, used for telemetry and reports.
    pub fn label(self) -> &'static str {
        match self {
            OracleFamily::Invariant => "invariant",
            OracleFamily::Differential => "differential",
            OracleFamily::Metamorphic => "metamorphic",
            OracleFamily::Arena => "arena",
            OracleFamily::Online => "online",
            OracleFamily::Observability => "observability",
            OracleFamily::Daemon => "daemon",
            OracleFamily::Plan => "plan",
        }
    }

    fn index(self) -> usize {
        match self {
            OracleFamily::Invariant => 0,
            OracleFamily::Differential => 1,
            OracleFamily::Metamorphic => 2,
            OracleFamily::Arena => 3,
            OracleFamily::Online => 4,
            OracleFamily::Observability => 5,
            OracleFamily::Daemon => 6,
            OracleFamily::Plan => 7,
        }
    }
}

impl fmt::Display for OracleFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One failed oracle evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which family the oracle belongs to.
    pub family: OracleFamily,
    /// Stable oracle name (e.g. `"score_within_cardinality_bounds"`).
    pub oracle: &'static str,
    /// Human-readable description of the observed discrepancy.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.family, self.oracle, self.detail)
    }
}

/// Accumulated oracle outcomes: evaluation counts per family plus every
/// violation observed.
///
/// Each [`check`](Self::check) emits `so_oracle_evaluations_total` and (on
/// failure) `so_oracle_violations_total` telemetry counters labeled with
/// the family, so recorded batteries show up in metric snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OracleReport {
    evaluations: [u64; 8],
    violations: Vec<Violation>,
}

impl OracleReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one oracle evaluation; a false `pass` stores a violation
    /// with the lazily-built detail message.
    pub fn check(
        &mut self,
        family: OracleFamily,
        oracle: &'static str,
        pass: bool,
        detail: impl FnOnce() -> String,
    ) {
        self.evaluations[family.index()] += 1;
        if so_telemetry::enabled() {
            so_telemetry::counter_add(
                "so_oracle_evaluations_total",
                &[("family", family.label())],
                1,
            );
        }
        if !pass {
            if so_telemetry::enabled() {
                so_telemetry::counter_add(
                    "so_oracle_violations_total",
                    &[("family", family.label())],
                    1,
                );
            }
            self.violations.push(Violation {
                family,
                oracle,
                detail: detail(),
            });
        }
    }

    /// [`check`](Self::check) for approximate equality within a *relative*
    /// tolerance (absolute below magnitude 1): differential runners whose
    /// two sides sum floats in different orders use this with a documented
    /// tolerance.
    pub fn check_close(
        &mut self,
        family: OracleFamily,
        oracle: &'static str,
        got: f64,
        want: f64,
        rel_tol: f64,
    ) {
        let pass = (got - want).abs() <= rel_tol * want.abs().max(1.0);
        self.check(family, oracle, pass, || {
            format!("got {got}, want {want} (relative tolerance {rel_tol})")
        });
    }

    /// [`check`](Self::check) for bit-for-bit float equality — used where
    /// the two sides are documented to perform *identical* float
    /// operations (e.g. power-of-two scaling, circular shifts).
    pub fn check_exact(&mut self, family: OracleFamily, oracle: &'static str, got: f64, want: f64) {
        self.check(family, oracle, got.to_bits() == want.to_bits(), || {
            format!(
                "got {got} ({:#x}), want {want} ({:#x})",
                got.to_bits(),
                want.to_bits()
            )
        });
    }

    /// Evaluations recorded for one family.
    pub fn evaluations(&self, family: OracleFamily) -> u64 {
        self.evaluations[family.index()]
    }

    /// Total evaluations across all families.
    pub fn total_evaluations(&self) -> u64 {
        self.evaluations.iter().sum()
    }

    /// Every violation, in evaluation order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Violations recorded for one family.
    pub fn violations_in(&self, family: OracleFamily) -> usize {
        self.violations
            .iter()
            .filter(|v| v.family == family)
            .count()
    }

    /// Whether every evaluation passed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Folds another report into this one.
    pub fn merge_from(&mut self, other: &OracleReport) {
        for (mine, theirs) in self.evaluations.iter_mut().zip(other.evaluations) {
            *mine += theirs;
        }
        self.violations.extend(other.violations.iter().cloned());
    }
}

/// Error produced when an oracle cannot even be *evaluated* (as opposed to
/// a [`Violation`], which is an evaluation that ran and failed).
#[derive(Debug)]
pub enum OracleError {
    /// A trace-layer operation failed.
    Trace(so_powertrace::TraceError),
    /// A topology/assignment operation failed.
    Tree(so_powertree::TreeError),
    /// A placement/remap operation failed.
    Core(so_core::CoreError),
    /// A simulation run failed.
    Sim(so_sim::SimError),
    /// Fleet generation failed.
    Workload(so_workloads::WorkloadError),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Trace(e) => write!(f, "trace error: {e}"),
            OracleError::Tree(e) => write!(f, "tree error: {e}"),
            OracleError::Core(e) => write!(f, "placement error: {e}"),
            OracleError::Sim(e) => write!(f, "simulation error: {e}"),
            OracleError::Workload(e) => write!(f, "workload error: {e}"),
        }
    }
}

impl Error for OracleError {}

macro_rules! from_impl {
    ($variant:ident, $source:ty) => {
        impl From<$source> for OracleError {
            fn from(e: $source) -> Self {
                OracleError::$variant(e)
            }
        }
    };
}

from_impl!(Trace, so_powertrace::TraceError);
from_impl!(Tree, so_powertree::TreeError);
from_impl!(Core, so_core::CoreError);
from_impl!(Sim, so_sim::SimError);
from_impl!(Workload, so_workloads::WorkloadError);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_per_family() {
        let mut report = OracleReport::new();
        report.check(OracleFamily::Invariant, "always_true", true, String::new);
        report.check(OracleFamily::Invariant, "always_false", false, || {
            "expected".to_string()
        });
        report.check_close(OracleFamily::Differential, "close", 1.0, 1.0 + 1e-12, 1e-9);
        report.check_exact(OracleFamily::Metamorphic, "exact", 2.0, 2.0);
        assert_eq!(report.evaluations(OracleFamily::Invariant), 2);
        assert_eq!(report.evaluations(OracleFamily::Differential), 1);
        assert_eq!(report.evaluations(OracleFamily::Metamorphic), 1);
        assert_eq!(report.total_evaluations(), 4);
        assert_eq!(report.violations_in(OracleFamily::Invariant), 1);
        assert!(!report.is_clean());
        assert_eq!(report.violations()[0].oracle, "always_false");
        assert_eq!(report.violations()[0].detail, "expected");
    }

    #[test]
    fn check_exact_distinguishes_near_values() {
        let mut report = OracleReport::new();
        report.check_exact(
            OracleFamily::Metamorphic,
            "off_by_ulp",
            1.0,
            1.0 + f64::EPSILON,
        );
        assert_eq!(report.violations_in(OracleFamily::Metamorphic), 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OracleReport::new();
        a.check(OracleFamily::Invariant, "ok", true, String::new);
        let mut b = OracleReport::new();
        b.check(OracleFamily::Invariant, "bad", false, || "boom".to_string());
        a.merge_from(&b);
        assert_eq!(a.evaluations(OracleFamily::Invariant), 2);
        assert_eq!(a.violations().len(), 1);
    }

    #[test]
    fn telemetry_counters_are_emitted() {
        use std::sync::Arc;

        let sink = Arc::new(so_telemetry::RecordingSink::with_virtual_clock());
        so_telemetry::with_sink(sink.clone(), || {
            let mut report = OracleReport::new();
            report.check(OracleFamily::Invariant, "pass", true, String::new);
            report.check(OracleFamily::Invariant, "fail", false, || "x".to_string());
            report.check(OracleFamily::Metamorphic, "pass", true, String::new);
        });
        let metrics = sink.snapshot();
        assert_eq!(
            metrics.counter("so_oracle_evaluations_total", &[("family", "invariant")]),
            2
        );
        assert_eq!(
            metrics.counter("so_oracle_violations_total", &[("family", "invariant")]),
            1
        );
        assert_eq!(
            metrics.counter("so_oracle_evaluations_total", &[("family", "metamorphic")]),
            1
        );
    }

    #[test]
    fn violation_display_names_family_and_oracle() {
        let v = Violation {
            family: OracleFamily::Differential,
            oracle: "placement_serial_matches_parallel",
            detail: "racks diverge at instance 3".to_string(),
        };
        let s = v.to_string();
        assert!(s.contains("differential"));
        assert!(s.contains("placement_serial_matches_parallel"));
        assert!(s.contains("instance 3"));
    }

    #[test]
    fn error_wraps_layer_errors() {
        let e: OracleError = so_powertrace::TraceError::Empty.into();
        assert!(e.to_string().contains("trace"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OracleError>();
    }
}
