//! Daemon oracles: the resident [`DaemonFleet`] streaming-ingest path
//! diffed against batch recomputes of everything it maintains.
//!
//! | oracle | sides | agreement |
//! |---|---|---|
//! | `ring_replay_reconstructs_every_window_cell` | arena rows after an ingest stream vs an independent ring-replay model | bit-identical cells |
//! | `ingest_aggregates_match_batch_recompute` | resident aggregates after ingest vs [`NodeAggregates::compute`] on the materialized windows | bit-identical samples |
//! | `ingest_peaks_match_batch_recompute` | resident per-node peaks vs the recomputed aggregates' peaks | bit-identical |
//! | `cached_asynchrony_matches_fused_score` | cached-peak [`DaemonFleet::rack_asynchrony`] vs the fused [`OnlineFleet::rack_asynchrony`] recompute | bit-identical |
//! | `cached_asynchrony_matches_materialized_score` | cached-peak scores vs [`asynchrony_score`] over materialized member traces | bit-identical |
//! | `cached_mean_asynchrony_matches_fused` | [`DaemonFleet::mean_rack_asynchrony`] vs the engine's recompute | bit-identical |
//! | `empty_ingest_is_identity` | root aggregate bits before vs after an empty batch | bit-identical |
//! | `malformed_batch_rejects_without_mutation` | root aggregate bits around a NaN-bearing batch | rejected + bit-identical |
//! | `ingest_accounting_is_exact` | per-batch applied/dropped vs the submitted updates and lifetime counters | exact |
//!
//! Every identity here is *exact*: ingest settles each touched rack path
//! with the same canonical refresh every commit runs, so the resident
//! state after any stream — including ring wrap-around and interleaved
//! arrival/retirement churn — must match a from-scratch recompute to the
//! bit. [`check_daemon_state`] is exported so mutation tests can feed
//! deliberately broken daemons through the same checker the battery runs.

use rand::rngs::StdRng;
use rand::Rng;
use so_core::asynchrony_score;
use so_core::daemon::{DaemonFleet, SampleUpdate};
use so_core::online::{CommitPolicy, OnlineConfig, OnlineFleet};
use so_powertrace::PowerTrace;
use so_powertree::NodeAggregates;

use crate::{Fixture, OracleError, OracleFamily, OracleReport};

const FAMILY: OracleFamily = OracleFamily::Daemon;

/// Streamed ingest rounds per battery run.
const ROUNDS: usize = 6;

/// Runs every daemon oracle over the fixture: a [`DaemonFleet`] is
/// seeded with the fixture fleet, driven through `ROUNDS` randomized
/// sample batches (watt draws come from `rng`, so distinct battery seeds
/// exercise distinct streams) interleaved with retirement/arrival churn
/// and a repair pass, while an independent ring-replay model shadows
/// every window write. The resident state is then held against batch
/// recomputes after every round.
///
/// # Errors
///
/// Returns [`OracleError`] when an oracle cannot be evaluated at all;
/// failed evaluations are recorded in `report` instead.
pub fn run(
    fixture: &Fixture,
    rng: &mut StdRng,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let traces = fixture.traces();
    let grid = traces[0].grid();
    // Generous budgets so the stream commits deeply; the ingest oracles
    // probe maintenance, not admission (the online family covers that).
    let cap = traces.iter().map(PowerTrace::peak).sum::<f64>() * 2.0 + 100.0;
    let config = OnlineConfig {
        policy: CommitPolicy::BestAsynchrony,
        repair_budget: 1,
        min_gain: 0.0,
        sample_salt: fixture.seed,
        ..OnlineConfig::default()
    };
    let engine = OnlineFleet::new(fixture.topology.clone(), grid, config)
        .with_budgets(vec![cap; fixture.topology.len()])
        .map_err(OracleError::Core)?;
    let mut daemon = DaemonFleet::new(engine);

    // The independent ring-replay model: per-slot window + cursor,
    // maintained with nothing but slice writes and modular arithmetic.
    let mut model: Vec<(Vec<f64>, usize)> = Vec::new();
    for trace in traces {
        if let Some(slot) = daemon.arrive(trace).map_err(OracleError::Core)? {
            debug_assert_eq!(slot, model.len());
            model.push((trace.samples().to_vec(), 0));
        }
    }

    let window = daemon.window();
    for round in 0..ROUNDS {
        let slot_count = daemon.fleet().slot_count();
        let batch_len = (slot_count / 2).max(1) + round;
        let mut updates = Vec::with_capacity(batch_len + 2);
        for _ in 0..batch_len {
            updates.push(SampleUpdate {
                slot: rng.gen_range(0..slot_count),
                watts: rng.gen_range(0.0..400.0),
            });
        }
        // Two deliberate drops: a never-committed slot and (after the
        // churn round below) retired slots hit the same skip path.
        updates.push(SampleUpdate {
            slot: slot_count + 7,
            watts: 1.0,
        });
        let submitted = updates.len();
        let outcome = daemon.ingest_batch(&updates).map_err(OracleError::Core)?;
        let mut expect_applied = 0usize;
        for update in &updates {
            if daemon.fleet().rack_of(update.slot).is_some() {
                let (row, cursor) = &mut model[update.slot];
                row[*cursor] = update.watts;
                *cursor = (*cursor + 1) % window;
                expect_applied += 1;
            }
        }
        report.check(
            FAMILY,
            "ingest_accounting_is_exact",
            outcome.applied == expect_applied && outcome.applied + outcome.dropped == submitted,
            || {
                format!(
                    "round {round}: applied {} dropped {} of {submitted} submitted, expected {expect_applied} applied",
                    outcome.applied, outcome.dropped
                )
            },
        );

        if round == ROUNDS / 2 {
            // Interleave churn mid-stream: retire a random live slot,
            // commit a fresh arrival, run one repair pass. None of it
            // may disturb the bit-identity of later recomputes.
            let live = daemon.fleet().live_slots();
            let victim = live[rng.gen_range(0..live.len())];
            daemon.retire(victim).map_err(OracleError::Core)?;
            let fresh = traces[rng.gen_range(0..traces.len())].clone();
            if let Some(slot) = daemon.arrive(&fresh).map_err(OracleError::Core)? {
                debug_assert_eq!(slot, model.len());
                model.push((fresh.samples().to_vec(), 0));
            }
            daemon.repair().map_err(OracleError::Core)?;
        }

        check_ring_replay(&daemon, &model, report);
        check_daemon_state(&daemon, report)?;
    }

    empty_ingest_is_identity(&mut daemon, report)?;
    malformed_batch_rejects(&mut daemon, report)?;
    counters_cover_lifetime(&daemon, report);
    Ok(())
}

/// Every live slot's arena row must equal the ring-replay model's window
/// bit-for-bit: the daemon's cursor arithmetic and the model's were
/// written independently, so any indexing bug shows up as a cell diff.
fn check_ring_replay(daemon: &DaemonFleet, model: &[(Vec<f64>, usize)], report: &mut OracleReport) {
    for slot in daemon.fleet().live_slots() {
        let got = daemon.fleet().row(slot);
        let want = &model[slot].0;
        report.check(
            FAMILY,
            "ring_replay_reconstructs_every_window_cell",
            got.len() == want.len()
                && got
                    .iter()
                    .zip(want)
                    .all(|(g, w)| g.to_bits() == w.to_bits()),
            || format!("slot {slot}: resident window diverges from the ring-replay model"),
        );
    }
}

/// Diffs a daemon's incrementally maintained state against batch
/// recomputes: aggregates and peaks vs [`NodeAggregates::compute`] of
/// the materialized windows, cached asynchrony vs both the fused engine
/// recompute and [`asynchrony_score`] over materialized member traces.
/// Exported so mutation tests can present deliberately stale daemons to
/// the same checker the battery runs.
///
/// # Errors
///
/// Propagates assignment/aggregation errors (the *claimed* side is only
/// read, never validated).
pub fn check_daemon_state(
    daemon: &DaemonFleet,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let engine = daemon.fleet();
    let (traces, assignment, _) = engine.live_view().map_err(OracleError::Core)?;
    let offline = if traces.is_empty() {
        NodeAggregates::zeros(engine.topology(), engine.grid())
    } else {
        NodeAggregates::compute(engine.topology(), &assignment, &traces)?
    };
    for node in engine.topology().nodes().iter().map(|n| n.id()) {
        let got = engine.aggregates().trace(node)?.samples();
        let want = offline.trace(node)?.samples();
        report.check(
            FAMILY,
            "ingest_aggregates_match_batch_recompute",
            got.len() == want.len()
                && got
                    .iter()
                    .zip(want)
                    .all(|(g, w)| g.to_bits() == w.to_bits()),
            || format!("node {node}: resident aggregate drifts from the batch recompute"),
        );
        report.check_exact(
            FAMILY,
            "ingest_peaks_match_batch_recompute",
            engine.aggregates().peak(node)?,
            offline.peak(node)?,
        );
    }
    if !traces.is_empty() {
        for (rack, members) in assignment.by_rack() {
            if members.is_empty() {
                continue;
            }
            let cached = daemon.rack_asynchrony(rack).map_err(OracleError::Core)?;
            let fused = engine.rack_asynchrony(rack).map_err(OracleError::Core)?;
            let materialized =
                asynchrony_score(members.iter().map(|&i| &traces[i])).map_err(OracleError::Core)?;
            report.check_exact(
                FAMILY,
                "cached_asynchrony_matches_fused_score",
                cached,
                fused,
            );
            report.check_exact(
                FAMILY,
                "cached_asynchrony_matches_materialized_score",
                cached,
                materialized,
            );
        }
        let got_mean = daemon.mean_rack_asynchrony();
        let want_mean = engine.mean_rack_asynchrony();
        report.check(
            FAMILY,
            "cached_mean_asynchrony_matches_fused",
            got_mean.map(f64::to_bits) == want_mean.map(f64::to_bits),
            || format!("cached mean {got_mean:?} vs fused mean {want_mean:?}"),
        );
    }
    Ok(())
}

/// An empty batch must be a perfect no-op on the resident aggregates.
fn empty_ingest_is_identity(
    daemon: &mut DaemonFleet,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let before = root_bits(daemon)?;
    daemon.ingest_batch(&[]).map_err(OracleError::Core)?;
    let after = root_bits(daemon)?;
    report.check(FAMILY, "empty_ingest_is_identity", before == after, || {
        "an empty ingest batch perturbed the root aggregate".to_string()
    });
    Ok(())
}

/// A batch containing one malformed reading must be rejected whole —
/// the error surfaces *before* any window write, so no partial state
/// leaks.
fn malformed_batch_rejects(
    daemon: &mut DaemonFleet,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let before = root_bits(daemon)?;
    let ingested = daemon.samples_ingested();
    let live = daemon.fleet().live_slots();
    let mut updates: Vec<SampleUpdate> = live
        .iter()
        .take(3)
        .map(|&slot| SampleUpdate { slot, watts: 5.0 })
        .collect();
    updates.push(SampleUpdate {
        slot: live[0],
        watts: f64::NAN,
    });
    let rejected = daemon.ingest_batch(&updates).is_err();
    let after = root_bits(daemon)?;
    report.check(
        FAMILY,
        "malformed_batch_rejects_without_mutation",
        rejected && before == after && daemon.samples_ingested() == ingested,
        || "a NaN-bearing batch was not rejected atomically".to_string(),
    );
    Ok(())
}

/// Lifetime counters must be plain sums of what the battery streamed.
fn counters_cover_lifetime(daemon: &DaemonFleet, report: &mut OracleReport) {
    report.check(
        FAMILY,
        "ingest_accounting_is_exact",
        daemon.batches_ingested() >= ROUNDS as u64 && daemon.samples_ingested() > 0,
        || {
            format!(
                "lifetime counters implausible: {} batches, {} samples",
                daemon.batches_ingested(),
                daemon.samples_ingested()
            )
        },
    );
}

fn root_bits(daemon: &DaemonFleet) -> Result<Vec<u64>, OracleError> {
    let root = daemon.fleet().topology().root();
    Ok(daemon
        .fleet()
        .aggregates()
        .trace(root)?
        .samples()
        .iter()
        .map(|s| s.to_bits())
        .collect())
}
