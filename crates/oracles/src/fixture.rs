//! Shared fixtures for the oracle battery: a seeded synthetic fleet placed
//! onto a fitting topology, plus trace transforms the metamorphic oracles
//! build on.

use so_core::SmoothPlacer;
use so_powertrace::PowerTrace;
use so_powertree::{Assignment, PowerTopology, TreeError};
use so_workloads::{DcScenario, Fleet};

use crate::OracleError;

/// A topology sized to host `n` instances, shaped like the paper's trees
/// (1 suite × 2 MSB × 2 SB × r RPP × 4 racks). Kept local so the oracle
/// crate exercises only the layers it checks.
///
/// # Errors
///
/// Propagates topology-builder errors.
pub fn fitting_topology(n: usize, rack_capacity: usize) -> Result<PowerTopology, TreeError> {
    let racks_needed = n.div_ceil(rack_capacity).max(1);
    let rpps = racks_needed.div_ceil(2 * 2 * 4).max(1);
    PowerTopology::builder()
        .suites(1)
        .msbs_per_suite(2)
        .sbs_per_msb(2)
        .rpps_per_sb(rpps)
        .racks_per_rpp(4)
        .rack_capacity(rack_capacity)
        .name("oracle-fixture")
        .build()
}

/// `trace` with its samples rotated right by `shift` steps (circular):
/// sample `t` of the result is sample `(t − shift) mod len` of the input.
/// Rotation permutes samples without touching their values, so peaks,
/// quantiles, and energies are preserved *bit-for-bit* — the exactness the
/// time-shift metamorphic oracle relies on.
pub fn rotate_trace(trace: &PowerTrace, shift: usize) -> PowerTrace {
    let n = trace.len();
    let shift = shift % n;
    let mut samples = Vec::with_capacity(n);
    samples.extend_from_slice(&trace.samples()[n - shift..]);
    samples.extend_from_slice(&trace.samples()[..n - shift]);
    PowerTrace::new(samples, trace.step_minutes()).expect("rotation preserves validity")
}

/// One seeded oracle-battery fixture: a generated fleet, a topology that
/// fits it, and the workload-aware placement of the former onto the
/// latter.
#[derive(Debug, Clone)]
pub struct Fixture {
    /// The synthetic fleet under test.
    pub fleet: Fleet,
    /// Topology hosting the fleet.
    pub topology: PowerTopology,
    /// `SmoothPlacer::default()` placement of the fleet.
    pub assignment: Assignment,
    /// The battery seed the fixture was derived from.
    pub seed: u64,
}

impl Fixture {
    /// Generates a fixture: the scenario's own seed is mixed with the
    /// battery seed so distinct battery seeds exercise distinct fleets.
    ///
    /// # Errors
    ///
    /// Propagates fleet-generation, topology, and placement errors.
    pub fn generate(
        scenario: &DcScenario,
        instances: usize,
        seed: u64,
    ) -> Result<Self, OracleError> {
        let mut scenario = scenario.clone();
        scenario.seed ^= seed.rotate_left(17);
        let fleet = scenario.generate_fleet(instances)?;
        let topology = fitting_topology(instances, 12)?;
        let assignment = SmoothPlacer::default().place(&fleet, &topology)?;
        Ok(Self {
            fleet,
            topology,
            assignment,
            seed,
        })
    }

    /// The fleet's averaged training traces (one per instance) — the
    /// traces every oracle operates on.
    pub fn traces(&self) -> &[PowerTrace] {
        self.fleet.averaged_traces()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitting_topology_fits() {
        for n in [1, 24, 100, 1000] {
            let topo = fitting_topology(n, 12).unwrap();
            assert!(topo.server_capacity() >= n, "n = {n}");
        }
    }

    #[test]
    fn rotation_preserves_multiset() {
        let t = PowerTrace::new(vec![1.0, 2.0, 3.0, 4.0, 5.0], 10).unwrap();
        let r = rotate_trace(&t, 2);
        assert_eq!(r.samples(), &[4.0, 5.0, 1.0, 2.0, 3.0]);
        assert_eq!(r.peak(), t.peak());
        assert_eq!(r.min(), t.min());
        let full = rotate_trace(&t, 5);
        assert_eq!(full.samples(), t.samples());
    }

    #[test]
    fn fixture_is_deterministic_per_seed() {
        let a = Fixture::generate(&DcScenario::dc1(), 24, 3).unwrap();
        let b = Fixture::generate(&DcScenario::dc1(), 24, 3).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.traces()[0].samples(), b.traces()[0].samples());
        let c = Fixture::generate(&DcScenario::dc1(), 24, 4).unwrap();
        assert_ne!(a.traces()[0].samples(), c.traces()[0].samples());
    }
}
