//! Plan oracles: the capacity-planning sweep's laws, checked on real
//! fixture traces.
//!
//! `smoothop plan` answers "how many additional racks of workload `W`
//! fit under this MSB at overbooking allowance δ?" for two provisioning
//! schemes — StatProf (sum of per-instance peaks) and SmoothOperator
//! (peak of the aggregate sum). This family rebuilds a miniature sweep
//! from a fixture's traces (base fleet = first half, candidate racks =
//! chunks of the rest) and pins the laws every correct sweep must obey:
//!
//! * both requirement series are monotone non-decreasing in rack count
//!   (racks only ever add non-negative power);
//! * peak-of-sum ≤ sum-of-peaks at every sweep point, hence
//!   SmoothOperator racks-fit ≥ StatProf racks-fit *for any budget*;
//! * racks-fit is monotone non-decreasing in δ;
//! * a planned-then-simulated fleet — independently re-summed from the
//!   raw traces — never exceeds the overbooked cap `budget · (1 + δ)`;
//! * raising every candidate trace's burstiness pointwise
//!   (`r′(t) = 2·r(t) − min r`, which lifts peak-to-mean while keeping
//!   `r′ ≥ r`) never lets *more* racks fit;
//! * the fit extraction itself obeys its boundary laws: the fitted
//!   count's requirement is within the cap (≤, inclusive at equality)
//!   and the next rack's requirement exceeds it — the off-by-one the
//!   mutation suite plants.

use so_powertrace::PowerTrace;

use crate::{Fixture, OracleError, OracleFamily, OracleReport};

/// Overbooking allowances the family sweeps, strictly ascending.
pub const PLAN_DELTAS: [f64; 3] = [0.0, 0.05, 0.10];

/// Budget headroom over the base fleet's sum-of-peaks used by the
/// fixture sweep (mirrors the CLI default, but any budget satisfies the
/// laws checked here).
const HEADROOM: f64 = 0.10;

/// Independent restatement of the racks-fit extraction: the number of
/// leading sweep points whose requirement stays within
/// `budget · (1 + delta)`. Equality at the cap counts as fitting.
pub fn reference_racks_fit(required: &[f64], budget: f64, delta: f64) -> usize {
    let cap = budget * (1.0 + delta);
    required.iter().take_while(|&&req| req <= cap).count()
}

/// Checks a racks-fit implementation against the reference and the
/// boundary laws, one δ at a time plus δ-monotonicity across the set.
///
/// `fit_fn` is the implementation under test (the production
/// `racks_fit_from_series`, or a deliberately broken closure in the
/// mutation suite). `required` must be monotone non-decreasing — which
/// every real sweep series is — for the "next rack exceeds" law to be
/// meaningful.
pub fn check_sweep_fit<F>(
    fit_fn: &F,
    required: &[f64],
    budget: f64,
    deltas: &[f64],
    report: &mut OracleReport,
) where
    F: Fn(&[f64], f64, f64) -> usize,
{
    let mut previous_fit = None;
    for &delta in deltas {
        let cap = budget * (1.0 + delta);
        let fit = fit_fn(required, budget, delta);
        report.check(
            OracleFamily::Plan,
            "racks_fit_within_sweep_depth",
            fit <= required.len(),
            || format!("fit {fit} exceeds sweep depth {}", required.len()),
        );
        report.check(
            OracleFamily::Plan,
            "racks_fit_matches_reference",
            fit == reference_racks_fit(required, budget, delta),
            || {
                format!(
                    "fit {fit} vs reference {} at δ {delta}",
                    reference_racks_fit(required, budget, delta)
                )
            },
        );
        if fit > 0 && fit <= required.len() {
            report.check(
                OracleFamily::Plan,
                "fitted_requirement_within_cap",
                required[fit - 1] <= cap,
                || {
                    format!(
                        "requirement {} of fitted rack {fit} exceeds cap {cap} at δ {delta}",
                        required[fit - 1]
                    )
                },
            );
        }
        if fit < required.len() {
            report.check(
                OracleFamily::Plan,
                "next_rack_exceeds_cap",
                required[fit] > cap,
                || {
                    format!(
                        "rack {} (requirement {}) still fits cap {cap} at δ {delta} — \
                         off-by-one in the sweep loop",
                        fit + 1,
                        required[fit]
                    )
                },
            );
        }
        if let Some(prev) = previous_fit {
            report.check(
                OracleFamily::Plan,
                "racks_fit_monotone_in_delta",
                fit >= prev,
                || format!("fit dropped from {prev} to {fit} as δ rose to {delta}"),
            );
        }
        previous_fit = Some(fit);
    }
}

/// Builds both requirement series for `base` plus `racks` appended in
/// order: (statprof = cumulative sum-of-peaks, smoop = cumulative
/// peak-of-sum).
fn requirement_series(base: &[&PowerTrace], racks: &[Vec<&PowerTrace>]) -> (Vec<f64>, Vec<f64>) {
    let samples = base[0].samples().len();
    let mut running = vec![0.0f64; samples];
    let mut sum_of_peaks = 0.0f64;
    for trace in base {
        for (acc, &v) in running.iter_mut().zip(trace.samples()) {
            *acc += v;
        }
        sum_of_peaks += trace.peak();
    }
    let mut statprof = Vec::with_capacity(racks.len());
    let mut smoop = Vec::with_capacity(racks.len());
    for rack in racks {
        for trace in rack {
            for (acc, &v) in running.iter_mut().zip(trace.samples()) {
                *acc += v;
            }
            sum_of_peaks += trace.peak();
        }
        statprof.push(sum_of_peaks);
        smoop.push(running.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }
    (statprof, smoop)
}

/// Runs the plan family against a fixture: base fleet = first half of
/// the traces, candidate racks = equal chunks of the rest.
///
/// # Errors
///
/// Currently infallible (kept fallible for uniformity with the other
/// families' runners).
pub fn run(fixture: &Fixture, report: &mut OracleReport) -> Result<(), OracleError> {
    let traces: Vec<&PowerTrace> = fixture.traces().iter().collect();
    let base: Vec<&PowerTrace> = traces[..traces.len() / 2].to_vec();
    let rest = &traces[traces.len() / 2..];
    let rack_size = (rest.len() / 6).max(1);
    let racks: Vec<Vec<&PowerTrace>> = rest.chunks(rack_size).map(|c| c.to_vec()).collect();
    if base.is_empty() || racks.len() < 2 {
        return Ok(());
    }

    let (statprof, smoop) = requirement_series(&base, &racks);
    let base_sum_of_peaks: f64 = base.iter().map(|t| t.peak()).sum();
    let budget = base_sum_of_peaks * (1.0 + HEADROOM);

    // Law 1: peak-of-sum ≤ sum-of-peaks at every sweep point (tiny
    // relative slack for summation-order float error).
    for (k, (&so, &sp)) in smoop.iter().zip(&statprof).enumerate() {
        report.check(
            OracleFamily::Plan,
            "peak_of_sum_le_sum_of_peaks_per_sweep_point",
            so <= sp * (1.0 + 1e-9),
            || format!("rack {}: peak-of-sum {so} > sum-of-peaks {sp}", k + 1),
        );
    }

    // Law 2: both requirement series are monotone non-decreasing.
    for (name, series) in [("statprof", &statprof), ("smoothoperator", &smoop)] {
        report.check(
            OracleFamily::Plan,
            "requirement_series_monotone_in_racks",
            series.windows(2).all(|w| w[0] <= w[1]),
            || format!("{name} requirement series decreases: {series:?}"),
        );
    }

    // Laws 3–4: SmoothOperator fits at least as many racks as StatProf
    // at every δ, and each scheme's fit is δ-monotone.
    let mut prev: Option<(usize, usize)> = None;
    for &delta in &PLAN_DELTAS {
        let fit_sp = reference_racks_fit(&statprof, budget, delta);
        let fit_so = reference_racks_fit(&smoop, budget, delta);
        report.check(
            OracleFamily::Plan,
            "smoothoperator_fits_at_least_statprof",
            fit_so >= fit_sp,
            || format!("δ {delta}: smoothoperator fit {fit_so} < statprof fit {fit_sp}"),
        );
        if let Some((psp, pso)) = prev {
            report.check(
                OracleFamily::Plan,
                "scheme_fits_monotone_in_delta",
                fit_sp >= psp && fit_so >= pso,
                || {
                    format!(
                        "fits dropped at δ {delta}: statprof {psp}→{fit_sp}, smoop {pso}→{fit_so}"
                    )
                },
            );
        }
        prev = Some((fit_sp, fit_so));

        // Law 5: the planned fleet, re-simulated independently (fresh
        // per-sample accumulation over base + fitted racks), stays
        // within the overbooked cap.
        let cap = budget * (1.0 + delta);
        let samples = base[0].samples().len();
        let mut replay = vec![0.0f64; samples];
        for trace in base.iter().chain(racks[..fit_so].iter().flatten()) {
            for (acc, &v) in replay.iter_mut().zip(trace.samples()) {
                *acc += v;
            }
        }
        let replay_peak = replay.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        report.check(
            OracleFamily::Plan,
            "planned_fleet_stays_within_budget",
            replay_peak <= cap * (1.0 + 1e-9),
            || format!("δ {delta}: planned fleet peaks at {replay_peak}, cap {cap}"),
        );
    }

    // Law 6: raising every candidate trace's burstiness pointwise never
    // fits more racks. `r′(t) = 2·r(t) − min r` keeps r′ ≥ r everywhere
    // (so both requirement series rise pointwise) while lifting the
    // peak-to-mean ratio of every non-constant trace.
    let burstier_storage: Vec<Vec<PowerTrace>> = racks
        .iter()
        .map(|rack| {
            rack.iter()
                .map(|t| {
                    let min = t.min();
                    let samples: Vec<f64> = t.samples().iter().map(|&v| 2.0 * v - min).collect();
                    PowerTrace::new(samples, t.grid().step_minutes())
                        .expect("same step, finite non-negative samples")
                })
                .collect()
        })
        .collect();
    let burstier: Vec<Vec<&PowerTrace>> = burstier_storage
        .iter()
        .map(|rack| rack.iter().collect())
        .collect();
    let (statprof_b, smoop_b) = requirement_series(&base, &burstier);
    for &delta in &PLAN_DELTAS {
        let pairs = [
            ("statprof", &statprof, &statprof_b),
            ("smoothoperator", &smoop, &smoop_b),
        ];
        for (name, original, bursty) in pairs {
            let fit = reference_racks_fit(original, budget, delta);
            let fit_bursty = reference_racks_fit(bursty, budget, delta);
            report.check(
                OracleFamily::Plan,
                "burstier_racks_never_fit_more",
                fit_bursty <= fit,
                || {
                    format!(
                        "δ {delta} {name}: burstier candidates fit {fit_bursty} > original {fit}"
                    )
                },
            );
        }
    }

    // Law 7: the fit extraction's boundary behaviour on the real series.
    check_sweep_fit(&reference_racks_fit, &smoop, budget, &PLAN_DELTAS, report);
    check_sweep_fit(
        &reference_racks_fit,
        &statprof,
        budget,
        &PLAN_DELTAS,
        report,
    );

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_fit_is_inclusive_at_the_cap() {
        let required = [10.0, 20.0, 30.0];
        assert_eq!(reference_racks_fit(&required, 20.0, 0.0), 2);
        assert_eq!(reference_racks_fit(&required, 20.0, 0.5), 3);
        assert_eq!(reference_racks_fit(&required, 9.0, 0.0), 0);
    }

    #[test]
    fn family_is_clean_on_a_fixture() {
        let fixture = Fixture::generate(&so_workloads::DcScenario::dc2(), 36, 7).unwrap();
        let mut report = OracleReport::new();
        run(&fixture, &mut report).unwrap();
        assert!(report.is_clean(), "{:#?}", report.violations());
        assert!(report.evaluations(OracleFamily::Plan) > 10);
    }

    #[test]
    fn check_sweep_fit_flags_an_off_by_one() {
        let required = [80.0, 100.0, 120.0, 140.0];
        let broken = |series: &[f64], budget: f64, delta: f64| {
            reference_racks_fit(series, budget, delta) + 1
        };
        let mut report = OracleReport::new();
        check_sweep_fit(&broken, &required, 100.0, &PLAN_DELTAS, &mut report);
        assert!(!report.is_clean());
    }

    #[test]
    fn tiny_fixtures_are_skipped_not_failed() {
        let fixture = Fixture::generate(&so_workloads::DcScenario::dc1(), 2, 7).unwrap();
        let mut report = OracleReport::new();
        run(&fixture, &mut report).unwrap();
        assert!(report.is_clean());
    }
}
