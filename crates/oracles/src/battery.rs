//! The seeded randomized battery: one fixture, all eight oracle families.
//!
//! The battery is fully deterministic in `(seed, instances)` — the seed
//! selects the scenario preset, perturbs fleet generation, and drives
//! every sampled subset, permutation, scale factor, and time shift — so a
//! CI failure reproduces locally with the same flags.

use rand::rngs::StdRng;
use rand::SeedableRng;
use so_workloads::DcScenario;

use crate::{
    arena, daemon, differential, invariant, metamorphic, observability, online, plan, Fixture,
    OracleError, OracleReport,
};

/// Battery parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatteryConfig {
    /// Seed driving the scenario choice, fleet generation, and every
    /// randomized probe.
    pub seed: u64,
    /// Fleet size the oracles run over.
    pub instances: usize,
}

impl Default for BatteryConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            instances: 240,
        }
    }
}

/// Outcome of one battery run.
#[derive(Debug, Clone)]
pub struct BatteryOutcome {
    /// Name of the scenario preset the seed selected.
    pub scenario: String,
    /// Fleet size the battery ran over.
    pub instances: usize,
    /// The seed the run was derived from.
    pub seed: u64,
    /// Accumulated oracle outcomes.
    pub report: OracleReport,
}

/// Runs the full oracle battery: builds the seeded fixture, then the
/// invariant, differential, metamorphic, arena, online, observability,
/// daemon, and plan families in that order.
///
/// # Errors
///
/// Returns [`OracleError`] when the fixture cannot be built or an oracle
/// cannot be evaluated; oracle *failures* land in the outcome's report.
pub fn run_battery(config: &BatteryConfig) -> Result<BatteryOutcome, OracleError> {
    let scenario = match config.seed % 3 {
        0 => DcScenario::dc1(),
        1 => DcScenario::dc2(),
        _ => DcScenario::dc3(),
    };
    let fixture = Fixture::generate(&scenario, config.instances, config.seed)?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut report = OracleReport::new();
    invariant::run(&fixture, &mut rng, &mut report)?;
    differential::run(&fixture, &mut report)?;
    metamorphic::run(&fixture, &mut rng, &mut report)?;
    arena::run(&fixture, &mut report)?;
    online::run(&fixture, &mut rng, &mut report)?;
    observability::run(&fixture, &mut rng, &mut report)?;
    daemon::run(&fixture, &mut rng, &mut report)?;
    plan::run(&fixture, &mut report)?;
    Ok(BatteryOutcome {
        scenario: scenario.name,
        instances: config.instances,
        seed: config.seed,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OracleFamily;

    #[test]
    fn battery_is_clean_and_covers_every_family() {
        let outcome = run_battery(&BatteryConfig {
            seed: 7,
            instances: 36,
        })
        .unwrap();
        assert_eq!(outcome.scenario, "DC2");
        assert!(
            outcome.report.is_clean(),
            "{:#?}",
            outcome.report.violations()
        );
        for family in OracleFamily::ALL {
            assert!(
                outcome.report.evaluations(family) > 0,
                "family {family} never evaluated"
            );
        }
    }

    #[test]
    fn battery_is_deterministic() {
        let config = BatteryConfig {
            seed: 3,
            instances: 24,
        };
        let a = run_battery(&config).unwrap();
        let b = run_battery(&config).unwrap();
        assert_eq!(a.report, b.report);
        assert_eq!(a.scenario, b.scenario);
    }
}
