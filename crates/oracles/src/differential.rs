//! Differential oracles: two implementations of one contract, diffed.
//!
//! | oracle | sides | agreement |
//! |---|---|---|
//! | `placement_serial_matches_parallel` | `serial_scope` placement vs parallel | bit-identical assignment |
//! | `remap_serial_matches_parallel` | `serial_scope` remap vs parallel | identical report & assignment |
//! | `aggregation_cached_matches_scratch` | tree-cached node sums vs flat `PowerTrace::sum_of` | `1e-6` relative |
//! | `aggregate_peak_matches_trace_peak` | `NodeAggregate::peak` vs `to_trace().peak()` | bit-identical |
//! | `sim_empty_fault_schedule_is_identity` | `simulate` vs `simulate_with_faults` + empty schedule | `Telemetry ==` |
//! | `sanitizer_is_identity_on_clean_traces` | sanitized clean trace vs original | bit-identical samples & summary |
//! | `quantile_matches_reference` | any quantile impl vs an independent naive one | `1e-9` relative |
//!
//! The aggregation tolerance is `1e-6` relative because the tree cache
//! sums bottom-up (instances → racks → … → root) while the from-scratch
//! side sums flat in instance order; everything else is documented to
//! perform identical float work and is diffed exactly.

use so_core::{remap_traces, RemapConfig, SmoothPlacer};
use so_faults::FaultSchedule;
use so_parallel::serial_scope;
use so_powertrace::{NodeAggregate, PowerTrace, SanitizeConfig, TraceSanitizer, TraceSummary};
use so_powertree::NodeAggregates;
use so_sim::{default_config, one_week_grid, simulate, simulate_with_faults, StaticPolicy};
use so_workloads::OfferedLoad;

use crate::{Fixture, OracleError, OracleFamily, OracleReport};

const FAMILY: OracleFamily = OracleFamily::Differential;
const AGG_REL_TOL: f64 = 1e-6;

/// Runs every differential oracle over the fixture.
///
/// # Errors
///
/// Returns [`OracleError`] when an oracle cannot be evaluated at all;
/// failed evaluations are recorded in `report` instead.
pub fn run(fixture: &Fixture, report: &mut OracleReport) -> Result<(), OracleError> {
    placement_and_remap(fixture, report)?;
    aggregation(fixture, report)?;
    simulation_identity(fixture, report)?;
    sanitizer_identity(fixture, report)?;
    for trace in fixture.traces().iter().take(4) {
        quantile_matches_reference(
            |samples, q| so_powertrace::quantile::quantile(samples, q).ok(),
            trace.samples(),
            report,
        );
    }
    Ok(())
}

/// Serial vs parallel placement and remap must be bit-identical — the
/// determinism contract `so-parallel` documents.
fn placement_and_remap(fixture: &Fixture, report: &mut OracleReport) -> Result<(), OracleError> {
    let placer = SmoothPlacer::default();
    let parallel = placer.place(&fixture.fleet, &fixture.topology)?;
    let serial = serial_scope(|| placer.place(&fixture.fleet, &fixture.topology))?;
    report.check(
        FAMILY,
        "placement_serial_matches_parallel",
        serial.racks() == parallel.racks(),
        || {
            let first = serial
                .racks()
                .iter()
                .zip(parallel.racks())
                .position(|(a, b)| a != b);
            format!("assignments diverge (first differing instance: {first:?})")
        },
    );

    let config = RemapConfig {
        max_swaps: 8,
        ..RemapConfig::default()
    };
    let mut par_assignment = fixture.assignment.clone();
    let par_report = remap_traces(
        fixture.traces(),
        &fixture.topology,
        &mut par_assignment,
        config,
    )?;
    let mut ser_assignment = fixture.assignment.clone();
    let ser_report = serial_scope(|| {
        remap_traces(
            fixture.traces(),
            &fixture.topology,
            &mut ser_assignment,
            config,
        )
    })?;
    report.check(
        FAMILY,
        "remap_serial_matches_parallel",
        par_report == ser_report && par_assignment == ser_assignment,
        || {
            format!(
                "serial remap ({} swaps, final worst {}) != parallel ({} swaps, final worst {})",
                ser_report.swaps.len(),
                ser_report.final_worst_score,
                par_report.swaps.len(),
                par_report.final_worst_score
            )
        },
    );
    Ok(())
}

/// Tree-cached aggregation vs flat from-scratch sums, and the incremental
/// `NodeAggregate` cache vs its own materialized trace.
fn aggregation(fixture: &Fixture, report: &mut OracleReport) -> Result<(), OracleError> {
    let traces = fixture.traces();
    let aggregates = NodeAggregates::compute(&fixture.topology, &fixture.assignment, traces)?;
    for (rack, members) in fixture.assignment.by_rack() {
        let scratch = PowerTrace::sum_of(members.iter().map(|&i| &traces[i]))?;
        let cached = aggregates.trace(rack)?;
        let close = cached
            .samples()
            .iter()
            .zip(scratch.samples())
            .all(|(a, b)| (a - b).abs() <= AGG_REL_TOL * b.abs().max(1.0));
        report.check(FAMILY, "aggregation_cached_matches_scratch", close, || {
            format!(
                "cached aggregate of rack {rack:?} drifts from the from-scratch sum of its {} members",
                members.len()
            )
        });

        let incremental =
            NodeAggregate::from_traces(scratch.grid(), members.iter().map(|&i| &traces[i]))?;
        report.check_exact(
            FAMILY,
            "aggregate_peak_matches_trace_peak",
            incremental.peak(),
            incremental.to_trace()?.peak(),
        );
    }
    // The root aggregate against a flat sum over the whole fleet.
    let scratch_root = PowerTrace::sum_of(traces.iter())?;
    report.check_close(
        FAMILY,
        "aggregation_cached_matches_scratch",
        aggregates.trace(fixture.topology.root())?.peak(),
        scratch_root.peak(),
        AGG_REL_TOL,
    );
    Ok(())
}

/// `simulate` must equal `simulate_with_faults` under an empty schedule —
/// the fault layer's "no faults, no change" contract, diffed through
/// `Telemetry`'s derived `PartialEq` (bit-for-bit per step).
fn simulation_identity(fixture: &Fixture, report: &mut OracleReport) -> Result<(), OracleError> {
    let config = default_config(8, 8, 2, 1, f64::MAX);
    let load = OfferedLoad::diurnal(
        one_week_grid(60),
        8.0 * config.qps_per_server * config.l_conv,
        0.05,
        fixture.seed,
    );
    let schedule = FaultSchedule::empty(load.len(), 8);
    let plain = simulate(&config, &load, &mut StaticPolicy { as_lc: true })?;
    let faulted =
        simulate_with_faults(&config, &load, &mut StaticPolicy { as_lc: true }, &schedule)?;
    report.check(
        FAMILY,
        "sim_empty_fault_schedule_is_identity",
        plain == faulted,
        || "telemetry diverges between simulate and simulate_with_faults(empty)".to_string(),
    );
    Ok(())
}

/// A sanitizer with spike detection disabled must be the identity on
/// already-clean traces, and must not move any summary statistic.
fn sanitizer_identity(fixture: &Fixture, report: &mut OracleReport) -> Result<(), OracleError> {
    let sanitizer = TraceSanitizer::new(SanitizeConfig {
        spike_factor: f64::INFINITY,
        ..SanitizeConfig::default()
    })?;
    for trace in fixture.traces().iter().take(6) {
        let (clean, repair) = sanitizer.sanitize_trace(trace)?;
        report.check(
            FAMILY,
            "sanitizer_is_identity_on_clean_traces",
            repair.is_clean()
                && clean.samples() == trace.samples()
                && TraceSummary::of(&clean) == TraceSummary::of(trace),
            || {
                format!(
                    "sanitizer touched a clean trace ({} flagged samples)",
                    repair.flagged()
                )
            },
        );
    }
    Ok(())
}

/// Diffs an arbitrary quantile implementation against an independent,
/// deliberately simple reference (sort + Hyndman–Fan type 7 linear
/// interpolation) over an edge-heavy probability grid.
///
/// The implementation under test returns `None` for inputs it rejects;
/// every probe here is valid, so `None` is itself a violation. This is
/// the mutation-testing entry point: feeding it a subtly broken quantile
/// (nearest-rank, off-by-one indexing, unclamped interpolation) must
/// produce violations — `tests/mutation.rs` pins that.
pub fn quantile_matches_reference<F>(quantile_fn: F, samples: &[f64], report: &mut OracleReport)
where
    F: Fn(&[f64], f64) -> Option<f64>,
{
    const PROBES: [f64; 9] = [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
    for q in PROBES {
        let want = reference_quantile(samples, q);
        let got = quantile_fn(samples, q);
        let pass = got.is_some_and(|g| (g - want).abs() <= 1e-9 * want.abs().max(1.0));
        report.check(FAMILY, "quantile_matches_reference", pass, || {
            format!(
                "quantile({q}) over {} samples: got {got:?}, reference {want}",
                samples.len()
            )
        });
    }
}

/// The independent reference: a from-first-principles re-derivation of the
/// workspace quantile convention, kept free of shared code on purpose.
fn reference_quantile(samples: &[f64], q: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = sorted.len();
    let pos = q * (n as f64 - 1.0);
    let lo = (pos.floor() as usize).min(n - 1);
    let hi = (lo + 1).min(n - 1);
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use so_workloads::DcScenario;

    #[test]
    fn differentials_agree_on_a_small_fixture() {
        let fixture = Fixture::generate(&DcScenario::dc1(), 32, 5).unwrap();
        let mut report = OracleReport::new();
        run(&fixture, &mut report).unwrap();
        assert!(report.is_clean(), "{:#?}", report.violations());
        assert!(report.evaluations(OracleFamily::Differential) > 20);
    }

    #[test]
    fn reference_quantile_hits_edges() {
        let samples = [3.0, 1.0, 2.0];
        assert_eq!(reference_quantile(&samples, 0.0), 1.0);
        assert_eq!(reference_quantile(&samples, 1.0), 3.0);
        assert_eq!(reference_quantile(&samples, 0.5), 2.0);
    }
}
