//! Online oracles: the resident [`OnlineFleet`] engine diffed against
//! offline recomputes of everything it claims.
//!
//! | oracle | sides | agreement |
//! |---|---|---|
//! | `resident_aggregates_match_offline_recompute` | engine aggregates after an event stream vs [`NodeAggregates::compute`] on the final live fleet | bit-identical samples |
//! | `resident_peaks_match_offline_recompute` | cached per-node peaks vs the recomputed aggregates' peaks | bit-identical |
//! | `rack_asynchrony_matches_materialized_score` | fused [`OnlineFleet::rack_asynchrony`] vs [`asynchrony_score`] over materialized member traces | bit-identical |
//! | `journal_commit_matches_offline_choice` | each journaled commit vs [`offline_choose`] replayed against the reconstructed pre-state | same rack |
//! | `journal_retirement_names_the_hosting_rack` | journal replay occupancy at each `Retired`/`Moved` event | exact |
//! | `journal_replay_reconstructs_the_live_set` | final replayed occupancy vs [`OnlineFleet::live_view`] | exact |
//! | `rejection_is_agreed_by_offline_replay` | an over-budget probe arrival vs the offline replay | both reject |
//! | `decisions_match_admission_decisions` | fused [`OnlineFleet::decisions`] vs the materializing [`admission_decisions`] | bit-identical fields |
//! | `arrive_then_retire_is_identity` | aggregate bits before vs after an arrive∘retire round trip | bit-identical |
//! | `retiring_everything_zeroes_aggregates` | every node trace after full retirement | exactly `0.0` |
//! | `counters_account_for_every_event` | engine counters vs journal arithmetic | exact |
//! | `fragmentation_is_bounded` | per-level stranded watts vs headroom | `0 ≤ stranded ≤ headroom` |
//!
//! Everything except the two bounds checks is *exact*: the engine's
//! canonical path refresh and fused probes are documented to perform the
//! same float operations in the same order as the offline paths, so any
//! ULP of drift is a bug. [`check_resident_aggregates`] and
//! [`check_commit_decision`] are exported so mutation tests can feed
//! deliberately broken states through the same checkers the battery runs.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;
use so_core::{
    admission_decisions, asynchrony_score, offline_choose, CommitPolicy, EventRecord, OnlineConfig,
    OnlineFleet,
};
use so_powertrace::{PowerTrace, TimeGrid};
use so_powertree::{Assignment, NodeAggregates, NodeId, PowerTopology};

use crate::{Fixture, OracleError, OracleFamily, OracleReport};

const FAMILY: OracleFamily = OracleFamily::Online;

/// Cap on how many journaled commits are replayed offline per policy (the
/// replay recomputes the full pre-state per commit, so it is the one
/// super-linear oracle here; a deterministic stride keeps it bounded).
const MAX_COMMIT_REPLAYS: usize = 48;

/// Runs every online oracle over the fixture: one engine per commit
/// policy is driven through the same batched arrival/retirement stream
/// (retirement draws come from `rng`, so distinct battery seeds exercise
/// distinct churn), then each engine's resident state, journal, and fused
/// decisions are held against offline recomputes.
///
/// # Errors
///
/// Returns [`OracleError`] when an oracle cannot be evaluated at all;
/// failed evaluations are recorded in `report` instead.
pub fn run(
    fixture: &Fixture,
    rng: &mut StdRng,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let traces = fixture.traces();
    let grid = traces[0].grid();
    // Generous budgets: every arrival is admissible on power (capacity can
    // still bind), so the stream commits deeply; the rejection oracle
    // probes the over-budget path explicitly.
    let cap = traces.iter().map(PowerTrace::peak).sum::<f64>() * 2.0 + 100.0;
    let policies = [
        (CommitPolicy::BestAsynchrony, 2usize),
        (CommitPolicy::FirstFit, 0),
        (CommitPolicy::WorstFit, 0),
        (CommitPolicy::Sampling { probes: 3 }, 2),
    ];
    for (policy, repair_budget) in policies {
        let config = OnlineConfig {
            policy,
            repair_budget,
            min_gain: 0.0,
            sample_salt: fixture.seed,
            ..OnlineConfig::default()
        };
        let mut engine = OnlineFleet::new(fixture.topology.clone(), grid, config)
            .with_budgets(vec![cap; fixture.topology.len()])
            .map_err(OracleError::Core)?;
        let chunk = traces.len().div_ceil(3).max(1);
        for batch in traces.chunks(chunk) {
            let retires: Vec<u64> = (0..batch.len() / 4).map(|_| rng.gen()).collect();
            engine.apply(batch, &retires).map_err(OracleError::Core)?;
        }
        state_matches_offline(&engine, report)?;
        asynchrony_matches_materialized(&engine, report)?;
        journal_replays_offline(&engine, report)?;
        rejection_is_agreed(&engine, cap, report)?;
        counters_account(&engine, report);
        fragmentation_is_bounded(&engine, &traces[0], report)?;
        if policy == CommitPolicy::BestAsynchrony {
            decisions_match_admission(&engine, report)?;
            arrive_retire_identity(&engine, &traces[0], report)?;
        }
        retire_all_zeroes(engine, report)?;
    }
    Ok(())
}

/// Diffs a claimed [`NodeAggregates`] against a from-scratch
/// [`NodeAggregates::compute`] of `(traces, racks)` — every node's samples
/// and peak must agree bit-for-bit. Exported so mutation tests can present
/// deliberately stale aggregates to the same checker the battery runs.
///
/// # Errors
///
/// Propagates assignment/aggregation errors (the *claimed* side is only
/// read, never validated).
pub fn check_resident_aggregates(
    topology: &PowerTopology,
    grid: TimeGrid,
    traces: &[PowerTrace],
    racks: &[NodeId],
    claimed: &NodeAggregates,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let offline = if traces.is_empty() {
        NodeAggregates::zeros(topology, grid)
    } else {
        let assignment = Assignment::new(racks.to_vec(), topology)?;
        NodeAggregates::compute(topology, &assignment, traces)?
    };
    for node in topology.nodes().iter().map(|n| n.id()) {
        let got = claimed.trace(node)?.samples();
        let want = offline.trace(node)?.samples();
        report.check(
            FAMILY,
            "resident_aggregates_match_offline_recompute",
            got.len() == want.len()
                && got
                    .iter()
                    .zip(want)
                    .all(|(g, w)| g.to_bits() == w.to_bits()),
            || format!("node {node}: resident aggregate drifts from the offline recompute"),
        );
        report.check_exact(
            FAMILY,
            "resident_peaks_match_offline_recompute",
            claimed.peak(node)?,
            offline.peak(node)?,
        );
    }
    Ok(())
}

/// Replays one commit decision offline — a from-scratch
/// [`NodeAggregates::compute`] of the pre-state, then [`offline_choose`]
/// with the **materializing** arithmetic — and checks the claimed outcome
/// (`Some(rack)` for a commit, `None` for a rejection). Exported so
/// mutation tests can claim wrong-leaf commits against the same checker.
///
/// # Errors
///
/// Propagates assignment/aggregation/replay errors.
#[allow(clippy::too_many_arguments)]
pub fn check_commit_decision(
    topology: &PowerTopology,
    budgets: &[f64],
    grid: TimeGrid,
    pre_traces: &[PowerTrace],
    pre_racks: &[NodeId],
    candidate: &PowerTrace,
    policy: &CommitPolicy,
    sample_salt: u64,
    ordinal: u64,
    claimed: Option<NodeId>,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let aggregates = if pre_traces.is_empty() {
        NodeAggregates::zeros(topology, grid)
    } else {
        let assignment = Assignment::new(pre_racks.to_vec(), topology)?;
        NodeAggregates::compute(topology, &assignment, pre_traces)?
    };
    let mut occupancy: BTreeMap<NodeId, usize> = BTreeMap::new();
    for &rack in pre_racks {
        *occupancy.entry(rack).or_insert(0) += 1;
    }
    let want = offline_choose(
        topology,
        budgets,
        &aggregates,
        &occupancy,
        candidate,
        policy,
        sample_salt,
        ordinal,
    )
    .map_err(OracleError::Core)?;
    report.check(
        FAMILY,
        "journal_commit_matches_offline_choice",
        want == claimed,
        || {
            format!(
                "policy {}: offline replay of arrival {ordinal} picks {want:?}, journal claims {claimed:?}",
                policy.name()
            )
        },
    );
    Ok(())
}

/// The engine's resident aggregates after the stream vs a from-scratch
/// recompute of its own live view.
fn state_matches_offline(
    engine: &OnlineFleet,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let (traces, _, slots) = engine.live_view().map_err(OracleError::Core)?;
    let racks: Vec<NodeId> = slots
        .iter()
        .map(|&s| engine.rack_of(s).expect("live slot has a rack"))
        .collect();
    check_resident_aggregates(
        engine.topology(),
        engine.grid(),
        &traces,
        &racks,
        engine.aggregates(),
        report,
    )
}

/// Fused per-rack asynchrony vs [`asynchrony_score`] over the
/// materialized member traces.
fn asynchrony_matches_materialized(
    engine: &OnlineFleet,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let (traces, assignment, _) = engine.live_view().map_err(OracleError::Core)?;
    if traces.is_empty() {
        return Ok(());
    }
    for (rack, members) in assignment.by_rack() {
        if members.is_empty() {
            continue;
        }
        let want =
            asynchrony_score(members.iter().map(|&i| &traces[i])).map_err(OracleError::Core)?;
        let got = engine.rack_asynchrony(rack).map_err(OracleError::Core)?;
        report.check_exact(
            FAMILY,
            "rack_asynchrony_matches_materialized_score",
            got,
            want,
        );
    }
    Ok(())
}

/// Walks the journal front to back, maintaining an independent slot→rack
/// occupancy: a strided sample of commits is replayed through
/// [`check_commit_decision`] against the reconstructed pre-state, every
/// retirement/move must name the rack the replay says the slot lives on,
/// and the final occupancy must reproduce the engine's live view.
pub(crate) fn journal_replays_offline(
    engine: &OnlineFleet,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let commits = engine
        .journal()
        .iter()
        .filter(|e| matches!(e, EventRecord::Committed { .. }))
        .count();
    let stride = commits.div_ceil(MAX_COMMIT_REPLAYS).max(1);
    let mut live: BTreeMap<usize, NodeId> = BTreeMap::new();
    let mut commit_idx = 0usize;
    for event in engine.journal() {
        match *event {
            EventRecord::Committed {
                slot,
                ordinal,
                rack,
            } => {
                if commit_idx % stride == 0 {
                    let (pre_traces, pre_racks) = materialize(engine, &live)?;
                    let candidate =
                        PowerTrace::new(engine.row(slot).to_vec(), engine.grid().step_minutes())?;
                    check_commit_decision(
                        engine.topology(),
                        engine.budgets(),
                        engine.grid(),
                        &pre_traces,
                        &pre_racks,
                        &candidate,
                        &engine.config().policy,
                        engine.config().sample_salt,
                        ordinal,
                        Some(rack),
                        report,
                    )?;
                }
                commit_idx += 1;
                live.insert(slot, rack);
            }
            // Rejected arrivals leave no trace row behind; the rejection
            // path is replayed by `rejection_is_agreed` instead.
            EventRecord::Rejected { .. } => {}
            EventRecord::Retired { slot, rack } => {
                let was = live.remove(&slot);
                report.check(
                    FAMILY,
                    "journal_retirement_names_the_hosting_rack",
                    was == Some(rack),
                    || format!("slot {slot}: journal retires from {rack}, replay hosts {was:?}"),
                );
            }
            EventRecord::Moved { slot, from, to } => {
                let was = live.insert(slot, to);
                report.check(
                    FAMILY,
                    "journal_retirement_names_the_hosting_rack",
                    was == Some(from),
                    || format!("slot {slot}: journal moves from {from}, replay hosts {was:?}"),
                );
            }
            // A compaction checkpoint pins one live slot directly — the
            // exact occupancy the discarded journal prefix had produced
            // — so replay inserts it without a commit decision to check.
            EventRecord::Checkpoint { slot, rack } => {
                live.insert(slot, rack);
            }
        }
    }
    let (_, assignment, slots) = engine.live_view().map_err(OracleError::Core)?;
    let replayed: Vec<usize> = live.keys().copied().collect();
    let racks_agree = slots
        .iter()
        .enumerate()
        .all(|(i, &s)| assignment.rack_of(i).ok() == live.get(&s).copied());
    report.check(
        FAMILY,
        "journal_replay_reconstructs_the_live_set",
        replayed == slots && racks_agree,
        || {
            format!(
                "journal replay yields {} live slots, engine reports {}",
                replayed.len(),
                slots.len()
            )
        },
    );
    Ok(())
}

/// An arrival whose flat draw exceeds every budget must be rejected by
/// the engine *and* by the offline replay of the same decision.
fn rejection_is_agreed(
    engine: &OnlineFleet,
    cap: f64,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let mut probe = engine.clone();
    let too_big = PowerTrace::new(
        vec![cap * 2.0; engine.grid().len()],
        engine.grid().step_minutes(),
    )?;
    let ordinal = probe.arrivals_seen();
    let outcome = probe.arrive(&too_big).map_err(OracleError::Core)?;
    report.check(
        FAMILY,
        "rejection_is_agreed_by_offline_replay",
        outcome.is_none(),
        || format!("engine admitted a {cap}-watt-over-budget arrival as slot {outcome:?}"),
    );
    let (pre_traces, _, slots) = engine.live_view().map_err(OracleError::Core)?;
    let pre_racks: Vec<NodeId> = slots
        .iter()
        .map(|&s| engine.rack_of(s).expect("live slot has a rack"))
        .collect();
    check_commit_decision(
        engine.topology(),
        engine.budgets(),
        engine.grid(),
        &pre_traces,
        &pre_racks,
        &too_big,
        &engine.config().policy,
        engine.config().sample_salt,
        ordinal,
        None,
        report,
    )
}

/// Fused [`OnlineFleet::decisions`] vs the materializing
/// [`admission_decisions`] over the same live view: `fits`, peaks, peak
/// increases, and asynchrony must share every bit.
fn decisions_match_admission(
    engine: &OnlineFleet,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let (traces, assignment, _) = engine.live_view().map_err(OracleError::Core)?;
    if traces.is_empty() {
        return Ok(());
    }
    let aggregates = NodeAggregates::compute(engine.topology(), &assignment, &traces)?;
    let candidate = &traces[0];
    let online = engine.decisions(candidate).map_err(OracleError::Core)?;
    let offline = admission_decisions(
        engine.topology(),
        &assignment,
        &aggregates,
        engine.budgets(),
        candidate,
    )
    .map_err(OracleError::Core)?;
    for d in &online {
        let Some(o) = offline.iter().find(|o| o.rack == d.rack) else {
            report.check(FAMILY, "decisions_match_admission_decisions", false, || {
                format!("rack {}: no offline admission decision", d.rack)
            });
            continue;
        };
        report.check(
            FAMILY,
            "decisions_match_admission_decisions",
            d.fits == o.fits,
            || {
                format!(
                    "rack {}: fused fits {} vs offline {}",
                    d.rack, d.fits, o.fits
                )
            },
        );
        report.check_exact(
            FAMILY,
            "decisions_match_admission_decisions",
            d.new_peak_watts,
            o.new_peak_watts,
        );
        report.check_exact(
            FAMILY,
            "decisions_match_admission_decisions",
            d.peak_increase_watts,
            o.peak_increase_watts,
        );
        report.check_exact(
            FAMILY,
            "decisions_match_admission_decisions",
            d.asynchrony,
            o.asynchrony,
        );
    }
    Ok(())
}

/// Arrive-then-retire must leave every aggregate bit where it was: the
/// canonical path refresh rebuilds touched sums from members, so the
/// round trip is exact, not merely close.
fn arrive_retire_identity(
    engine: &OnlineFleet,
    candidate: &PowerTrace,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let mut probe = engine.clone();
    let before = aggregate_bits(&probe);
    if let Some(slot) = probe.arrive(candidate).map_err(OracleError::Core)? {
        probe.retire(slot).map_err(OracleError::Core)?;
    }
    report.check(
        FAMILY,
        "arrive_then_retire_is_identity",
        aggregate_bits(&probe) == before,
        || "aggregate bits drift across an arrive/retire round trip".to_string(),
    );
    Ok(())
}

/// Retiring the whole fleet must return every node trace to exactly zero
/// — no residue from the churn that came before.
fn retire_all_zeroes(
    mut engine: OnlineFleet,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    for slot in engine.live_slots() {
        engine.retire(slot).map_err(OracleError::Core)?;
    }
    let clean = engine
        .topology()
        .nodes()
        .iter()
        .map(|n| n.id())
        .all(|node| {
            engine
                .aggregates()
                .trace(node)
                .map(|t| t.samples().iter().all(|v| v.to_bits() == 0.0f64.to_bits()))
                .unwrap_or(false)
        });
    report.check(
        FAMILY,
        "retiring_everything_zeroes_aggregates",
        clean && engine.live_len() == 0,
        || "aggregates keep non-zero bits after the whole fleet retired".to_string(),
    );
    Ok(())
}

/// Engine counters vs journal arithmetic: every arrival is either a
/// commit or a rejection, and the live count is commits minus
/// retirements.
fn counters_account(engine: &OnlineFleet, report: &mut OracleReport) {
    report.check(
        FAMILY,
        "counters_account_for_every_event",
        engine.committed() + engine.rejected() == engine.arrivals_seen()
            && engine.live_len() as u64 == engine.committed() - engine.retired(),
        || {
            format!(
                "committed {} + rejected {} != arrivals {} (live {}, retired {})",
                engine.committed(),
                engine.rejected(),
                engine.arrivals_seen(),
                engine.live_len(),
                engine.retired()
            )
        },
    );
}

/// Stranded power is a sub-quantity of headroom: `0 ≤ stranded ≤
/// headroom` and the ratio lives in `[0, 1]` at every level.
fn fragmentation_is_bounded(
    engine: &OnlineFleet,
    reference: &PowerTrace,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    for level in engine.fragmentation(reference).map_err(OracleError::Core)? {
        report.check(
            FAMILY,
            "fragmentation_is_bounded",
            level.stranded_watts >= 0.0
                && level.stranded_watts <= level.headroom_watts + 1e-9
                && (0.0..=1.0).contains(&level.ratio),
            || {
                format!(
                    "level {:?}: stranded {} of headroom {} (ratio {})",
                    level.level, level.stranded_watts, level.headroom_watts, level.ratio
                )
            },
        );
    }
    Ok(())
}

/// Materializes a replayed occupancy into `(traces, racks)` in ascending
/// slot order — the pre-state [`check_commit_decision`] consumes.
fn materialize(
    engine: &OnlineFleet,
    live: &BTreeMap<usize, NodeId>,
) -> Result<(Vec<PowerTrace>, Vec<NodeId>), OracleError> {
    let mut traces = Vec::with_capacity(live.len());
    let mut racks = Vec::with_capacity(live.len());
    for (&slot, &rack) in live {
        traces.push(PowerTrace::new(
            engine.row(slot).to_vec(),
            engine.grid().step_minutes(),
        )?);
        racks.push(rack);
    }
    Ok((traces, racks))
}

/// Every node trace's sample bits, in node order — the engine-state
/// digest the identity oracle compares.
fn aggregate_bits(engine: &OnlineFleet) -> Vec<u64> {
    engine
        .topology()
        .nodes()
        .iter()
        .map(|n| n.id())
        .flat_map(|node| {
            engine
                .aggregates()
                .trace(node)
                .expect("engine covers every node")
                .samples()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use so_workloads::DcScenario;

    #[test]
    fn online_oracles_agree_on_a_small_fixture() {
        let fixture = Fixture::generate(&DcScenario::dc1(), 30, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut report = OracleReport::new();
        run(&fixture, &mut rng, &mut report).unwrap();
        assert!(report.is_clean(), "{:#?}", report.violations());
        assert!(report.evaluations(OracleFamily::Online) > 100);
    }

    #[test]
    fn online_oracles_are_deterministic() {
        let fixture = Fixture::generate(&DcScenario::dc3(), 24, 11).unwrap();
        let mut a = OracleReport::new();
        run(&fixture, &mut StdRng::seed_from_u64(11), &mut a).unwrap();
        let mut b = OracleReport::new();
        run(&fixture, &mut StdRng::seed_from_u64(11), &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn checkers_flag_a_corrupted_claim() {
        let fixture = Fixture::generate(&DcScenario::dc2(), 12, 3).unwrap();
        let traces = fixture.traces();
        let grid = traces[0].grid();
        let racks: Vec<NodeId> = (0..traces.len())
            .map(|i| fixture.assignment.rack_of(i).unwrap())
            .collect();
        // Claim all-zero aggregates for a non-empty fleet: every node's
        // samples and peak disagree with the recompute.
        let zeros = NodeAggregates::zeros(&fixture.topology, grid);
        let mut report = OracleReport::new();
        check_resident_aggregates(&fixture.topology, grid, traces, &racks, &zeros, &mut report)
            .unwrap();
        assert!(!report.is_clean());
    }
}
