//! Observability oracles: the live plane (flight recorder, alert engine,
//! journal compaction) must report exactly what the engine did.
//!
//! | oracle | sides | agreement |
//! |---|---|---|
//! | `flight_suffix_matches_journal_suffix` | flight-ring records decoded back to [`EventRecord`]s vs the engine journal's tail | bit-identical events |
//! | `clean_stream_fires_no_violation_alert` | a power-admissible stream vs the breaker-budget alert rule | zero fires, zero violations |
//! | `planted_violation_fires_exactly_once` | a deliberate breaker-budget breach vs the alert journal | exactly one `AlertFired` per excursion, with a postmortem dump |
//! | `alert_hysteresis_resolves_and_refires` | alert state across breach → clear → breach | one resolve, then one new fire |
//! | `fragmentation_cached_matches_full_recompute` | [`OnlineFleet::fragmentation_cached`] vs [`OnlineFleet::fragmentation`] | bit-identical per level |
//! | `compaction_bounds_journal_length` | journal length after churn vs `max(cap, 2·live)` | bound holds, compactions happened |
//! | `compacted_journal_replays_offline` | the checkpoint-based journal vs the online replay oracle | live set reconstructed |
//!
//! The plane never *steers* the engine — attaching one must not change a
//! single placement bit — so every oracle here drives real engines with a
//! plane attached and diffs what the plane *says* against what the engine
//! *did*.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;
use so_core::{CommitPolicy, EventRecord, OnlineConfig, OnlineFleet};
use so_powertrace::{PowerTrace, TimeGrid};
use so_telemetry::{default_online_rules, AlertTransition, LivePlane, RecordingSink};

use crate::{Fixture, OracleError, OracleFamily, OracleReport};

const FAMILY: OracleFamily = OracleFamily::Observability;

/// Flight-ring capacity used by the oracle engines: small enough that the
/// fixture stream wraps it (exercising overwrite), large enough to keep a
/// meaningful journal suffix for the bit-match.
const FLIGHT_CAPACITY: usize = 48;

/// Runs every observability oracle: the fixture stream drives a
/// plane-attached engine for the suffix/fragmentation checks, then two
/// dedicated micro-fleets exercise the planted breaker-budget violation
/// (alert exactness + hysteresis) and journal compaction under churn.
///
/// # Errors
///
/// Returns [`OracleError`] when an oracle cannot be evaluated at all;
/// failed evaluations are recorded in `report` instead.
pub fn run(
    fixture: &Fixture,
    rng: &mut StdRng,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    fixture_stream_oracles(fixture, rng, report)?;
    planted_violation_oracles(report)?;
    compaction_oracles(report)?;
    Ok(())
}

/// Builds a virtual-clock plane with the default online alert rules.
fn fresh_plane() -> Arc<LivePlane> {
    Arc::new(LivePlane::new(
        Arc::new(RecordingSink::with_virtual_clock()),
        FLIGHT_CAPACITY,
        default_online_rules(),
    ))
}

/// Index of a rule inside [`default_online_rules`] by name.
fn rule_index(name: &str) -> usize {
    default_online_rules()
        .iter()
        .position(|r| r.name == name)
        .expect("default rule set names are stable")
}

/// Drives a plane-attached engine through the fixture stream, then checks
/// the flight suffix, the clean-stream alert silence, and the cached
/// fragmentation path.
fn fixture_stream_oracles(
    fixture: &Fixture,
    rng: &mut StdRng,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let traces = fixture.traces();
    let grid = traces[0].grid();
    // Generous budgets, mirroring the online family: power never binds,
    // so the stream is violation-free by construction.
    let cap = traces.iter().map(PowerTrace::peak).sum::<f64>() * 2.0 + 100.0;
    let mut engine = OnlineFleet::new(
        fixture.topology.clone(),
        grid,
        OnlineConfig {
            policy: CommitPolicy::BestAsynchrony,
            repair_budget: 2,
            min_gain: 0.0,
            sample_salt: fixture.seed,
            ..OnlineConfig::default()
        },
    )
    .with_budgets(vec![cap; fixture.topology.len()])
    .map_err(OracleError::Core)?;
    let plane = fresh_plane();
    engine.attach_plane(plane.clone());
    engine
        .set_fragmentation_reference(Some(&traces[0]))
        .map_err(OracleError::Core)?;
    let chunk = traces.len().div_ceil(3).max(1);
    for batch in traces.chunks(chunk) {
        let retires: Vec<u64> = (0..batch.len() / 4).map(|_| rng.gen()).collect();
        engine.apply(batch, &retires).map_err(OracleError::Core)?;
        engine.observe_batch().map_err(OracleError::Core)?;
    }

    flight_suffix_matches_journal(&engine, report);

    let breaker = rule_index("breaker_budget_violation") as u64;
    let breaker_fires = plane
        .flight_records(0)
        .iter()
        .filter(|r| matches!(r.kind, so_telemetry::FlightKind::AlertFired) && r.a == breaker)
        .count();
    report.check(
        FAMILY,
        "clean_stream_fires_no_violation_alert",
        plane.breaker_violations() == 0 && breaker_fires == 0,
        || {
            format!(
                "power-admissible stream recorded {} breaker violations and {} breaker alert fires",
                plane.breaker_violations(),
                breaker_fires
            )
        },
    );

    fragmentation_cached_matches(&mut engine, &traces[0], report)?;
    Ok(())
}

/// Decodes the flight ring's journal-event records and diffs them against
/// the tail of the engine journal: the flight recorder must be a faithful
/// (bounded) mirror, bit for bit.
pub(crate) fn flight_suffix_matches_journal(engine: &OnlineFleet, report: &mut OracleReport) {
    let Some(plane) = engine.plane() else {
        report.check(
            FAMILY,
            "flight_suffix_matches_journal_suffix",
            false,
            || "engine has no plane attached".to_string(),
        );
        return;
    };
    let decoded: Vec<EventRecord> = plane
        .flight_records(0)
        .iter()
        .filter(|r| r.kind.is_journal_event())
        .filter_map(|r| EventRecord::from_flight(r.kind, r.a, r.b, r.c))
        .collect();
    let journal = engine.journal();
    let k = decoded.len().min(journal.len());
    let pass = k > 0 && decoded[decoded.len() - k..] == journal[journal.len() - k..];
    report.check(FAMILY, "flight_suffix_matches_journal_suffix", pass, || {
        format!(
            "flight ring holds {} journal events, engine journal {}, common suffix of {k} diverges",
            decoded.len(),
            journal.len()
        )
    });
}

/// The cached (incrementally maintained) fragmentation path must be
/// bit-identical to the full recompute against the same reference.
fn fragmentation_cached_matches(
    engine: &mut OnlineFleet,
    reference: &PowerTrace,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let cached = engine
        .fragmentation_cached()
        .map_err(OracleError::Core)?
        .expect("reference was set");
    let full = engine.fragmentation(reference).map_err(OracleError::Core)?;
    report.check(
        FAMILY,
        "fragmentation_cached_matches_full_recompute",
        cached.len() == full.len(),
        || format!("cached {} levels vs full {}", cached.len(), full.len()),
    );
    for (c, f) in cached.iter().zip(&full) {
        report.check(
            FAMILY,
            "fragmentation_cached_matches_full_recompute",
            c.level == f.level
                && c.stranded_watts.to_bits() == f.stranded_watts.to_bits()
                && c.headroom_watts.to_bits() == f.headroom_watts.to_bits()
                && c.ratio.to_bits() == f.ratio.to_bits(),
            || {
                format!(
                    "level {:?}: cached ({}, {}, {}) vs full ({}, {}, {})",
                    c.level,
                    c.stranded_watts,
                    c.headroom_watts,
                    c.ratio,
                    f.stranded_watts,
                    f.headroom_watts,
                    f.ratio
                )
            },
        );
    }
    Ok(())
}

/// A 2-rack micro-fleet whose racks have free *slots* but no free
/// *power*: the canonical breaker-budget violation shape.
fn micro_fleet(journal_cap: usize) -> Result<OnlineFleet, OracleError> {
    let topology = so_powertree::PowerTopology::builder()
        .suites(1)
        .msbs_per_suite(1)
        .sbs_per_msb(1)
        .rpps_per_sb(1)
        .racks_per_rpp(2)
        .rack_capacity(2)
        .rack_budget_watts(400.0)
        .build()
        .map_err(OracleError::Tree)?;
    let budgets: Vec<f64> = topology
        .nodes()
        .iter()
        .map(|n| {
            if n.level() == so_powertree::Level::Rack {
                400.0
            } else {
                100_000.0
            }
        })
        .collect();
    OnlineFleet::new(
        topology,
        TimeGrid::new(60, 4),
        OnlineConfig {
            policy: CommitPolicy::WorstFit,
            repair_budget: 0,
            min_gain: 0.0,
            journal_cap,
            ..OnlineConfig::default()
        },
    )
    .with_budgets(budgets)
    .map_err(OracleError::Core)
}

fn flat(watts: f64) -> Result<PowerTrace, OracleError> {
    PowerTrace::new(vec![watts; 4], 60).map_err(OracleError::Trace)
}

/// Fired transitions for one rule index within a batch's transitions.
fn fires_for(transitions: &[AlertTransition], rule: usize) -> usize {
    transitions
        .iter()
        .filter(|t| t.fired && t.rule == rule)
        .count()
}

/// Resolve transitions for one rule index.
fn resolves_for(transitions: &[AlertTransition], rule: usize) -> usize {
    transitions
        .iter()
        .filter(|t| !t.fired && t.rule == rule)
        .count()
}

/// Plants breaker-budget violations (a 200 W candidate against racks
/// holding 300 W of a 400 W budget with a slot free) and checks the alert
/// engine's exactness and hysteresis against the plane's own journal.
fn planted_violation_oracles(report: &mut OracleReport) -> Result<(), OracleError> {
    let mut engine = micro_fleet(0)?;
    let plane = fresh_plane();
    engine.attach_plane(plane.clone());
    let breaker = rule_index("breaker_budget_violation");

    // Warm both racks to 300 W: one slot free each, 100 W of headroom.
    for _ in 0..2 {
        let slot = engine.arrive(&flat(300.0)?).map_err(OracleError::Core)?;
        report.check(
            FAMILY,
            "planted_violation_fires_exactly_once",
            slot.is_some(),
            || "warm-up arrival unexpectedly rejected".to_string(),
        );
    }
    let clean = engine.observe_batch().map_err(OracleError::Core)?;
    report.check(
        FAMILY,
        "clean_stream_fires_no_violation_alert",
        fires_for(&clean, breaker) == 0 && plane.breaker_violations() == 0,
        || "warm-up batch raised a breaker-budget alert".to_string(),
    );

    // First excursion: the 200 W candidate fits a slot on both racks but
    // breaches both 400 W budgets — rejected, and flagged as a violation.
    let outcome = engine.arrive(&flat(200.0)?).map_err(OracleError::Core)?;
    let first = engine.observe_batch().map_err(OracleError::Core)?;
    report.check(
        FAMILY,
        "planted_violation_fires_exactly_once",
        outcome.is_none() && plane.breaker_violations() == 1 && fires_for(&first, breaker) == 1,
        || {
            format!(
                "planted breach: outcome {outcome:?}, violations {}, breaker fires {}",
                plane.breaker_violations(),
                fires_for(&first, breaker)
            )
        },
    );
    let dumps = plane.dumps();
    report.check(
        FAMILY,
        "planted_violation_fires_exactly_once",
        plane.dumps_total() >= 2
            && dumps.iter().any(|d| {
                d.reason.contains("breaker-budget") && d.jsonl.contains("breaker_violation")
            }),
        || {
            format!(
                "expected a postmortem dump for the violation, got {} dumps",
                plane.dumps_total()
            )
        },
    );

    // Clear batch: the delta signal drops to zero, the alert resolves.
    let cleared = engine.observe_batch().map_err(OracleError::Core)?;
    report.check(
        FAMILY,
        "alert_hysteresis_resolves_and_refires",
        fires_for(&cleared, breaker) == 0 && resolves_for(&cleared, breaker) == 1,
        || {
            format!(
                "clear batch: {} fires, {} resolves",
                fires_for(&cleared, breaker),
                resolves_for(&cleared, breaker)
            )
        },
    );

    // Second excursion across two consecutive breach batches: fires once
    // on entry, stays active (no re-fire) while the breach persists.
    engine.arrive(&flat(200.0)?).map_err(OracleError::Core)?;
    let refire = engine.observe_batch().map_err(OracleError::Core)?;
    engine.arrive(&flat(200.0)?).map_err(OracleError::Core)?;
    let held = engine.observe_batch().map_err(OracleError::Core)?;
    report.check(
        FAMILY,
        "alert_hysteresis_resolves_and_refires",
        fires_for(&refire, breaker) == 1 && fires_for(&held, breaker) == 0,
        || {
            format!(
                "second excursion: entry fires {}, persistence fires {}",
                fires_for(&refire, breaker),
                fires_for(&held, breaker)
            )
        },
    );

    flight_suffix_matches_journal(&engine, report);
    Ok(())
}

/// Churns a capped-journal engine until compaction has happened several
/// times, then checks the length bound and that the checkpoint-based
/// journal still replays to the engine's live set.
fn compaction_oracles(report: &mut OracleReport) -> Result<(), OracleError> {
    const CAP: usize = 8;
    let mut engine = micro_fleet(CAP)?;
    let plane = fresh_plane();
    engine.attach_plane(plane);
    // Two residents pin rack occupancy; twenty arrive/retire cycles push
    // forty journal events through an 8-entry cap.
    for _ in 0..2 {
        engine.arrive(&flat(100.0)?).map_err(OracleError::Core)?;
    }
    for _ in 0..20 {
        let slot = engine
            .arrive(&flat(100.0)?)
            .map_err(OracleError::Core)?
            .expect("churn arrival always fits");
        engine.retire(slot).map_err(OracleError::Core)?;
    }
    let bound = CAP.max(2 * engine.live_len());
    report.check(
        FAMILY,
        "compaction_bounds_journal_length",
        engine.journal_compactions() > 0
            && engine.journal_dropped() > 0
            && engine.journal().len() <= bound,
        || {
            format!(
                "after churn: {} compactions, {} dropped, journal {} vs bound {bound}",
                engine.journal_compactions(),
                engine.journal_dropped(),
                engine.journal().len()
            )
        },
    );
    report.check(
        FAMILY,
        "compacted_journal_replays_offline",
        engine
            .journal()
            .iter()
            .any(|e| matches!(e, EventRecord::Checkpoint { .. })),
        || "compacted journal carries no checkpoint".to_string(),
    );
    // The compacted journal must still reconstruct the live set through
    // the online family's replay oracle (checkpoints act as insertions).
    crate::online::journal_replays_offline(&engine, report)?;
    flight_suffix_matches_journal(&engine, report);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use so_workloads::DcScenario;

    #[test]
    fn observability_oracles_agree_on_a_small_fixture() {
        let fixture = Fixture::generate(&DcScenario::dc1(), 30, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut report = OracleReport::new();
        run(&fixture, &mut rng, &mut report).unwrap();
        assert!(report.is_clean(), "{:#?}", report.violations());
        assert!(report.evaluations(OracleFamily::Observability) > 10);
    }

    #[test]
    fn observability_oracles_are_deterministic() {
        let fixture = Fixture::generate(&DcScenario::dc3(), 24, 11).unwrap();
        let mut a = OracleReport::new();
        run(&fixture, &mut StdRng::seed_from_u64(11), &mut a).unwrap();
        let mut b = OracleReport::new();
        run(&fixture, &mut StdRng::seed_from_u64(11), &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn suffix_oracle_flags_a_planeless_engine() {
        let engine = micro_fleet(0).unwrap();
        let mut report = OracleReport::new();
        flight_suffix_matches_journal(&engine, &mut report);
        assert_eq!(report.violations_in(OracleFamily::Observability), 1);
    }
}
