//! Metamorphic oracles: transform the input in a way whose effect on the
//! output is known, and check the relation.
//!
//! | oracle | transform | expected relation |
//! |---|---|---|
//! | `score_invariant_under_permutation` | shuffle instance order | `A_M` within `1e-9` relative |
//! | `budgets_invariant_under_permutation` | shuffle instances + their rack assignment | per-level budgets within `1e-9` relative |
//! | `score_exact_under_pow2_scaling` | scale every trace by `2.0` | score bit-identical |
//! | `budgets_double_under_pow2_scaling` | scale every trace by `2.0` | budgets exactly doubled |
//! | `placement_exact_under_pow2_scaling` | scale the whole fleet by `2.0` | bit-identical placement |
//! | `score_equivariant_under_scaling` | scale by an arbitrary factor | score within `1e-9` relative |
//! | `budget_equivariant_under_scaling` | scale by an arbitrary factor | DC budget scales by the factor, `1e-9` relative |
//! | `score_exact_under_time_shift` | rotate all traces by one offset | score bit-identical |
//! | `budgets_exact_under_time_shift` | rotate all traces by one offset | budgets bit-identical |
//!
//! Why some relations are *exact*: multiplying by a power of two only
//! changes f64 exponents, so every downstream sum, difference, and
//! interpolation commutes with it bit-for-bit — asynchrony scores (ratios)
//! are unchanged and placement decisions cannot move. A circular shift
//! applied to every trace permutes the per-timestep sums without changing
//! any value, so peaks and sorted-order statistics are unchanged
//! bit-for-bit. Permutation and non-power-of-two scaling change float
//! *accumulation order*, hence the `1e-9` relative tolerance.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use so_baselines::{aggregate_required_budget, statprof_required_budget, ProvisioningDegrees};
use so_core::{asynchrony_score, SmoothPlacer};
use so_powertrace::PowerTrace;
use so_powertree::{Assignment, Level, NodeId};
use so_workloads::Fleet;

use crate::fixture::rotate_trace;
use crate::{Fixture, OracleError, OracleFamily, OracleReport};

const FAMILY: OracleFamily = OracleFamily::Metamorphic;
const REL_TOL: f64 = 1e-9;

/// Runs every metamorphic oracle over the fixture.
///
/// # Errors
///
/// Returns [`OracleError`] when an oracle cannot be evaluated at all;
/// failed evaluations are recorded in `report` instead.
pub fn run(
    fixture: &Fixture,
    rng: &mut StdRng,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    permutation(fixture, rng, report)?;
    scaling(fixture, rng, report)?;
    time_shift(fixture, rng, report)?;
    Ok(())
}

fn permutation(
    fixture: &Fixture,
    rng: &mut StdRng,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let traces = fixture.traces();
    let mut perm: Vec<usize> = (0..traces.len()).collect();
    perm.shuffle(rng);
    let permuted: Vec<PowerTrace> = perm.iter().map(|&i| traces[i].clone()).collect();

    let base_score = asynchrony_score(traces.iter())?;
    let perm_score = asynchrony_score(permuted.iter())?;
    report.check_close(
        FAMILY,
        "score_invariant_under_permutation",
        perm_score,
        base_score,
        REL_TOL,
    );

    // Permute the assignment alongside the traces: instance k of the
    // permuted fleet is instance perm[k] of the original, hosted on the
    // same rack, so every node aggregates the same multiset of traces.
    let racks: Vec<NodeId> = perm
        .iter()
        .map(|&i| fixture.assignment.rack_of(i))
        .collect::<Result<_, _>>()?;
    let perm_assignment = Assignment::new(racks, &fixture.topology)?;
    let degrees = ProvisioningDegrees::none();
    let base_statprof =
        statprof_required_budget(&fixture.topology, &fixture.assignment, traces, degrees)?;
    let perm_statprof =
        statprof_required_budget(&fixture.topology, &perm_assignment, &permuted, degrees)?;
    let base_smoop =
        aggregate_required_budget(&fixture.topology, &fixture.assignment, traces, degrees)?;
    let perm_smoop =
        aggregate_required_budget(&fixture.topology, &perm_assignment, &permuted, degrees)?;
    for level in Level::ALL {
        report.check_close(
            FAMILY,
            "budgets_invariant_under_permutation",
            perm_statprof.at_level(level),
            base_statprof.at_level(level),
            REL_TOL,
        );
        report.check_close(
            FAMILY,
            "budgets_invariant_under_permutation",
            perm_smoop.at_level(level),
            base_smoop.at_level(level),
            REL_TOL,
        );
    }
    Ok(())
}

fn scaling(
    fixture: &Fixture,
    rng: &mut StdRng,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let traces = fixture.traces();
    let base_score = asynchrony_score(traces.iter())?;
    let degrees = ProvisioningDegrees::none();
    let base_budget =
        aggregate_required_budget(&fixture.topology, &fixture.assignment, traces, degrees)?;

    // Power-of-two factor: every relation is exact.
    let doubled: Vec<PowerTrace> = traces.iter().map(|t| t.scale(2.0)).collect();
    report.check_exact(
        FAMILY,
        "score_exact_under_pow2_scaling",
        asynchrony_score(doubled.iter())?,
        base_score,
    );
    let doubled_budget =
        aggregate_required_budget(&fixture.topology, &fixture.assignment, &doubled, degrees)?;
    for level in Level::ALL {
        report.check_exact(
            FAMILY,
            "budgets_double_under_pow2_scaling",
            doubled_budget.at_level(level),
            2.0 * base_budget.at_level(level),
        );
    }
    let doubled_fleet = Fleet::from_traces(
        (0..fixture.fleet.len())
            .map(|i| fixture.fleet.service_of(i))
            .collect(),
        doubled,
        fixture
            .fleet
            .test_traces()
            .iter()
            .map(|t| t.scale(2.0))
            .collect(),
    )
    .expect("scaled fleet mirrors a valid fleet");
    let doubled_assignment = SmoothPlacer::default().place(&doubled_fleet, &fixture.topology)?;
    report.check(
        FAMILY,
        "placement_exact_under_pow2_scaling",
        doubled_assignment == fixture.assignment,
        || {
            let first = doubled_assignment
                .racks()
                .iter()
                .zip(fixture.assignment.racks())
                .position(|(a, b)| a != b);
            format!(
                "placement moved under uniform 2× scaling (first differing instance: {first:?})"
            )
        },
    );

    // Arbitrary factor: equivariant within tolerance.
    let factor = rng.gen_range(0.5..3.0);
    let scaled: Vec<PowerTrace> = traces.iter().map(|t| t.scale(factor)).collect();
    report.check_close(
        FAMILY,
        "score_equivariant_under_scaling",
        asynchrony_score(scaled.iter())?,
        base_score,
        REL_TOL,
    );
    let scaled_budget =
        aggregate_required_budget(&fixture.topology, &fixture.assignment, &scaled, degrees)?;
    report.check_close(
        FAMILY,
        "budget_equivariant_under_scaling",
        scaled_budget.at_level(Level::Datacenter),
        factor * base_budget.at_level(Level::Datacenter),
        REL_TOL,
    );
    Ok(())
}

fn time_shift(
    fixture: &Fixture,
    rng: &mut StdRng,
    report: &mut OracleReport,
) -> Result<(), OracleError> {
    let traces = fixture.traces();
    let shift = rng.gen_range(1..traces[0].len());
    let shifted: Vec<PowerTrace> = traces.iter().map(|t| rotate_trace(t, shift)).collect();

    report.check_exact(
        FAMILY,
        "score_exact_under_time_shift",
        asynchrony_score(shifted.iter())?,
        asynchrony_score(traces.iter())?,
    );
    let degrees = ProvisioningDegrees::none();
    let base = aggregate_required_budget(&fixture.topology, &fixture.assignment, traces, degrees)?;
    let rotated =
        aggregate_required_budget(&fixture.topology, &fixture.assignment, &shifted, degrees)?;
    let base_statprof =
        statprof_required_budget(&fixture.topology, &fixture.assignment, traces, degrees)?;
    let rotated_statprof =
        statprof_required_budget(&fixture.topology, &fixture.assignment, &shifted, degrees)?;
    for level in Level::ALL {
        report.check_exact(
            FAMILY,
            "budgets_exact_under_time_shift",
            rotated.at_level(level),
            base.at_level(level),
        );
        report.check_exact(
            FAMILY,
            "budgets_exact_under_time_shift",
            rotated_statprof.at_level(level),
            base_statprof.at_level(level),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use so_workloads::DcScenario;

    #[test]
    fn metamorphic_relations_hold_on_a_small_fixture() {
        let fixture = Fixture::generate(&DcScenario::dc2(), 32, 9).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut report = OracleReport::new();
        run(&fixture, &mut rng, &mut report).unwrap();
        assert!(report.is_clean(), "{:#?}", report.violations());
        assert!(report.evaluations(OracleFamily::Metamorphic) > 20);
    }
}
