//! Property-based tests for the runtime simulator.

use proptest::prelude::*;
use so_powertrace::TimeGrid;
use so_sim::{
    default_config, simulate, DvfsState, ReshapePolicy, StaticPolicy, StepDecision, StepObservation,
};
use so_workloads::OfferedLoad;

/// A policy that flips roles and DVFS states pseudo-randomly — adversarial
/// input for the engine's invariants.
struct ChaoticPolicy {
    state: u64,
}

impl ReshapePolicy for ChaoticPolicy {
    fn decide(&mut self, o: &StepObservation) -> StepDecision {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = self.state >> 33;
        StepDecision {
            conversion_as_lc: (r % (o.conversion as u64 + 2)) as usize,
            throttle_funded_as_lc: ((r >> 8) % (o.throttle_funded as u64 + 2)) as usize,
            batch_dvfs: match r % 3 {
                0 => DvfsState::Throttled,
                1 => DvfsState::Nominal,
                _ => DvfsState::Boosted,
            },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Engine invariants hold under an adversarial policy: served ≤
    /// offered, load in [0, 1], power positive, telemetry complete.
    #[test]
    fn engine_invariants_under_chaotic_policy(
        base_lc in 1usize..20,
        base_batch in 0usize..20,
        conversion in 0usize..8,
        throttle in 0usize..8,
        peak_qps in 50.0f64..5000.0,
        seed in 0u64..1000,
    ) {
        let grid = TimeGrid::days(2, 60);
        let load = OfferedLoad::diurnal(grid, peak_qps, 0.05, seed);
        let config = default_config(base_lc, base_batch, conversion, throttle, 1e9);
        let t = simulate(&config, &load, &mut ChaoticPolicy { state: seed }).unwrap();

        prop_assert_eq!(t.len(), load.len());
        for i in 0..t.len() {
            prop_assert!(t.lc_served_qps[i] <= load.qps_at(i) + 1e-9);
            prop_assert!(t.lc_served_qps[i] + t.lc_dropped_qps[i] - load.qps_at(i) < 1e-6);
            prop_assert!((0.0..=1.0).contains(&t.per_lc_server_load[i]));
            prop_assert!(t.total_power[i] > 0.0);
            prop_assert!(t.conversion_as_lc[i] <= conversion);
            prop_assert!(t.throttle_funded_as_lc[i] <= throttle);
            prop_assert!(t.batch_throughput[i] >= 0.0);
        }
    }

    /// Monotonicity: more LC servers never serve less.
    #[test]
    fn more_servers_serve_at_least_as_much(
        base in 2usize..15,
        extra in 1usize..10,
        peak_qps in 500.0f64..3000.0,
    ) {
        let grid = TimeGrid::days(2, 60);
        let load = OfferedLoad::diurnal(grid, peak_qps, 0.0, 1);
        let small = default_config(base, 0, 0, 0, 1e9);
        let big = default_config(base + extra, 0, 0, 0, 1e9);
        let ts = simulate(&small, &load, &mut StaticPolicy { as_lc: true }).unwrap();
        let tb = simulate(&big, &load, &mut StaticPolicy { as_lc: true }).unwrap();
        prop_assert!(tb.total_lc_served() + 1e-6 >= ts.total_lc_served());
    }

    /// Batch work scales linearly with dedicated batch servers under a
    /// static policy.
    #[test]
    fn batch_work_scales_with_dedicated_servers(b1 in 1usize..10, b2 in 11usize..30) {
        let grid = TimeGrid::days(1, 60);
        let load = OfferedLoad::diurnal(grid, 100.0, 0.0, 1);
        let c1 = default_config(2, b1, 0, 0, 1e9);
        let c2 = default_config(2, b2, 0, 0, 1e9);
        let t1 = simulate(&c1, &load, &mut StaticPolicy { as_lc: true }).unwrap();
        let t2 = simulate(&c2, &load, &mut StaticPolicy { as_lc: true }).unwrap();
        let ratio = t2.total_batch_work() / t1.total_batch_work();
        prop_assert!((ratio - b2 as f64 / b1 as f64).abs() < 1e-9);
    }

    /// Energy accounting: the power trace round-trips through Telemetry.
    #[test]
    fn power_trace_matches_series(peak_qps in 100.0f64..2000.0) {
        let grid = TimeGrid::days(1, 30);
        let load = OfferedLoad::diurnal(grid, peak_qps, 0.0, 2);
        let config = default_config(5, 5, 1, 1, 1e9);
        let t = simulate(&config, &load, &mut StaticPolicy { as_lc: false }).unwrap();
        let trace = t.power_trace().unwrap();
        prop_assert_eq!(trace.samples(), &t.total_power[..]);
        prop_assert_eq!(trace.step_minutes(), 30);
    }
}
