//! Per-server power models for the runtime simulator.

use serde::{Deserialize, Serialize};

use crate::dvfs::DvfsState;

/// Linear load-proportional server power model:
/// `P(load) = (idle + (peak − idle) · load) · dvfs_power_factor`.
///
/// The reshaping policies only observe load and power, so a linear model
/// exercises the same control paths as production power sensors
/// (substitution documented in `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerPowerModel {
    /// Idle power, watts.
    pub idle_watts: f64,
    /// Full-load power at the nominal DVFS point, watts.
    pub peak_watts: f64,
}

impl ServerPowerModel {
    /// A model with the given idle and peak wattages.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= idle_watts <= peak_watts` and both are finite.
    pub fn new(idle_watts: f64, peak_watts: f64) -> Self {
        assert!(
            idle_watts.is_finite()
                && peak_watts.is_finite()
                && 0.0 <= idle_watts
                && idle_watts <= peak_watts,
            "power model requires 0 <= idle <= peak"
        );
        Self {
            idle_watts,
            peak_watts,
        }
    }

    /// A typical latency-critical web server (90 W idle, 300 W peak).
    pub fn lc_default() -> Self {
        Self::new(90.0, 300.0)
    }

    /// A typical batch server (160 W idle, 280 W peak — batch servers are
    /// kept busy, so they sit near peak).
    pub fn batch_default() -> Self {
        Self::new(160.0, 280.0)
    }

    /// Power at the given utilization (`load` clamped to `[0, 1]`) and
    /// DVFS state, watts.
    pub fn power(&self, load: f64, dvfs: DvfsState) -> f64 {
        let load = load.clamp(0.0, 1.0);
        (self.idle_watts + (self.peak_watts - self.idle_watts) * load) * dvfs.power_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_monotone_in_load() {
        let m = ServerPowerModel::lc_default();
        assert_eq!(m.power(0.0, DvfsState::Nominal), 90.0);
        assert_eq!(m.power(1.0, DvfsState::Nominal), 300.0);
        assert!(m.power(0.5, DvfsState::Nominal) > m.power(0.2, DvfsState::Nominal));
    }

    #[test]
    fn load_is_clamped() {
        let m = ServerPowerModel::lc_default();
        assert_eq!(m.power(2.0, DvfsState::Nominal), 300.0);
        assert_eq!(m.power(-1.0, DvfsState::Nominal), 90.0);
    }

    #[test]
    fn dvfs_scales_power() {
        let m = ServerPowerModel::batch_default();
        assert!(m.power(1.0, DvfsState::Throttled) < m.power(1.0, DvfsState::Nominal));
        assert!(m.power(1.0, DvfsState::Boosted) > m.power(1.0, DvfsState::Nominal));
    }

    #[test]
    #[should_panic(expected = "idle <= peak")]
    fn invalid_model_panics() {
        let _ = ServerPowerModel::new(300.0, 100.0);
    }
}
