//! Latency model: translating per-server load into response times.
//!
//! The paper manages QoS through the guarded load level `L_conv` — the
//! load "when LC achieves satisfactory QoS" (§4.2). This module supplies
//! the latency side of that statement: an M/M/1-style response-time curve
//! that maps utilization to p50/p99 latency, so telemetry can be read in
//! SLO terms and `L_conv` can be derived from a latency target instead of
//! being guessed.

use serde::{Deserialize, Serialize};

/// M/M/1-style response-time model for one LC server.
///
/// Mean response time is `S / (1 − ρ)` for service time `S` and
/// utilization `ρ`; tail quantiles follow the exponential sojourn-time
/// distribution of the M/M/1 queue.
///
/// # Examples
///
/// Derive the conversion threshold from a p99 SLO instead of guessing:
///
/// ```
/// use so_sim::LatencyModel;
///
/// let model = LatencyModel::new(5.0);           // 5 ms service time
/// let l_conv = model.max_load_for_p99(150.0);   // 150 ms p99 SLO
/// assert!(l_conv > 0.5 && l_conv < 1.0);
/// assert!(model.p99_latency_ms(l_conv) <= 150.0 * 1.001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Mean service time per query, milliseconds.
    pub service_time_ms: f64,
    /// Utilization ceiling used to keep the model finite (loads are
    /// clamped just below 1.0).
    pub max_utilization: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            service_time_ms: 5.0,
            max_utilization: 0.995,
        }
    }
}

impl LatencyModel {
    /// A model with the given mean service time.
    ///
    /// # Panics
    ///
    /// Panics unless the service time is positive and finite.
    pub fn new(service_time_ms: f64) -> Self {
        assert!(
            service_time_ms.is_finite() && service_time_ms > 0.0,
            "service time must be positive"
        );
        Self {
            service_time_ms,
            ..Self::default()
        }
    }

    /// Mean response time at utilization `load`, milliseconds.
    pub fn mean_latency_ms(&self, load: f64) -> f64 {
        let rho = load.clamp(0.0, self.max_utilization);
        self.service_time_ms / (1.0 - rho)
    }

    /// The `q`-quantile response time at utilization `load`, milliseconds.
    ///
    /// The M/M/1 sojourn time is exponential with mean `S / (1 − ρ)`, so
    /// the quantile is `−ln(1 − q)` times the mean.
    ///
    /// # Panics
    ///
    /// Panics for `q` outside `[0, 1)`.
    pub fn quantile_latency_ms(&self, load: f64, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile must lie in [0, 1)");
        -(1.0 - q).ln() * self.mean_latency_ms(load)
    }

    /// p99 response time at utilization `load`, milliseconds.
    pub fn p99_latency_ms(&self, load: f64) -> f64 {
        self.quantile_latency_ms(load, 0.99)
    }

    /// The highest utilization at which the p99 stays within `slo_ms` —
    /// the principled way to pick the conversion threshold `L_conv`.
    ///
    /// Returns 0.0 when even an idle server misses the SLO.
    pub fn max_load_for_p99(&self, slo_ms: f64) -> f64 {
        // p99(ρ) = -ln(0.01) · S / (1 − ρ) ≤ slo  ⇒  ρ ≤ 1 − (-ln(0.01) S / slo)
        let factor = -(0.01f64).ln() * self.service_time_ms;
        if slo_ms <= 0.0 {
            return 0.0;
        }
        (1.0 - factor / slo_ms).clamp(0.0, self.max_utilization)
    }

    /// Maps a per-step load series to p99 latency, milliseconds.
    pub fn p99_series(&self, loads: &[f64]) -> Vec<f64> {
        loads.iter().map(|&l| self.p99_latency_ms(l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_load() {
        let m = LatencyModel::new(5.0);
        assert_eq!(m.mean_latency_ms(0.0), 5.0);
        assert!((m.mean_latency_ms(0.5) - 10.0).abs() < 1e-9);
        assert!(m.mean_latency_ms(0.9) > m.mean_latency_ms(0.8));
    }

    #[test]
    fn saturation_is_clamped_finite() {
        let m = LatencyModel::new(5.0);
        assert!(m.mean_latency_ms(1.0).is_finite());
        assert!(m.mean_latency_ms(5.0).is_finite());
    }

    #[test]
    fn p99_dominates_the_mean() {
        let m = LatencyModel::new(5.0);
        for load in [0.0, 0.3, 0.8] {
            assert!(m.p99_latency_ms(load) > m.mean_latency_ms(load));
        }
        // -ln(0.01) ≈ 4.605: p99 is ~4.6x the mean.
        let ratio = m.p99_latency_ms(0.5) / m.mean_latency_ms(0.5);
        assert!((ratio - 4.605).abs() < 0.01);
    }

    #[test]
    fn slo_inversion_roundtrips() {
        let m = LatencyModel::new(5.0);
        let slo = 150.0;
        let l_conv = m.max_load_for_p99(slo);
        assert!(l_conv > 0.5 && l_conv < 1.0, "l_conv {l_conv}");
        // At that load, the p99 meets the SLO (within rounding).
        assert!(m.p99_latency_ms(l_conv) <= slo * 1.001);
        // Slightly above it, the SLO is missed.
        assert!(m.p99_latency_ms((l_conv + 0.02).min(0.99)) > slo);
    }

    #[test]
    fn impossible_slo_yields_zero_load() {
        let m = LatencyModel::new(50.0);
        assert_eq!(m.max_load_for_p99(1.0), 0.0);
        assert_eq!(m.max_load_for_p99(-1.0), 0.0);
    }

    #[test]
    fn series_helper_matches_pointwise() {
        let m = LatencyModel::default();
        let loads = [0.1, 0.5, 0.9];
        let series = m.p99_series(&loads);
        for (l, s) in loads.iter().zip(&series) {
            assert_eq!(*s, m.p99_latency_ms(*l));
        }
    }
}
