//! Error types for the runtime simulator.

use std::error::Error;
use std::fmt;

/// Error produced by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration constraint was violated.
    InvalidConfig(&'static str),
    /// The offered-load series was empty.
    EmptyLoad,
    /// A trace-level operation failed.
    Trace(so_powertrace::TraceError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(what) => write!(f, "invalid simulation config: {what}"),
            SimError::EmptyLoad => write!(f, "offered-load series is empty"),
            SimError::Trace(e) => write!(f, "trace operation failed: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<so_powertrace::TraceError> for SimError {
    fn from(e: so_powertrace::TraceError) -> Self {
        SimError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_constraint() {
        let e = SimError::InvalidConfig("l_conv must lie in (0, 1]");
        assert!(e.to_string().contains("l_conv"));
    }
}
