//! The discrete-time datacenter runtime engine.
//!
//! Steps over an offered-load series, consults a [`ReshapePolicy`] each
//! step, and records the telemetry behind the paper's Figures 12–14:
//! per-LC-server load, LC and Batch throughput, and the total power draw.

use serde::{Deserialize, Serialize};
use so_faults::{FaultEvent, FaultSchedule};
use so_powertrace::{PowerTrace, SlackProfile, TimeGrid, TraceError};
use so_workloads::OfferedLoad;

use crate::balancer::{route, ServerSlot};
use crate::dvfs::DvfsState;
use crate::error::SimError;
use crate::policy::{ReshapePolicy, StepDecision, StepObservation};
use crate::power::ServerPowerModel;

/// Static configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Permanently-LC servers.
    pub base_lc: usize,
    /// Permanently-Batch servers.
    pub base_batch: usize,
    /// Conversion servers (`e_conv`, storage-disaggregated).
    pub conversion: usize,
    /// Throttle-funded conversion servers (`e_th`).
    pub throttle_funded: usize,
    /// LC server power model.
    pub lc_power: ServerPowerModel,
    /// Batch server power model.
    pub batch_power: ServerPowerModel,
    /// QPS one LC server absorbs at 100% utilization.
    pub qps_per_server: f64,
    /// Guarded per-server load level `L_conv` (QoS holds at or below it).
    pub l_conv: f64,
    /// Root power budget, watts (telemetry reports slack against it).
    pub power_budget_watts: f64,
    /// Utilization Batch servers run at (they are kept busy).
    pub batch_utilization: f64,
    /// Throughput of a conversion/throttle-funded server in Batch mode,
    /// relative to a dedicated Batch server. Opportunistic servers are
    /// bounded by data locality, so they deliver only a fraction of a
    /// dedicated node's work (power draw is the same).
    pub conversion_batch_efficiency: f64,
    /// Spare batch backlog, as a fraction of the dedicated Batch fleet:
    /// at most `ceil(batch_backlog_factor × base_batch)` opportunistic
    /// servers find batch work at any instant; the rest idle. A datacenter
    /// with a small Batch fleet (the paper's DC3) therefore profits less
    /// from conversion servers during off-peak hours.
    pub batch_backlog_factor: f64,
}

impl SimConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] describing the violated
    /// constraint.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.base_lc == 0 {
            return Err(SimError::InvalidConfig(
                "at least one base LC server is required",
            ));
        }
        if !(self.qps_per_server.is_finite() && self.qps_per_server > 0.0) {
            return Err(SimError::InvalidConfig("qps_per_server must be positive"));
        }
        if !(self.l_conv.is_finite() && self.l_conv > 0.0 && self.l_conv <= 1.0) {
            return Err(SimError::InvalidConfig("l_conv must lie in (0, 1]"));
        }
        if !(self.power_budget_watts.is_finite() && self.power_budget_watts > 0.0) {
            return Err(SimError::InvalidConfig("power budget must be positive"));
        }
        if !(self.batch_utilization.is_finite() && (0.0..=1.0).contains(&self.batch_utilization)) {
            return Err(SimError::InvalidConfig(
                "batch utilization must lie in [0, 1]",
            ));
        }
        if !(self.conversion_batch_efficiency.is_finite()
            && (0.0..=1.0).contains(&self.conversion_batch_efficiency))
        {
            return Err(SimError::InvalidConfig(
                "conversion batch efficiency must lie in [0, 1]",
            ));
        }
        if !(self.batch_backlog_factor.is_finite() && self.batch_backlog_factor >= 0.0) {
            return Err(SimError::InvalidConfig(
                "batch backlog factor must be non-negative",
            ));
        }
        Ok(())
    }
}

/// A role transition of the conversion pools between two steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConversionEvent {
    /// Step at which the new role split took effect.
    pub step: usize,
    /// Conversion + throttle-funded servers running LC before the step.
    pub lc_before: usize,
    /// Conversion + throttle-funded servers running LC from this step on.
    pub lc_after: usize,
}

/// Recorded series and counters from one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    step_minutes: u32,
    /// Mean per-LC-server load each step (1.0 = fully utilized).
    pub per_lc_server_load: Vec<f64>,
    /// LC queries served each step, QPS.
    pub lc_served_qps: Vec<f64>,
    /// LC queries dropped each step (offered beyond total capacity), QPS.
    pub lc_dropped_qps: Vec<f64>,
    /// Batch work completed each step (server·steps × DVFS factor).
    pub batch_throughput: Vec<f64>,
    /// Total power draw each step, watts.
    pub total_power: Vec<f64>,
    /// Conversion servers running LC each step.
    pub conversion_as_lc: Vec<usize>,
    /// Throttle-funded servers running LC each step.
    pub throttle_funded_as_lc: Vec<usize>,
    /// Batch DVFS state each step.
    pub batch_dvfs: Vec<DvfsState>,
    /// The offered QPS the *policy* observed each step — equal to the
    /// true offered load except under sensor faults.
    pub observed_qps: Vec<f64>,
    /// Whether the telemetry feeding the policy was trustworthy each step
    /// (no sensor dropout or stuck readings active).
    pub sensor_ok: Vec<bool>,
    /// Every fault event of the injected schedule (empty for fault-free
    /// runs).
    pub fault_events: Vec<FaultEvent>,
}

impl Telemetry {
    fn with_capacity(n: usize, step_minutes: u32) -> Self {
        Self {
            step_minutes,
            per_lc_server_load: Vec::with_capacity(n),
            lc_served_qps: Vec::with_capacity(n),
            lc_dropped_qps: Vec::with_capacity(n),
            batch_throughput: Vec::with_capacity(n),
            total_power: Vec::with_capacity(n),
            conversion_as_lc: Vec::with_capacity(n),
            throttle_funded_as_lc: Vec::with_capacity(n),
            batch_dvfs: Vec::with_capacity(n),
            observed_qps: Vec::with_capacity(n),
            sensor_ok: Vec::with_capacity(n),
            fault_events: Vec::new(),
        }
    }

    /// A metric snapshot of the run on the shared registry: the same
    /// numbers the public accessors report, in exportable form. The
    /// accessors below are thin wrappers over this snapshot, so a value
    /// printed by an exporter is bit-identical to the accessor's return.
    pub fn metrics(&self) -> so_telemetry::MetricsRegistry {
        let mut reg = so_telemetry::MetricsRegistry::new();
        reg.counter_add("so_sim_steps_total", &[], self.len() as u64);
        reg.counter_add(
            "so_sim_degraded_steps_total",
            &[],
            self.sensor_ok.iter().filter(|&&ok| !ok).count() as u64,
        );
        reg.counter_add(
            "so_sim_fault_events_total",
            &[],
            self.fault_events.len() as u64,
        );
        reg.counter_add(
            "so_sim_conversion_events_total",
            &[],
            self.conversion_events().len() as u64,
        );
        // These expressions are byte-for-byte the accessors' historical
        // definitions; keeping them verbatim preserves bit-identity (the
        // empty-run peak stays `f64::MIN`, as `peak_of_samples` defines).
        reg.gauge_set(
            "so_sim_total_lc_served",
            &[],
            self.lc_served_qps.iter().sum::<f64>() * self.step_minutes as f64,
        );
        reg.gauge_set(
            "so_sim_total_batch_work",
            &[],
            self.batch_throughput.iter().sum::<f64>() * self.step_minutes as f64,
        );
        reg.gauge_set(
            "so_sim_peak_power_watts",
            &[],
            so_powertrace::peak_of_samples(&self.total_power),
        );
        for &p in &self.total_power {
            reg.observe("so_sim_step_power_watts", &[], p);
        }
        reg
    }

    /// Steps on which the policy ran on degraded telemetry.
    pub fn degraded_steps(&self) -> usize {
        self.metrics().counter("so_sim_degraded_steps_total", &[]) as usize
    }

    /// Number of simulated steps.
    pub fn len(&self) -> usize {
        self.total_power.len()
    }

    /// Whether no steps were simulated.
    pub fn is_empty(&self) -> bool {
        self.total_power.is_empty()
    }

    /// Total LC queries served (QPS · step, arbitrary units).
    pub fn total_lc_served(&self) -> f64 {
        self.metrics()
            .gauge("so_sim_total_lc_served", &[])
            .expect("metrics() always sets this gauge")
    }

    /// Total Batch work completed.
    pub fn total_batch_work(&self) -> f64 {
        self.metrics()
            .gauge("so_sim_total_batch_work", &[])
            .expect("metrics() always sets this gauge")
    }

    /// Peak total power, watts.
    pub fn peak_power(&self) -> f64 {
        self.metrics()
            .gauge("so_sim_peak_power_watts", &[])
            .expect("metrics() always sets this gauge")
    }

    /// Steps on which the mean per-LC-server load exceeded `l_conv`
    /// (QoS-endangered steps).
    pub fn qos_risk_steps(&self, l_conv: f64) -> usize {
        self.per_lc_server_load
            .iter()
            .filter(|&&l| l > l_conv + 1e-9)
            .count()
    }

    /// The total-power series as a [`PowerTrace`].
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if no steps were simulated.
    pub fn power_trace(&self) -> Result<PowerTrace, TraceError> {
        PowerTrace::new(self.total_power.clone(), self.step_minutes)
    }

    /// Role transitions of the conversion pools over the run — each event
    /// is a batch↔LC conversion of some number of servers (instantaneous
    /// on storage-disaggregated hardware).
    pub fn conversion_events(&self) -> Vec<ConversionEvent> {
        let mut events = Vec::new();
        let mut prev = 0usize;
        for step in 0..self.len() {
            let now = self.conversion_as_lc[step] + self.throttle_funded_as_lc[step];
            if step > 0 && now != prev {
                events.push(ConversionEvent {
                    step,
                    lc_before: prev,
                    lc_after: now,
                });
            }
            prev = now;
        }
        events
    }

    /// Slack profile of the run against a budget.
    ///
    /// # Errors
    ///
    /// Propagates trace errors.
    pub fn slack(&self, budget_watts: f64) -> Result<SlackProfile, TraceError> {
        SlackProfile::new(&self.power_trace()?, budget_watts)
    }
}

/// Runs the simulation over the offered load, consulting `policy` each
/// step.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for bad configurations and
/// [`SimError::EmptyLoad`] for an empty load series.
pub fn simulate(
    config: &SimConfig,
    load: &OfferedLoad,
    policy: &mut dyn ReshapePolicy,
) -> Result<Telemetry, SimError> {
    let schedule = FaultSchedule::empty(load.len(), 1);
    simulate_with_faults(config, load, policy, &schedule)
}

/// Runs the simulation under an injected fault schedule.
///
/// Fault semantics, per step:
///
/// * **sensor dropout / stuck sensors** degrade only what the policy
///   *observes*: dropped sensors read as zero load and stuck sensors
///   repeat the previous step's reading, so `observed_qps` under-reports
///   while routing still serves the true offered load.
///   [`StepObservation::sensor_ok`] is lowered so fault-aware policies
///   (e.g. [`FailSafe`](crate::policy::FailSafe)) can hold a safe
///   decision;
/// * **instance crashes** remove the crashed fraction of the base LC
///   fleet from service (capacity and power);
/// * **breaker trips** de-energize a `severity` fraction of the fleet
///   uniformly: per-server LC capacity, batch throughput, and power all
///   scale by `1 − severity` while the trip is active (§5's transient
///   trips, survived without operator action).
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for bad configurations or when the
/// schedule covers a different number of steps than the load, and
/// [`SimError::EmptyLoad`] for an empty load series.
pub fn simulate_with_faults(
    config: &SimConfig,
    load: &OfferedLoad,
    policy: &mut dyn ReshapePolicy,
    schedule: &FaultSchedule,
) -> Result<Telemetry, SimError> {
    // The whole run is serial, so spans and counters are both safe here.
    let _span = so_telemetry::span("sim");
    config.validate()?;
    if load.is_empty() {
        return Err(SimError::EmptyLoad);
    }
    if schedule.n_steps() != load.len() {
        return Err(SimError::InvalidConfig(
            "fault schedule must cover exactly the load series",
        ));
    }
    if so_telemetry::enabled() {
        so_telemetry::counter_add("so_sim_runs_total", &[], 1);
        so_telemetry::counter_add(
            "so_sim_fault_events_total",
            &[],
            schedule.events().len() as u64,
        );
    }

    let n = load.len();
    let timeline = schedule.timeline();
    let mut telemetry = Telemetry::with_capacity(n, load.step_minutes());
    telemetry.fault_events = schedule.events().to_vec();
    let mut prev_lc_load = 0.0f64;
    let mut prev_offered = 0.0f64;

    for t in 0..n {
        let offered = load.qps_at(t);
        let dropout = timeline.dropout_frac[t].min(1.0);
        let stuck = timeline.stuck_frac[t].min(1.0 - dropout);
        let crashed = timeline.crashed_frac[t];
        // Fraction of fleet capacity still energized under active trips.
        let energized = (1.0 - timeline.trip_derate[t]).max(f64::EPSILON);

        let sensor_ok = dropout + stuck == 0.0;
        // Dropped sensors report nothing (reads as zero load); stuck
        // sensors repeat the previous step's reading.
        let observed = offered * (1.0 - dropout - stuck) + prev_offered * stuck;

        let observation = StepObservation {
            t,
            offered_qps: observed,
            base_lc: config.base_lc,
            conversion: config.conversion,
            throttle_funded: config.throttle_funded,
            qps_per_server: config.qps_per_server,
            l_conv: config.l_conv,
            prev_lc_load,
            sensor_ok,
        };
        let decision = clamp_decision(policy.decide(&observation), config);

        // Crashed instances leave the base LC fleet entirely (at least one
        // server always survives — the balancer needs a slot to route to).
        let crashed_lc = ((crashed * config.base_lc as f64).round() as usize)
            .min(config.base_lc.saturating_sub(1));
        let lc_active = config.base_lc - crashed_lc
            + decision.conversion_as_lc
            + decision.throttle_funded_as_lc;
        let opportunistic_batch = (config.conversion - decision.conversion_as_lc)
            + (config.throttle_funded - decision.throttle_funded_as_lc);
        // Only as many opportunistic servers as the batch backlog feeds
        // actually work; the rest idle at idle power.
        let backlog_slots =
            (config.batch_backlog_factor * config.base_batch as f64).ceil() as usize;
        let working_opportunistic = opportunistic_batch.min(backlog_slots);
        let idle_opportunistic = opportunistic_batch - working_opportunistic;

        // Route the *true* offered load through the guarded-level balancer
        // (all servers share one capacity class in this aggregate model);
        // an active trip derates every server's usable capacity.
        let slots = vec![ServerSlot::new(config.qps_per_server * energized); lc_active];
        let routing = route(offered, &slots, config.l_conv);
        let served = routing.served_qps;
        let dropped = routing.dropped_qps;
        let lc_load = routing.loads[0];

        let batch_work = energized
            * (config.base_batch as f64
                + working_opportunistic as f64 * config.conversion_batch_efficiency)
            * decision.batch_dvfs.throughput_factor();

        let lc_power =
            energized * lc_active as f64 * config.lc_power.power(lc_load, DvfsState::Nominal);
        let batch_power = energized
            * ((config.base_batch + working_opportunistic) as f64
                * config
                    .batch_power
                    .power(config.batch_utilization, decision.batch_dvfs)
                + idle_opportunistic as f64 * config.lc_power.power(0.0, DvfsState::Nominal));

        if so_telemetry::enabled() {
            let step_power = lc_power + batch_power;
            so_telemetry::counter_add("so_sim_steps_total", &[], 1);
            so_telemetry::counter_add(
                "so_sim_dvfs_steps_total",
                &[("state", dvfs_label(decision.batch_dvfs))],
                1,
            );
            if decision.conversion_as_lc > 0 {
                so_telemetry::counter_add("so_sim_conversion_lc_steps_total", &[], 1);
            }
            if decision.throttle_funded_as_lc > 0 {
                so_telemetry::counter_add("so_sim_throttle_funded_lc_steps_total", &[], 1);
            }
            if !sensor_ok {
                so_telemetry::counter_add("so_sim_degraded_steps_total", &[], 1);
            }
            if dropped > 0.0 {
                so_telemetry::counter_add("so_sim_dropped_load_steps_total", &[], 1);
            }
            so_telemetry::observe("so_sim_step_power_watts", &[], step_power);
            if config.power_budget_watts.is_finite() {
                so_telemetry::observe(
                    "so_sim_step_headroom_watts",
                    &[],
                    config.power_budget_watts - step_power,
                );
            }
        }

        telemetry.per_lc_server_load.push(lc_load);
        telemetry.lc_served_qps.push(served);
        telemetry.lc_dropped_qps.push(dropped);
        telemetry.batch_throughput.push(batch_work);
        telemetry.total_power.push(lc_power + batch_power);
        telemetry.conversion_as_lc.push(decision.conversion_as_lc);
        telemetry
            .throttle_funded_as_lc
            .push(decision.throttle_funded_as_lc);
        telemetry.batch_dvfs.push(decision.batch_dvfs);
        telemetry.observed_qps.push(observed);
        telemetry.sensor_ok.push(sensor_ok);

        prev_lc_load = lc_load;
        prev_offered = offered;
    }
    Ok(telemetry)
}

/// Canonical label value for a DVFS state in exported metrics.
fn dvfs_label(state: DvfsState) -> &'static str {
    match state {
        DvfsState::Throttled => "throttled",
        DvfsState::Nominal => "nominal",
        DvfsState::Boosted => "boosted",
    }
}

fn clamp_decision(decision: StepDecision, config: &SimConfig) -> StepDecision {
    StepDecision {
        conversion_as_lc: decision.conversion_as_lc.min(config.conversion),
        throttle_funded_as_lc: decision.throttle_funded_as_lc.min(config.throttle_funded),
        batch_dvfs: decision.batch_dvfs,
    }
}

/// A convenient default configuration used by tests and examples: the
/// caller supplies the server counts and budget.
pub fn default_config(
    base_lc: usize,
    base_batch: usize,
    conversion: usize,
    throttle_funded: usize,
    power_budget_watts: f64,
) -> SimConfig {
    SimConfig {
        base_lc,
        base_batch,
        conversion,
        throttle_funded,
        lc_power: ServerPowerModel::lc_default(),
        batch_power: ServerPowerModel::batch_default(),
        qps_per_server: 100.0,
        l_conv: 0.8,
        power_budget_watts,
        batch_utilization: 0.95,
        conversion_batch_efficiency: 0.5,
        batch_backlog_factor: 0.15,
    }
}

/// The grid an [`OfferedLoad`] over one week at the given step implies —
/// a convenience for building loads that match the simulation length.
pub fn one_week_grid(step_minutes: u32) -> TimeGrid {
    TimeGrid::one_week(step_minutes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StaticPolicy;

    fn load() -> OfferedLoad {
        OfferedLoad::diurnal(TimeGrid::one_week(60), 1000.0, 0.0, 1)
    }

    #[test]
    fn telemetry_covers_every_step() {
        let config = default_config(10, 5, 0, 0, 10_000.0);
        let t = simulate(&config, &load(), &mut StaticPolicy { as_lc: true }).unwrap();
        assert_eq!(t.len(), 168);
        assert!(!t.is_empty());
        assert!(t.total_power.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn undersized_fleet_drops_queries() {
        // 5 servers × 100 qps = 500 capacity < 1000 peak.
        let config = default_config(5, 0, 0, 0, 10_000.0);
        let t = simulate(&config, &load(), &mut StaticPolicy { as_lc: true }).unwrap();
        assert!(t.lc_dropped_qps.iter().any(|&d| d > 0.0));
        assert!(t.qos_risk_steps(config.l_conv) > 0);
    }

    #[test]
    fn extra_lc_servers_raise_served_load() {
        let small = default_config(8, 0, 0, 0, 10_000.0);
        let big = default_config(12, 0, 0, 0, 10_000.0);
        let ts = simulate(&small, &load(), &mut StaticPolicy { as_lc: true }).unwrap();
        let tb = simulate(&big, &load(), &mut StaticPolicy { as_lc: true }).unwrap();
        assert!(tb.total_lc_served() > ts.total_lc_served());
    }

    #[test]
    fn static_lc_policy_keeps_conversion_servers_lc() {
        let config = default_config(10, 5, 3, 0, 10_000.0);
        let t = simulate(&config, &load(), &mut StaticPolicy { as_lc: true }).unwrap();
        assert!(t.conversion_as_lc.iter().all(|&c| c == 3));
        // Batch throughput comes from the 5 base servers only.
        assert!(t.batch_throughput.iter().all(|&b| (b - 5.0).abs() < 1e-9));
    }

    #[test]
    fn decisions_are_clamped() {
        struct Greedy;
        impl ReshapePolicy for Greedy {
            fn decide(&mut self, _: &StepObservation) -> StepDecision {
                StepDecision {
                    conversion_as_lc: 999,
                    throttle_funded_as_lc: 999,
                    batch_dvfs: DvfsState::Nominal,
                }
            }
        }
        let config = default_config(10, 5, 3, 2, 10_000.0);
        let t = simulate(&config, &load(), &mut Greedy).unwrap();
        assert!(t.conversion_as_lc.iter().all(|&c| c <= 3));
        assert!(t.throttle_funded_as_lc.iter().all(|&c| c <= 2));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut config = default_config(0, 5, 0, 0, 10_000.0);
        assert!(simulate(&config, &load(), &mut StaticPolicy { as_lc: true }).is_err());
        config = default_config(5, 5, 0, 0, -1.0);
        assert!(config.validate().is_err());
        config = default_config(5, 5, 0, 0, 1.0);
        config.l_conv = 1.5;
        assert!(config.validate().is_err());
    }

    #[test]
    fn conversion_events_capture_role_flips() {
        struct TwoPhase;
        impl ReshapePolicy for TwoPhase {
            fn decide(&mut self, o: &StepObservation) -> StepDecision {
                StepDecision {
                    conversion_as_lc: if o.t < 3 { 0 } else { 2 },
                    throttle_funded_as_lc: 0,
                    batch_dvfs: DvfsState::Nominal,
                }
            }
        }
        let config = default_config(10, 5, 2, 0, 10_000.0);
        let t = simulate(&config, &load(), &mut TwoPhase).unwrap();
        let events = t.conversion_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].step, 3);
        assert_eq!(events[0].lc_before, 0);
        assert_eq!(events[0].lc_after, 2);
    }

    #[test]
    fn fault_free_run_reports_clean_telemetry() {
        let config = default_config(10, 5, 0, 0, 10_000.0);
        let t = simulate(&config, &load(), &mut StaticPolicy { as_lc: true }).unwrap();
        assert!(t.sensor_ok.iter().all(|&ok| ok));
        assert_eq!(t.degraded_steps(), 0);
        assert!(t.fault_events.is_empty());
        // The policy observed exactly the true offered load.
        let l = load();
        for step in 0..t.len() {
            assert_eq!(t.observed_qps[step], l.qps_at(step));
        }
    }

    #[test]
    fn dropout_degrades_observations_but_not_reality() {
        use so_faults::FaultSpec;
        let spec = FaultSpec::parse("seed=5,dropout=1,stuck=0,crash=0,trips=0").unwrap();
        let schedule = FaultSchedule::generate(&spec, 168, 1);
        let config = default_config(10, 5, 0, 0, 10_000.0);
        let faulty = simulate_with_faults(
            &config,
            &load(),
            &mut StaticPolicy { as_lc: true },
            &schedule,
        )
        .unwrap();
        assert!(faulty.degraded_steps() > 0);
        assert!(!faulty.fault_events.is_empty());
        // With the whole (single-instance) population dropped out, the
        // policy observes zero load during the fault window...
        let degraded_step = faulty.sensor_ok.iter().position(|&ok| !ok).unwrap();
        assert_eq!(faulty.observed_qps[degraded_step], 0.0);
        // ...but serving follows the true load: identical to a clean run
        // under a static policy (which ignores observations).
        let clean = simulate(&config, &load(), &mut StaticPolicy { as_lc: true }).unwrap();
        assert_eq!(faulty.lc_served_qps, clean.lc_served_qps);
        assert_eq!(faulty.total_power, clean.total_power);
    }

    #[test]
    fn breaker_trip_derates_capacity_and_power() {
        use so_faults::{FaultKind, FaultSpec};
        let spec = FaultSpec::parse(
            "seed=9,dropout=0,stuck=0,crash=0,trips=1,trip-steps=5,trip-severity=0.5",
        )
        .unwrap();
        let schedule = FaultSchedule::generate(&spec, 168, 1);
        let config = default_config(10, 5, 0, 0, 10_000.0);
        let faulty = simulate_with_faults(
            &config,
            &load(),
            &mut StaticPolicy { as_lc: true },
            &schedule,
        )
        .unwrap();
        let clean = simulate(&config, &load(), &mut StaticPolicy { as_lc: true }).unwrap();
        let trip = schedule
            .events_of(FaultKind::BreakerTrip)
            .next()
            .copied()
            .unwrap();
        for step in trip.start..trip.end() {
            assert!(
                faulty.total_power[step] < clean.total_power[step],
                "step {step} should draw less power during the trip"
            );
            assert!(faulty.batch_throughput[step] < clean.batch_throughput[step]);
            // Sensors are fine during a trip — only capacity is derated.
            assert!(faulty.sensor_ok[step]);
        }
        for step in 0..168 {
            if !trip.active_at(step) {
                assert_eq!(faulty.total_power[step], clean.total_power[step]);
            }
        }
    }

    #[test]
    fn crashes_reduce_serving_capacity() {
        use so_faults::FaultSpec;
        let spec =
            FaultSpec::parse("seed=3,dropout=0,stuck=0,crash=1,trips=0,mean-steps=20").unwrap();
        let schedule = FaultSchedule::generate(&spec, 168, 1);
        // 5 servers × 100 qps barely misses the 1000-qps peak already;
        // crashing the whole base fleet (bar the last survivor) must drop
        // strictly more queries than the clean run.
        let config = default_config(5, 0, 0, 0, 10_000.0);
        let faulty = simulate_with_faults(
            &config,
            &load(),
            &mut StaticPolicy { as_lc: true },
            &schedule,
        )
        .unwrap();
        let clean = simulate(&config, &load(), &mut StaticPolicy { as_lc: true }).unwrap();
        let faulty_dropped: f64 = faulty.lc_dropped_qps.iter().sum();
        let clean_dropped: f64 = clean.lc_dropped_qps.iter().sum();
        assert!(faulty_dropped > clean_dropped);
    }

    #[test]
    fn mismatched_schedule_is_rejected() {
        let config = default_config(10, 5, 0, 0, 10_000.0);
        let schedule = FaultSchedule::empty(99, 1);
        let err = simulate_with_faults(
            &config,
            &load(),
            &mut StaticPolicy { as_lc: true },
            &schedule,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn fail_safe_policy_survives_dropout_without_conversion_flap() {
        use crate::policy::FailSafe;
        use so_faults::FaultSpec;

        // A load-following policy: converts when the observed load
        // exceeds the guard, releases otherwise.
        #[derive(Debug, Default, Clone, Copy)]
        struct Follower;
        impl ReshapePolicy for Follower {
            fn decide(&mut self, o: &StepObservation) -> StepDecision {
                let needs = o.base_lc_load() > o.l_conv;
                StepDecision {
                    conversion_as_lc: if needs { o.conversion } else { 0 },
                    throttle_funded_as_lc: 0,
                    batch_dvfs: DvfsState::Nominal,
                }
            }
        }

        let spec =
            FaultSpec::parse("seed=8,dropout=1,stuck=0,crash=0,trips=0,mean-steps=30").unwrap();
        let schedule = FaultSchedule::generate(&spec, 168, 1);
        let config = default_config(8, 5, 4, 0, 10_000.0);

        // Naked follower: during the dropout it sees zero load and
        // releases its conversion servers even if the true load is high.
        let naked = simulate_with_faults(&config, &load(), &mut Follower, &schedule).unwrap();
        // FailSafe holds the last trustworthy decision through the window.
        let safe = simulate_with_faults(&config, &load(), &mut FailSafe::new(Follower), &schedule)
            .unwrap();

        let window: Vec<usize> = (0..168).filter(|&t| !safe.sensor_ok[t]).collect();
        assert!(!window.is_empty());
        for &t in &window {
            assert_eq!(naked.conversion_as_lc[t], 0, "naked follower flaps at {t}");
        }
        // The wrapped policy never serves less than the naked one.
        assert!(safe.total_lc_served() >= naked.total_lc_served());
    }

    #[test]
    fn slack_is_reported_against_budget() {
        let config = default_config(10, 5, 0, 0, 10_000.0);
        let t = simulate(&config, &load(), &mut StaticPolicy { as_lc: true }).unwrap();
        let slack = t.slack(10_000.0).unwrap();
        assert!(slack.mean_slack() > 0.0);
        assert!(!slack.has_overdraw());
    }
}
