//! The policy interface the simulator drives each step.
//!
//! Reshaping policies (server conversion, throttling/boosting — `so-reshape`)
//! implement [`ReshapePolicy`]; the engine calls them once per timestep
//! with the observable state and applies the returned decision.

use serde::{Deserialize, Serialize};

use crate::dvfs::DvfsState;

/// What a policy can observe at the start of a timestep (§4.2: the runtime
/// "continuously monitor\[s\] the LC server load over each original set of LC
/// servers").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepObservation {
    /// Timestep index.
    pub t: usize,
    /// Offered LC load this step, queries per second.
    pub offered_qps: f64,
    /// Number of permanently-LC servers.
    pub base_lc: usize,
    /// Number of conversion servers available (`e_conv`).
    pub conversion: usize,
    /// Number of throttle-funded conversion servers available (`e_th`).
    pub throttle_funded: usize,
    /// QPS one LC server can absorb at 100% utilization.
    pub qps_per_server: f64,
    /// The guarded per-server load level `L_conv` learned from history.
    pub l_conv: f64,
    /// Mean per-LC-server load observed on the previous step (1.0 = fully
    /// utilized), 0.0 on the first step.
    pub prev_lc_load: f64,
    /// Whether the telemetry behind this observation is trustworthy.
    /// `false` when sensor faults (dropout, stuck readings) degrade
    /// `offered_qps` this step; fault-aware policies should then fall back
    /// to a safe decision instead of chasing a phantom load change.
    pub sensor_ok: bool,
}

impl StepObservation {
    /// The average per-server load the base LC fleet would see this step if
    /// it served the whole offered load alone.
    pub fn base_lc_load(&self) -> f64 {
        if self.base_lc == 0 {
            return f64::INFINITY;
        }
        self.offered_qps / (self.base_lc as f64 * self.qps_per_server)
    }
}

/// A policy's decision for one timestep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepDecision {
    /// Conversion servers (`e_conv`) to run as LC this step; the remainder
    /// run Batch.
    pub conversion_as_lc: usize,
    /// Throttle-funded servers (`e_th`) to run as LC this step; the
    /// remainder run Batch.
    pub throttle_funded_as_lc: usize,
    /// DVFS state applied to the Batch cluster this step.
    pub batch_dvfs: DvfsState,
}

impl StepDecision {
    /// Everything stays Batch, nominal frequency.
    pub fn all_batch() -> Self {
        Self {
            conversion_as_lc: 0,
            throttle_funded_as_lc: 0,
            batch_dvfs: DvfsState::Nominal,
        }
    }
}

/// A per-step reshaping policy.
pub trait ReshapePolicy {
    /// Decides the role split and DVFS state for this step.
    ///
    /// Decisions exceeding the available server counts are clamped by the
    /// engine.
    fn decide(&mut self, observation: &StepObservation) -> StepDecision;
}

/// A fixed policy: conversion servers permanently hold one role.
///
/// With `as_lc = true` this models "just add LC-specific servers" (§4.1's
/// strawman); with `false`, "just add Batch servers".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticPolicy {
    /// Whether the extra servers run LC (otherwise Batch).
    pub as_lc: bool,
}

impl ReshapePolicy for StaticPolicy {
    fn decide(&mut self, observation: &StepObservation) -> StepDecision {
        StepDecision {
            conversion_as_lc: if self.as_lc {
                observation.conversion
            } else {
                0
            },
            throttle_funded_as_lc: if self.as_lc {
                observation.throttle_funded
            } else {
                0
            },
            batch_dvfs: DvfsState::Nominal,
        }
    }
}

/// Wraps any policy with a degraded-telemetry guard: while
/// [`StepObservation::sensor_ok`] is `false`, the wrapper repeats the
/// last decision made on trustworthy data instead of consulting the
/// inner policy, so a sensor dropout (which reads as a phantom load
/// collapse) cannot trigger a mass LC→Batch conversion.
///
/// Before any trustworthy step has been seen, the wrapper fails safe by
/// running every conversion server as LC — over-provisioning QoS is the
/// recoverable mistake.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailSafe<P> {
    /// The wrapped policy; consulted only on trustworthy steps.
    pub inner: P,
    last_good: Option<StepDecision>,
}

impl<P> FailSafe<P> {
    /// Wraps `inner`.
    pub fn new(inner: P) -> Self {
        Self {
            inner,
            last_good: None,
        }
    }

    /// The decision held from the last trustworthy step, if any.
    pub fn last_good(&self) -> Option<StepDecision> {
        self.last_good
    }
}

impl<P: ReshapePolicy> ReshapePolicy for FailSafe<P> {
    fn decide(&mut self, observation: &StepObservation) -> StepDecision {
        if observation.sensor_ok {
            let decision = self.inner.decide(observation);
            self.last_good = Some(decision);
            return decision;
        }
        self.last_good.unwrap_or(StepDecision {
            conversion_as_lc: observation.conversion,
            throttle_funded_as_lc: observation.throttle_funded,
            batch_dvfs: DvfsState::Nominal,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observation() -> StepObservation {
        StepObservation {
            t: 0,
            offered_qps: 500.0,
            base_lc: 10,
            conversion: 4,
            throttle_funded: 2,
            qps_per_server: 100.0,
            l_conv: 0.8,
            prev_lc_load: 0.0,
            sensor_ok: true,
        }
    }

    #[test]
    fn base_lc_load_is_offered_over_capacity() {
        let o = observation();
        assert!((o.base_lc_load() - 0.5).abs() < 1e-12);
        let empty = StepObservation { base_lc: 0, ..o };
        assert!(empty.base_lc_load().is_infinite());
    }

    #[test]
    fn static_policy_pins_roles() {
        let o = observation();
        let mut lc = StaticPolicy { as_lc: true };
        let d = lc.decide(&o);
        assert_eq!(d.conversion_as_lc, 4);
        assert_eq!(d.throttle_funded_as_lc, 2);

        let mut batch = StaticPolicy { as_lc: false };
        let d = batch.decide(&o);
        assert_eq!(d, StepDecision::all_batch());
    }

    #[test]
    fn fail_safe_holds_last_good_decision() {
        let mut policy = FailSafe::new(StaticPolicy { as_lc: false });
        let good = observation();
        let degraded = StepObservation {
            sensor_ok: false,
            // A dropout reads as a phantom load collapse.
            offered_qps: 0.0,
            ..good
        };

        // Before any trustworthy step: fail safe toward LC.
        let d = policy.decide(&degraded);
        assert_eq!(d.conversion_as_lc, 4);
        assert_eq!(d.throttle_funded_as_lc, 2);
        assert_eq!(policy.last_good(), None);

        // A trustworthy step records the inner decision...
        let d = policy.decide(&good);
        assert_eq!(d, StepDecision::all_batch());
        assert_eq!(policy.last_good(), Some(d));

        // ...which is then held through degraded steps.
        let d = policy.decide(&degraded);
        assert_eq!(d, StepDecision::all_batch());
    }
}
