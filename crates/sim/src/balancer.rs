//! Guarded-level query routing across heterogeneous LC servers (§4.2).
//!
//! "The threshold `L_conv` is also used to manage the load on each LC
//! server. If any of the LC servers experiences a load higher than
//! `L_conv`, then our server conversion process will stop sending queries
//! to this server, and, instead, send the next query to other LC servers
//! or a conversion server." This module models that router at per-server
//! granularity: servers may have different capacities (hardware
//! generations), and load is spread so nobody crosses the guarded level
//! until everyone has.

use serde::{Deserialize, Serialize};

/// One LC-serving server as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSlot {
    /// QPS this server absorbs at 100% utilization.
    pub capacity_qps: f64,
}

impl ServerSlot {
    /// A slot with the given full-utilization capacity.
    ///
    /// # Panics
    ///
    /// Panics unless the capacity is positive and finite.
    pub fn new(capacity_qps: f64) -> Self {
        assert!(
            capacity_qps.is_finite() && capacity_qps > 0.0,
            "server capacity must be positive"
        );
        Self { capacity_qps }
    }
}

/// The outcome of routing one instant's offered load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingOutcome {
    /// Per-server load (fraction of that server's capacity), aligned with
    /// the input slots.
    pub loads: Vec<f64>,
    /// QPS served in total.
    pub served_qps: f64,
    /// QPS dropped (offered beyond total capacity).
    pub dropped_qps: f64,
    /// Servers pushed above the guarded level (only non-zero when the
    /// offered load exceeds the guarded aggregate capacity).
    pub over_guard_count: usize,
}

impl RoutingOutcome {
    /// Highest per-server load.
    pub fn max_load(&self) -> f64 {
        self.loads.iter().copied().fold(0.0, f64::max)
    }
}

/// Routes `offered_qps` across `slots` under the guarded level `l_conv`.
///
/// Strategy (capacity-proportional water-filling, matching the paper's
/// router):
///
/// 1. fill every server proportionally to capacity up to `l_conv`;
/// 2. if load remains, spill it proportionally above the guarded level
///    (QoS-endangered but served);
/// 3. drop whatever exceeds the fleet's total capacity.
///
/// # Panics
///
/// Panics if `l_conv` is outside `(0, 1]`, `offered_qps` is negative/not
/// finite, or `slots` is empty.
pub fn route(offered_qps: f64, slots: &[ServerSlot], l_conv: f64) -> RoutingOutcome {
    assert!(!slots.is_empty(), "routing needs at least one server");
    assert!(
        l_conv.is_finite() && l_conv > 0.0 && l_conv <= 1.0,
        "l_conv must lie in (0, 1]"
    );
    assert!(
        offered_qps.is_finite() && offered_qps >= 0.0,
        "offered load must be non-negative"
    );

    let total_capacity: f64 = slots.iter().map(|s| s.capacity_qps).sum();
    let guarded_capacity = total_capacity * l_conv;

    let served = offered_qps.min(total_capacity);
    let dropped = offered_qps - served;

    // Proportional fill keeps every server at the same load fraction: first
    // up to l_conv, then (if needed) beyond it.
    let uniform_load = served / total_capacity;
    let loads: Vec<f64> = slots.iter().map(|_| uniform_load).collect();
    let over_guard_count = if served > guarded_capacity + 1e-12 {
        slots.len()
    } else {
        0
    };

    RoutingOutcome {
        loads,
        served_qps: served,
        dropped_qps: dropped,
        over_guard_count,
    }
}

/// Routes with a *guard-first* policy for heterogeneous fleets: faster
/// servers take proportionally more load, and when the guarded capacity
/// is exhausted the spill is again proportional — but the per-server load
/// fractions stay equal only within each phase, so the outcome differs
/// from [`route`] when capacities differ and the load exceeds the guard.
///
/// Returns the same [`RoutingOutcome`] shape.
///
/// # Panics
///
/// Same as [`route`].
pub fn route_guard_first(offered_qps: f64, slots: &[ServerSlot], l_conv: f64) -> RoutingOutcome {
    assert!(!slots.is_empty(), "routing needs at least one server");
    assert!(
        l_conv.is_finite() && l_conv > 0.0 && l_conv <= 1.0,
        "l_conv must lie in (0, 1]"
    );
    assert!(
        offered_qps.is_finite() && offered_qps >= 0.0,
        "offered load must be non-negative"
    );

    let total_capacity: f64 = slots.iter().map(|s| s.capacity_qps).sum();
    let guarded_capacity = total_capacity * l_conv;
    let served = offered_qps.min(total_capacity);
    let dropped = offered_qps - served;

    // Proportional shares keep every server at the same load *fraction*
    // within each phase: l_conv × (guarded fill ratio) during the guarded
    // phase.
    let in_guard = served.min(guarded_capacity);
    let guard_fraction = l_conv * in_guard / guarded_capacity.max(1e-12);
    let mut loads = vec![guard_fraction; slots.len()];
    let spill = served - in_guard;
    let mut over_guard_count = 0;
    if spill > 1e-12 {
        let spill_capacity = total_capacity - guarded_capacity;
        for load in loads.iter_mut() {
            *load += (1.0 - l_conv) * spill / spill_capacity.max(1e-12);
        }
        over_guard_count = loads.iter().filter(|&&l| l > l_conv + 1e-12).count();
    }
    RoutingOutcome {
        loads,
        served_qps: served,
        dropped_qps: dropped,
        over_guard_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slots(capacities: &[f64]) -> Vec<ServerSlot> {
        capacities.iter().map(|&c| ServerSlot::new(c)).collect()
    }

    #[test]
    fn light_load_stays_below_guard() {
        let s = slots(&[100.0, 100.0, 100.0]);
        let out = route(150.0, &s, 0.8);
        assert_eq!(out.over_guard_count, 0);
        assert!((out.max_load() - 0.5).abs() < 1e-12);
        assert_eq!(out.served_qps, 150.0);
        assert_eq!(out.dropped_qps, 0.0);
    }

    #[test]
    fn heavy_load_crosses_guard_before_dropping() {
        let s = slots(&[100.0, 100.0]);
        // 190 of 200 capacity: served fully but above the 0.8 guard.
        let out = route(190.0, &s, 0.8);
        assert_eq!(out.dropped_qps, 0.0);
        assert_eq!(out.over_guard_count, 2);
        assert!((out.max_load() - 0.95).abs() < 1e-12);
        // 250 of 200 capacity: 50 dropped.
        let out = route(250.0, &s, 0.8);
        assert_eq!(out.dropped_qps, 50.0);
        assert_eq!(out.served_qps, 200.0);
    }

    #[test]
    fn heterogeneous_capacities_balance_by_fraction() {
        let s = slots(&[50.0, 150.0]);
        let out = route(100.0, &s, 0.8);
        // Equal load *fractions*: 100/200 = 0.5 on both.
        assert!((out.loads[0] - 0.5).abs() < 1e-12);
        assert!((out.loads[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn guard_first_matches_route_for_uniform_fleets() {
        let s = slots(&[100.0; 4]);
        for offered in [100.0, 320.0, 390.0] {
            let a = route(offered, &s, 0.8);
            let b = route_guard_first(offered, &s, 0.8);
            for (x, y) in a.loads.iter().zip(&b.loads) {
                assert!((x - y).abs() < 1e-9, "offered {offered}: {x} vs {y}");
            }
            assert_eq!(a.over_guard_count, b.over_guard_count);
        }
    }

    #[test]
    fn served_plus_dropped_equals_offered() {
        let s = slots(&[30.0, 70.0, 100.0]);
        for offered in [0.0, 10.0, 160.0, 199.9, 200.0, 500.0] {
            let out = route(offered, &s, 0.75);
            assert!((out.served_qps + out.dropped_qps - offered).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_fleet_panics() {
        let _ = route(10.0, &[], 0.8);
    }

    #[test]
    #[should_panic(expected = "l_conv")]
    fn invalid_guard_panics() {
        let _ = route(10.0, &slots(&[10.0]), 1.5);
    }
}
