//! Discrete-time datacenter runtime substrate.
//!
//! Production reshaping (§4) runs against live traffic and power sensors;
//! this crate substitutes a discrete-time simulator that exposes the same
//! observables — per-LC-server load, throughput, power draw — so the
//! conversion and throttling policies exercise their real control paths
//! (substitution documented in `DESIGN.md`).
//!
//! * [`simulate`] — steps a [`SimConfig`] over an offered load, consulting
//!   a [`ReshapePolicy`] each step;
//! * [`simulate_with_faults`] — the same run under a deterministic
//!   `so-faults` schedule (sensor dropout, stuck sensors, crashes,
//!   breaker trips), with degraded telemetry surfaced to the policy via
//!   [`StepObservation::sensor_ok`] and a [`FailSafe`] wrapper that holds
//!   the last trustworthy decision;
//! * [`Telemetry`] — the recorded series behind Figures 12–14;
//! * [`ServerPowerModel`] / [`DvfsState`] — the power/performance models.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), so_sim::SimError> {
//! use so_powertrace::TimeGrid;
//! use so_sim::{default_config, simulate, StaticPolicy};
//! use so_workloads::OfferedLoad;
//!
//! let load = OfferedLoad::diurnal(TimeGrid::one_week(60), 1000.0, 0.0, 1);
//! let config = default_config(12, 6, 0, 0, 10_000.0);
//! let telemetry = simulate(&config, &load, &mut StaticPolicy { as_lc: true })?;
//! assert_eq!(telemetry.len(), 168);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod balancer;
mod dvfs;
mod engine;
mod error;
mod latency;
mod policy;
mod power;

pub use balancer::{route, route_guard_first, RoutingOutcome, ServerSlot};
pub use dvfs::DvfsState;
pub use engine::{
    default_config, one_week_grid, simulate, simulate_with_faults, ConversionEvent, SimConfig,
    Telemetry,
};
pub use error::SimError;
pub use latency::LatencyModel;
pub use policy::{FailSafe, ReshapePolicy, StaticPolicy, StepDecision, StepObservation};
pub use power::ServerPowerModel;
