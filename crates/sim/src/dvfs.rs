//! DVFS states used by proactive throttling and boosting (§4.2).
//!
//! Batch clusters run at configurable CPU frequency settings; the paper's
//! reshaping policy throttles them during LC-heavy phases (freeing power
//! budget for extra LC capacity) and boosts them during Batch-heavy phases
//! to win the lost throughput back.

use serde::{Deserialize, Serialize};

/// A CPU frequency/voltage operating point for Batch servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DvfsState {
    /// Reduced frequency: lower power, lower throughput.
    Throttled,
    /// The default operating point.
    #[default]
    Nominal,
    /// Elevated frequency: higher power, higher throughput.
    Boosted,
}

impl DvfsState {
    /// Multiplier on a server's power draw at this operating point.
    ///
    /// Power scales super-linearly with frequency (P ∝ f·V², V roughly ∝
    /// f), so the throttled point saves more power than throughput and the
    /// boosted point costs more power than it gains.
    pub fn power_factor(self) -> f64 {
        match self {
            DvfsState::Throttled => 0.70,
            DvfsState::Nominal => 1.0,
            DvfsState::Boosted => 1.07,
        }
    }

    /// Multiplier on a Batch server's throughput at this operating point.
    pub fn throughput_factor(self) -> f64 {
        match self {
            DvfsState::Throttled => 0.80,
            DvfsState::Nominal => 1.0,
            DvfsState::Boosted => 1.04,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throttling_saves_more_power_than_throughput() {
        let t = DvfsState::Throttled;
        assert!(t.power_factor() < t.throughput_factor());
    }

    #[test]
    fn boosting_costs_more_power_than_it_gains() {
        let b = DvfsState::Boosted;
        assert!(b.power_factor() > b.throughput_factor());
    }

    #[test]
    fn nominal_is_identity_and_default() {
        assert_eq!(DvfsState::default(), DvfsState::Nominal);
        assert_eq!(DvfsState::Nominal.power_factor(), 1.0);
        assert_eq!(DvfsState::Nominal.throughput_factor(), 1.0);
    }

    #[test]
    fn factors_are_ordered() {
        assert!(DvfsState::Throttled.power_factor() < DvfsState::Nominal.power_factor());
        assert!(DvfsState::Nominal.power_factor() < DvfsState::Boosted.power_factor());
    }
}
