//! Shared harness code for the experiment benches.
//!
//! Every table and figure of the paper's evaluation has a bench target in
//! `benches/` (see `DESIGN.md` for the full index); this crate holds the
//! setup and formatting they share.

#![warn(missing_docs)]

use so_baselines::oblivious_placement;
use so_core::SmoothPlacer;
use so_powertree::{Assignment, PowerTopology};
use so_workloads::{DcScenario, Fleet};

/// A fully prepared experiment: scenario, fleet, topology, and both the
/// historical (oblivious) and SmoothOperator placements.
#[derive(Debug)]
pub struct DcSetup {
    /// The scenario preset.
    pub scenario: DcScenario,
    /// The generated fleet.
    pub fleet: Fleet,
    /// The power topology hosting it.
    pub topology: PowerTopology,
    /// Historical service-grouped placement.
    pub grouped: Assignment,
    /// SmoothOperator workload-aware placement.
    pub smooth: Assignment,
}

/// Standard per-DC experiment size: instances per datacenter.
pub const STANDARD_FLEET: usize = 320;

/// Standard rack size used by the benches.
pub const STANDARD_RACK_CAPACITY: usize = 12;

/// Builds the standard experiment for one scenario: a 320-instance fleet
/// on a 1×2×2×2×4 topology (32 racks × 12 slots).
///
/// # Panics
///
/// Panics on generation/placement failure (bench-harness context: any
/// failure should abort the run loudly).
pub fn standard_setup(scenario: DcScenario) -> DcSetup {
    setup_with(scenario, STANDARD_FLEET, STANDARD_RACK_CAPACITY)
}

/// Builds an experiment of a custom size.
///
/// # Panics
///
/// Panics on generation/placement failure.
pub fn setup_with(scenario: DcScenario, instances: usize, rack_capacity: usize) -> DcSetup {
    let fleet = scenario
        .generate_fleet(instances)
        .expect("scenario presets generate cleanly");
    let racks_needed = instances.div_ceil(rack_capacity);
    let rpps = racks_needed.div_ceil(2 * 2 * 4).max(1);
    let topology = PowerTopology::builder()
        .suites(1)
        .msbs_per_suite(2)
        .sbs_per_msb(2)
        .rpps_per_sb(rpps)
        .racks_per_rpp(4)
        .rack_capacity(rack_capacity)
        .name(scenario.name.to_lowercase())
        .build()
        .expect("bench topology shape is valid");
    let grouped = oblivious_placement(&fleet, &topology, scenario.baseline_mixing, 0xB4_5E)
        .expect("fleet fits the bench topology");
    let smooth = SmoothPlacer::default()
        .place(&fleet, &topology)
        .expect("placement succeeds on bench fleets");
    DcSetup {
        scenario,
        fleet,
        topology,
        grouped,
        smooth,
    }
}

/// Prints a figure/table banner.
pub fn banner(title: &str, caption: &str) {
    println!();
    println!("=== {title} ===");
    println!("{caption}");
    println!("{}", "-".repeat(72));
}

/// Formats a fraction as a signed percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", 100.0 * x)
}

/// Formats a fraction as an unsigned percentage with one decimal.
pub fn pct_abs(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Downsamples a series to at most `n` points for terminal-friendly
/// printing (mean per bucket).
pub fn thin(series: &[f64], n: usize) -> Vec<f64> {
    if series.len() <= n || n == 0 {
        return series.to_vec();
    }
    let bucket = series.len().div_ceil(n);
    series
        .chunks(bucket)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Renders a series as a compact ASCII sparkline.
pub fn sparkline(series: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = series.iter().copied().fold(f64::MAX, f64::min);
    let hi = series.iter().copied().fold(f64::MIN, f64::max);
    if hi <= lo || !hi.is_finite() || !lo.is_finite() {
        return LEVELS[0].to_string().repeat(series.len());
    }
    series
        .iter()
        .map(|&v| {
            let idx = ((v - lo) / (hi - lo) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thin_preserves_short_series() {
        assert_eq!(thin(&[1.0, 2.0], 10), vec![1.0, 2.0]);
        let thinned = thin(&(0..100).map(|i| i as f64).collect::<Vec<_>>(), 10);
        assert!(thinned.len() <= 10);
    }

    #[test]
    fn sparkline_handles_flat_series() {
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]), "▁▁▁");
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s.chars().count(), 2);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.125), "+12.5%");
        assert_eq!(pct(-0.125), "-12.5%");
        assert_eq!(pct_abs(0.125), "12.5%");
    }
}
