//! Extension: months of operation under workload drift (§3.6).
//!
//! The paper applies its framework continuously: the drift monitor
//! watches per-level sums of peaks and triggers incremental remapping
//! when the placement goes stale. This bench simulates 10 weeks in which
//! a cohort of instances synchronizes onto new phases each week, and
//! compares a frozen placement against the monitored + remapped one.

use so_bench::{banner, pct_abs, setup_with};
use so_reshape::{operate, LongRunConfig};
use so_workloads::DcScenario;

fn main() {
    banner(
        "Extension — long-run operation under drift",
        "DC3, 240 instances, 10 weeks; each week every service has a 30% chance\nof shifting its schedule (backup windows move, pipelines reschedule).\nFrozen vs monitored+remapped placement.",
    );
    let setup = setup_with(DcScenario::dc3(), 240, 12);
    let config = LongRunConfig {
        weeks: 10,
        drift_fraction: 0.3,
        drift_minutes_sd: 360.0,
        monitor_threshold: 0.02,
        ..LongRunConfig::default()
    };
    let report = operate(&setup.fleet, &setup.topology, &setup.smooth, &config)
        .expect("long-run simulation succeeds");

    println!(
        "initial rack sum-of-peaks: {:.0} W\n",
        report.initial_sum_of_peaks
    );
    println!(
        "{:>5} {:>14} {:>14} {:>10} {:>7} {:>7}",
        "week", "frozen (W)", "managed (W)", "advantage", "flag", "swaps"
    );
    for w in &report.weeks {
        println!(
            "{:>5} {:>14.0} {:>14.0} {:>10} {:>7} {:>7}",
            w.week,
            w.static_sum_of_peaks,
            w.managed_sum_of_peaks,
            pct_abs((w.static_sum_of_peaks - w.managed_sum_of_peaks) / w.static_sum_of_peaks),
            if w.flagged { "yes" } else { "" },
            w.swaps,
        );
    }
    println!(
        "\nmean managed advantage: {} with {} total swaps",
        pct_abs(report.mean_managed_advantage()),
        report.total_swaps()
    );
    println!("(expected: service schedule shifts erode the complementarity the frozen\n placement exploited; bounded weekly swap budgets win part of it back)");
}
