//! Figure 7: the four steps of the workload-aware placement framework,
//! walked through on real (synthetic) data with the sizes at every stage.
//!
//! The paper's Figure 7 is an architecture diagram: (1) collect traces and
//! extract representative S-traces, (2) calculate asynchrony-score
//! vectors, (3) k-means-cluster the vectors, (4) place instances
//! round-robin. This bench executes each stage and prints what flows
//! between them.

use so_bench::{banner, setup_with};
use so_cluster::{balanced_kmeans, KMeansConfig};
use so_core::{score_vectors, ServiceTraces};
use so_powertree::{Level, NodeAggregates};
use so_workloads::DcScenario;

fn main() {
    banner(
        "Figure 7 — placement framework walkthrough",
        "Each stage of the §3 pipeline on a 256-instance DC2 fleet.",
    );
    let setup = setup_with(DcScenario::dc2(), 256, 16);
    let fleet = &setup.fleet;
    let members: Vec<usize> = (0..fleet.len()).collect();

    // Step 1 — traces & S-trace extraction.
    let grid = fleet.grid();
    println!(
        "step 1  traces: {} instance power traces ({} samples each, {}-minute step,\n        averaged over {} training weeks); S-traces for the top consumers:",
        fleet.len(),
        grid.len(),
        grid.step_minutes(),
        2,
    );
    let straces = ServiceTraces::extract(fleet, &members, 8).expect("services exist");
    for (service, trace) in straces.services().iter().zip(straces.traces()) {
        println!(
            "          {:<12} peak {:>6.1} W  mean {:>6.1} W  peak/mean {:.2}",
            service.to_string(),
            trace.peak(),
            trace.mean(),
            trace.peak() / trace.mean()
        );
    }

    // Step 2 — asynchrony-score vectors.
    let vectors = score_vectors(fleet, &members, &straces).expect("embedding succeeds");
    let dim = vectors[0].len();
    let flat: Vec<f64> = vectors.iter().flatten().copied().collect();
    let min = flat.iter().copied().fold(f64::MAX, f64::min);
    let max = flat.iter().copied().fold(f64::MIN, f64::max);
    println!(
        "\nstep 2  embedding: {} score vectors of dimension |B| = {dim}; scores span\n        [{min:.3}, {max:.3}] (1.0 = synchronous with that service, 2.0 = fully\n        complementary)",
        vectors.len(),
    );

    // Step 3 — balanced k-means.
    let q = 4; // children per node at the deepest deal
    let h = 2 * q;
    let clustering = balanced_kmeans(&vectors, KMeansConfig::new(h)).expect("clustering succeeds");
    println!(
        "\nstep 3  clustering: h = {h} balanced clusters (fan-out q = {q} × 2), sizes {:?},\n        inertia {:.3}",
        clustering.clustering.sizes(),
        clustering.clustering.inertia,
    );

    // Step 4 — the full hierarchical placement, and its effect.
    let test = fleet.test_traces();
    let before = NodeAggregates::compute(&setup.topology, &setup.grouped, test)
        .expect("aggregation succeeds");
    let after = NodeAggregates::compute(&setup.topology, &setup.smooth, test)
        .expect("aggregation succeeds");
    println!("\nstep 4  placement: deal clusters round-robin down the tree ->");
    for level in [Level::Sb, Level::Rpp, Level::Rack] {
        let b = before.sum_of_peaks(&setup.topology, level);
        let a = after.sum_of_peaks(&setup.topology, level);
        println!(
            "          {:<5} sum-of-peaks {:>9.0} W -> {:>9.0} W ({:+.1}%)",
            level.to_string(),
            b,
            a,
            100.0 * (a - b) / b
        );
    }
}
