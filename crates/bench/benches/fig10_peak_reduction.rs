//! Figure 10: peak-power reduction achieved at each level of the power
//! infrastructure in the three datacenters.
//!
//! Paper shape: reductions grow toward the leaves (RPP largest), with
//! DC1 < DC2 < DC3 at the RPP level (2.3% / 7.1% / 13.1% in the paper) —
//! DC1's baseline is already fairly balanced and its instances less
//! heterogeneous, DC3 is strictly grouped and highly heterogeneous.

use so_bench::{banner, pct_abs, standard_setup};
use so_powertree::{Level, NodeAggregates};
use so_workloads::DcScenario;

fn main() {
    banner(
        "Figure 10 — peak-power reduction per level per datacenter",
        "Sum-of-peaks reduction of SmoothOperator vs the historical placement (test week).",
    );
    let levels = [Level::Suite, Level::Msb, Level::Sb, Level::Rpp];
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>8}",
        "DC", "SUITE", "MSB", "SB", "RPP"
    );

    for scenario in DcScenario::all() {
        let setup = standard_setup(scenario);
        let test = setup.fleet.test_traces();
        let before =
            NodeAggregates::compute(&setup.topology, &setup.grouped, test).expect("aggregation");
        let after =
            NodeAggregates::compute(&setup.topology, &setup.smooth, test).expect("aggregation");

        let mut row = format!("{:<6}", setup.scenario.name);
        for level in levels {
            let b = before.sum_of_peaks(&setup.topology, level);
            let a = after.sum_of_peaks(&setup.topology, level);
            row.push_str(&format!(" {:>8}", pct_abs((b - a) / b)));
        }
        println!("{row}");
    }
    println!("\n(paper: RPP-level reductions of 2.3% / 7.1% / 13.1% for DC1/DC2/DC3)");
}
