//! Machine-readable scale-ladder artifact: `BENCH_scale.json`, written to
//! the working directory.
//!
//! Thin wrapper over [`smoothoperator::scale::run_scale`] so the artifact
//! can be regenerated from the bench harness (`cargo bench -p so-bench
//! --bench scale_json`) as well as from the CLI (`smoothop scale`). The
//! default ladder is 10k → 100k → 1M instances; pass a comma-separated
//! ladder as the first argument to override (CI's scale-smoke job runs
//! the 10k rung only).

use smoothoperator::scale::{run_scale, ScaleConfig};
use so_bench::banner;

fn main() {
    banner(
        "BENCH artifact — columnar scale ladder",
        "Writes BENCH_scale.json to the working directory.",
    );
    let mut config = ScaleConfig::default();
    if let Some(raw) = std::env::args().nth(1).filter(|a| !a.starts_with('-')) {
        config.instances = raw
            .split(',')
            .map(|p| p.trim().parse().expect("instance counts are numbers"))
            .collect();
    }
    let report = run_scale(&config).expect("scale ladder runs");
    for p in &report.points {
        let rss = match p.peak_rss_bytes {
            Some(bytes) => format!("{} MB", bytes / (1024 * 1024)),
            None => "n/a".to_string(),
        };
        println!(
            "{:>9} rows: {:>9.0} ms total, {:>11.0} rows/s, peak RSS {rss:>9}",
            p.instances, p.total_ms, p.rows_per_sec,
        );
    }
    let json = report.to_json();
    std::fs::write("BENCH_scale.json", &json).expect("artifact is writable");
    println!("wrote BENCH_scale.json ({} bytes)", json.len());
}
