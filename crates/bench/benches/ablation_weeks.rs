//! Ablation: number of training weeks averaged into I-traces.
//!
//! §3.3 averages 2–3 weeks "to prevent SmoothOperator from overfitting
//! its decisions to any specific week". This sweep varies the training
//! window and evaluates the placement on the held-out test week.

use so_baselines::oblivious_placement;
use so_bench::{banner, pct_abs};
use so_core::SmoothPlacer;
use so_powertree::{Level, NodeAggregates, PowerTopology};
use so_workloads::DcScenario;

fn main() {
    banner(
        "Ablation — training weeks averaged into I-traces",
        "Placement derived from w-week averages, evaluated on the held-out week (DC3).",
    );
    let topo = PowerTopology::builder()
        .suites(1)
        .msbs_per_suite(2)
        .sbs_per_msb(2)
        .rpps_per_sb(2)
        .racks_per_rpp(4)
        .rack_capacity(10)
        .build()
        .expect("shape is valid");

    println!("{:>6} {:>12} {:>12}", "weeks", "RPP red.", "rack red.");
    for weeks in [1u32, 2, 3] {
        let mut scenario = DcScenario::dc3();
        scenario.train_weeks = weeks;
        let fleet = scenario.generate_fleet(300).expect("fleet generates");
        let grouped = oblivious_placement(&fleet, &topo, scenario.baseline_mixing, 0xB4_5E)
            .expect("fleet fits");
        let smooth = SmoothPlacer::default()
            .place(&fleet, &topo)
            .expect("placement succeeds");

        let test = fleet.test_traces();
        let before = NodeAggregates::compute(&topo, &grouped, test).expect("aggregation");
        let after = NodeAggregates::compute(&topo, &smooth, test).expect("aggregation");
        println!(
            "{:>6} {:>12} {:>12}",
            weeks,
            pct_abs(
                1.0 - after.sum_of_peaks(&topo, Level::Rpp)
                    / before.sum_of_peaks(&topo, Level::Rpp)
            ),
            pct_abs(
                1.0 - after.sum_of_peaks(&topo, Level::Rack)
                    / before.sum_of_peaks(&topo, Level::Rack)
            ),
        );
    }
}
