//! Machine-readable benchmark artifacts: `BENCH_placement.json` and
//! `BENCH_sim.json`, written to the working directory.
//!
//! Each file carries one timed end-to-end run (wall time from `Instant`)
//! together with the metric snapshot the run recorded into a
//! virtual-clock `RecordingSink` — the counters and gauges are therefore
//! bit-identical across machines and thread counts, while `wall_ms` is
//! the only machine-dependent field. CI uploads both files as workflow
//! artifacts so perf trends stay inspectable per commit.

use std::sync::Arc;
use std::time::Instant;

use so_bench::banner;
use so_core::SmoothPlacer;
use so_sim::{default_config, one_week_grid, simulate, StaticPolicy};
use so_telemetry::{MetricsRegistry, RecordingSink};
use so_workloads::{DcScenario, OfferedLoad};

fn main() {
    banner(
        "BENCH artifacts — machine-readable placement & sim benchmarks",
        "Writes BENCH_placement.json and BENCH_sim.json to the working directory.",
    );
    write_artifact("BENCH_placement.json", bench_placement());
    write_artifact("BENCH_sim.json", bench_sim());
}

fn write_artifact(path: &str, json: String) {
    std::fs::write(path, &json).expect("benchmark artifact is writable");
    println!("wrote {path} ({} bytes)", json.len());
}

/// One full DC2 placement, instrumented.
fn bench_placement() -> String {
    let fleet = DcScenario::dc2().generate_fleet(192).expect("fleet");
    let topo = so_reshape::fitting_topology(192, 12).expect("topology");

    let sink = Arc::new(RecordingSink::with_virtual_clock());
    let start = Instant::now();
    let assignment = so_telemetry::with_sink(sink.clone(), || {
        SmoothPlacer::default().place(&fleet, &topo).expect("place")
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    render_json(
        "placement",
        &[("instances", assignment.len() as f64)],
        wall_ms,
        &sink.snapshot(),
    )
}

/// One simulated week of runtime reshaping, instrumented.
fn bench_sim() -> String {
    let load = OfferedLoad::diurnal(one_week_grid(60), 10_000.0, 0.0, 1);
    let config = default_config(96, 96, 19, 9, 120_000.0);

    let sink = Arc::new(RecordingSink::with_virtual_clock());
    let start = Instant::now();
    let telemetry = so_telemetry::with_sink(sink.clone(), || {
        let mut policy = StaticPolicy { as_lc: true };
        simulate(&config, &load, &mut policy).expect("simulate")
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    render_json(
        "sim",
        &[("steps", telemetry.len() as f64)],
        wall_ms,
        &sink.snapshot(),
    )
}

/// Hand-rolled JSON (the workspace's serde is a no-op shim): metric keys
/// flatten labels as `name[k=v,...]`; only finite numbers are emitted.
fn render_json(
    name: &str,
    extra: &[(&str, f64)],
    wall_ms: f64,
    snapshot: &MetricsRegistry,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"benchmark\": \"{name}\",\n"));
    out.push_str(&format!("  \"wall_ms\": {wall_ms:.3},\n"));
    for (key, value) in extra {
        out.push_str(&format!("  \"{key}\": {value},\n"));
    }
    out.push_str("  \"metrics\": {\n");
    let mut lines = Vec::new();
    for (key, value) in snapshot.counters() {
        lines.push(format!("    \"{}\": {value}", flat_key(key)));
    }
    for (key, value) in snapshot.gauges() {
        if value.is_finite() {
            lines.push(format!("    \"{}\": {value}", flat_key(key)));
        }
    }
    for (key, hist) in snapshot.histograms() {
        lines.push(format!("    \"{}_count\": {}", flat_key(key), hist.count()));
        lines.push(format!("    \"{}_sum\": {:.6}", flat_key(key), hist.sum()));
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

fn flat_key(key: &so_telemetry::MetricKey) -> String {
    if key.labels().is_empty() {
        return key.name().to_string();
    }
    let labels: Vec<String> = key
        .labels()
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    format!("{}[{}]", key.name(), labels.join(","))
}
