//! Table 1: comparison between SmoothOperator and prior approaches for
//! improving datacenter power efficiency.
//!
//! The table is qualitative in the paper; here each row is additionally
//! backed by the property of this codebase that realizes it (so the claim
//! is traceable to code).

use so_bench::banner;
use so_reshape::ConversionModel;

struct Row {
    property: &'static str,
    power_routing: bool,
    stat_multiplexing: bool,
    distributed_ups: bool,
    smooth_operator: bool,
    evidence: &'static str,
}

fn main() {
    banner(
        "Table 1 — SmoothOperator vs prior approaches",
        "✓ = the approach provides the property.",
    );
    let rows = [
        Row {
            property: "Using temporal information",
            power_routing: false,
            stat_multiplexing: false,
            distributed_ups: true,
            smooth_operator: true,
            evidence:
                "asynchrony scores are functions of trace *timing* (so-core::asynchrony_score)",
        },
        Row {
            property: "Using existing power infra.",
            power_routing: false,
            stat_multiplexing: true,
            distributed_ups: false,
            smooth_operator: true,
            evidence: "placement only permutes the instance->rack map (so-powertree::Assignment)",
        },
        Row {
            property: "Automated process",
            power_routing: true,
            stat_multiplexing: true,
            distributed_ups: true,
            smooth_operator: true,
            evidence: "end-to-end pipeline runs unattended (so-reshape::run_scenario)",
        },
        Row {
            property: "Balancing local peaks",
            power_routing: true,
            stat_multiplexing: false,
            distributed_ups: false,
            smooth_operator: true,
            evidence: "balanced clusters dealt round-robin per child (so-core::SmoothPlacer)",
        },
        Row {
            property: "Proactive planning",
            power_routing: false,
            stat_multiplexing: true,
            distributed_ups: false,
            smooth_operator: true,
            evidence: "history-learned L_conv drives conversion before load arrives (so-reshape)",
        },
    ];

    let mark = |b: bool| if b { "✓" } else { " " };
    println!(
        "{:<30} {:^12} {:^12} {:^14} {:^14}",
        "", "PowerRouting", "StatMux", "DistributedUPS", "SmoothOperator"
    );
    for row in &rows {
        println!(
            "{:<30} {:^12} {:^12} {:^14} {:^14}",
            row.property,
            mark(row.power_routing),
            mark(row.stat_multiplexing),
            mark(row.distributed_ups),
            mark(row.smooth_operator),
        );
        println!("{:<30}   ({})", "", row.evidence);
    }

    // The storage-disaggregation assumptions behind conversion (§4.2).
    let model = ConversionModel::default();
    println!("\nconversion-server assumptions (storage-disaggregated):");
    println!("  conversion time: {} minutes", model.conversion_minutes());
    println!(
        "  data stays available: {}",
        model.preserves_data_availability()
    );
    println!(
        "  OS stays up (power monitors in control): {}",
        model.os_stays_up()
    );
}
