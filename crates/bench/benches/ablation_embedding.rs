//! Ablation: I-to-S embedding vs pairwise I-to-I embedding vs raw traces.
//!
//! §3.5 argues for I-to-S scores because pairwise I-to-I scoring is
//! quadratic and spans a sparse high-dimensional space that clusters
//! poorly. This bench measures both the quality (leaf peak reduction when
//! clustering in each space) and the embedding construction time.

use std::time::Instant;

use so_bench::{banner, pct_abs, setup_with};
use so_cluster::{balanced_kmeans, KMeansConfig};
use so_core::{pairwise_score_vectors, score_vectors, ServiceTraces};
use so_powertree::{Assignment, Level, NodeAggregates, NodeId};
use so_workloads::DcScenario;

fn main() {
    banner(
        "Ablation — embedding space for clustering",
        "Cluster instances in each space, deal clusters round-robin onto racks,\nand compare rack-level sum-of-peaks reduction (DC3, 128 instances).",
    );
    let setup = setup_with(DcScenario::dc3(), 128, 8);
    let fleet = &setup.fleet;
    let members: Vec<usize> = (0..fleet.len()).collect();
    let racks: Vec<NodeId> = setup.topology.racks().to_vec();
    let q = racks.len();
    let test = fleet.test_traces();

    let before = NodeAggregates::compute(&setup.topology, &setup.grouped, test)
        .expect("aggregation succeeds");
    let before_racks = before.sum_of_peaks(&setup.topology, Level::Rack);

    let report = |name: &str, points: Vec<Vec<f64>>, build_time: std::time::Duration| {
        let clustering =
            balanced_kmeans(&points, KMeansConfig::new(q)).expect("clustering succeeds");
        // Deal each balanced cluster round-robin across the racks.
        let mut rack_of = vec![racks[0]; fleet.len()];
        for c in 0..clustering.k() {
            for (rank, &i) in clustering.members(c).iter().enumerate() {
                rack_of[members[i]] = racks[(c + rank * 7) % q];
            }
        }
        let assignment = Assignment::new(rack_of, &setup.topology).expect("assignment is valid");
        let after = NodeAggregates::compute(&setup.topology, &assignment, test)
            .expect("aggregation succeeds");
        let reduction = 1.0 - after.sum_of_peaks(&setup.topology, Level::Rack) / before_racks;
        println!(
            "{:<18} dim {:>4}  build {:>8.1?}  rack peak red. {:>7}",
            name,
            points[0].len(),
            build_time,
            pct_abs(reduction)
        );
    };

    // I-to-S (the paper's choice).
    let t0 = Instant::now();
    let straces = ServiceTraces::extract(fleet, &members, 8).expect("services exist");
    let itos = score_vectors(fleet, &members, &straces).expect("embedding succeeds");
    report("I-to-S scores", itos, t0.elapsed());

    // Pairwise I-to-I.
    let t0 = Instant::now();
    let itoi = pairwise_score_vectors(fleet, &members).expect("embedding succeeds");
    report("pairwise I-to-I", itoi, t0.elapsed());

    // Raw (downsampled) traces.
    let t0 = Instant::now();
    let raw: Vec<Vec<f64>> = members
        .iter()
        .map(|&i| {
            fleet.averaged_traces()[i]
                .downsample(24)
                .expect("grid divides evenly")
                .into_samples()
        })
        .collect();
    report("raw traces", raw, t0.elapsed());
}
