//! Figure 8: production service instances embedded into the
//! |B|-dimensional asynchrony-score space, k-means clustered, and
//! projected to 2-D via t-SNE.
//!
//! Paper shape: instances form well-separated clusters that largely track
//! services/behaviour groups.

use so_bench::{banner, setup_with};
use so_cluster::{kmeans, silhouette_score, tsne, KMeansConfig, TsneConfig};
use so_core::{score_vectors, ServiceTraces};
use so_workloads::DcScenario;

fn main() {
    banner(
        "Figure 8 — k-means clusters in asynchrony-score space (t-SNE projection)",
        "One suite of DC1: embed instances by I-to-S scores, cluster, project.",
    );
    let setup = setup_with(DcScenario::dc1(), 256, 16);
    let fleet = &setup.fleet;
    let members: Vec<usize> = (0..fleet.len()).collect();

    let straces = ServiceTraces::extract(fleet, &members, 8).expect("fleet has services");
    println!(
        "embedding dimensionality |B| = {} (services: {})",
        straces.len(),
        straces
            .services()
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let vectors = score_vectors(fleet, &members, &straces).expect("embedding succeeds");
    let clustering = kmeans(&vectors, KMeansConfig::new(8)).expect("k-means succeeds");
    let silhouette = silhouette_score(&vectors, &clustering.labels).expect("at least two clusters");
    println!(
        "k-means: k = 8, inertia = {:.4}, silhouette = {:.3}, sizes = {:?}",
        clustering.inertia,
        silhouette,
        clustering.sizes()
    );

    // Cluster purity vs service labels (how well clusters track services).
    let mut pure = 0usize;
    for c in 0..clustering.k() {
        let members_c = clustering.members(c);
        if members_c.is_empty() {
            continue;
        }
        let mut counts = std::collections::BTreeMap::new();
        for &i in &members_c {
            *counts.entry(fleet.service_of(i)).or_insert(0usize) += 1;
        }
        let dominant = counts.values().max().copied().unwrap_or(0);
        pure += dominant;
    }
    println!(
        "cluster/service agreement: {:.1}% of instances in their cluster's dominant service",
        100.0 * pure as f64 / fleet.len() as f64
    );

    // Standardize each score dimension before projecting: asynchrony
    // scores live on slightly different scales per service.
    let dim = vectors[0].len();
    let mut standardized = vectors.clone();
    for d in 0..dim {
        let mean = vectors.iter().map(|v| v[d]).sum::<f64>() / vectors.len() as f64;
        let var = vectors.iter().map(|v| (v[d] - mean).powi(2)).sum::<f64>() / vectors.len() as f64;
        let sd = var.sqrt().max(1e-9);
        for (row, v) in standardized.iter_mut().zip(&vectors) {
            row[d] = (v[d] - mean) / sd;
        }
    }
    let coords = tsne(
        &standardized,
        TsneConfig {
            perplexity: 25.0,
            iters: 350,
            learning_rate: 25.0,
            ..TsneConfig::default()
        },
    )
    .expect("t-SNE succeeds");

    // ASCII scatter of the projection, colored by cluster id.
    const W: usize = 72;
    const H: usize = 24;
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &[x, y] in &coords {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    let mut canvas = vec![vec![' '; W]; H];
    for (i, &[x, y]) in coords.iter().enumerate() {
        let cx = ((x - min_x) / (max_x - min_x + 1e-12) * (W - 1) as f64) as usize;
        let cy = ((y - min_y) / (max_y - min_y + 1e-12) * (H - 1) as f64) as usize;
        canvas[cy][cx] = char::from_digit(clustering.labels[i] as u32, 10).unwrap_or('#');
    }
    println!("\nt-SNE projection (digit = cluster id):");
    for row in canvas {
        println!("  {}", row.into_iter().collect::<String>());
    }

    // First few coordinates for external plotting.
    println!("\nfirst 10 points (x, y, cluster, service):");
    for (i, point) in coords.iter().take(10).enumerate() {
        println!(
            "  {:>8.2} {:>8.2}  c{}  {}",
            point[0],
            point[1],
            clustering.labels[i],
            fleet.service_of(i)
        );
    }
}
