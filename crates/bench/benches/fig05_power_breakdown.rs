//! Figure 5: breakdown of average power consumption of the top-10 power
//! consumer workloads in the three datacenters under study.
//!
//! Paper shape: each DC has a distinct mix; DC2 is db/batch-heavy, DC3 is
//! frontend/LC-heavy. Here the shares come from the synthetic fleets'
//! mean power per service (the generator was parameterized from the
//! paper's pies, so matching shapes validate the substrate).

use so_bench::{banner, pct_abs, standard_setup};
use so_workloads::DcScenario;

fn main() {
    banner(
        "Figure 5 — power-consumption breakdown (top 10 services per DC)",
        "30-day-average power share per service, largest first.",
    );
    for scenario in DcScenario::all() {
        let setup = standard_setup(scenario);
        println!("\n{}:", setup.scenario.name);
        let shares = setup.fleet.power_share_by_service();
        for (rank, (service, share)) in shares.iter().take(10).enumerate() {
            println!(
                "  {:>2}. {:<14} {:>6}",
                rank + 1,
                service.to_string(),
                pct_abs(*share)
            );
        }
        let covered: f64 = shares.iter().take(10).map(|(_, s)| s).sum();
        println!("  (top 10 cover {} of fleet power)", pct_abs(covered));
    }
}
