//! Figure 14: average and off-peak-hour power-slack reduction achieved at
//! the three datacenters by dynamic power profile reshaping.
//!
//! Paper shape: 44% / 41% / 18% average slack reduction for DC1/DC2/DC3 —
//! DC3 benefits least because its LC-dominant mix leaves few Batch
//! instances to fill the off-peak valley; off-peak reductions exceed the
//! averages.

use so_bench::{banner, pct_abs};
use so_reshape::{fitting_topology, run_scenario, PipelineConfig};
use so_workloads::DcScenario;

fn main() {
    banner(
        "Figure 14 — power-slack reduction per datacenter",
        "Energy-slack reduction of the full reshaping tier vs the pre run,\nagainst the peak-provisioned root budget.",
    );
    println!(
        "{:<5} {:>16} {:>22}",
        "DC", "avg slack red.", "off-peak slack red."
    );
    for scenario in DcScenario::all() {
        let topo = fitting_topology(240, 12).expect("topology fits");
        let outcome = run_scenario(&scenario, 240, &topo, &PipelineConfig::default())
            .expect("pipeline succeeds");
        let avg = outcome
            .avg_slack_reduction(&outcome.throttle_boost)
            .expect("slack computes");
        let off_peak = outcome
            .off_peak_slack_reduction(&outcome.throttle_boost)
            .expect("slack computes");
        println!(
            "{:<5} {:>16} {:>22}",
            outcome.name,
            pct_abs(avg),
            pct_abs(off_peak)
        );
    }
    println!("\n(paper: 44% / 41% / 18% average slack reduction for DC1/DC2/DC3,\n off-peak reductions higher than the averages)");
}
