//! Ablation: how the per-child cluster count `h = q × clusters_per_child`
//! affects leaf-level peak reduction.
//!
//! §3.5 only requires `h` to be a multiple of the fan-out `q`; this sweep
//! shows the sensitivity of the placement quality to that choice.

use so_bench::{banner, pct_abs, setup_with};
use so_core::{PlacementConfig, SmoothPlacer};
use so_powertree::{Level, NodeAggregates};
use so_workloads::DcScenario;

fn main() {
    banner(
        "Ablation — clusters per child (h = q × c)",
        "RPP/rack sum-of-peaks reduction vs the historical placement, DC3 test week.",
    );
    let setup = setup_with(DcScenario::dc3(), 320, 12);
    let test = setup.fleet.test_traces();
    let before = NodeAggregates::compute(&setup.topology, &setup.grouped, test)
        .expect("aggregation succeeds");
    let before_rpp = before.sum_of_peaks(&setup.topology, Level::Rpp);
    let before_rack = before.sum_of_peaks(&setup.topology, Level::Rack);

    println!(
        "{:>14} {:>12} {:>12}",
        "clusters/child", "RPP red.", "rack red."
    );
    for c in [1usize, 2, 4, 8] {
        let placer = SmoothPlacer::new(PlacementConfig {
            clusters_per_child: c,
            ..PlacementConfig::default()
        });
        let assignment = placer
            .place(&setup.fleet, &setup.topology)
            .expect("placement succeeds");
        let after = NodeAggregates::compute(&setup.topology, &assignment, test)
            .expect("aggregation succeeds");
        println!(
            "{:>14} {:>12} {:>12}",
            c,
            pct_abs(1.0 - after.sum_of_peaks(&setup.topology, Level::Rpp) / before_rpp),
            pct_abs(1.0 - after.sum_of_peaks(&setup.topology, Level::Rack) / before_rack),
        );
    }
}
