//! Figure 4: power slack — the unused budget between the power trace and
//! the budget line — before and after optimization.
//!
//! The paper's Figure 4 shows the pre-optimization trace leaving large
//! slack under the budget and the post-optimization trace (more servers,
//! kept busy by reshaping) filling it. This bench reproduces the picture
//! at the datacenter level for DC2.

use so_bench::{banner, pct_abs, sparkline, thin};
use so_reshape::{fitting_topology, run_scenario, PipelineConfig};
use so_workloads::DcScenario;

fn main() {
    banner(
        "Figure 4 — power slack, pre- vs post-optimization (DC2)",
        "Total power draw against the fixed budget over the test week.",
    );
    let topo = fitting_topology(240, 12).expect("topology fits");
    let outcome = run_scenario(&DcScenario::dc2(), 240, &topo, &PipelineConfig::default())
        .expect("pipeline succeeds");

    let budget = outcome.budget_watts;
    println!("power budget: {budget:.0} W\n");
    println!(
        "pre-opt. draw   {}  (peak {:.0} W)",
        sparkline(&thin(&outcome.pre.total_power, 72)),
        outcome.pre.peak_power()
    );
    println!(
        "post-opt. draw  {}  (peak {:.0} W)",
        sparkline(&thin(&outcome.throttle_boost.total_power, 72)),
        outcome.throttle_boost.peak_power()
    );

    let pre_slack = outcome.pre.slack(budget).expect("slack computes");
    let post_slack = outcome
        .throttle_boost
        .slack(budget)
        .expect("slack computes");
    println!(
        "\nmean power slack: {:.0} W -> {:.0} W",
        pre_slack.mean_slack(),
        post_slack.mean_slack()
    );
    println!(
        "energy slack: {:.0} -> {:.0} W·min ({} reduction — the Figure 14 metric)",
        pre_slack.energy_slack_watt_minutes(),
        post_slack.energy_slack_watt_minutes(),
        pct_abs(
            outcome
                .avg_slack_reduction(&outcome.throttle_boost)
                .expect("slack computes")
        ),
    );
}
