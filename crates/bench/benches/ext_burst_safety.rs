//! Extension: power-safety under bursty traffic (§3.2).
//!
//! "In the optimized placement, service instances that have highly
//! synchronous behaviors are now spread out evenly across all the power
//! nodes. When bursty traffic arrives, the sudden load change is now
//! shared among all the power nodes[, decreasing] the likelihood of
//! tripping the circuit breakers inside certain heavily-loaded power
//! nodes." This bench injects a frontend traffic burst and counts
//! RPP-level breaker trips under both placements, with RPP budgets sized
//! 5% above the historical (grouped) peaks.

use so_baselines::oblivious_placement;
use so_bench::{banner, setup_with};
use so_core::SmoothPlacer;
use so_powertree::{BreakerModel, Level, NodeAggregates};
use so_workloads::{inject_burst, BurstSpec, DcScenario, ServiceClass};

fn main() {
    banner(
        "Extension — RPP breaker trips under a regional traffic burst",
        "A frontend burst (dynamic power saturates for 2 hours at the daily\npeak) hits DC3; RPP budgets carry a 5% margin over historical peaks.",
    );
    let setup = setup_with(DcScenario::dc3(), 240, 12);
    let fleet = &setup.fleet;
    let topo = &setup.topology;

    let grouped = oblivious_placement(fleet, topo, 0.0, 7).expect("fleet fits");
    let smooth = SmoothPlacer::default()
        .place(fleet, topo)
        .expect("placement succeeds");

    // Budgets: only RPPs constrained, at 5% above the worst historical
    // RPP peak (the uniform breaker size an operator of the unoptimized
    // datacenter would install).
    let historical =
        NodeAggregates::compute(topo, &grouped, fleet.test_traces()).expect("aggregation");
    let max_rpp_peak = topo
        .nodes_at_level(Level::Rpp)
        .iter()
        .map(|&r| historical.peak(r).expect("rpp exists"))
        .fold(f64::MIN, f64::max);
    let rpp_budget = max_rpp_peak * 1.05;
    let budgets: Vec<f64> = topo
        .nodes()
        .iter()
        .map(|n| {
            if n.level() == Level::Rpp {
                rpp_budget
            } else {
                f64::INFINITY
            }
        })
        .collect();

    // A two-hour regional burst centered on the datacenter's daily peak.
    let peak_idx = historical.trace(topo.root()).expect("root").peak_index();
    let steps_2h = (120 / fleet.grid().step_minutes()) as usize;
    let burst = BurstSpec::new(
        ServiceClass::Frontend,
        peak_idx.saturating_sub(steps_2h / 2),
        steps_2h,
        1.6,
    );
    let bursty = inject_burst(fleet, burst);

    let breaker = BreakerModel::new(2);
    println!("RPP budget: {rpp_budget:.0} W (worst historical peak {max_rpp_peak:.0} W + 5%)\n");
    println!(
        "{:<12} {:>14} {:>14} {:>18}",
        "placement", "trips", "tripped RPPs", "worst overdraw"
    );
    for (name, assignment) in [("grouped", &grouped), ("smooth", &smooth)] {
        let agg = NodeAggregates::compute(topo, assignment, &bursty).expect("aggregation");
        let trips = breaker
            .evaluate_with_budgets(topo, &agg, &budgets)
            .expect("evaluation");
        let rpps: std::collections::BTreeSet<_> = trips.iter().map(|t| t.node).collect();
        let worst = trips
            .iter()
            .map(|t| t.peak_watts - rpp_budget)
            .fold(0.0f64, f64::max);
        println!(
            "{:<12} {:>14} {:>14} {:>15.0} W",
            name,
            trips.len(),
            rpps.len(),
            worst
        );
    }
    println!("\n(expected: the grouped placement concentrates the burst on its\n frontend-heavy RPPs and trips them; the smooth placement shares the\n burst across all RPPs and stays within budget)");
}
