//! Figure 12: server conversion's impact on per-LC-server load, Batch
//! throughput, and LC throughput over the test week.
//!
//! Paper shape: pre-SmoothOperator the LC fleet saturates at peak; with
//! conversion the per-server load stays under the guarded level, Batch
//! throughput rises during Batch-heavy phases (conversion servers help
//! Batch) and dips during LC-heavy phases (they convert to LC), and LC
//! throughput grows throughout.

use so_bench::{banner, pct, sparkline, thin};
use so_reshape::{fitting_topology, run_scenario, PipelineConfig};
use so_workloads::DcScenario;

fn main() {
    banner(
        "Figure 12 — conversion timeline (DC2 test week)",
        "Per-LC-server load, Batch throughput, and LC throughput,\npre-SmoothOperator vs with server conversion.",
    );
    let scenario = DcScenario::dc2();
    let topo = fitting_topology(240, 12).expect("topology fits");
    let outcome =
        run_scenario(&scenario, 240, &topo, &PipelineConfig::default()).expect("pipeline succeeds");

    println!(
        "fleet: {} LC + {} Batch servers; headroom hosts {} conversion servers; L_conv = {:.2}\n",
        outcome.base_lc, outcome.base_batch, outcome.extra_conversion, outcome.l_conv
    );

    let width = 96;
    println!(
        "per-LC-server load (guarded level L_conv = {:.2}):",
        outcome.l_conv
    );
    println!(
        "  pre  {}",
        sparkline(&thin(&outcome.pre.per_lc_server_load, width))
    );
    println!(
        "  conv {}",
        sparkline(&thin(&outcome.conversion.per_lc_server_load, width))
    );
    let pre_peak_load = outcome
        .pre
        .per_lc_server_load
        .iter()
        .copied()
        .fold(f64::MIN, f64::max);
    let conv_peak_load = outcome
        .conversion
        .per_lc_server_load
        .iter()
        .copied()
        .fold(f64::MIN, f64::max);
    println!("  peak load: pre {pre_peak_load:.3} -> conv {conv_peak_load:.3}\n");

    println!("Batch throughput (normalized server·steps):");
    println!(
        "  pre  {}",
        sparkline(&thin(&outcome.pre.batch_throughput, width))
    );
    println!(
        "  conv {}",
        sparkline(&thin(&outcome.conversion.batch_throughput, width))
    );

    println!("\nLC throughput (served QPS):");
    println!(
        "  pre  {}",
        sparkline(&thin(&outcome.pre.lc_served_qps, width))
    );
    println!(
        "  conv {}",
        sparkline(&thin(&outcome.conversion.lc_served_qps, width))
    );

    let conv_lc_steps = outcome
        .conversion
        .conversion_as_lc
        .iter()
        .filter(|&&c| c > 0)
        .count();
    let events = outcome.conversion.conversion_events();
    println!(
        "\nconversion servers ran as LC on {} of {} steps ({}); {} role flips\nover the week (instantaneous on storage-disaggregated hardware)",
        conv_lc_steps,
        outcome.conversion.len(),
        so_bench::pct_abs(conv_lc_steps as f64 / outcome.conversion.len() as f64),
        events.len(),
    );
    println!(
        "totals: LC {} | Batch {} (conversion vs pre)",
        pct(outcome.lc_improvement(&outcome.conversion)),
        pct(outcome.batch_improvement(&outcome.conversion)),
    );
}
