//! Criterion micro-benchmarks for the core algorithms.
//!
//! §3.5 motivates the I-to-S embedding partly on cost grounds ("the
//! pair-wise I-to-I asynchrony score calculation could take an
//! unacceptable amount of time"); the `embedding` group quantifies that
//! gap on this implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use so_capping::{allocate_caps, ClassDemand};
use so_cluster::{balanced_kmeans, kmeans, KMeansConfig};
use so_core::{
    asynchrony_score, pairwise_score_vectors, score_vectors, ServiceTraces, SmoothPlacer,
};
use so_parallel::serial_scope;
use so_powertree::{Assignment, NodeAggregates, PowerTopology};
use so_workloads::DcScenario;

fn bench_scoring(c: &mut Criterion) {
    let fleet = DcScenario::dc2()
        .generate_fleet(256)
        .expect("fleet generates");
    let traces = fleet.averaged_traces();

    let mut group = c.benchmark_group("scoring");
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("asynchrony_score", n), &n, |b, &n| {
            b.iter(|| asynchrony_score(traces[..n].iter()).expect("non-empty set"))
        });
    }
    group.finish();
}

fn bench_embedding(c: &mut Criterion) {
    let fleet = DcScenario::dc2()
        .generate_fleet(192)
        .expect("fleet generates");
    let members: Vec<usize> = (0..fleet.len()).collect();
    let straces = ServiceTraces::extract(&fleet, &members, 8).expect("services exist");

    let mut group = c.benchmark_group("embedding");
    group.sample_size(10);
    group.bench_function("i_to_s_192", |b| {
        b.iter(|| score_vectors(&fleet, &members, &straces).expect("embedding succeeds"))
    });
    group.bench_function("pairwise_i_to_i_192", |b| {
        b.iter(|| pairwise_score_vectors(&fleet, &members).expect("embedding succeeds"))
    });
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let fleet = DcScenario::dc3()
        .generate_fleet(256)
        .expect("fleet generates");
    let members: Vec<usize> = (0..fleet.len()).collect();
    let straces = ServiceTraces::extract(&fleet, &members, 8).expect("services exist");
    let points = score_vectors(&fleet, &members, &straces).expect("embedding succeeds");

    let mut group = c.benchmark_group("clustering");
    group.bench_function("kmeans_256x8_k8", |b| {
        b.iter(|| kmeans(&points, KMeansConfig::new(8)).expect("k-means succeeds"))
    });
    group.bench_function("balanced_kmeans_256x8_k8", |b| {
        b.iter(|| balanced_kmeans(&points, KMeansConfig::new(8)).expect("k-means succeeds"))
    });
    group.finish();
}

fn bench_placement(c: &mut Criterion) {
    let fleet = DcScenario::dc2()
        .generate_fleet(320)
        .expect("fleet generates");
    let topo = PowerTopology::builder()
        .suites(1)
        .msbs_per_suite(2)
        .sbs_per_msb(2)
        .rpps_per_sb(2)
        .racks_per_rpp(4)
        .rack_capacity(12)
        .build()
        .expect("shape is valid");

    let mut group = c.benchmark_group("placement");
    group.sample_size(10);
    group.bench_function("smooth_place_320", |b| {
        b.iter(|| {
            SmoothPlacer::default()
                .place(&fleet, &topo)
                .expect("placement succeeds")
        })
    });
    group.finish();
}

/// Serial vs parallel placement on a fleet-scale topology (10k instances,
/// 512 racks). Identical work and bit-identical output in both arms — the
/// only difference is the thread budget, so the ratio is the speedup of
/// the `parallel` feature on this machine. On a single-core runner both
/// arms degenerate to the same serial loop.
fn bench_parallel_placement(c: &mut Criterion) {
    let fleet = DcScenario::dc2()
        .generate_fleet(10_000)
        .expect("fleet generates");
    // 4 suites x 2 MSBs x 2 SBs x 4 RPPs x 4 racks x 40 servers = 10_240.
    let topo = PowerTopology::builder()
        .suites(4)
        .msbs_per_suite(2)
        .sbs_per_msb(2)
        .rpps_per_sb(4)
        .racks_per_rpp(4)
        .rack_capacity(40)
        .build()
        .expect("shape is valid");

    let mut group = c.benchmark_group("parallel_placement");
    group.sample_size(10);
    group.bench_function("smooth_place_10k_parallel", |b| {
        b.iter(|| {
            SmoothPlacer::default()
                .place(&fleet, &topo)
                .expect("placement succeeds")
        })
    });
    group.bench_function("smooth_place_10k_serial", |b| {
        b.iter(|| {
            serial_scope(|| {
                SmoothPlacer::default()
                    .place(&fleet, &topo)
                    .expect("placement succeeds")
            })
        })
    });
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let fleet = DcScenario::dc1()
        .generate_fleet(320)
        .expect("fleet generates");
    let topo = PowerTopology::builder()
        .suites(1)
        .msbs_per_suite(2)
        .sbs_per_msb(2)
        .rpps_per_sb(2)
        .racks_per_rpp(4)
        .rack_capacity(12)
        .build()
        .expect("shape is valid");
    let assignment = Assignment::round_robin(&topo, 320).expect("fleet fits");
    let traces = fleet.test_traces();

    let mut group = c.benchmark_group("aggregation");
    group.sample_size(20);
    group.bench_function("node_aggregates_320x1008", |b| {
        b.iter(|| NodeAggregates::compute(&topo, &assignment, traces).expect("aggregation"))
    });
    group.finish();
}

fn bench_capping(c: &mut Criterion) {
    let topo = PowerTopology::builder()
        .suites(1)
        .msbs_per_suite(2)
        .sbs_per_msb(2)
        .rpps_per_sb(2)
        .racks_per_rpp(4)
        .rack_capacity(12)
        .build()
        .expect("shape is valid");
    let demands = vec![
        ClassDemand {
            high: 1_500.0,
            medium: 300.0,
            low: 1_800.0
        };
        topo.racks().len()
    ];
    let budgets: Vec<f64> = topo
        .nodes()
        .iter()
        .map(|n| if n.is_rack() { 3_000.0 } else { f64::INFINITY })
        .collect();

    let mut group = c.benchmark_group("capping");
    group.bench_function("allocate_caps_32_racks", |b| {
        b.iter(|| allocate_caps(&topo, &demands, &budgets).expect("allocation"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scoring,
    bench_embedding,
    bench_clustering,
    bench_placement,
    bench_parallel_placement,
    bench_aggregation,
    bench_capping
);
criterion_main!(benches);
