//! Figure 13: throughput-improvement breakdown of LC and Batch services,
//! with server conversion alone and with proactive throttling/boosting on
//! top, for the three datacenters.
//!
//! Paper shape: conversion alone yields up to ~13% LC plus ~8% Batch; the
//! throttling/boosting tier adds a large extra LC bump in DC1/DC2 and a
//! small one in DC3 (LC-dominant: little Batch to throttle), plus small
//! extra Batch gains.

use so_bench::{banner, pct};
use so_reshape::{fitting_topology, run_scenario, PipelineConfig};
use so_workloads::DcScenario;

fn main() {
    banner(
        "Figure 13 — throughput improvement breakdown",
        "Improvements vs the pre-SmoothOperator run, per datacenter.",
    );
    println!(
        "{:<5} {:>12} {:>12} | {:>12} {:>12} | {:>6} {:>6}",
        "DC", "conv LC", "conv Batch", "tb LC", "tb Batch", "e_conv", "e_th"
    );
    for scenario in DcScenario::all() {
        let topo = fitting_topology(240, 12).expect("topology fits");
        let outcome = run_scenario(&scenario, 240, &topo, &PipelineConfig::default())
            .expect("pipeline succeeds");
        println!(
            "{:<5} {:>12} {:>12} | {:>12} {:>12} | {:>6} {:>6}",
            outcome.name,
            pct(outcome.lc_improvement(&outcome.conversion)),
            pct(outcome.batch_improvement(&outcome.conversion)),
            pct(outcome.lc_improvement(&outcome.throttle_boost)),
            pct(outcome.batch_improvement(&outcome.throttle_boost)),
            outcome.extra_conversion,
            outcome.extra_throttle_funded,
        );
    }
    println!("\n(paper: conversion alone up to +13% LC and +8% Batch; throttling/boosting\n lifts LC further by 7.2%/8%/1.8% for DC1/DC2/DC3 and Batch by 1.6%/1.2%/2.4%)");
}
