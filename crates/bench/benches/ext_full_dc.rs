//! Extension: the framework at the paper's structural scale.
//!
//! The paper's datacenters have four suites, each with multiple MSBs, SBs
//! and RPPs (Figure 2). The headline benches use one suite for speed; this
//! bench runs the full four-suite shape — 2 MSBs × 2 SBs × 2 RPPs × 4
//! racks per suite, 128 racks, 1 536 servers — at 30-minute sampling, and
//! reports per-level reductions plus wall time.

use std::time::Instant;

use so_baselines::oblivious_placement;
use so_bench::{banner, pct_abs};
use so_core::SmoothPlacer;
use so_powertree::{Level, NodeAggregates, PowerTopology};
use so_workloads::DcScenario;

fn main() {
    banner(
        "Extension — full four-suite datacenter",
        "DC3 mix, 1 536 instances on the Figure 2 shape (4 suites, 128 racks),\n30-minute sampling.",
    );
    let mut scenario = DcScenario::dc3();
    scenario.step_minutes = 30;
    let t0 = Instant::now();
    let fleet = scenario.generate_fleet(1536).expect("fleet generates");
    let gen = t0.elapsed();

    let topo = PowerTopology::builder()
        .suites(4)
        .msbs_per_suite(2)
        .sbs_per_msb(2)
        .rpps_per_sb(2)
        .racks_per_rpp(4)
        .rack_capacity(12)
        .build()
        .expect("shape is valid");
    assert_eq!(topo.racks().len(), 128);

    let baseline =
        oblivious_placement(&fleet, &topo, scenario.baseline_mixing, 0xB4_5E).expect("fleet fits");
    let t0 = Instant::now();
    let smooth = SmoothPlacer::default()
        .place(&fleet, &topo)
        .expect("placement succeeds");
    let place = t0.elapsed();

    let test = fleet.test_traces();
    let before = NodeAggregates::compute(&topo, &baseline, test).expect("aggregation");
    let after = NodeAggregates::compute(&topo, &smooth, test).expect("aggregation");

    println!(
        "generation {gen:.1?}, placement {place:.1?} for {} instances on {} nodes\n",
        fleet.len(),
        topo.len()
    );
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>10}",
        "level", "nodes", "grouped", "smooth", "red."
    );
    for level in Level::ALL {
        let b = before.sum_of_peaks(&topo, level);
        let a = after.sum_of_peaks(&topo, level);
        println!(
            "{:<8} {:>8} {:>10.0} W {:>10.0} W {:>10}",
            level.to_string(),
            topo.nodes_at_level(level).len(),
            b,
            a,
            pct_abs((b - a) / b)
        );
    }
    println!("\n(expected: the single-suite results carry over — reductions grow toward\n the leaves and the suite level stays placement-invariant)");
}
