//! Figure 6: diurnal power bands (p5–p95 … p45–p55) of web, db, and
//! hadoop server populations over one week.
//!
//! Paper shape: web follows user activity (day peaks), db peaks at night
//! (backup compression), hadoop is constantly high.

use so_bench::{banner, sparkline, thin};
use so_powertrace::{PercentileBands, PowerTrace, SeasonalDecomposition, TimeGrid};
use so_workloads::rng::stream_rng;
use so_workloads::{heterogeneous_instance, ServiceClass};

fn main() {
    banner(
        "Figure 6 — diurnal percentile bands per service",
        "One-week traces of 200 instances each; bands are cross-instance percentiles.",
    );
    let grid = TimeGrid::one_week(15);
    let quantiles = [0.05, 0.25, 0.50, 0.75, 0.95];

    for (label, service) in [
        ("web", ServiceClass::Frontend),
        ("db", ServiceClass::Db),
        ("hadoop", ServiceClass::Hadoop),
    ] {
        let mut rng = stream_rng(0x00F1_0606, service as u64);
        let population: Vec<PowerTrace> = (0..200)
            .map(|i| {
                heterogeneous_instance(service, 45.0, 0.15, 1000 + i, &mut rng)
                    .weekly_trace(grid, 0)
            })
            .collect();
        let bands =
            PercentileBands::compute(&population, &quantiles).expect("population is on one grid");

        println!("\n{label}:");
        for &q in &quantiles {
            let series = bands.series(q).expect("series was requested");
            let day = thin(&series[..grid.samples_per_day() * 2], 48);
            println!(
                "  p{:<4} {}  (min {:>5.1} W, max {:>5.1} W)",
                (q * 100.0) as u32,
                sparkline(&day),
                series.iter().copied().fold(f64::MAX, f64::min),
                series.iter().copied().fold(f64::MIN, f64::max),
            );
        }
        // Shape check: where does the median band peak, and how seasonal
        // (template-variance fraction) is a typical instance?
        let median = bands.series(0.5).expect("median was requested");
        let peak_idx = median
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let minute = grid.minute_of_day(peak_idx);
        let seasonality = SeasonalDecomposition::of(&population[0])
            .expect("whole days")
            .seasonality();
        println!(
            "  median band peaks at {:02}:{:02}; instance seasonality {:.0}%",
            minute / 60,
            minute % 60,
            100.0 * seasonality
        );
    }
}
