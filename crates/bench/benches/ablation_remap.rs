//! Ablation: full placement vs swap-based remapping (§3.5 vs §3.6).
//!
//! The remapping framework was designed for incremental repair, not
//! wholesale optimization. This ablation quantifies the difference:
//! starting from the fragmented (grouped) layout, how far does pure
//! swapping get compared to the full clustering placement — and does a
//! remap pass on top of the placement buy anything?

use std::time::Instant;

use so_baselines::oblivious_placement;
use so_bench::{banner, pct_abs, setup_with};
use so_core::{remap, RemapConfig, SmoothPlacer};
use so_powertree::{Assignment, Level, NodeAggregates};
use so_workloads::DcScenario;

fn main() {
    banner(
        "Ablation — placement vs remapping",
        "Rack/RPP sum-of-peaks reduction vs the strictly grouped layout (DC3,\n160 instances; remap budget 96 swaps).",
    );
    let setup = setup_with(DcScenario::dc3(), 160, 10);
    let fleet = &setup.fleet;
    let topo = &setup.topology;
    let grouped = oblivious_placement(fleet, topo, 0.0, 7).expect("fleet fits");

    let test = fleet.test_traces();
    let base = NodeAggregates::compute(topo, &grouped, test).expect("aggregation");
    let base_rack = base.sum_of_peaks(topo, Level::Rack);
    let base_rpp = base.sum_of_peaks(topo, Level::Rpp);

    let report =
        |name: &str, assignment: &Assignment, elapsed: std::time::Duration, swaps: usize| {
            let agg = NodeAggregates::compute(topo, assignment, test).expect("aggregation");
            println!(
                "{:<22} rack red. {:>6}   rpp red. {:>6}   {:>8.1?}   {:>4} swaps",
                name,
                pct_abs(1.0 - agg.sum_of_peaks(topo, Level::Rack) / base_rack),
                pct_abs(1.0 - agg.sum_of_peaks(topo, Level::Rpp) / base_rpp),
                elapsed,
                swaps,
            );
        };

    // Full clustering placement.
    let t0 = Instant::now();
    let smooth = SmoothPlacer::default()
        .place(fleet, topo)
        .expect("placement succeeds");
    report("placement", &smooth, t0.elapsed(), 0);

    // Remap-only, starting from the grouped layout.
    let config = RemapConfig {
        max_swaps: 96,
        ..RemapConfig::default()
    };
    let t0 = Instant::now();
    let mut remapped = grouped.clone();
    let r = remap(fleet, topo, &mut remapped, config).expect("remap succeeds");
    report("remap-only", &remapped, t0.elapsed(), r.swaps.len());

    // Placement with a remap refinement pass on top.
    let t0 = Instant::now();
    let mut refined = smooth.clone();
    let r = remap(fleet, topo, &mut refined, config).expect("remap succeeds");
    report("placement + remap", &refined, t0.elapsed(), r.swaps.len());

    println!("\n(finding: at this scale greedy swapping can match the clustering\n placement at the rack level, but needs ~5x the wall time and scans all\n node pairs per swap — quadratic in fleet size, which is exactly why the\n paper uses it only for incremental repair. placement + a short remap\n pass is the best of both.)");
}
